package parsl

import (
	"context"
	"fmt"

	"repro/internal/future"
)

// This file is the typed facade over the submission API: generic wrappers
// that give callers compile-time argument and result types without changing
// the wire format — apps still execute as ([]any, map[string]any) functions,
// and TypedFuture only asserts the dynamic result on the way out.

// TypedFuture is a Future whose result is known to be R. It wraps the
// untyped single-update future (the wire-level handle stays `any`-valued)
// and performs the type assertion once, at the blocking read.
type TypedFuture[R any] struct {
	f *future.Future
}

// Typed wraps an untyped future with a compile-time result type.
func Typed[R any](f *future.Future) TypedFuture[R] { return TypedFuture[R]{f: f} }

// Result blocks until the task completes or ctx is done, returning the typed
// value. A result of the wrong dynamic type is an error, not a panic.
func (t TypedFuture[R]) Result(ctx context.Context) (R, error) {
	var zero R
	v, err := t.f.ResultCtx(ctx)
	if err != nil {
		return zero, err
	}
	r, ok := v.(R)
	if !ok {
		// An app that legitimately returns nil resolves to the zero value.
		if v == nil {
			return zero, nil
		}
		return zero, fmt.Errorf("parsl: typed future: app returned %T, want %T", v, zero)
	}
	return r, nil
}

// Done reports, without blocking, whether the task has completed.
func (t TypedFuture[R]) Done() bool { return t.f.Done() }

// Cancel settles a still-pending future with future.ErrCanceled, reporting
// whether the cancellation won the race against completion.
func (t TypedFuture[R]) Cancel() bool { return t.f.Cancel() }

// Future returns the underlying untyped future, e.g. to pass it back into
// another app invocation as a dependency.
func (t TypedFuture[R]) Future() *Future { return t.f }

// Typed0 adapts a no-argument app into a typed invocation function.
func Typed0[R any](app *App) func(context.Context, ...CallOption) TypedFuture[R] {
	return func(ctx context.Context, opts ...CallOption) TypedFuture[R] {
		return Typed[R](app.Submit(ctx, nil, opts...))
	}
}

// Typed1 adapts a one-argument app into a typed invocation function: the
// argument is checked at compile time, the result at the Result call.
//
//	hello, _ := d.PythonApp("hello", fn)
//	greet := parsl.Typed1[string, string](hello)
//	fut := greet(ctx, "World", parsl.WithPriority(10))
//	msg, err := fut.Result(ctx)   // msg is a string
func Typed1[A, R any](app *App) func(context.Context, A, ...CallOption) TypedFuture[R] {
	return func(ctx context.Context, a A, opts ...CallOption) TypedFuture[R] {
		return Typed[R](app.Submit(ctx, []any{a}, opts...))
	}
}

// Typed2 adapts a two-argument app into a typed invocation function.
func Typed2[A, B, R any](app *App) func(context.Context, A, B, ...CallOption) TypedFuture[R] {
	return func(ctx context.Context, a A, b B, opts ...CallOption) TypedFuture[R] {
		return Typed[R](app.Submit(ctx, []any{a, b}, opts...))
	}
}

// Typed3 adapts a three-argument app into a typed invocation function.
func Typed3[A, B, C, R any](app *App) func(context.Context, A, B, C, ...CallOption) TypedFuture[R] {
	return func(ctx context.Context, a A, b B, c C, opts ...CallOption) TypedFuture[R] {
		return Typed[R](app.Submit(ctx, []any{a, b, c}, opts...))
	}
}
