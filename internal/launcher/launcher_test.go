package launcher

import (
	"strings"
	"testing"
)

func TestSingle(t *testing.T) {
	var l Single
	if got := l.Wrap("worker --port 9000", 4, 32); got != "worker --port 9000" {
		t.Fatalf("wrap = %q", got)
	}
	if l.Fanout(32) != 1 {
		t.Fatal("single launcher fanout != 1")
	}
}

func TestFork(t *testing.T) {
	var l Fork
	cmd := l.Wrap("worker", 1, 4)
	if !strings.Contains(cmd, "seq 1 4") || !strings.Contains(cmd, "worker") {
		t.Fatalf("wrap = %q", cmd)
	}
	if l.Fanout(4) != 4 {
		t.Fatal("fanout")
	}
}

func TestSrun(t *testing.T) {
	l := Srun{}
	cmd := l.Wrap("worker", 128, 28)
	for _, want := range []string{"srun", "--nodes=128", "--ntasks-per-node=28", "worker"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("wrap = %q missing %q", cmd, want)
		}
	}
	withFlags := Srun{Overrides: "--exclusive"}.Wrap("w", 1, 1)
	if !strings.Contains(withFlags, "--exclusive") {
		t.Fatalf("overrides lost: %q", withFlags)
	}
}

func TestAprun(t *testing.T) {
	cmd := Aprun{}.Wrap("worker", 8192, 32)
	for _, want := range []string{"aprun", "-n 262144", "-N 32"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("wrap = %q missing %q", cmd, want)
		}
	}
}

func TestMpiExec(t *testing.T) {
	cmd := MpiExec{}.Wrap("exex-worker", 4, 32)
	if !strings.Contains(cmd, "mpiexec -n 128 -ppn 32") {
		t.Fatalf("wrap = %q", cmd)
	}
}

func TestGnuParallel(t *testing.T) {
	cmd := GnuParallel{}.Wrap("worker", 2, 3)
	if !strings.Contains(cmd, "parallel") || !strings.Contains(cmd, "-j 3") {
		t.Fatalf("wrap = %q", cmd)
	}
}

func TestFanouts(t *testing.T) {
	cases := []struct {
		l    Launcher
		want int
	}{
		{Single{}, 1}, {Fork{}, 16}, {Srun{}, 16}, {Aprun{}, 16}, {MpiExec{}, 16}, {GnuParallel{}, 16},
	}
	for _, c := range cases {
		if got := c.l.Fanout(16); got != c.want {
			t.Errorf("%s fanout = %d, want %d", c.l.Name(), got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"single", "fork", "srun", "aprun", "mpiexec", "gnu_parallel", ""} {
		l, err := ByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if name != "" && l.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, l.Name())
		}
	}
	if _, err := ByName("warp-drive"); err == nil {
		t.Fatal("unknown launcher accepted")
	}
}
