// Package launcher implements Parsl's Launcher abstraction (§4.2.2): the
// system-specific mechanism that fans a single worker command out across the
// cores and nodes of an allocation. A Launcher rewrites the worker command
// into the site's spawn idiom (srun for Slurm, aprun for Crays, mpiexec for
// MPI, GNU parallel, or a plain fork loop); the provider submits the result.
//
// In simulation the generated command line is what travels through a
// Channel to the cluster substrate; its Fanout is what tells the simulated
// allocation how many worker processes to start per node.
package launcher

import "fmt"

// Launcher rewrites a worker command for an allocation of nodes×tasksPerNode.
type Launcher interface {
	// Wrap produces the launch command line.
	Wrap(cmd string, nodes, tasksPerNode int) string
	// Name identifies the launcher in configs.
	Name() string
	// Fanout returns how many copies of the command run per node.
	Fanout(tasksPerNode int) int
}

// Single runs exactly one copy of the command on one node — Parsl's
// SingleNodeLauncher, the default for pilot agents that manage their own
// workers (HTEX managers).
type Single struct{}

// Name implements Launcher.
func (Single) Name() string { return "single" }

// Wrap implements Launcher.
func (Single) Wrap(cmd string, _, _ int) string { return cmd }

// Fanout implements Launcher: the manager itself forks workers.
func (Single) Fanout(int) int { return 1 }

// Fork starts tasksPerNode copies per node with a shell loop — Parsl's
// simple fork launcher for workstations.
type Fork struct{}

// Name implements Launcher.
func (Fork) Name() string { return "fork" }

// Wrap implements Launcher.
func (Fork) Wrap(cmd string, _, tasksPerNode int) string {
	return fmt.Sprintf("for i in $(seq 1 %d); do ( %s ) & done; wait", tasksPerNode, cmd)
}

// Fanout implements Launcher.
func (Fork) Fanout(tasksPerNode int) int { return tasksPerNode }

// Srun uses Slurm's srun to place tasks — the Midway idiom.
type Srun struct {
	// Overrides are extra srun flags (e.g. "--exclusive").
	Overrides string
}

// Name implements Launcher.
func (Srun) Name() string { return "srun" }

// Wrap implements Launcher.
func (s Srun) Wrap(cmd string, nodes, tasksPerNode int) string {
	extra := s.Overrides
	if extra != "" {
		extra = " " + extra
	}
	return fmt.Sprintf("srun --nodes=%d --ntasks-per-node=%d%s bash -c %q",
		nodes, tasksPerNode, extra, cmd)
}

// Fanout implements Launcher.
func (Srun) Fanout(tasksPerNode int) int { return tasksPerNode }

// Aprun uses ALPS aprun — the Blue Waters idiom.
type Aprun struct {
	Overrides string
}

// Name implements Launcher.
func (Aprun) Name() string { return "aprun" }

// Wrap implements Launcher.
func (a Aprun) Wrap(cmd string, nodes, tasksPerNode int) string {
	extra := a.Overrides
	if extra != "" {
		extra = " " + extra
	}
	return fmt.Sprintf("aprun -n %d -N %d%s /bin/bash -c %q",
		nodes*tasksPerNode, tasksPerNode, extra, cmd)
}

// Fanout implements Launcher.
func (Aprun) Fanout(tasksPerNode int) int { return tasksPerNode }

// MpiExec launches via mpiexec — the generic MPI idiom EXEX deployments use.
type MpiExec struct{}

// Name implements Launcher.
func (MpiExec) Name() string { return "mpiexec" }

// Wrap implements Launcher.
func (MpiExec) Wrap(cmd string, nodes, tasksPerNode int) string {
	return fmt.Sprintf("mpiexec -n %d -ppn %d %s", nodes*tasksPerNode, tasksPerNode, cmd)
}

// Fanout implements Launcher.
func (MpiExec) Fanout(tasksPerNode int) int { return tasksPerNode }

// GnuParallel spreads copies with GNU parallel over ssh — Parsl's
// GnuParallelLauncher.
type GnuParallel struct{}

// Name implements Launcher.
func (GnuParallel) Name() string { return "gnu_parallel" }

// Wrap implements Launcher.
func (GnuParallel) Wrap(cmd string, nodes, tasksPerNode int) string {
	return fmt.Sprintf("parallel --ungroup -j %d --sshloginfile $PBS_NODEFILE %q ::: $(seq 1 %d)",
		tasksPerNode, cmd, nodes*tasksPerNode)
}

// Fanout implements Launcher.
func (GnuParallel) Fanout(tasksPerNode int) int { return tasksPerNode }

// ByName returns a launcher from its config name.
func ByName(name string) (Launcher, error) {
	switch name {
	case "single", "":
		return Single{}, nil
	case "fork":
		return Fork{}, nil
	case "srun":
		return Srun{}, nil
	case "aprun":
		return Aprun{}, nil
	case "mpiexec":
		return MpiExec{}, nil
	case "gnu_parallel":
		return GnuParallel{}, nil
	default:
		return nil, fmt.Errorf("launcher: unknown launcher %q", name)
	}
}
