package monitor

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func ev(task int64, to string, at time.Time) Event {
	return Event{Kind: KindTaskState, TaskID: task, To: to, At: at}
}

func TestStoreEmitAndQuery(t *testing.T) {
	s := NewStore()
	now := time.Now()
	s.Emit(ev(1, "pending", now))
	s.Emit(ev(1, "launched", now.Add(time.Millisecond)))
	s.Emit(Event{Kind: KindWorkerInfo, Worker: "w1", At: now})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.Events(KindTaskState); len(got) != 2 {
		t.Fatalf("task events = %d", len(got))
	}
	if got := s.Events(""); len(got) != 3 {
		t.Fatalf("all events = %d", len(got))
	}
	hist := s.TaskHistory(1)
	if len(hist) != 2 || hist[0].To != "pending" || hist[1].To != "launched" {
		t.Fatalf("history = %+v", hist)
	}
}

func TestStateCountsUsesFinalState(t *testing.T) {
	s := NewStore()
	now := time.Now()
	s.Emit(ev(1, "pending", now))
	s.Emit(ev(1, "done", now))
	s.Emit(ev(2, "pending", now))
	s.Emit(ev(3, "failed", now))
	counts := s.StateCounts()
	if counts["done"] != 1 || counts["pending"] != 1 || counts["failed"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestExecutionSpans(t *testing.T) {
	s := NewStore()
	t0 := time.Now()
	s.Emit(Event{Kind: KindTaskState, TaskID: 1, To: "running", Worker: "w1", At: t0})
	s.Emit(ev(1, "done", t0.Add(100*time.Millisecond)))
	s.Emit(Event{Kind: KindTaskState, TaskID: 2, To: "running", Worker: "w2", At: t0.Add(10 * time.Millisecond)})
	s.Emit(ev(2, "failed", t0.Add(50*time.Millisecond)))
	s.Emit(Event{Kind: KindTaskState, TaskID: 3, To: "running", At: t0}) // never finished
	spans := s.ExecutionSpans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].TaskID != 1 || spans[0].Worker != "w1" {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if d := spans[0].End.Sub(spans[0].Start); d != 100*time.Millisecond {
		t.Fatalf("span0 duration = %v", d)
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mon.jsonl")
	fs, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().Round(0)
	fs.Emit(ev(1, "done", now))
	fs.Emit(Event{Kind: KindResource, Worker: "w", Detail: "cpu=0.5", At: now})
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].TaskID != 1 || events[0].To != "done" {
		t.Fatalf("event0 = %+v", events[0])
	}
	if events[1].Detail != "cpu=0.5" {
		t.Fatalf("event1 = %+v", events[1])
	}
}

func TestFileSinkEmitAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mon.jsonl")
	fs, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = fs.Close()
	fs.Emit(ev(1, "done", time.Now())) // must not panic
	if err := fs.Close(); err != nil { // double close safe
		t.Fatal(err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewStore(), NewStore()
	m := Multi{a, b}
	m.Emit(ev(1, "done", time.Now()))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan out: %d, %d", a.Len(), b.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNopSink(t *testing.T) {
	var n Nop
	n.Emit(ev(1, "done", time.Now()))
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentEmit(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Emit(ev(int64(i), "running", time.Now()))
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 3200 {
		t.Fatalf("len = %d", s.Len())
	}
}
