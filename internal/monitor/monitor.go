// Package monitor implements Parsl's monitoring subsystem (§4.6): the DFK
// logs execution metadata and task state transitions, workers log execution
// information, and a modular sink interface lets the data land in an
// in-memory store (the analogue of the SQL database), a JSONL file, or both.
// The query API over the in-memory store is what cmd/parsl-monitor and the
// elasticity experiment's utilization computation (Fig. 6) read.
package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// EventKind classifies monitoring records.
type EventKind string

// Event kinds emitted by the DFK and executors.
const (
	KindTaskState  EventKind = "task_state"
	KindWorkerInfo EventKind = "worker_info"
	KindResource   EventKind = "resource"
	KindBlockState EventKind = "block_state"
	// KindTenant records multi-tenant admission outcomes: Detail is "shed"
	// (quota exceeded under the shed policy) or "admitted" (a submission
	// that had to wait under the block policy; Duration is the wait).
	KindTenant EventKind = "tenant"
	// KindGraph records task-graph reclamation: emitted (rate-limited) when
	// a graph shard prunes terminal records, with Detail describing the
	// shard's cumulative pruned count and the graph's live-node count.
	KindGraph EventKind = "graph"
	// KindWAL records durable-log lifecycle: a replay summary when the DFK
	// recovers a crashed log (Detail carries live/terminal/re-admitted
	// counts), compaction, and append errors.
	KindWAL EventKind = "wal"
	// KindHealth records the self-healing plane: breaker transitions (From/To
	// carry the states, Executor names the breaker), backoff-scheduled retries
	// (Detail carries the class, Duration the delay; rate-limited like graph
	// events), and poison-task quarantine (Detail carries the kill history).
	KindHealth EventKind = "health"
)

// Event is one monitoring record.
type Event struct {
	Kind     EventKind     `json:"kind"`
	At       time.Time     `json:"at"`
	TaskID   int64         `json:"task_id,omitempty"`
	App      string        `json:"app,omitempty"`
	From     string        `json:"from,omitempty"`
	To       string        `json:"to,omitempty"`
	Executor string        `json:"executor,omitempty"`
	Tenant   string        `json:"tenant,omitempty"`
	Worker   string        `json:"worker,omitempty"`
	Block    string        `json:"block,omitempty"`
	Duration time.Duration `json:"duration,omitempty"`
	Detail   string        `json:"detail,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent Emit.
type Sink interface {
	Emit(Event)
	Close() error
}

// Store is the in-memory sink with a query API — the stand-in for Parsl's
// SQL monitoring database.
type Store struct {
	mu     sync.RWMutex
	events []Event
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Emit implements Sink.
func (s *Store) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Close implements Sink.
func (s *Store) Close() error { return nil }

// Len returns the number of stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// Events returns a snapshot filtered by kind ("" = all), ordered as emitted.
func (s *Store) Events(kind EventKind) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Event
	for _, e := range s.events {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TaskHistory returns the state transitions for one task in order.
func (s *Store) TaskHistory(taskID int64) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Event
	for _, e := range s.events {
		if e.Kind == KindTaskState && e.TaskID == taskID {
			out = append(out, e)
		}
	}
	return out
}

// StateCounts tallies final states across all tasks.
func (s *Store) StateCounts() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	final := make(map[int64]string)
	for _, e := range s.events {
		if e.Kind == KindTaskState {
			final[e.TaskID] = e.To
		}
	}
	counts := make(map[string]int)
	for _, st := range final {
		counts[st]++
	}
	return counts
}

// Span is a [Start, End) interval labeled with a task and worker; used to
// compute utilization timelines.
type Span struct {
	TaskID int64
	Worker string
	Start  time.Time
	End    time.Time
}

// ExecutionSpans reconstructs per-task execution intervals from
// running→done transitions.
func (s *Store) ExecutionSpans() []Span {
	s.mu.RLock()
	defer s.mu.RUnlock()
	starts := make(map[int64]Event)
	var spans []Span
	for _, e := range s.events {
		if e.Kind != KindTaskState {
			continue
		}
		switch e.To {
		case "running":
			starts[e.TaskID] = e
		case "done", "failed":
			if b, ok := starts[e.TaskID]; ok {
				spans = append(spans, Span{TaskID: e.TaskID, Worker: b.Worker, Start: b.At, End: e.At})
				delete(starts, e.TaskID)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans
}

// FileSink appends events as JSONL — the "files" storage option of §4.6.
type FileSink struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// NewFileSink creates (or truncates) a JSONL sink at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("monitor: create sink: %w", err)
	}
	return &FileSink{f: f, enc: json.NewEncoder(f)}, nil
}

// Emit implements Sink.
func (fs *FileSink) Emit(e Event) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.enc != nil {
		_ = fs.enc.Encode(e)
	}
}

// Close implements Sink.
func (fs *FileSink) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f, fs.enc = nil, nil
	return err
}

// ReadFile loads a JSONL event file back into memory (for cmd/parsl-monitor).
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Multi fans one Emit out to several sinks.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Close implements Sink, closing every child and returning the first error.
func (m Multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nop discards all events; the DFK uses it when monitoring is disabled so
// call sites never nil-check.
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Close implements Sink.
func (Nop) Close() error { return nil }
