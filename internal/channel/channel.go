// Package channel implements Parsl's Channel abstraction (§4.2.1): how the
// runtime authenticates to and executes commands on the machine that talks
// to a provider. LocalChannel runs commands directly (the login-node case);
// SSHChannel runs them across a simulated SSH transport with a handshake and
// network latency (the remote-submission case). The provider layer submits
// its sbatch/squeue/scancel command lines through a Channel, so moving a
// program from local to remote submission is a one-line config change —
// exactly the portability §4.2 is about.
package channel

import (
	"bytes"
	"errors"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/mq"
	"repro/internal/simnet"
)

// Channel executes shell command lines "on" some resource.
type Channel interface {
	// Execute runs a command line and returns its stdout.
	Execute(cmd string) (string, error)
	// Name identifies the channel type for logging and config dumps.
	Name() string
}

// Local executes commands on the current host via /bin/sh, the way Parsl's
// LocalChannel does on a login node with direct queue access.
type Local struct {
	// Dir, when set, is the working directory for commands.
	Dir string
	// Timeout bounds command execution; zero means 60s.
	Timeout time.Duration
}

// Name implements Channel.
func (l *Local) Name() string { return "local" }

// Execute implements Channel.
func (l *Local) Execute(cmd string) (string, error) {
	timeout := l.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	c := exec.Command("/bin/sh", "-c", cmd)
	c.Dir = l.Dir
	// After Kill, don't let orphaned grandchildren holding the output pipes
	// block Wait forever.
	c.WaitDelay = 100 * time.Millisecond
	var out, errb bytes.Buffer
	c.Stdout = &out
	c.Stderr = &errb
	if err := c.Start(); err != nil {
		return "", fmt.Errorf("channel: start %q: %w", cmd, err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return out.String(), fmt.Errorf("channel: %q: %w (stderr: %s)", cmd, err, strings.TrimSpace(errb.String()))
		}
		return out.String(), nil
	case <-time.After(timeout):
		_ = c.Process.Kill()
		<-done
		return out.String(), fmt.Errorf("channel: %q timed out after %v", cmd, timeout)
	}
}

// CommandHandler interprets command lines on the far side of an SSH channel
// (the simulated login node's shell).
type CommandHandler func(cmd string) (string, error)

// SSHD is a simulated SSH daemon: it listens on a simnet transport and
// executes received command lines through a handler. Authentication is a
// shared-key handshake — enough to exercise the failure path.
type SSHD struct {
	router  *mq.Router
	key     string
	handler CommandHandler
	wg      sync.WaitGroup
	done    chan struct{}
}

// StartSSHD launches a simulated sshd at addr on tr.
func StartSSHD(tr simnet.Transport, addr, key string, handler CommandHandler) (*SSHD, error) {
	r, err := mq.NewRouter(tr, addr)
	if err != nil {
		return nil, fmt.Errorf("channel: sshd listen: %w", err)
	}
	d := &SSHD{router: r, key: key, handler: handler, done: make(chan struct{})}
	d.wg.Add(1)
	go d.serve()
	return d, nil
}

// Addr returns the daemon's listen address.
func (d *SSHD) Addr() string { return d.router.Addr() }

func (d *SSHD) serve() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case del, ok := <-d.router.Incoming():
			if !ok {
				return
			}
			d.handle(del)
		}
	}
}

func (d *SSHD) handle(del mq.Delivery) {
	if len(del.Msg) < 2 {
		return
	}
	switch string(del.Msg[0]) {
	case "AUTH":
		if string(del.Msg[1]) == d.key {
			_ = d.router.SendTo(del.From, mq.Message{[]byte("AUTH-OK")})
		} else {
			_ = d.router.SendTo(del.From, mq.Message{[]byte("AUTH-FAIL")})
			d.router.Disconnect(del.From)
		}
	case "EXEC":
		out, err := d.handler(string(del.Msg[1]))
		if err != nil {
			_ = d.router.SendTo(del.From, mq.Message{[]byte("ERR"), []byte(err.Error())})
			return
		}
		_ = d.router.SendTo(del.From, mq.Message{[]byte("OK"), []byte(out)})
	}
}

// Close stops the daemon.
func (d *SSHD) Close() error {
	select {
	case <-d.done:
		return nil
	default:
	}
	close(d.done)
	err := d.router.Close()
	d.wg.Wait()
	return err
}

// ErrAuth is returned when the SSH handshake is rejected.
var ErrAuth = errors.New("channel: ssh authentication failed")

// SSH is the client side: it connects to an SSHD, authenticates, and then
// executes commands remotely. Command round trips pay the transport's
// latency, which is how queue operations slow down under remote submission.
type SSH struct {
	mu     sync.Mutex
	dealer *mq.Dealer
	host   string
}

var sshSeq struct {
	mu sync.Mutex
	n  int64
}

// DialSSH opens an authenticated SSH channel to addr with the shared key.
func DialSSH(tr simnet.Transport, addr, key string) (*SSH, error) {
	sshSeq.mu.Lock()
	sshSeq.n++
	id := fmt.Sprintf("ssh-client-%d", sshSeq.n)
	sshSeq.mu.Unlock()

	d, err := mq.DialDealer(tr, addr, id)
	if err != nil {
		return nil, fmt.Errorf("channel: ssh dial %s: %w", addr, err)
	}
	if err := d.Send(mq.Message{[]byte("AUTH"), []byte(key)}); err != nil {
		_ = d.Close()
		return nil, err
	}
	reply, err := d.Recv()
	if err != nil {
		_ = d.Close()
		return nil, fmt.Errorf("channel: ssh handshake: %w", err)
	}
	if len(reply) == 0 || string(reply[0]) != "AUTH-OK" {
		_ = d.Close()
		return nil, ErrAuth
	}
	return &SSH{dealer: d, host: addr}, nil
}

// Name implements Channel.
func (s *SSH) Name() string { return "ssh:" + s.host }

// Execute implements Channel: one EXEC round trip per command.
func (s *SSH) Execute(cmd string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.dealer.Send(mq.Message{[]byte("EXEC"), []byte(cmd)}); err != nil {
		return "", fmt.Errorf("channel: ssh exec: %w", err)
	}
	reply, err := s.dealer.Recv()
	if err != nil {
		return "", fmt.Errorf("channel: ssh exec: %w", err)
	}
	if len(reply) < 2 {
		return "", errors.New("channel: malformed ssh reply")
	}
	if string(reply[0]) == "ERR" {
		return "", fmt.Errorf("channel: remote: %s", reply[1])
	}
	return string(reply[1]), nil
}

// Close tears the channel down.
func (s *SSH) Close() error { return s.dealer.Close() }
