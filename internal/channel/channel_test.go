package channel

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestLocalExecute(t *testing.T) {
	l := &Local{}
	out, err := l.Execute("echo hello")
	if err != nil {
		t.Skipf("/bin/sh unavailable: %v", err)
	}
	if strings.TrimSpace(out) != "hello" {
		t.Fatalf("out = %q", out)
	}
	if l.Name() != "local" {
		t.Fatalf("name = %q", l.Name())
	}
}

func TestLocalExecuteFailure(t *testing.T) {
	l := &Local{}
	if _, err := l.Execute("exit 3"); err == nil {
		t.Skip("/bin/sh unavailable or exit ignored")
	}
}

func TestLocalTimeout(t *testing.T) {
	l := &Local{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := l.Execute("sleep 5")
	if err == nil {
		t.Fatal("long command did not time out")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout not enforced promptly")
	}
}

func TestSSHRoundTrip(t *testing.T) {
	n := simnet.NewNetwork(0)
	d, err := StartSSHD(n, "login1", "secret", func(cmd string) (string, error) {
		if cmd == "squeue" {
			return "JOBID STATE\n1 R", nil
		}
		return "", errors.New("unknown command")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ch, err := DialSSH(n, "login1", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if !strings.HasPrefix(ch.Name(), "ssh:") {
		t.Fatalf("name = %q", ch.Name())
	}
	out, err := ch.Execute("squeue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "JOBID") {
		t.Fatalf("out = %q", out)
	}
	if _, err := ch.Execute("rm -rf /"); err == nil {
		t.Fatal("handler error not propagated")
	}
}

func TestSSHBadKeyRejected(t *testing.T) {
	n := simnet.NewNetwork(0)
	d, err := StartSSHD(n, "login1", "secret", func(string) (string, error) { return "", nil })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := DialSSH(n, "login1", "wrong"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestSSHDialUnknownHost(t *testing.T) {
	n := simnet.NewNetwork(0)
	if _, err := DialSSH(n, "ghost", "k"); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
}

func TestSSHLatencyAppliesToCommands(t *testing.T) {
	n := simnet.NewNetwork(10 * time.Millisecond)
	d, err := StartSSHD(n, "login1", "k", func(string) (string, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ch, err := DialSSH(n, "login1", "k")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	start := time.Now()
	if _, err := ch.Execute("sbatch job.sh"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("remote command did not pay network latency")
	}
}

func TestSSHConcurrentClients(t *testing.T) {
	n := simnet.NewNetwork(0)
	var mu sync.Mutex
	count := 0
	d, err := StartSSHD(n, "login1", "k", func(string) (string, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := DialSSH(n, "login1", "k")
			if err != nil {
				t.Error(err)
				return
			}
			defer ch.Close()
			for j := 0; j < 5; j++ {
				if _, err := ch.Execute("status"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 40 {
		t.Fatalf("handled %d commands, want 40", count)
	}
}

func TestSSHDCloseIdempotent(t *testing.T) {
	n := simnet.NewNetwork(0)
	d, err := StartSSHD(n, "login1", "k", func(string) (string, error) { return "", nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelInterfaceCompliance(t *testing.T) {
	var _ Channel = (*Local)(nil)
	var _ Channel = (*SSH)(nil)
}
