package chaos

import "testing"

// The disabled-path benchmarks pin the tentpole's hot-path promise: a fault
// point with no injector installed costs one atomic pointer load (plus the
// pass-through call for Frame) and zero allocations.

func BenchmarkDisabledExec(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Exec(PointExecRun, "w")
	}
}

func BenchmarkDisabledFrame(b *testing.B) {
	Disable()
	frame := make([]byte, 256)
	send := func([]byte) error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Frame(PointClientSend, "", frame, send)
	}
}

func BenchmarkDisabledFail(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fail(PointSubmitFail, "lane")
	}
}

// BenchmarkEnabledMiss measures an armed point whose rule does not fire —
// the steady-state cost while a chaos run is active.
func BenchmarkEnabledMiss(b *testing.B) {
	inj := New(1, Plan{{Point: PointSubmitFail, Act: ActFail, Prob: 0}})
	restore := Enable(inj)
	defer restore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fail(PointSubmitFail, "lane")
	}
}
