package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// pump drives n hits through every armed point of inj, exercising each
// point's helper the way product code does.
func pump(inj *Injector, n int) {
	restore := Enable(inj)
	defer restore()
	frame := make([]byte, 64)
	for i := 0; i < n; i++ {
		_ = Frame(PointClientSend, "", frame, func([]byte) error { return nil })
		_ = Frame(PointIxTasks, "", frame, func([]byte) error { return nil })
		func() {
			defer func() { _ = recover() }()
			Exec(PointExecRun, "pool/thread-0")
		}()
		_ = Fail(PointSubmitFail, "pool")
		Sleep(PointLaneDelay, "pool")
		_ = Kill(PointMgrKill, "mgr-1")
	}
}

func testPlan() Plan {
	return Plan{
		{Point: PointClientSend, Act: ActDrop, Prob: 0.1},
		{Point: PointClientSend, Act: ActCorrupt, Prob: 0.1},
		{Point: PointIxTasks, Act: ActDup, Prob: 0.2},
		{Point: PointExecRun, Act: ActPanic, Prob: 0.15},
		{Point: PointSubmitFail, Act: ActFail, Prob: 0.2},
		{Point: PointLaneDelay, Act: ActDelay, Prob: 0.3, Delay: time.Microsecond},
		{Point: PointMgrKill, Act: ActKill, Prob: 0.5, Max: 2},
	}
}

// TestScheduleDeterministic is the reproducibility contract: two injectors
// armed with the same seed and plan, driven through the same hits, log the
// identical event sequence.
func TestScheduleDeterministic(t *testing.T) {
	a, b := New(42, testPlan()), New(42, testPlan())
	pump(a, 500)
	pump(b, 500)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("no events fired in 500 hits — plan probabilities broken")
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", ea, eb)
	}
}

// TestScheduleSeedSensitive: different seeds give different schedules.
func TestScheduleSeedSensitive(t *testing.T) {
	a, b := New(1, testPlan()), New(2, testPlan())
	pump(a, 500)
	pump(b, 500)
	ka := make([]string, 0)
	for _, e := range a.Events() {
		ka = append(ka, e.ScheduleKey())
	}
	kb := make([]string, 0)
	for _, e := range b.Events() {
		kb = append(kb, e.ScheduleKey())
	}
	if reflect.DeepEqual(ka, kb) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestScheduleIndependentOfInterleaving: the decision for hit n at a point
// does not depend on how many hits other points have taken.
func TestScheduleIndependentOfInterleaving(t *testing.T) {
	plan := testPlan()
	a, b := New(7, plan), New(7, plan)

	ra := Enable(a)
	for i := 0; i < 200; i++ {
		_ = Fail(PointSubmitFail, "x")
	}
	ra()

	rb := Enable(b)
	for i := 0; i < 200; i++ {
		// Interleave hits at other points between the SubmitFail hits.
		_ = Kill(PointMgrKill, "mgr")
		_ = Fail(PointSubmitFail, "x")
		Sleep(PointLaneDelay, "x")
	}
	rb()

	filter := func(evs []Event) []string {
		var out []string
		for _, e := range evs {
			if e.Point == PointSubmitFail {
				out = append(out, e.ScheduleKey())
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(a.Events()), filter(b.Events())) {
		t.Fatalf("SubmitFail schedule depends on other points' traffic:\n%v\nvs\n%v",
			filter(a.Events()), filter(b.Events()))
	}
}

func TestMaxBoundsFires(t *testing.T) {
	inj := New(3, Plan{{Point: PointMgrKill, Act: ActKill, Prob: 1.0, Max: 2}})
	restore := Enable(inj)
	defer restore()
	kills := 0
	for i := 0; i < 50; i++ {
		if Kill(PointMgrKill, "mgr") {
			kills++
		}
	}
	if kills != 2 {
		t.Fatalf("kills = %d, want exactly Max=2", kills)
	}
	if inj.Fires(PointMgrKill) != 2 || inj.Hits(PointMgrKill) != 50 {
		t.Fatalf("fires=%d hits=%d", inj.Fires(PointMgrKill), inj.Hits(PointMgrKill))
	}
}

func TestMatchFilters(t *testing.T) {
	inj := New(5, Plan{{Point: PointExecRun, Act: ActStall, Prob: 1.0, Match: "pool/"}})
	restore := Enable(inj)
	defer restore()
	Exec(PointExecRun, "mgr-1/w0") // unmatched: no fire
	Exec(PointExecRun, "pool/thread-3")
	evs := inj.Events()
	if len(evs) != 1 || evs[0].Detail != "pool/thread-3" {
		t.Fatalf("events = %v, want one fire for the matched worker", evs)
	}
}

// TestMatchedHitScheduleDeterministic: a Match-scoped rule's schedule is a
// pure function of its own matched-hit sequence — unmatched traffic at the
// same point, however much and however interleaved, cannot shift which
// matched hit fires. This is what makes targeted scenarios ("kill manager
// X's 3rd dequeue") reproducible from their seed.
func TestMatchedHitScheduleDeterministic(t *testing.T) {
	plan := Plan{{Point: PointExecRun, Act: ActStall, Prob: 0.3, Match: "pool/"}}
	run := func(noise int) []string {
		inj := New(23, plan)
		restore := Enable(inj)
		defer restore()
		for i := 0; i < 100; i++ {
			for j := 0; j < noise; j++ {
				Exec(PointExecRun, "mgr-7/w0") // unmatched traffic
			}
			Exec(PointExecRun, "pool/thread-1")
		}
		var keys []string
		for _, e := range inj.Events() {
			keys = append(keys, e.ScheduleKey())
		}
		return keys
	}
	quiet, noisy := run(0), run(5)
	if len(quiet) == 0 {
		t.Fatal("no fires in 100 matched hits at Prob 0.3")
	}
	if !reflect.DeepEqual(quiet, noisy) {
		t.Fatalf("unmatched traffic shifted the matched schedule:\n%v\nvs\n%v", quiet, noisy)
	}
}

func TestFrameActions(t *testing.T) {
	mk := func(act Action) (*Injector, func()) {
		inj := New(9, Plan{{Point: PointClientSend, Act: act, Prob: 1.0, Delay: time.Microsecond}})
		return inj, Enable(inj)
	}
	frame := make([]byte, 32)
	for i := range frame {
		frame[i] = byte(i + 1)
	}

	// Drop: send never called, nil error.
	_, restore := mk(ActDrop)
	calls := 0
	if err := Frame(PointClientSend, "", frame, func([]byte) error { calls++; return nil }); err != nil || calls != 0 {
		t.Fatalf("drop: calls=%d err=%v", calls, err)
	}
	restore()

	// Dup: send called twice with identical bytes.
	_, restore = mk(ActDup)
	calls = 0
	_ = Frame(PointClientSend, "", frame, func(f []byte) error {
		calls++
		if !reflect.DeepEqual(f, frame) {
			t.Fatalf("dup mutated frame")
		}
		return nil
	})
	if calls != 2 {
		t.Fatalf("dup: calls=%d", calls)
	}
	restore()

	// Corrupt: exactly one body byte differs, caller's buffer untouched.
	_, restore = mk(ActCorrupt)
	orig := append([]byte(nil), frame...)
	var got []byte
	_ = Frame(PointClientSend, "", frame, func(f []byte) error {
		got = append([]byte(nil), f...)
		return nil
	})
	restore()
	if !reflect.DeepEqual(frame, orig) {
		t.Fatal("corrupt mutated the caller's frame")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if i < len(orig)/2 {
				t.Fatalf("corrupt touched front-half byte %d (headers live there)", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt changed %d bytes, want 1", diff)
	}

	// Truncate: half the frame.
	_, restore = mk(ActTruncate)
	_ = Frame(PointClientSend, "", frame, func(f []byte) error {
		got = append([]byte(nil), f...)
		return nil
	})
	restore()
	if len(got) != len(frame)/2 {
		t.Fatalf("truncate len=%d (orig %d)", len(got), len(frame))
	}

	// Delay: frame passes through unchanged.
	_, restore = mk(ActDelay)
	calls = 0
	_ = Frame(PointClientSend, "", frame, func(f []byte) error { calls++; return nil })
	restore()
	if calls != 1 {
		t.Fatalf("delay: calls=%d", calls)
	}
}

func TestExecPanics(t *testing.T) {
	inj := New(11, Plan{{Point: PointExecRun, Act: ActPanic, Prob: 1.0}})
	restore := Enable(inj)
	defer restore()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Exec did not panic")
		}
	}()
	Exec(PointExecRun, "w0")
}

func TestFailWrapsErrInjected(t *testing.T) {
	inj := New(13, Plan{{Point: PointSubmitFail, Act: ActFail, Prob: 1.0}})
	restore := Enable(inj)
	defer restore()
	if err := Fail(PointSubmitFail, "lane"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailClassReturnsTypedError(t *testing.T) {
	inj := New(17, Plan{{Point: PointSubmitFail, Act: ActFailClass, Class: "executor-lost", Prob: 1.0}})
	restore := Enable(inj)
	defer restore()
	err := Fail(PointSubmitFail, "lane")
	var ce *ClassError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ClassError", err)
	}
	if ce.Class != "executor-lost" {
		t.Fatalf("class = %q", ce.Class)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("ClassError does not unwrap to ErrInjected")
	}
	if !strings.Contains(ce.Error(), "[class=executor-lost]") {
		t.Fatalf("message %q missing the class marker", ce.Error())
	}
}

func TestExecFailClassReturnsTypedError(t *testing.T) {
	inj := New(19, Plan{{Point: PointExecRun, Act: ActFailClass, Class: "transient-wire", Prob: 1.0}})
	restore := Enable(inj)
	defer restore()
	err := Exec(PointExecRun, "w0")
	var ce *ClassError
	if !errors.As(err, &ce) || ce.Class != "transient-wire" {
		t.Fatalf("err = %v", err)
	}
	// Plain ActFail through Exec also surfaces as an error now.
	inj2 := New(19, Plan{{Point: PointExecRun, Act: ActFail, Prob: 1.0}})
	restore2 := Enable(inj2)
	defer restore2()
	if err := Exec(PointExecRun, "w0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("ActFail through Exec = %v", err)
	}
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	if Enabled() || Active() != nil {
		t.Fatal("injector active after Disable")
	}
	if Kill(PointMgrKill, "x") || Fail(PointSubmitFail, "x") != nil {
		t.Fatal("disabled points fired")
	}
	calls := 0
	if err := Frame(PointClientSend, "", []byte{1}, func([]byte) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatal("disabled Frame did not pass through")
	}
}

// TestDisabledZeroAlloc pins the hot-path contract: a disabled fault point
// allocates nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	Disable()
	frame := []byte{1, 2, 3}
	send := func([]byte) error { return nil }
	if n := testing.AllocsPerRun(1000, func() {
		_ = Frame(PointClientSend, "", frame, send)
		Exec(PointExecRun, "w")
		_ = Fail(PointSubmitFail, "l")
		Sleep(PointLaneDelay, "l")
		_ = Kill(PointMgrKill, "m")
	}); n != 0 {
		t.Fatalf("disabled fault points allocate %v per run", n)
	}
}

func TestEnableRestores(t *testing.T) {
	a := New(1, nil)
	ra := Enable(a)
	b := New(2, nil)
	rb := Enable(b)
	if Active() != b {
		t.Fatal("b not active")
	}
	rb()
	if Active() != a {
		t.Fatal("restore did not reinstate a")
	}
	ra()
	if Active() != nil {
		t.Fatal("restore did not clear")
	}
}

func TestEventOrderCanonical(t *testing.T) {
	inj := New(17, Plan{
		{Point: PointSubmitFail, Act: ActFail, Prob: 1.0},
		{Point: PointLaneDelay, Act: ActDelay, Prob: 1.0},
	})
	restore := Enable(inj)
	// Interleave: lane, submit, lane, submit.
	Sleep(PointLaneDelay, "a")
	_ = Fail(PointSubmitFail, "b")
	Sleep(PointLaneDelay, "c")
	_ = Fail(PointSubmitFail, "d")
	restore()
	evs := inj.Events()
	// Canonical order sorts by point name, then rule, then hit:
	// "dfk.lane" < "dfk.submit".
	want := []string{
		fmt.Sprintf("%s/r1#0 delay 0s", PointLaneDelay),
		fmt.Sprintf("%s/r1#1 delay 0s", PointLaneDelay),
		fmt.Sprintf("%s/r0#0 fail 0s", PointSubmitFail),
		fmt.Sprintf("%s/r0#1 fail 0s", PointSubmitFail),
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %v", evs)
	}
	for i := range want {
		if evs[i].ScheduleKey() != want[i] {
			t.Fatalf("event %d = %q, want %q", i, evs[i].ScheduleKey(), want[i])
		}
	}
}

// TestAfterPinsExactHit: After + Prob 1 + Max 1 fires at exactly the After-th
// matched hit — earlier hits advance the counter but never roll. This is the
// contract the WAL crash matrix leans on to stop the log at one chosen record
// boundary.
func TestAfterPinsExactHit(t *testing.T) {
	inj := New(11, Plan{{Point: PointSubmitFail, Act: ActFail, Prob: 1.0, Max: 1, After: 3}})
	restore := Enable(inj)
	defer restore()
	for i := 0; i < 10; i++ {
		err := Fail(PointSubmitFail, "lane")
		if i == 3 && err == nil {
			t.Fatalf("hit %d should have fired", i)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d fired, want only hit 3: %v", i, err)
		}
	}
	if inj.Fires(PointSubmitFail) != 1 || inj.Hits(PointSubmitFail) != 10 {
		t.Fatalf("fires=%d hits=%d", inj.Fires(PointSubmitFail), inj.Hits(PointSubmitFail))
	}
}

// TestCrashHelperActions: Crash maps ActKill to (true, nil) and ActFail to
// (false, ErrInjected), consuming exactly one schedule decision per call.
func TestCrashHelperActions(t *testing.T) {
	inj := New(13, Plan{
		{Point: PointWALAppend, Act: ActKill, Prob: 1.0, Max: 1, After: 1},
		{Point: PointWALFsync, Act: ActFail, Prob: 1.0, Max: 1},
	})
	restore := Enable(inj)
	defer restore()
	if kill, err := Crash(PointWALAppend, "submit"); kill || err != nil {
		t.Fatalf("hit 0 gated by After: kill=%v err=%v", kill, err)
	}
	if kill, err := Crash(PointWALAppend, "submit"); !kill || err != nil {
		t.Fatalf("hit 1 should kill: kill=%v err=%v", kill, err)
	}
	if kill, err := Crash(PointWALAppend, "submit"); kill || err != nil {
		t.Fatalf("Max=1 exhausted, hit 2 must be clean: kill=%v err=%v", kill, err)
	}
	kill, err := Crash(PointWALFsync, "sync")
	if kill || !errors.Is(err, ErrInjected) {
		t.Fatalf("ActFail through Crash: kill=%v err=%v", kill, err)
	}
}
