// Package chaos is the deterministic fault-injection plane. Product code is
// threaded with named fault points — wire legs wrap their frame sends in
// Frame, executors consult Exec/Kill before running a task, the dispatch
// pipeline consults Fail/Sleep — and each point is a no-op behind one atomic
// pointer load unless a test (or parsl-bench chaos) has installed an
// Injector. The disabled path allocates nothing and takes single-digit
// nanoseconds (pinned by BenchmarkDisabled*), so the points stay in
// production builds permanently.
//
// # Determinism
//
// An Injector's fault schedule is a pure function of (seed, point, rule
// index, matched-hit index): a rule's nth eligible hit rolls splitmix64 over
// those inputs, so the same seed always yields the same decision sequence
// for every rule, independent of wall-clock time, goroutine ids, unmatched
// traffic at the same point, or what other points are doing. Concurrency can
// change *how many* hits a rule receives in a given run (a retry resubmits,
// an extra frame crosses the wire), but never what decision hit n gets — so
// a failing CI seed replays the identical schedule locally, and two runs of
// one seed agree on the common prefix of every rule's event sequence.
// Events() returns the log in canonical (point, rule, hit) order for exactly
// that comparison.
//
// The active injector is process-global (fault points live in hot paths that
// cannot carry a handle), so tests that Enable one must not run in parallel
// with other chaos tests in the same package; Enable returns a restore
// function for defer.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one fault-injection site threaded through the product code.
type Point string

// The named fault points. Wire legs take drop/delay/dup/corrupt/truncate;
// kill and exec points take kill/panic/stall; the dispatch points take
// fail/delay.
const (
	// PointClientSend is the HTEX client → interchange TASKB leg.
	PointClientSend Point = "htex.client.send"
	// PointIxTasks is the interchange → manager TASKS leg.
	PointIxTasks Point = "htex.ix.tasks"
	// PointIxResults is the interchange → client RESULTS relay leg.
	PointIxResults Point = "htex.ix.results"
	// PointMgrResults is the manager → interchange RESULTS leg.
	PointMgrResults Point = "htex.mgr.results"
	// PointMgrKill abruptly kills a manager (no BYE) as it dequeues a task.
	PointMgrKill Point = "htex.mgr.kill"
	// PointIxKill abruptly kills one interchange shard (router closed, no
	// goodbye to anyone) as it processes a frame. The hit detail is the
	// shard label ("htex[2]"), so Match pins the kill to one shard and the
	// failover invariant — only that shard's outstanding set requeues — is
	// seed-reproducible.
	PointIxKill Point = "htex.ix.kill"
	// PointExecRun fires inside the shared execution kernel, immediately
	// before the app body: ActPanic raises a real panic (exercising the
	// kernel's recovery sandbox), ActStall sleeps. The hit detail is the
	// worker id ("pool/thread-0", "mgr-b0-1/w0"), so Match can target one
	// executor class.
	PointExecRun Point = "exec.run"
	// PointSubmitFail fails an attempt at the DFK lane-submission boundary,
	// exercising the retry path without any executor involvement.
	PointSubmitFail Point = "dfk.submit"
	// PointLaneDelay delays one DFK lane drain cycle.
	PointLaneDelay Point = "dfk.lane"
	// PointWALAppend fires once per durable-log record append, before the
	// record is buffered. ActKill freezes the log at exactly that record
	// boundary (records 0..hit-1 durable, hit and later lost) — combined
	// with Rule.After it pins a simulated process crash to any boundary.
	// ActFail fails the single append; ActDelay stalls it.
	PointWALAppend Point = "wal.append"
	// PointWALFsync fires before each durable-log group-commit fsync;
	// ActKill freezes the log there, ActDelay stalls the committer.
	PointWALFsync Point = "wal.fsync"
)

// Action is what a firing fault point does.
type Action uint8

// Actions. Which actions a point honors depends on the helper consulted
// there: Frame honors the wire actions, Exec honors ActPanic/ActStall,
// Kill honors ActKill, Fail honors ActFail, Sleep honors ActDelay.
const (
	ActNone     Action = iota
	ActDrop            // wire: swallow the frame, report success
	ActDelay           // wire/lane: sleep Rule.Delay, then proceed
	ActDup             // wire: send the frame twice
	ActCorrupt         // wire: flip one deterministic body byte
	ActTruncate        // wire: send only a prefix of the frame
	ActKill            // kill point: abrupt manager death
	ActPanic           // exec point: panic inside the kernel sandbox
	ActStall           // exec point: sleep Rule.Delay before the app body
	ActFail            // submit point: fail the attempt with ErrInjected
	// ActFailClass fails the attempt with a *ClassError carrying Rule.Class,
	// so a rule can inject a specific failure class (as named by
	// internal/health) at dfk.submit or exec.run and drive the
	// classification paths seed-reproducibly.
	ActFailClass
)

var actionNames = map[Action]string{
	ActNone: "none", ActDrop: "drop", ActDelay: "delay", ActDup: "dup",
	ActCorrupt: "corrupt", ActTruncate: "truncate", ActKill: "kill",
	ActPanic: "panic", ActStall: "stall", ActFail: "fail",
	ActFailClass: "fail-class",
}

// String implements fmt.Stringer.
func (a Action) String() string {
	if n, ok := actionNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// ErrInjected is the error ActFail injects (wrapped with point context), so
// tests can errors.Is for chaos-caused failures.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// ClassError is the typed failure ActFailClass injects: a fault claiming a
// specific failure class. The message embeds the class as "[class=<name>]"
// so the claim survives being flattened to a string at a remote executor
// boundary and can be re-parsed by the classifier; errors.Is(err,
// ErrInjected) still holds for chaos-wide detection.
type ClassError struct {
	Class  string
	Point  Point
	Hit    int64
	Detail string
}

// Error implements error.
func (e *ClassError) Error() string {
	return fmt.Sprintf("chaos: injected fault [class=%s] at %s hit %d (%s)", e.Class, e.Point, e.Hit, e.Detail)
}

// Unwrap marks the fault as chaos-injected.
func (e *ClassError) Unwrap() error { return ErrInjected }

// Rule arms one action at one point. A point may carry several rules (e.g. a
// wire leg with independent drop, dup, and corrupt probabilities); on each
// hit they are evaluated in plan order and the first that fires wins.
type Rule struct {
	Point Point
	Act   Action
	// Prob is the per-hit fire probability in [0, 1]. The roll is a pure
	// function of (seed, point, rule index, hit index) — see the package
	// comment.
	Prob float64
	// Delay parameterizes ActDelay/ActStall.
	Delay time.Duration
	// Max bounds total fires for this rule (0 = unlimited). Kill rules
	// should set it so a scenario cannot decapitate every manager.
	Max int
	// Class names the failure class an ActFailClass rule injects (the
	// internal/health class names: "transient-wire", "executor-lost",
	// "task-fault", "timeout", "overload"). Ignored by other actions.
	Class string
	// Match, when non-empty, restricts the rule to hits whose detail string
	// contains it (e.g. "pool/" for threadpool workers, a manager id for a
	// targeted kill). Unmatched hits do not advance this rule's schedule.
	Match string
	// After makes the rule ineligible until its matched-hit index reaches it:
	// hits 0..After-1 advance the counter but never roll. With Prob 1 and
	// Max 1 the rule fires exactly at matched hit After — how the crash
	// matrix pins a kill to one specific WAL record boundary.
	After int64
}

// Plan is an ordered rule set; order matters only among rules armed at the
// same point.
type Plan []Rule

// Event records one fired fault. Point+Rule+Hit+Act+Delay are the
// deterministic schedule; Detail (worker/manager id) is observational and
// may differ between runs of the same seed.
type Event struct {
	Point  Point
	Rule   int   // plan index of the rule that fired
	Hit    int64 // 0-based index among this rule's matched hits
	Act    Action
	Delay  time.Duration
	Detail string
}

// String renders the event; the prefix before the detail is the schedule
// entry compared across runs.
func (e Event) String() string {
	return fmt.Sprintf("%s/r%d#%d %s %v (%s)", e.Point, e.Rule, e.Hit, e.Act, e.Delay, e.Detail)
}

// ScheduleKey is the run-independent part of the event: everything but the
// observational detail.
func (e Event) ScheduleKey() string {
	return fmt.Sprintf("%s/r%d#%d %s %v", e.Point, e.Rule, e.Hit, e.Act, e.Delay)
}

// armedRule is one plan rule plus its counters. hits counts only the hits
// this rule was eligible for (Match satisfied), and the roll for matched hit
// n is a pure function of (seed, point, rule, n) — so a Match-scoped rule
// ("kill manager X", "stall only pool workers") is exactly as reproducible
// as an unscoped one: its kth matched hit always gets the same decision.
type armedRule struct {
	Rule
	idx   uint64 // position in the plan, part of the roll
	hits  atomic.Int64
	fires atomic.Int64
}

// armedPoint tracks one point's hit counter and its rules in plan order.
type armedPoint struct {
	hits  atomic.Int64
	rules []*armedRule
}

// Injector is one armed fault plan. Install it with Enable; all fault points
// consult the installed injector.
type Injector struct {
	seed   int64
	points map[Point]*armedPoint

	mu  sync.Mutex
	log []Event
}

// New arms plan under seed.
func New(seed int64, plan Plan) *Injector {
	inj := &Injector{seed: seed, points: make(map[Point]*armedPoint)}
	for i, r := range plan {
		ap := inj.points[r.Point]
		if ap == nil {
			ap = &armedPoint{}
			inj.points[r.Point] = ap
		}
		ar := &armedRule{Rule: r, idx: uint64(i)}
		ap.rules = append(ap.rules, ar)
	}
	return inj
}

// Seed returns the schedule seed.
func (inj *Injector) Seed() int64 { return inj.seed }

// Events returns the fired-fault log in canonical (point, hit) order —
// stable across runs of the same seed up to each point's hit count.
func (inj *Injector) Events() []Event {
	inj.mu.Lock()
	out := make([]Event, len(inj.log))
	copy(out, inj.log)
	inj.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Point != out[j].Point {
			return out[i].Point < out[j].Point
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Hit < out[j].Hit
	})
	return out
}

// Fires reports how many times any rule at p has fired.
func (inj *Injector) Fires(p Point) int64 {
	ap := inj.points[p]
	if ap == nil {
		return 0
	}
	var n int64
	for _, r := range ap.rules {
		n += r.fires.Load()
	}
	return n
}

// Hits reports how many times p was consulted.
func (inj *Injector) Hits(p Point) int64 {
	ap := inj.points[p]
	if ap == nil {
		return 0
	}
	return ap.hits.Load()
}

// splitmix64 is the SplitMix64 finalizer: full-avalanche mixing so that
// structured inputs (small seeds, sequential hit counters) still roll
// uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointHash folds a point name into the roll input.
func pointHash(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// roll returns the uniform [0,1) variate for (seed, point, rule, hit) — the
// entire fault schedule derives from this pure function.
func (inj *Injector) roll(p Point, rule uint64, hit int64) float64 {
	x := splitmix64(uint64(inj.seed) ^ pointHash(p) ^ splitmix64(rule^uint64(hit)<<20))
	return float64(x>>11) / (1 << 53)
}

// decide advances p's schedule by one hit and returns the fired rule, if
// any. Every matched rule's hit counter advances on every hit — not just
// until the first firing rule — so each rule's decision sequence is a pure
// function of its own matched-hit count, independent of what its siblings
// did. The first rule (in plan order) whose roll fires wins the hit.
func (inj *Injector) decide(p Point, detail string) (Action, time.Duration, int64, string) {
	ap := inj.points[p]
	if ap == nil {
		return ActNone, 0, -1, ""
	}
	ap.hits.Add(1)
	var winner *armedRule
	var winHit int64
	for _, r := range ap.rules {
		if r.Match != "" && !strings.Contains(detail, r.Match) {
			continue
		}
		n := r.hits.Add(1) - 1
		if n < r.After {
			continue
		}
		if winner != nil {
			continue
		}
		if inj.roll(p, r.idx, n) >= r.Prob {
			continue
		}
		if !r.reserveFire() {
			continue
		}
		winner, winHit = r, n
	}
	if winner == nil {
		return ActNone, 0, -1, ""
	}
	inj.record(Event{
		Point: p, Rule: int(winner.idx), Hit: winHit,
		Act: winner.Act, Delay: winner.Delay, Detail: detail,
	})
	return winner.Act, winner.Delay, winHit, winner.Class
}

// reserveFire claims one fire slot, never overshooting Max under concurrency.
func (r *armedRule) reserveFire() bool {
	if r.Max <= 0 {
		r.fires.Add(1)
		return true
	}
	for {
		cur := r.fires.Load()
		if cur >= int64(r.Max) {
			return false
		}
		if r.fires.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (inj *Injector) record(e Event) {
	inj.mu.Lock()
	inj.log = append(inj.log, e)
	inj.mu.Unlock()
}

// active is the installed injector; nil means every fault point is a no-op
// costing one atomic load.
var active atomic.Pointer[Injector]

// Enable installs inj process-wide and returns a restore function that
// reinstates the previous injector (tests defer it).
func Enable(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Disable removes the active injector.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Active returns the installed injector (nil when disabled) so harnesses can
// read its event log after a run.
func Active() *Injector { return active.Load() }

// Frame is the wire-leg fault point: product code routes a frame send
// through it. Disabled, it calls send(frame) directly. Enabled, the point's
// schedule may drop the frame (reporting success — the transport "lost" it),
// delay it (holding the caller, which on stream legs preserves frame order
// because the stream encoder lock is held), duplicate it, flip one byte of
// the body, or truncate it. Corrupt/truncated frames are sent as copies; the
// caller's buffer is never mutated. The detail string names the leg's
// endpoint identity — the interchange-shard label ("htex[2]") or manager id —
// so a Match-scoped rule addresses one shard's wire legs while the others
// run clean.
func Frame(p Point, detail string, frame []byte, send func(frame []byte) error) error {
	inj := active.Load()
	if inj == nil {
		return send(frame)
	}
	act, d, hit, _ := inj.decide(p, detail)
	switch act {
	case ActDrop:
		return nil
	case ActDelay:
		time.Sleep(d)
		return send(frame)
	case ActDup:
		if err := send(frame); err != nil {
			return err
		}
		return send(frame)
	case ActCorrupt:
		cp := append([]byte(nil), frame...)
		// Flip one deterministic byte in the frame's second half: headers
		// sit at the front, so the receiver sees a valid tag and epoch on a
		// frame whose payload is garbage — the hard case, which only a body
		// checksum can catch (header corruption is caught by trivial tag and
		// length checks).
		if n := len(cp); n > 0 {
			i := n/2 + int(uint64(hit)%uint64(n-n/2))
			cp[i] ^= 0xA5
		}
		return send(cp)
	case ActTruncate:
		return send(append([]byte(nil), frame[:len(frame)/2]...))
	default:
		return send(frame)
	}
}

// Exec is the execution-kernel fault point. ActPanic panics (the kernel's
// recover sandbox converts it to a task failure, exactly as a panicking app
// body would be); ActStall sleeps; ActFail and ActFailClass return an error
// the kernel reports as the task's failure — the class marker inside a
// ClassError survives the flattening to a remote result string.
func Exec(p Point, detail string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	act, d, hit, class := inj.decide(p, detail)
	switch act {
	case ActPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s hit %d (%s)", p, hit, detail))
	case ActStall, ActDelay:
		time.Sleep(d)
	case ActFail:
		return fmt.Errorf("%w at %s hit %d (%s)", ErrInjected, p, hit, detail)
	case ActFailClass:
		return &ClassError{Class: class, Point: p, Hit: hit, Detail: detail}
	}
	return nil
}

// Fail is the attempt-failure fault point: it returns an error wrapping
// ErrInjected when the schedule says this attempt should fail before
// reaching its executor, nil otherwise. ActFailClass fails with a typed
// *ClassError claiming the rule's failure class.
func Fail(p Point, detail string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	act, _, hit, class := inj.decide(p, detail)
	switch act {
	case ActFail:
		return fmt.Errorf("%w at %s hit %d (%s)", ErrInjected, p, hit, detail)
	case ActFailClass:
		return &ClassError{Class: class, Point: p, Hit: hit, Detail: detail}
	}
	return nil
}

// Sleep is the delay-only fault point (lane drains).
func Sleep(p Point, detail string) {
	inj := active.Load()
	if inj == nil {
		return
	}
	if act, d, _, _ := inj.decide(p, detail); act == ActDelay || act == ActStall {
		time.Sleep(d)
	}
}

// Crash is the durable-log fault point: one decision per record boundary.
// kill=true tells the caller to freeze the log as if the process died at
// this exact boundary; a non-nil error fails the single operation; ActDelay
// and ActStall sleep before proceeding.
func Crash(p Point, detail string) (kill bool, err error) {
	inj := active.Load()
	if inj == nil {
		return false, nil
	}
	act, d, hit, _ := inj.decide(p, detail)
	switch act {
	case ActKill:
		return true, nil
	case ActFail:
		return false, fmt.Errorf("%w at %s hit %d (%s)", ErrInjected, p, hit, detail)
	case ActDelay, ActStall:
		time.Sleep(d)
	}
	return false, nil
}

// Kill is the abrupt-death fault point: true means the caller should die now.
func Kill(p Point, detail string) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	act, _, _, _ := inj.decide(p, detail)
	return act == ActKill
}
