// Package sched defines the DataFlowKernel's pluggable executor-selection
// layer. The paper's DFK picks "at random" when multiple executors are
// eligible (§4.1); this package keeps that policy as the default while
// making the choice an interface fed by live load signals, so capacity-aware
// policies can route tasks toward the executor most able to absorb them.
//
// A Scheduler sees the eligible executors for one ready task (already
// filtered by the task's execution hints) and picks one. Policies must be
// safe for concurrent use: the DFK's dispatch pipeline calls Pick from its
// dispatcher goroutine, and retries may arrive from executor callbacks.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/executor"
)

// ErrNoExecutors is returned by Pick when the candidate set is empty.
var ErrNoExecutors = errors.New("sched: no executors available")

// Scheduler picks an executor for a ready task from the eligible set.
type Scheduler interface {
	// Name identifies the policy in config and monitoring output.
	Name() string
	// Pick returns one of candidates. Implementations must not retain the
	// slice. An empty candidate set returns ErrNoExecutors.
	//
	// Load-aware policies must read load via LoadOf, not by asserting
	// candidates to concrete executor types: during batched dispatch the
	// DFK hands Pick per-cycle snapshot views (Frozen) that expose the
	// load signals but not the executor's other interfaces (Scalable,
	// BatchSubmitter, ...).
	Pick(candidates []executor.Executor) (executor.Executor, error)
}

// Load is one executor's live load signal set.
type Load struct {
	Label string
	// Outstanding is submitted-but-incomplete tasks (Executor.Outstanding).
	Outstanding int
	// Workers is live capacity: Scalable.ConnectedWorkers for elastic
	// executors, a Workers() probe when exposed (threadpool), otherwise 0
	// for "unknown".
	Workers int
	// MaxQueuedPriority is the highest dispatch priority among tasks routed
	// to the executor's lane but not yet submitted — the urgency of the
	// backlog, where Outstanding is only its size. 0 when the lane is empty
	// or the source exposes no priority signal.
	MaxQueuedPriority int
	// TenantBacklog is the per-tenant composition of the lane backlog (key
	// "" is the default tenant), so strategies and operators can see *whose*
	// work is queued, not just how much. Nil when the lane is empty or the
	// source exposes no tenant signal.
	TenantBacklog map[string]int
	// Health is the executor's circuit-breaker state ("closed", "open",
	// "half-open") when the DFK's health plane is enabled; for sharded
	// executors it is the breaker state aggregated across shards ("closed",
	// "degraded", "down") sampled from the executor itself. "" when neither
	// source applies.
	Health string
	// ShardsAlive/ShardsTotal describe a sharded executor's control plane:
	// how many interchange shards are still routable out of how many were
	// configured. Both 0 for unsharded executors. A policy can read
	// ShardsAlive < ShardsTotal as "this executor is running degraded".
	ShardsAlive int
	ShardsTotal int
	// HasDigest is the locality view: it probes whether the executor's
	// fleet currently advertises a content digest (a manager behind it has
	// executed — and so holds warm — a task with those exact input bytes).
	// It is a bound method, not a copied set: digest sets can be large and
	// advertisements arrive on heartbeats, so the probe reads the live
	// aggregation. Nil when the executor exposes no digest signal.
	HasDigest func(digest string) bool
	// AdvertisedDigests counts the distinct content digests the executor's
	// managers currently advertise — 0 when there is no digest signal.
	AdvertisedDigests int
}

// PerWorker is outstanding work normalized by capacity; with unknown
// capacity the raw outstanding count is used, so a 1-worker executor and an
// unknown-capacity executor with equal backlogs compare equal.
func (l Load) PerWorker() float64 {
	if l.Workers <= 0 {
		return float64(l.Outstanding)
	}
	return float64(l.Outstanding) / float64(l.Workers)
}

// workerCounter is the non-Scalable capacity probe (threadpool.Workers).
type workerCounter interface{ Workers() int }

// queuedPriority is the lane-urgency probe (Frozen.MaxQueuedPriority).
type queuedPriority interface{ MaxQueuedPriority() int }

// shardCounter is the sharded-control-plane probe (htex.Executor.ShardCounts,
// Frozen.ShardCounts): how many interchange shards are alive out of total.
type shardCounter interface{ ShardCounts() (alive, total int) }

// shardHealth is the aggregate breaker probe a sharded executor exposes
// (htex.Executor.ShardHealth): "closed", "degraded", or "down" across its
// shards. Sampled only when nothing else filled Load.Health.
type shardHealth interface{ ShardHealth() string }

// tenantDepths is the broker-backlog probe (htex.Executor.QueueDepthByTenant,
// merged across shards): whose work waits for capacity past the submission
// boundary.
type tenantDepths interface{ QueueDepthByTenant() map[string]int }

// digestHolder is the data-locality probe (htex.Executor.HoldsDigest,
// merged across shards): does any manager behind this executor advertise
// the content digest in its heartbeat digest-set summary.
type digestHolder interface{ HoldsDigest(digest string) bool }

// digestCounter is the companion cardinality probe
// (htex.Executor.AdvertisedDigests): how many distinct digests the
// executor's fleet advertises right now.
type digestCounter interface{ AdvertisedDigests() int }

// LoadOf samples an executor's live load signals. A sharded executor reports
// the merged view — outstanding, tenant backlog, breaker state, and shard
// membership aggregated across its interchange shards — so policies see one
// logical executor regardless of how many brokers serve it.
func LoadOf(ex executor.Executor) Load {
	l := Load{Label: ex.Label(), Outstanding: ex.Outstanding()}
	switch t := ex.(type) {
	case executor.Scalable:
		l.Workers = t.ConnectedWorkers()
	case workerCounter:
		l.Workers = t.Workers()
	}
	if qp, ok := ex.(queuedPriority); ok {
		l.MaxQueuedPriority = qp.MaxQueuedPriority()
	}
	if sc, ok := ex.(shardCounter); ok {
		l.ShardsAlive, l.ShardsTotal = sc.ShardCounts()
	}
	if sh, ok := ex.(shardHealth); ok {
		l.Health = sh.ShardHealth()
	}
	if td, ok := ex.(tenantDepths); ok {
		l.TenantBacklog = td.QueueDepthByTenant()
	}
	if dh, ok := ex.(digestHolder); ok {
		l.HasDigest = dh.HoldsDigest
	}
	if dc, ok := ex.(digestCounter); ok {
		l.AdvertisedDigests = dc.AdvertisedDigests()
	}
	return l
}

// Loads samples every executor, in order.
func Loads(exs []executor.Executor) []Load {
	out := make([]Load, len(exs))
	for i, ex := range exs {
		out[i] = LoadOf(ex)
	}
	return out
}

// LoadAware is an optional marker for schedulers whose Pick reads live load
// signals from its candidates. The DFK takes a per-dispatch-cycle load
// snapshot (Frozen) only for schedulers that report true — load-blind
// policies like Random and RoundRobin skip the sampling entirely.
type LoadAware interface {
	UsesLoad() bool
}

// PriorityPicker is an optional Scheduler extension. When a scheduler
// implements it, the DFK's dispatcher calls PickPriority instead of Pick,
// passing the ready task's dispatch priority (App.Submit's WithPriority),
// so policies can route urgent work differently — e.g. keep a low-latency
// executor reserved for high-priority tasks. The same candidate-set rules
// as Pick apply.
type PriorityPicker interface {
	PickPriority(candidates []executor.Executor, priority int) (executor.Executor, error)
}

// DigestPicker is an optional Scheduler extension for data-aware policies.
// When a scheduler implements it, the DFK's dispatcher calls PickDigest
// instead of Pick, passing the ready task's input-content digest (the
// encode-once Payload.ArgsHash — the same value managers advertise from
// their heartbeat digest sets), so the policy can route the task toward an
// executor that already holds its inputs. digest may be "" when no payload
// was encoded (e.g. memoization off); implementations must then behave like
// Pick. The same candidate-set rules as Pick apply — candidates have
// already been filtered by hints and by the health plane's breakers, so a
// digest holder that is breaker-open is simply absent from the set.
type DigestPicker interface {
	PickDigest(candidates []executor.Executor, priority int, digest string) (executor.Executor, error)
}

// Frozen is a one-shot load snapshot of an executor, taken once per
// dispatch cycle. Load-aware policies read the sampled values instead of
// re-probing the live executor on every pick (probes like ConnectedWorkers
// take executor-internal locks), and Bump overlays the tasks the
// dispatcher routes during the cycle — without that overlay every pick in
// a batch reads the same stale snapshot and the whole batch sloshes onto
// whichever executor looked idle at cycle start. Not safe for concurrent
// use; a Frozen belongs to one dispatch cycle on one goroutine.
type Frozen struct {
	executor.Executor
	load  Load
	extra int
}

// Freeze samples ex's load once, overlaying extra pre-routed tasks (e.g. a
// dispatch lane's unsubmitted backlog).
func Freeze(ex executor.Executor, extra int) *Frozen {
	return &Frozen{Executor: ex, load: LoadOf(ex), extra: extra}
}

// FreezeLane is Freeze with the lane's highest queued dispatch priority
// attached, so priority-aware policies can weigh backlog urgency from the
// snapshot.
func FreezeLane(ex executor.Executor, extra, maxQueuedPriority int) *Frozen {
	f := Freeze(ex, extra)
	f.load.MaxQueuedPriority = maxQueuedPriority
	return f
}

// MaxQueuedPriority reports the sampled lane urgency (see Load).
func (f *Frozen) MaxQueuedPriority() int { return f.load.MaxQueuedPriority }

// Outstanding reports the sampled load plus the routing overlay.
func (f *Frozen) Outstanding() int { return f.load.Outstanding + f.extra }

// Workers reports the sampled capacity (interface embedding does not
// promote Scalable/Workers from the dynamic value, so LoadOf reads the
// snapshot through this probe).
func (f *Frozen) Workers() int { return f.load.Workers }

// ConnectedWorkers mirrors Workers for callers probing the Scalable-style
// capacity signal by method shape. Frozen deliberately does not implement
// the full executor.Scalable interface — a snapshot cannot scale anything.
func (f *Frozen) ConnectedWorkers() int { return f.load.Workers }

// ShardCounts reports the sampled shard membership (see Load), so LoadOf on
// a snapshot carries the control-plane view without re-probing the executor.
func (f *Frozen) ShardCounts() (alive, total int) { return f.load.ShardsAlive, f.load.ShardsTotal }

// ShardHealth reports the sampled aggregate breaker state (see Load.Health).
func (f *Frozen) ShardHealth() string { return f.load.Health }

// QueueDepthByTenant reports the sampled broker-side tenant backlog.
func (f *Frozen) QueueDepthByTenant() map[string]int { return f.load.TenantBacklog }

// HoldsDigest probes the locality view through the snapshot. The probe
// itself stays live (Load.HasDigest is a bound method, not a copy) because
// digest sets are too large to snapshot per dispatch cycle; what Frozen
// adds is that policies reach it uniformly via LoadOf on the snapshot.
func (f *Frozen) HoldsDigest(digest string) bool {
	return f.load.HasDigest != nil && f.load.HasDigest(digest)
}

// AdvertisedDigests reports the sampled digest-set cardinality (see Load).
func (f *Frozen) AdvertisedDigests() int { return f.load.AdvertisedDigests }

// Bump records one task routed to this executor in the current cycle.
func (f *Frozen) Bump() { f.extra++ }

// Random is the paper-faithful default: uniform among eligible executors
// ("an executor is picked at random", §4.1). Seedable for deterministic
// tests.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a Random scheduler; seed 0 derives a random seed.
func NewRandom(seed int64) *Random {
	var rng *rand.Rand
	if seed == 0 {
		rng = rand.New(rand.NewSource(rand.Int63()))
	} else {
		rng = rand.New(rand.NewSource(seed))
	}
	return &Random{rng: rng}
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Pick implements Scheduler.
func (r *Random) Pick(candidates []executor.Executor) (executor.Executor, error) {
	if len(candidates) == 0 {
		return nil, ErrNoExecutors
	}
	r.mu.Lock()
	i := r.rng.Intn(len(candidates))
	r.mu.Unlock()
	return candidates[i], nil
}

// RoundRobin cycles deterministically through the eligible set. Note the
// cursor is global, not per-candidate-set: with hint-pinned apps in the mix
// the rotation is fair overall but not per app.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a RoundRobin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(candidates []executor.Executor) (executor.Executor, error) {
	if len(candidates) == 0 {
		return nil, ErrNoExecutors
	}
	n := r.next.Add(1) - 1
	return candidates[n%uint64(len(candidates))], nil
}

// LeastOutstanding is the capacity-aware policy: it routes each task to the
// executor with the lowest outstanding-per-worker load, so a large idle
// pool absorbs a burst instead of the random policy's even spray. Ties are
// broken by raw outstanding count, then by candidate order (deterministic).
type LeastOutstanding struct{}

// NewLeastOutstanding returns a LeastOutstanding scheduler.
func NewLeastOutstanding() *LeastOutstanding { return &LeastOutstanding{} }

// Name implements Scheduler.
func (*LeastOutstanding) Name() string { return "least-outstanding" }

// UsesLoad implements LoadAware.
func (*LeastOutstanding) UsesLoad() bool { return true }

// Pick implements Scheduler.
func (*LeastOutstanding) Pick(candidates []executor.Executor) (executor.Executor, error) {
	if len(candidates) == 0 {
		return nil, ErrNoExecutors
	}
	best := 0
	bestLoad := LoadOf(candidates[0])
	for i := 1; i < len(candidates); i++ {
		l := LoadOf(candidates[i])
		if l.PerWorker() < bestLoad.PerWorker() ||
			(l.PerWorker() == bestLoad.PerWorker() && l.Outstanding < bestLoad.Outstanding) {
			best, bestLoad = i, l
		}
	}
	return candidates[best], nil
}

// Locality is the data-aware policy (ROADMAP item 4; the Dask/Ray
// data-locality story fused with Parsl memoization): route a task to an
// executor whose managers advertise its input digest — the bytes are
// already warm there — and fall back to least-outstanding when no
// candidate holds them. Among multiple holders the least loaded wins, so
// locality never turns into a hotspot pile-up. Holder selection respects
// the surrounding machinery by construction: breaker-open executors were
// filtered from the candidate set before Pick, an executor whose shard
// control plane is fully down is skipped here, and the capacity-veto spill
// rules inside a sharded executor still apply after the pick (routing to
// the executor is a preference, not a placement guarantee). A stale
// advertisement (the holding manager died after its last heartbeat) just
// means the task runs cold wherever the interchange places it — never an
// error.
type Locality struct {
	fallback LeastOutstanding
	hits     atomic.Int64
	misses   atomic.Int64
}

// NewLocality returns a Locality scheduler.
func NewLocality() *Locality { return &Locality{} }

// Name implements Scheduler.
func (*Locality) Name() string { return "locality" }

// UsesLoad implements LoadAware.
func (*Locality) UsesLoad() bool { return true }

// Pick implements Scheduler: without a digest there is no locality signal,
// so the fallback applies directly.
func (p *Locality) Pick(candidates []executor.Executor) (executor.Executor, error) {
	return p.fallback.Pick(candidates)
}

// PickDigest implements DigestPicker.
func (p *Locality) PickDigest(candidates []executor.Executor, _ int, digest string) (executor.Executor, error) {
	if len(candidates) == 0 {
		return nil, ErrNoExecutors
	}
	if digest != "" {
		best := -1
		var bestLoad Load
		for i, c := range candidates {
			l := LoadOf(c)
			if l.HasDigest == nil || !l.HasDigest(digest) {
				continue
			}
			// A holder whose control plane is gone can't serve the hit:
			// every shard dead, or the aggregate breaker fully open.
			if (l.ShardsTotal > 0 && l.ShardsAlive == 0) || l.Health == "down" || l.Health == "open" {
				continue
			}
			if best < 0 || l.PerWorker() < bestLoad.PerWorker() ||
				(l.PerWorker() == bestLoad.PerWorker() && l.Outstanding < bestLoad.Outstanding) {
				best, bestLoad = i, l
			}
		}
		if best >= 0 {
			p.hits.Add(1)
			return candidates[best], nil
		}
	}
	p.misses.Add(1)
	return p.fallback.Pick(candidates)
}

// Stats reports how many picks were routed by digest locality (hits) vs
// fell back to least-outstanding (misses).
func (p *Locality) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// ByName constructs the policy named in config: "random" (default when name
// is empty), "round-robin", "least-outstanding", or "locality". seed only
// affects "random".
func ByName(name string, seed int64) (Scheduler, error) {
	switch name {
	case "", "random":
		return NewRandom(seed), nil
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-outstanding":
		return NewLeastOutstanding(), nil
	case "locality":
		return NewLocality(), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}
