package sched

import (
	"testing"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/serialize"
)

// fakeExec is a stub executor with settable load signals.
type fakeExec struct {
	label       string
	outstanding int
	workers     int
}

func (f *fakeExec) Label() string                           { return f.label }
func (f *fakeExec) Start() error                            { return nil }
func (f *fakeExec) Submit(serialize.TaskMsg) *future.Future { return future.Completed(nil) }
func (f *fakeExec) Outstanding() int                        { return f.outstanding }
func (f *fakeExec) Shutdown() error                         { return nil }

// fakeScalable adds the Scalable surface over fakeExec.
type fakeScalable struct{ fakeExec }

func (f *fakeScalable) ScaleOut(int) error    { return nil }
func (f *fakeScalable) ScaleIn(int) error     { return nil }
func (f *fakeScalable) ActiveBlocks() int     { return 1 }
func (f *fakeScalable) ConnectedWorkers() int { return f.workers }

// fakePool mimics threadpool: fixed capacity via Workers(), not Scalable.
type fakePool struct{ fakeExec }

func (f *fakePool) Workers() int { return f.workers }

func execs(exs ...executor.Executor) []executor.Executor { return exs }

// priorityRouter is a PriorityPicker test double: urgent tasks go to the
// "fast" executor, everything else to the first candidate.
type priorityRouter struct{}

func (priorityRouter) Name() string { return "priority-router" }
func (priorityRouter) Pick(c []executor.Executor) (executor.Executor, error) {
	if len(c) == 0 {
		return nil, ErrNoExecutors
	}
	return c[0], nil
}
func (priorityRouter) PickPriority(c []executor.Executor, priority int) (executor.Executor, error) {
	if len(c) == 0 {
		return nil, ErrNoExecutors
	}
	if priority > 0 {
		for _, ex := range c {
			if ex.Label() == "fast" {
				return ex, nil
			}
		}
	}
	return c[0], nil
}

func TestPriorityPickerReceivesPriority(t *testing.T) {
	var s Scheduler = priorityRouter{}
	pp, ok := s.(PriorityPicker)
	if !ok {
		t.Fatal("priorityRouter must satisfy PriorityPicker")
	}
	slow, fast := &fakeExec{label: "slow"}, &fakeExec{label: "fast"}
	if ex, err := pp.PickPriority(execs(slow, fast), 5); err != nil || ex.Label() != "fast" {
		t.Fatalf("urgent pick = %v, %v; want fast", ex, err)
	}
	if ex, err := pp.PickPriority(execs(slow, fast), 0); err != nil || ex.Label() != "slow" {
		t.Fatalf("default pick = %v, %v; want slow", ex, err)
	}
}

func TestFreezeLaneCarriesQueuedPriority(t *testing.T) {
	ex := &fakeExec{label: "x", outstanding: 2}
	f := FreezeLane(ex, 3, 7)
	if f.Outstanding() != 5 {
		t.Fatalf("Outstanding = %d, want sampled+extra = 5", f.Outstanding())
	}
	if f.MaxQueuedPriority() != 7 {
		t.Fatalf("MaxQueuedPriority = %d, want 7", f.MaxQueuedPriority())
	}
	// LoadOf reads the urgency signal back off the snapshot.
	if l := LoadOf(f); l.MaxQueuedPriority != 7 {
		t.Fatalf("LoadOf(frozen).MaxQueuedPriority = %d, want 7", l.MaxQueuedPriority)
	}
	// Plain Freeze reports no urgency.
	if Freeze(ex, 1).MaxQueuedPriority() != 0 {
		t.Fatal("Freeze must default MaxQueuedPriority to 0")
	}
}

func TestRandomSeededIsDeterministic(t *testing.T) {
	a, b := &fakeExec{label: "a"}, &fakeExec{label: "b"}
	pick := func() []string {
		s := NewRandom(42)
		var out []string
		for i := 0; i < 20; i++ {
			ex, err := s.Pick(execs(a, b))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ex.Label())
		}
		return out
	}
	first, second := pick(), pick()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("seeded Random diverged at %d: %v vs %v", i, first, second)
		}
	}
}

func TestRandomCoversAllCandidates(t *testing.T) {
	a, b, c := &fakeExec{label: "a"}, &fakeExec{label: "b"}, &fakeExec{label: "c"}
	s := NewRandom(7)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		ex, err := s.Pick(execs(a, b, c))
		if err != nil {
			t.Fatal(err)
		}
		seen[ex.Label()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random never picked some executor: %v", seen)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	a, b, c := &fakeExec{label: "a"}, &fakeExec{label: "b"}, &fakeExec{label: "c"}
	s := NewRoundRobin()
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i, w := range want {
		ex, err := s.Pick(execs(a, b, c))
		if err != nil {
			t.Fatal(err)
		}
		if ex.Label() != w {
			t.Fatalf("pick %d = %s, want %s", i, ex.Label(), w)
		}
	}
}

// TestLeastOutstandingPrefersLessLoaded is the acceptance-criteria test: the
// capacity-aware policy must route to the executor with the smaller backlog.
func TestLeastOutstandingPrefersLessLoaded(t *testing.T) {
	busy := &fakeExec{label: "busy", outstanding: 100}
	idle := &fakeExec{label: "idle", outstanding: 2}
	s := NewLeastOutstanding()
	for i := 0; i < 10; i++ {
		ex, err := s.Pick(execs(busy, idle))
		if err != nil {
			t.Fatal(err)
		}
		if ex.Label() != "idle" {
			t.Fatalf("picked %s over the idle executor", ex.Label())
		}
	}
}

// With capacity known, load is normalized per worker: 64 outstanding across
// 128 connected workers is lighter than 4 outstanding on a single worker.
func TestLeastOutstandingNormalizesByWorkers(t *testing.T) {
	big := &fakeScalable{fakeExec{label: "big", outstanding: 64, workers: 128}}
	small := &fakePool{fakeExec{label: "small", outstanding: 4, workers: 1}}
	ex, err := NewLeastOutstanding().Pick(execs(small, big))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Label() != "big" {
		t.Fatalf("picked %s; want the per-worker-lighter big pool", ex.Label())
	}
}

func TestLoadOfReadsScalableWorkers(t *testing.T) {
	ex := &fakeScalable{fakeExec{label: "x", outstanding: 5, workers: 8}}
	l := LoadOf(ex)
	if l.Label != "x" || l.Outstanding != 5 || l.Workers != 8 {
		t.Fatalf("LoadOf = %+v", l)
	}
	if got := l.PerWorker(); got != 5.0/8.0 {
		t.Fatalf("PerWorker = %v", got)
	}
	loads := Loads(execs(ex, &fakeExec{label: "y", outstanding: 3}))
	if len(loads) != 2 || loads[1].Workers != 0 || loads[1].PerWorker() != 3 {
		t.Fatalf("Loads = %+v", loads)
	}
}

func TestEmptyCandidates(t *testing.T) {
	for _, s := range []Scheduler{NewRandom(1), NewRoundRobin(), NewLeastOutstanding()} {
		if _, err := s.Pick(nil); err != ErrNoExecutors {
			t.Fatalf("%s: err = %v, want ErrNoExecutors", s.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":                  "random",
		"random":            "random",
		"round-robin":       "round-robin",
		"least-outstanding": "least-outstanding",
	} {
		s, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != want {
			t.Fatalf("ByName(%q).Name() = %s", name, s.Name())
		}
	}
	if _, err := ByName("bogus", 0); err == nil {
		t.Fatal("ByName(bogus) did not error")
	}
}

func TestFrozenSnapshotAndBump(t *testing.T) {
	ex := &fakeScalable{fakeExec{label: "x", outstanding: 2, workers: 4}}
	f := Freeze(ex, 6)
	l := LoadOf(f)
	if l.Outstanding != 8 || l.Workers != 4 || l.Label != "x" {
		t.Fatalf("frozen load = %+v", l)
	}
	// The snapshot is immune to live-counter changes but tracks Bump.
	ex.outstanding = 100
	f.Bump()
	if got := LoadOf(f).Outstanding; got != 9 {
		t.Fatalf("after bump, Outstanding = %d, want 9 (snapshot + overlay)", got)
	}
	// The overlay steers LeastOutstanding away from an executor that looks
	// idle but has a cycle's worth of assignments en route.
	idle := &fakeExec{label: "idle"}
	picked, err := NewLeastOutstanding().Pick(execs(Freeze(idle, 50), &fakeExec{label: "other", outstanding: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if picked.Label() != "other" {
		t.Fatalf("picked %s despite overlay", picked.Label())
	}
}
