package sched

import (
	"errors"
	"testing"

	"repro/internal/executor"
)

// fakeHolder is a digest-advertising executor double: fakeExec's load
// signals plus the digestHolder/digestCounter probes and optional shard /
// aggregate-health state, so every branch of the Locality policy can be
// driven without an HTEX deployment.
type fakeHolder struct {
	fakeExec
	digests     map[string]bool
	health      string
	shardsAlive int
	shardsTotal int
}

func (f *fakeHolder) HoldsDigest(d string) bool       { return f.digests[d] }
func (f *fakeHolder) AdvertisedDigests() int          { return len(f.digests) }
func (f *fakeHolder) ShardCounts() (alive, total int) { return f.shardsAlive, f.shardsTotal }
func (f *fakeHolder) ShardHealth() string             { return f.health }

func holder(label string, outstanding int, digests ...string) *fakeHolder {
	f := &fakeHolder{fakeExec: fakeExec{label: label, outstanding: outstanding}}
	f.digests = make(map[string]bool, len(digests))
	for _, d := range digests {
		f.digests[d] = true
	}
	return f
}

func TestLocalityPrefersDigestHolder(t *testing.T) {
	p := NewLocality()
	// The holder is busier than the idle non-holder; locality must still
	// prefer it — that is the point of the policy.
	warm := holder("warm", 5, "d1")
	cold := holder("cold", 0)
	ex, err := p.PickDigest(execs(cold, warm), 0, "d1")
	if err != nil || ex.Label() != "warm" {
		t.Fatalf("PickDigest = %v, %v; want warm", ex, err)
	}
	if hits, misses := p.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 0", hits, misses)
	}
}

func TestLocalityLeastLoadedHolderWins(t *testing.T) {
	p := NewLocality()
	busy := holder("busy", 9, "d1")
	calm := holder("calm", 2, "d1")
	ex, err := p.PickDigest(execs(busy, calm), 0, "d1")
	if err != nil || ex.Label() != "calm" {
		t.Fatalf("PickDigest = %v, %v; want calm", ex, err)
	}
}

func TestLocalityEmptyDigestFallsBack(t *testing.T) {
	p := NewLocality()
	a := holder("a", 3, "d1")
	b := holder("b", 1)
	// No digest signal at all: behave exactly like least-outstanding.
	ex, err := p.PickDigest(execs(a, b), 0, "")
	if err != nil || ex.Label() != "b" {
		t.Fatalf("PickDigest(\"\") = %v, %v; want b", ex, err)
	}
	if hits, misses := p.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 0, 1", hits, misses)
	}
}

func TestLocalityNoHolderFallsBackWithoutStalling(t *testing.T) {
	p := NewLocality()
	a := holder("a", 3, "other")
	b := holder("b", 1)
	// Nobody advertises d9 (a manager-less or freshly started fleet): the
	// pick must resolve immediately via least-outstanding, never error or
	// stall waiting for an advertisement.
	ex, err := p.PickDigest(execs(a, b), 0, "d9")
	if err != nil || ex.Label() != "b" {
		t.Fatalf("PickDigest = %v, %v; want b", ex, err)
	}
}

func TestLocalitySkipsDeadAndOpenHolders(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*fakeHolder)
	}{
		{"health-down", func(f *fakeHolder) { f.health = "down" }},
		{"breaker-open", func(f *fakeHolder) { f.health = "open" }},
		{"all-shards-dead", func(f *fakeHolder) { f.shardsAlive, f.shardsTotal = 0, 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewLocality()
			// If the policy wrongly honored the unusable holder's
			// advertisement it would pick "bad" as a hit despite the
			// load gap; a clean skip falls back to least-outstanding,
			// which lands on "good".
			bad := holder("bad", 9, "d1")
			tc.mut(bad)
			good := holder("good", 2)
			ex, err := p.PickDigest(execs(bad, good), 0, "d1")
			if err != nil {
				t.Fatalf("PickDigest: %v", err)
			}
			// The unusable holder is skipped; with no live holder left the
			// fallback applies over the full candidate set.
			if ex.Label() != "good" {
				t.Fatalf("picked %s; want good (unusable holder skipped)", ex.Label())
			}
			if hits, misses := p.Stats(); hits != 0 || misses != 1 {
				t.Fatalf("stats = %d hits, %d misses; want 0, 1", hits, misses)
			}
		})
	}
}

func TestLocalityDegradedHolderStillServes(t *testing.T) {
	p := NewLocality()
	// One shard of two is gone — degraded, but the live shard can still
	// serve the warm hit; the policy must not treat degraded as dead.
	limp := holder("limp", 4, "d1")
	limp.shardsAlive, limp.shardsTotal = 1, 2
	limp.health = "degraded"
	fresh := holder("fresh", 0)
	ex, err := p.PickDigest(execs(limp, fresh), 0, "d1")
	if err != nil || ex.Label() != "limp" {
		t.Fatalf("PickDigest = %v, %v; want limp", ex, err)
	}
}

func TestLocalityEmptyCandidates(t *testing.T) {
	p := NewLocality()
	if _, err := p.PickDigest(nil, 0, "d1"); !errors.Is(err, ErrNoExecutors) {
		t.Fatalf("err = %v; want ErrNoExecutors", err)
	}
	if _, err := p.Pick(nil); !errors.Is(err, ErrNoExecutors) {
		t.Fatalf("Pick err = %v; want ErrNoExecutors", err)
	}
}

func TestLocalityThroughFrozenSnapshot(t *testing.T) {
	// The DFK hands load-aware policies Frozen snapshots, not raw executors;
	// the digest probe must pass through (live — HasDigest is a bound
	// method, so an advertisement arriving after Freeze is still seen).
	warm := holder("warm", 0, "d1")
	cold := holder("cold", 0)
	fwarm, fcold := Freeze(warm, 0), Freeze(cold, 0)
	if !fwarm.HoldsDigest("d1") || fcold.HoldsDigest("d1") {
		t.Fatal("Frozen digest passthrough wrong")
	}
	if got := fwarm.AdvertisedDigests(); got != 1 {
		t.Fatalf("Frozen.AdvertisedDigests = %d; want 1", got)
	}
	warm.digests["d2"] = true
	if !fwarm.HoldsDigest("d2") {
		t.Fatal("Frozen probe must stay live across advertisement updates")
	}
	p := NewLocality()
	ex, err := p.PickDigest([]executor.Executor{fcold, fwarm}, 0, "d1")
	if err != nil || ex.Label() != "warm" {
		t.Fatalf("PickDigest over Frozen = %v, %v; want warm", ex, err)
	}
}

func TestLocalityByName(t *testing.T) {
	s, err := ByName("locality", 0)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.Name() != "locality" {
		t.Fatalf("name = %q", s.Name())
	}
	if la, ok := s.(LoadAware); !ok || !la.UsesLoad() {
		t.Fatal("locality must report UsesLoad")
	}
	if _, ok := s.(DigestPicker); !ok {
		t.Fatal("locality must implement DigestPicker")
	}
}
