// Package simnet provides the network substrate the executors are written
// against. The paper's experiments ran over Infiniband (Midway, 0.07 ms RTT)
// and a Cray 3D torus (Blue Waters, 0.04 ms RTT); we cannot provision those,
// so executors take a Transport and run over either real TCP (stdlib net,
// loopback — used to validate correctness and measure genuine overheads) or
// an in-memory simulated network with configurable round-trip latency that
// stands in for the testbed interconnects.
package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport abstracts connection establishment so an executor neither knows
// nor cares whether it is running over TCP or the in-memory fabric.
type Transport interface {
	// Listen binds a listener at addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network transport backed by the standard library.
type TCP struct{}

// Listen implements Transport. An addr of "127.0.0.1:0" picks a free port;
// callers read the chosen address back from the listener.
func (TCP) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Transport.
func (TCP) Dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 10*time.Second)
}

// Network is an in-memory Transport. Each connection applies a one-way
// delay of RTT/2 (plus jitter) to every write, modeling the interconnect.
type Network struct {
	// RTT is the simulated round-trip time between any two endpoints.
	RTT time.Duration
	// Jitter, when positive, adds up to this much uniform random extra
	// one-way delay. Determinism matters for tests, so the default is 0.
	Jitter time.Duration

	mu        sync.Mutex
	listeners map[string]*listener
	seq       int64
}

// NewNetwork returns an in-memory network with the given RTT.
func NewNetwork(rtt time.Duration) *Network {
	return &Network{RTT: rtt, listeners: make(map[string]*listener)}
}

// Midway returns a network modeling the Midway cluster interconnect (0.07 ms
// average RTT, §5).
func Midway() *Network { return NewNetwork(70 * time.Microsecond) }

// BlueWaters returns a network modeling the Blue Waters 3D torus (0.04 ms
// average RTT, §5).
func BlueWaters() *Network { return NewNetwork(40 * time.Microsecond) }

// ErrAddrInUse is returned by Listen when the address is taken.
var ErrAddrInUse = errors.New("simnet: address already in use")

// ErrConnRefused is returned by Dial when nothing listens at the address.
var ErrConnRefused = errors.New("simnet: connection refused")

// Listen implements Transport.
func (n *Network) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" || addr[len(addr)-1] == ':' || addr == ":0" {
		// Auto-assign, mirroring ":0" TCP semantics.
		n.seq++
		addr = fmt.Sprintf("sim-%d", n.seq)
	}
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &listener{
		net:    n,
		addr:   addr,
		accept: make(chan net.Conn, 128),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	delay := n.RTT / 2
	client, server := newPair(addr, delay, n.Jitter)
	select {
	case l.accept <- server:
		// The listener may close concurrently, orphaning the queued conn;
		// fail the dial rather than leave a half-open connection whose
		// peer will never read.
		select {
		case <-l.done:
			_ = client.Close()
			_ = server.Close()
			return nil, fmt.Errorf("%w: %s (listener closed)", ErrConnRefused, addr)
		default:
			return client, nil
		}
	case <-l.done:
		return nil, fmt.Errorf("%w: %s (listener closed)", ErrConnRefused, addr)
	}
}

func (n *Network) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type listener struct {
	net    *Network
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.addr)
		// Close connections that were queued but never accepted, so their
		// dialers observe EOF instead of hanging.
		for {
			select {
			case c := <-l.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return simAddr(l.addr) }

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// packet is one Write's worth of bytes with its scheduled delivery time.
type packet struct {
	data []byte
	at   time.Time
}

// conn is one direction-pair endpoint of an in-memory connection.
type conn struct {
	local, remote simAddr
	delay         time.Duration
	jitter        time.Duration

	in   chan packet // written by the peer
	peer *conn

	mu        sync.Mutex
	leftover  []byte
	closed    chan struct{}
	closeOnce sync.Once

	deadlineMu   sync.Mutex
	readDeadline time.Time
}

func newPair(addr string, delay, jitter time.Duration) (client, server *conn) {
	client = &conn{
		local: "client", remote: simAddr(addr),
		delay: delay, jitter: jitter,
		in:     make(chan packet, 4096),
		closed: make(chan struct{}),
	}
	server = &conn{
		local: simAddr(addr), remote: "client",
		delay: delay, jitter: jitter,
		in:     make(chan packet, 4096),
		closed: make(chan struct{}),
	}
	client.peer = server
	server.peer = client
	return client, server
}

// Write implements net.Conn. The bytes become readable at the peer after the
// one-way delay.
func (c *conn) Write(b []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, io.ErrClosedPipe
	case <-c.peer.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	data := make([]byte, len(b))
	copy(data, b)
	p := packet{data: data, at: time.Now().Add(c.delay)}
	select {
	case c.peer.in <- p:
		return len(b), nil
	case <-c.peer.closed:
		return 0, io.ErrClosedPipe
	case <-c.closed:
		return 0, io.ErrClosedPipe
	}
}

// Read implements net.Conn, honoring read deadlines.
func (c *conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if len(c.leftover) > 0 {
		n := copy(b, c.leftover)
		c.leftover = c.leftover[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()

	var deadlineCh <-chan time.Time
	c.deadlineMu.Lock()
	dl := c.readDeadline
	c.deadlineMu.Unlock()
	var timer *time.Timer
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, timeoutError{}
		}
		timer = time.NewTimer(d)
		deadlineCh = timer.C
		defer timer.Stop()
	}

	deliver := func(p packet) (int, error) {
		// Model the wire delay: bytes are not visible before p.at.
		if wait := time.Until(p.at); wait > 0 {
			time.Sleep(wait)
		}
		n := copy(b, p.data)
		if n < len(p.data) {
			c.mu.Lock()
			c.leftover = append(c.leftover, p.data[n:]...)
			c.mu.Unlock()
		}
		return n, nil
	}
	select {
	case p := <-c.in:
		return deliver(p)
	case <-c.closed:
		return 0, io.EOF
	case <-c.peer.closed:
		// The peer hung up: drain anything already in flight, then EOF.
		select {
		case p := <-c.in:
			return deliver(p)
		default:
			return 0, io.EOF
		}
	case <-deadlineCh:
		return 0, timeoutError{}
	}
}

// Close implements net.Conn. Pending reads on both ends unblock.
func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes never block on the
// wire model beyond channel capacity).
func (c *conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.readDeadline = t
	c.deadlineMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

type timeoutError struct{}

func (timeoutError) Error() string   { return "simnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
