package simnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	n := NewNetwork(0)
	l, err := n.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		nr, err := c.Read(buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:nr]
		if _, err := c.Write([]byte("pong")); err != nil {
			t.Error(err)
		}
	}()

	c, err := n.Dial("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, []byte("ping")) || !bytes.Equal(buf[:nr], []byte("pong")) {
		t.Fatalf("round trip: %q / %q", got, buf[:nr])
	}
}

func TestDialUnknownRefused(t *testing.T) {
	n := NewNetwork(0)
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestListenDuplicateAddr(t *testing.T) {
	n := NewNetwork(0)
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoAssignAddr(t *testing.T) {
	n := NewNetwork(0)
	l1, err := n.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := n.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr().String() == l2.Addr().String() {
		t.Fatal("auto-assigned addresses collide")
	}
	if _, err := n.Dial(l1.Addr().String()); err != nil {
		t.Fatal(err)
	}
}

func TestCloseListenerRefusesDials(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	_ = l.Close()
	if _, err := n.Dial("x"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	// Address is reusable after close.
	if _, err := n.Listen("x"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestAcceptAfterCloseReturnsErrClosed(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	_ = l.Close()
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	rtt := 20 * time.Millisecond
	n := NewNetwork(rtt)
	l, _ := n.Listen("slow")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 8)
		_, _ = c.Read(buf)
		_, _ = c.Write(buf)
	}()
	c, err := n.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _ = c.Write([]byte("x"))
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < rtt {
		t.Fatalf("round trip %v < RTT %v", elapsed, rtt)
	}
}

func TestReadAfterCloseEOF(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	go func() {
		c, err := l.Accept()
		if err == nil {
			_ = c.Close()
		}
	}()
	c, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	deadline := time.Now().Add(2 * time.Second)
	_ = c.SetReadDeadline(deadline)
	if _, err := c.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestWriteAfterPeerClose(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	_ = srv.Close()
	// Eventually writes fail; the close is visible immediately here.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	go func() { _, _ = l.Accept() }()
	c, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestPartialReadsLeftover(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("x")
	go func() {
		c, err := l.Accept()
		if err == nil {
			_, _ = c.Write([]byte("abcdef"))
		}
	}()
	c, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 2)
	var got []byte
	for len(got) < 6 {
		nr, err := c.Read(small)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, small[:nr]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestAddrs(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("hub")
	if l.Addr().Network() != "sim" || l.Addr().String() != "hub" {
		t.Fatalf("addr = %v/%v", l.Addr().Network(), l.Addr())
	}
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("hub")
	if c.RemoteAddr().String() != "hub" {
		t.Fatalf("remote = %v", c.RemoteAddr())
	}
}

func TestTestbedPresets(t *testing.T) {
	if Midway().RTT != 70*time.Microsecond {
		t.Fatal("midway rtt")
	}
	if BlueWaters().RTT != 40*time.Microsecond {
		t.Fatal("blue waters rtt")
	}
}

func TestTCPTransportLoopback(t *testing.T) {
	var tr TCP
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = io.Copy(c, c) // echo
	}()
	c, err := tr.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestManyConcurrentConns(t *testing.T) {
	n := NewNetwork(0)
	l, _ := n.Listen("hub")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 16)
				nr, err := c.Read(buf)
				if err != nil {
					return
				}
				_, _ = c.Write(buf[:nr])
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("hub")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte{byte(i)}
			_, _ = c.Write(msg)
			buf := make([]byte, 1)
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Error(err)
				return
			}
			if buf[0] != byte(i) {
				t.Errorf("conn %d echo mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}
