package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewComm(-3); err == nil {
		t.Fatal("negative size accepted")
	}
	c, err := NewComm(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	c, _ := NewComm(2)
	if err := c.Send(0, 1, 7, []byte("task")); err != nil {
		t.Fatal(err)
	}
	env, err := c.Recv(1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if env.Source != 0 || env.Tag != 7 || string(env.Data) != "task" {
		t.Fatalf("env = %+v", env)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	c, _ := NewComm(2)
	done := make(chan Envelope, 1)
	go func() {
		env, err := c.Recv(1, AnySource, 0)
		if err == nil {
			done <- env
		}
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("recv returned before send")
	default:
	}
	_ = c.Send(0, 1, 0, []byte("x"))
	select {
	case env := <-done:
		if string(env.Data) != "x" {
			t.Fatalf("env = %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("recv never returned")
	}
}

func TestRecvAnySource(t *testing.T) {
	c, _ := NewComm(4)
	_ = c.Send(3, 0, 1, []byte("from-3"))
	env, err := c.Recv(0, AnySource, 1)
	if err != nil {
		t.Fatal(err)
	}
	if env.Source != 3 {
		t.Fatalf("source = %d", env.Source)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	c, _ := NewComm(2)
	_ = c.Send(0, 1, 5, []byte("five"))
	_ = c.Send(0, 1, 9, []byte("nine"))
	env, err := c.Recv(1, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Data) != "nine" {
		t.Fatalf("tag filter failed: %+v", env)
	}
	env, _ = c.Recv(1, 0, 5)
	if string(env.Data) != "five" {
		t.Fatalf("remaining message lost: %+v", env)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	c, _ := NewComm(2)
	for i := 0; i < 10; i++ {
		_ = c.Send(0, 1, 0, []byte{byte(i)})
	}
	for i := 0; i < 10; i++ {
		env, err := c.Recv(1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if env.Data[0] != byte(i) {
			t.Fatalf("order violated at %d: got %d", i, env.Data[0])
		}
	}
}

func TestRankRangeErrors(t *testing.T) {
	c, _ := NewComm(2)
	if err := c.Send(0, 5, 0, nil); !errors.Is(err, ErrRankRange) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Send(-1, 0, 0, nil); !errors.Is(err, ErrRankRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Recv(9, 0, 0); !errors.Is(err, ErrRankRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestProbe(t *testing.T) {
	c, _ := NewComm(2)
	ok, err := c.Probe(1, AnySource, 0)
	if err != nil || ok {
		t.Fatalf("probe empty = %v, %v", ok, err)
	}
	_ = c.Send(0, 1, 0, []byte("x"))
	ok, err = c.Probe(1, 0, 0)
	if err != nil || !ok {
		t.Fatalf("probe = %v, %v", ok, err)
	}
	// Probe must not consume.
	if _, err := c.Recv(1, 0, 0); err != nil {
		t.Fatal("probe consumed the message")
	}
}

func TestBcast(t *testing.T) {
	c, _ := NewComm(5)
	if err := c.Bcast(0, 3, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 5; r++ {
		env, err := c.Recv(r, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if string(env.Data) != "all" {
			t.Fatalf("rank %d got %q", r, env.Data)
		}
	}
	// Root must not receive its own broadcast.
	if ok, _ := c.Probe(0, AnySource, 3); ok {
		t.Fatal("root received its own bcast")
	}
}

func TestAbortUnblocksRecv(t *testing.T) {
	c, _ := NewComm(3)
	errs := make(chan error, 2)
	for r := 1; r <= 2; r++ {
		go func(r int) {
			_, err := c.Recv(r, AnySource, 0)
			errs <- err
		}(r)
	}
	time.Sleep(5 * time.Millisecond)
	c.Abort(2)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("err = %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("recv not unblocked by abort")
		}
	}
	if c.AbortedBy() != 2 {
		t.Fatalf("AbortedBy = %d", c.AbortedBy())
	}
}

func TestAbortFailsFutureOps(t *testing.T) {
	c, _ := NewComm(2)
	c.Abort(0)
	if err := c.Send(0, 1, 0, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("send after abort = %v", err)
	}
	if _, err := c.Probe(1, 0, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("probe after abort = %v", err)
	}
	// Double abort is a no-op and keeps the first reporter.
	c.Abort(1)
	if c.AbortedBy() != 0 {
		t.Fatalf("AbortedBy = %d", c.AbortedBy())
	}
}

func TestAbortedByAliveIsMinusOne(t *testing.T) {
	c, _ := NewComm(2)
	if c.AbortedBy() != -1 {
		t.Fatal("alive communicator reports aborter")
	}
}

func TestDataIsolation(t *testing.T) {
	c, _ := NewComm(2)
	buf := []byte("mutable")
	_ = c.Send(0, 1, 0, buf)
	buf[0] = 'X'
	env, _ := c.Recv(1, 0, 0)
	if string(env.Data) != "mutable" {
		t.Fatalf("sender mutation visible: %q", env.Data)
	}
}

func TestLatency(t *testing.T) {
	c, _ := NewComm(2)
	c.SetLatency(10 * time.Millisecond)
	start := time.Now()
	_ = c.Send(0, 1, 0, []byte("x"))
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestBarrierAllRanks(t *testing.T) {
	c, _ := NewComm(4)
	b := NewBarrier(c)
	var phase1 sync.WaitGroup
	reached := make(chan int, 4)
	for r := 0; r < 4; r++ {
		phase1.Add(1)
		go func(r int) {
			defer phase1.Done()
			if err := b.Wait(); err != nil {
				t.Error(err)
				return
			}
			reached <- r
		}(r)
	}
	phase1.Wait()
	if len(reached) != 4 {
		t.Fatalf("%d ranks passed barrier", len(reached))
	}
}

func TestBarrierAbort(t *testing.T) {
	c, _ := NewComm(2)
	b := NewBarrier(c)
	errCh := make(chan error, 1)
	go func() { errCh <- b.Wait() }()
	time.Sleep(5 * time.Millisecond)
	c.Abort(1)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("barrier never unblocked after abort")
	}
}

func TestManagerWorkerPattern(t *testing.T) {
	// The EXEX deployment shape: rank 0 distributes, ranks 1..n echo back.
	const n = 8
	c, _ := NewComm(n)
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			env, err := c.Recv(r, 0, 1)
			if err != nil {
				t.Error(err)
				return
			}
			_ = c.Send(r, 0, 2, append([]byte("done-"), env.Data...))
		}(r)
	}
	for r := 1; r < n; r++ {
		_ = c.Send(0, r, 1, []byte(fmt.Sprintf("t%d", r)))
	}
	results := map[int]bool{}
	for i := 1; i < n; i++ {
		env, err := c.Recv(0, AnySource, 2)
		if err != nil {
			t.Fatal(err)
		}
		results[env.Source] = true
	}
	wg.Wait()
	if len(results) != n-1 {
		t.Fatalf("results from %d workers, want %d", len(results), n-1)
	}
}
