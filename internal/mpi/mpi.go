// Package mpi simulates the MPI communication fabric that EXEX uses via
// mpi4py on Cray systems (§4.3.2). A Comm is a set of ranks backed by
// goroutines and channels: rank 0 conventionally acts as the manager and the
// remaining ranks as workers, mirroring EXEX's deployment.
//
// The simulation reproduces MPI's many-task drawback the paper calls out: a
// rank failure aborts the whole communicator ("job and node failures can
// result in the loss of the entire MPI application"), which is exercised by
// the EXEX fault-tolerance tests.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnySource matches any sending rank in Recv, like MPI_ANY_SOURCE.
const AnySource = -1

// ErrAborted is returned by operations on a communicator that has been
// aborted (by Abort or by a simulated rank failure).
var ErrAborted = errors.New("mpi: communicator aborted")

// ErrRankRange indicates a rank outside [0, Size).
var ErrRankRange = errors.New("mpi: rank out of range")

// Envelope is a received message with its metadata.
type Envelope struct {
	Source int
	Tag    int
	Data   []byte
}

// Comm is a simulated MPI communicator of Size ranks. Point-to-point latency
// models the optimized HPC interconnect and defaults to zero.
type Comm struct {
	size    int
	latency time.Duration

	mu      sync.Mutex
	queues  [][]Envelope // per-destination mailbox
	conds   []*sync.Cond
	aborted bool
	abortBy int
	abortMu sync.RWMutex
}

// NewComm creates a communicator with n ranks.
func NewComm(n int) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: communicator size %d", n)
	}
	c := &Comm{size: n, queues: make([][]Envelope, n), conds: make([]*sync.Cond, n)}
	for i := range c.conds {
		c.conds[i] = sync.NewCond(&c.mu)
	}
	return c, nil
}

// SetLatency sets the simulated point-to-point one-way latency.
func (c *Comm) SetLatency(d time.Duration) { c.latency = d }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Aborted reports whether the communicator has been torn down.
func (c *Comm) Aborted() bool {
	c.abortMu.RLock()
	defer c.abortMu.RUnlock()
	return c.aborted
}

// AbortedBy returns the rank that aborted the communicator (-1 if alive).
func (c *Comm) AbortedBy() int {
	c.abortMu.RLock()
	defer c.abortMu.RUnlock()
	if !c.aborted {
		return -1
	}
	return c.abortBy
}

// Abort tears down the communicator on behalf of rank. Every blocked and
// future operation returns ErrAborted — the whole "MPI job" dies, which is
// exactly the fault model §4.3.2 describes.
func (c *Comm) Abort(rank int) {
	c.abortMu.Lock()
	if c.aborted {
		c.abortMu.Unlock()
		return
	}
	c.aborted = true
	c.abortBy = rank
	c.abortMu.Unlock()

	c.mu.Lock()
	for _, cond := range c.conds {
		cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= c.size {
		return fmt.Errorf("%w: %d (size %d)", ErrRankRange, r, c.size)
	}
	return nil
}

// Send delivers data to rank dest with the given tag. It does not block on
// the receiver (buffered/eager semantics, like small-message MPI sends).
func (c *Comm) Send(src, dest, tag int, data []byte) error {
	if c.Aborted() {
		return ErrAborted
	}
	if err := c.checkRank(src); err != nil {
		return err
	}
	if err := c.checkRank(dest); err != nil {
		return err
	}
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	c.queues[dest] = append(c.queues[dest], Envelope{Source: src, Tag: tag, Data: cp})
	c.conds[dest].Broadcast()
	c.mu.Unlock()
	return nil
}

// Recv blocks until a message for rank dest matching source (or AnySource)
// and tag arrives, or the communicator aborts.
func (c *Comm) Recv(dest, source, tag int) (Envelope, error) {
	if err := c.checkRank(dest); err != nil {
		return Envelope{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.Aborted() {
			return Envelope{}, ErrAborted
		}
		for i, env := range c.queues[dest] {
			if (source == AnySource || env.Source == source) && env.Tag == tag {
				c.queues[dest] = append(c.queues[dest][:i], c.queues[dest][i+1:]...)
				return env, nil
			}
		}
		c.conds[dest].Wait()
	}
}

// Probe reports without blocking whether a matching message is queued.
func (c *Comm) Probe(dest, source, tag int) (bool, error) {
	if c.Aborted() {
		return false, ErrAborted
	}
	if err := c.checkRank(dest); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range c.queues[dest] {
		if (source == AnySource || env.Source == source) && env.Tag == tag {
			return true, nil
		}
	}
	return false, nil
}

// Bcast sends data from root to every other rank under tag.
func (c *Comm) Bcast(root, tag int, data []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		if err := c.Send(root, r, tag, data); err != nil {
			return err
		}
	}
	return nil
}

// Barrier blocks rank until all ranks have entered the barrier with the same
// generation tag. It is implemented as gather-to-0 plus broadcast.
type Barrier struct {
	comm *Comm
	mu   sync.Mutex
	gen  int
	n    int
	cond *sync.Cond
	err  error
}

// NewBarrier creates a barrier across all ranks of comm.
func NewBarrier(comm *Comm) *Barrier {
	b := &Barrier{comm: comm}
	b.cond = sync.NewCond(&b.mu)
	go b.watchAbort()
	return b
}

func (b *Barrier) watchAbort() {
	for !b.comm.Aborted() {
		time.Sleep(time.Millisecond)
	}
	b.mu.Lock()
	b.err = ErrAborted
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Wait blocks until every rank has called Wait for this generation.
func (b *Barrier) Wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	gen := b.gen
	b.n++
	if b.n == b.comm.Size() {
		b.n = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen && b.err == nil {
		b.cond.Wait()
	}
	return b.err
}
