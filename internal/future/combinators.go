package future

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Wait blocks until every future completes. It returns the first error
// encountered (in argument order), or nil when all resolved.
func Wait(futs ...*Future) error {
	var first error
	for _, f := range futs {
		if _, err := f.Result(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitCtx is Wait with context cancellation.
func WaitCtx(ctx context.Context, futs ...*Future) error {
	var first error
	for _, f := range futs {
		if _, err := f.ResultCtx(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// All returns a future that resolves to []any holding every input's value in
// order, or fails with the first error to occur (by completion time).
func All(futs ...*Future) *Future {
	out := New()
	if len(futs) == 0 {
		_ = out.SetResult([]any{})
		return out
	}
	var done atomic.Int64
	for _, f := range futs {
		f.AddDoneCallback(func(g *Future) {
			if err := g.Err(); err != nil {
				_ = out.SetError(err) // first error wins; later completions no-op
				return
			}
			if done.Add(1) == int64(len(futs)) {
				vals := make([]any, len(futs))
				for i, ff := range futs {
					vals[i] = ff.Value()
				}
				_ = out.SetResult(vals)
			}
		})
	}
	return out
}

// AsCompleted returns a channel that yields each future as it completes and
// is closed when all have completed. It mirrors
// concurrent.futures.as_completed, which Parsl programs use for
// first-finished consumption.
func AsCompleted(futs ...*Future) <-chan *Future {
	ch := make(chan *Future, len(futs))
	if len(futs) == 0 {
		close(ch)
		return ch
	}
	var done atomic.Int64
	for _, f := range futs {
		f.AddDoneCallback(func(g *Future) {
			ch <- g
			if done.Add(1) == int64(len(futs)) {
				close(ch)
			}
		})
	}
	return ch
}

// AsCompletedCtx is AsCompleted with context cancellation: the returned
// channel yields futures in completion order and is closed early — possibly
// before every future has completed — once ctx is done. The futures
// themselves are left untouched; only the iteration stops.
func AsCompletedCtx(ctx context.Context, futs ...*Future) <-chan *Future {
	out := make(chan *Future, len(futs))
	inner := AsCompleted(futs...)
	go func() {
		defer close(out)
		for {
			select {
			case <-ctx.Done():
				return
			case f, ok := <-inner:
				if !ok {
					return
				}
				out <- f // cap len(futs): never blocks
			}
		}
	}()
	return out
}

// Then returns a future that, when f resolves, resolves with fn(value); if f
// fails, the error propagates and fn is not called. If fn returns an error
// the derived future fails with it.
func Then(f *Future, fn func(any) (any, error)) *Future {
	out := New()
	f.AddDoneCallback(func(g *Future) {
		v, err := g.Result()
		if err != nil {
			_ = out.SetError(err)
			return
		}
		nv, err := fn(v)
		if err != nil {
			_ = out.SetError(err)
			return
		}
		_ = out.SetResult(nv)
	})
	return out
}

// CollectErrors waits for all futures and returns every error, annotated with
// its index, in argument order. Used by fault-tolerance tests and retried
// branches (§3.7: re-executing a failed branch must not disturb others).
func CollectErrors(futs ...*Future) []error {
	var errs []error
	for i, f := range futs {
		if _, err := f.Result(); err != nil {
			errs = append(errs, fmt.Errorf("future %d: %w", i, err))
		}
	}
	return errs
}
