package future

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewIsPending(t *testing.T) {
	f := New()
	if f.Done() {
		t.Fatal("new future reports done")
	}
	if got := f.State(); got != Pending {
		t.Fatalf("state = %v, want Pending", got)
	}
	if f.Err() != nil {
		t.Fatalf("pending Err = %v, want nil", f.Err())
	}
	if f.Value() != nil {
		t.Fatalf("pending Value = %v, want nil", f.Value())
	}
}

func TestSetResultResolves(t *testing.T) {
	f := New()
	if err := f.SetResult(42); err != nil {
		t.Fatalf("SetResult: %v", err)
	}
	if !f.Done() {
		t.Fatal("future not done after SetResult")
	}
	v, err := f.Result()
	if err != nil {
		t.Fatalf("Result err = %v", err)
	}
	if v != 42 {
		t.Fatalf("Result = %v, want 42", v)
	}
	if got := f.State(); got != Resolved {
		t.Fatalf("state = %v, want Resolved", got)
	}
}

func TestSetErrorFails(t *testing.T) {
	f := New()
	want := errors.New("boom")
	if err := f.SetError(want); err != nil {
		t.Fatalf("SetError: %v", err)
	}
	_, err := f.Result()
	if !errors.Is(err, want) {
		t.Fatalf("Result err = %v, want %v", err, want)
	}
	if got := f.State(); got != Failed {
		t.Fatalf("state = %v, want Failed", got)
	}
}

func TestSingleUpdateSemantics(t *testing.T) {
	f := New()
	if err := f.SetResult(1); err != nil {
		t.Fatalf("first SetResult: %v", err)
	}
	if err := f.SetResult(2); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("second SetResult err = %v, want ErrAlreadySet", err)
	}
	if err := f.SetError(errors.New("x")); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("SetError after SetResult err = %v, want ErrAlreadySet", err)
	}
	if v, _ := f.Result(); v != 1 {
		t.Fatalf("value overwritten: %v", v)
	}
}

func TestSetErrorNil(t *testing.T) {
	f := New()
	if err := f.SetError(nil); err != nil {
		t.Fatalf("SetError(nil): %v", err)
	}
	if _, err := f.Result(); err == nil {
		t.Fatal("SetError(nil) should still fail the future with a non-nil error")
	}
}

func TestCancel(t *testing.T) {
	f := New()
	if !f.Cancel() {
		t.Fatal("Cancel on pending future returned false")
	}
	if _, err := f.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	g := Completed(1)
	if g.Cancel() {
		t.Fatal("Cancel on resolved future returned true")
	}
}

func TestCompletedAndFromError(t *testing.T) {
	f := Completed("hi")
	if v, err := f.Result(); err != nil || v != "hi" {
		t.Fatalf("Completed: %v, %v", v, err)
	}
	e := errors.New("bad")
	g := FromError(e)
	if _, err := g.Result(); !errors.Is(err, e) {
		t.Fatalf("FromError: %v", err)
	}
}

func TestResultBlocksUntilSet(t *testing.T) {
	f := New()
	start := make(chan struct{})
	go func() {
		close(start)
		time.Sleep(10 * time.Millisecond)
		_ = f.SetResult("late")
	}()
	<-start
	v, err := f.Result()
	if err != nil || v != "late" {
		t.Fatalf("Result = %v, %v", v, err)
	}
}

func TestResultCtxCancellation(t *testing.T) {
	f := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.ResultCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Future is untouched and can still resolve.
	if err := f.SetResult(7); err != nil {
		t.Fatalf("SetResult after ctx cancel: %v", err)
	}
}

func TestResultTimeout(t *testing.T) {
	f := New()
	if _, err := f.ResultTimeout(5 * time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	_ = f.SetResult(1)
	if v, err := f.ResultTimeout(time.Second); err != nil || v != 1 {
		t.Fatalf("after set: %v, %v", v, err)
	}
}

func TestCallbackOnCompletion(t *testing.T) {
	f := New()
	var got atomic.Value
	f.AddDoneCallback(func(g *Future) { got.Store(g.Value()) })
	_ = f.SetResult("cb")
	if got.Load() != "cb" {
		t.Fatalf("callback saw %v", got.Load())
	}
}

func TestCallbackAfterCompletionRunsImmediately(t *testing.T) {
	f := Completed(3)
	ran := false
	f.AddDoneCallback(func(g *Future) { ran = true })
	if !ran {
		t.Fatal("callback on done future did not run synchronously")
	}
}

func TestCallbacksRunOnce(t *testing.T) {
	f := New()
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		f.AddDoneCallback(func(*Future) { n.Add(1) })
	}
	_ = f.SetResult(nil)
	if n.Load() != 10 {
		t.Fatalf("callbacks ran %d times, want 10", n.Load())
	}
}

func TestDoneChanSelect(t *testing.T) {
	f := New()
	select {
	case <-f.DoneChan():
		t.Fatal("done chan fired early")
	default:
	}
	_ = f.SetError(errors.New("x"))
	select {
	case <-f.DoneChan():
	case <-time.After(time.Second):
		t.Fatal("done chan never fired")
	}
}

func TestConcurrentSetExactlyOneWins(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		f := New()
		var wins atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := f.SetResult(i); err == nil {
					wins.Add(1)
				}
			}(i)
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("iter %d: %d winners, want 1", iter, wins.Load())
		}
	}
}

func TestConcurrentResultReaders(t *testing.T) {
	f := New()
	const readers = 64
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.Result()
			if err != nil || v != 99 {
				errs <- fmt.Errorf("got %v, %v", v, err)
			}
		}()
	}
	_ = f.SetResult(99)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Pending: "pending", Resolved: "resolved", Failed: "failed", State(9): "State(9)"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestFutureString(t *testing.T) {
	f := NewForTask(7)
	if s := f.String(); s != "Future{task=7 pending}" {
		t.Fatalf("pending string = %q", s)
	}
	_ = f.SetResult(1)
	if s := f.String(); s != "Future{task=7 resolved 1}" {
		t.Fatalf("resolved string = %q", s)
	}
	g := FromError(errors.New("e"))
	if s := g.String(); s != "Future{task=-1 failed e}" {
		t.Fatalf("failed string = %q", s)
	}
}

// Property: for any sequence of values, a future set with value v always
// yields exactly v, and repeated Result calls are stable.
func TestQuickSingleAssignmentStability(t *testing.T) {
	prop := func(v int64, repeats uint8) bool {
		f := New()
		if f.SetResult(v) != nil {
			return false
		}
		n := int(repeats%16) + 1
		for i := 0; i < n; i++ {
			got, err := f.Result()
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: completing futures in any order always resolves All with values
// in argument order.
func TestQuickAllOrderIndependence(t *testing.T) {
	prop := func(perm []int) bool {
		n := len(perm)%8 + 1
		futs := make([]*Future, n)
		for i := range futs {
			futs[i] = New()
		}
		all := All(futs...)
		// Complete in a permutation order derived from input.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, p := range perm {
			j := ((p % n) + n) % n
			k := i % n
			order[j], order[k] = order[k], order[j]
		}
		for _, idx := range order {
			_ = futs[idx].SetResult(idx * 10)
		}
		v, err := all.Result()
		if err != nil {
			return false
		}
		vals := v.([]any)
		for i := range vals {
			if vals[i] != i*10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
