package future

import (
	"context"
	"sync"
)

// Barrier is the additional synchronization primitive the paper lists as
// future work (§7: "additional synchronization primitives such as
// barriers"). Futures are registered with Add; Wait blocks until every
// registered future has completed. Unlike Wait/All, a Barrier is reusable
// and accepts registrations while other goroutines are already waiting,
// which suits iterative programs that widen a phase dynamically.
type Barrier struct {
	mu      sync.Mutex
	pending int
	cond    *sync.Cond
	errs    []error
}

// NewBarrier returns an empty barrier (Wait on it returns immediately).
func NewBarrier() *Barrier {
	b := &Barrier{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Add registers futures with the barrier. Completed futures are accounted
// immediately; pending ones decrement the barrier when they complete.
func (b *Barrier) Add(futs ...*Future) {
	b.mu.Lock()
	b.pending += len(futs)
	b.mu.Unlock()
	for _, f := range futs {
		f.AddDoneCallback(func(g *Future) {
			b.mu.Lock()
			b.pending--
			if err := g.Err(); err != nil {
				b.errs = append(b.errs, err)
			}
			if b.pending == 0 {
				b.cond.Broadcast()
			}
			b.mu.Unlock()
		})
	}
}

// Pending returns the number of unfinished registered futures.
func (b *Barrier) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Wait blocks until every registered future (including ones added while
// waiting) has completed, and returns the first error observed, if any.
func (b *Barrier) Wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.pending > 0 {
		b.cond.Wait()
	}
	if len(b.errs) > 0 {
		return b.errs[0]
	}
	return nil
}

// WaitCtx is Wait with cancellation. On context expiry the barrier is left
// intact and the context error is returned.
func (b *Barrier) WaitCtx(ctx context.Context) error {
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Errors returns all failures observed so far (copy).
func (b *Barrier) Errors() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]error, len(b.errs))
	copy(out, b.errs)
	return out
}
