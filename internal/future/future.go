// Package future implements the single-update future abstraction that Parsl
// (HPDC'19, §3.1.2) uses as its only synchronization primitive.
//
// A Future is created pending and transitions exactly once to either a value
// or an error; further writes are rejected. Callbacks registered with
// AddDoneCallback fire exactly once, on the goroutine that completes the
// future (or immediately, on the caller's goroutine, if the future is already
// done). The DataFlowKernel encodes task-graph edges as these callbacks,
// which is what makes dependency resolution event driven with O(n+e) cost.
package future

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrAlreadySet is returned by SetResult/SetError when the future has already
// been completed. A future is a single-update variable.
var ErrAlreadySet = errors.New("future: result already set")

// ErrCanceled is the error stored in a future completed by Cancel.
var ErrCanceled = errors.New("future: canceled")

// State describes the lifecycle of a Future.
type State int32

const (
	// Pending means no result has been set.
	Pending State = iota
	// Resolved means a value was set.
	Resolved
	// Failed means an error was set.
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Resolved:
		return "resolved"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Future is a single-assignment container for the eventual result of an
// asynchronous App invocation. The zero value is not usable; construct with
// New, Completed, or FromError.
type Future struct {
	mu        sync.Mutex
	done      chan struct{}
	state     State
	value     any
	err       error
	callbacks []func(*Future)

	// TaskID is the identifier of the task that will complete this future,
	// or a negative value when the future is not bound to a task (for
	// example, futures created by Completed).
	TaskID int64
}

// New returns a pending future not yet bound to a task.
func New() *Future {
	return &Future{done: make(chan struct{}), TaskID: -1}
}

// NewForTask returns a pending future bound to the given task id.
func NewForTask(taskID int64) *Future {
	return &Future{done: make(chan struct{}), TaskID: taskID}
}

// Completed returns a future already resolved with v.
func Completed(v any) *Future {
	f := New()
	// Cannot fail: the future is fresh.
	_ = f.SetResult(v)
	return f
}

// FromError returns a future already failed with err.
func FromError(err error) *Future {
	f := New()
	_ = f.SetError(err)
	return f
}

// SetResult completes the future with a value. It returns ErrAlreadySet if
// the future was previously completed.
func (f *Future) SetResult(v any) error {
	return f.complete(Resolved, v, nil)
}

// SetError completes the future with an error. It returns ErrAlreadySet if
// the future was previously completed.
func (f *Future) SetError(err error) error {
	if err == nil {
		err = errors.New("future: SetError called with nil error")
	}
	return f.complete(Failed, nil, err)
}

// Cancel completes a pending future with ErrCanceled. It reports whether the
// cancellation won the race (false if the future was already done).
func (f *Future) Cancel() bool {
	return f.complete(Failed, nil, ErrCanceled) == nil
}

func (f *Future) complete(s State, v any, err error) error {
	f.mu.Lock()
	if f.state != Pending {
		f.mu.Unlock()
		return ErrAlreadySet
	}
	f.state = s
	f.value = v
	f.err = err
	cbs := f.callbacks
	f.callbacks = nil
	close(f.done)
	f.mu.Unlock()
	for _, cb := range cbs {
		cb(f)
	}
	return nil
}

// Done reports, without blocking, whether the future has completed. This is
// the analogue of Parsl's future.done().
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// DoneChan returns a channel closed when the future completes, so futures can
// participate in select statements.
func (f *Future) DoneChan() <-chan struct{} { return f.done }

// State returns the current lifecycle state.
func (f *Future) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// Result blocks until the future completes and returns its value or error.
// This is the analogue of Parsl's future.result().
func (f *Future) Result() (any, error) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value, f.err
}

// ResultCtx is Result with context cancellation. If ctx expires first, the
// future is left untouched and the context error is returned.
func (f *Future) ResultCtx(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ResultTimeout is Result bounded by a timeout.
func (f *Future) ResultTimeout(d time.Duration) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return f.ResultCtx(ctx)
}

// Err returns the future's error without blocking. It returns nil when the
// future is pending or resolved.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Value returns the future's value without blocking (nil while pending).
func (f *Future) Value() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value
}

// AddDoneCallback registers cb to run when the future completes. If the
// future is already done, cb runs synchronously before AddDoneCallback
// returns. Callbacks must not block: the DataFlowKernel relies on them for
// edge triggering and a blocking callback stalls the completing goroutine.
func (f *Future) AddDoneCallback(cb func(*Future)) {
	f.mu.Lock()
	if f.state == Pending {
		f.callbacks = append(f.callbacks, cb)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	cb(f)
}

// String implements fmt.Stringer for debugging and monitoring output.
func (f *Future) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch f.state {
	case Pending:
		return fmt.Sprintf("Future{task=%d pending}", f.TaskID)
	case Resolved:
		return fmt.Sprintf("Future{task=%d resolved %v}", f.TaskID, f.value)
	default:
		return fmt.Sprintf("Future{task=%d failed %v}", f.TaskID, f.err)
	}
}
