// Package future implements the single-update future abstraction that Parsl
// (HPDC'19, §3.1.2) uses as its only synchronization primitive.
//
// A Future is created pending and transitions exactly once to either a value
// or an error; further writes are rejected. Callbacks registered with
// AddDoneCallback fire exactly once, on the goroutine that completes the
// future (or immediately, on the caller's goroutine, if the future is already
// done). The DataFlowKernel encodes task-graph edges as these callbacks,
// which is what makes dependency resolution event driven with O(n+e) cost.
//
// The struct is tuned for the million-task hot path: the done channel is
// allocated lazily (only futures somebody actually selects or blocks on pay
// for it), the first callback occupies an inline slot (a task with one
// dependent never grows a slice), and the DoneHook interface lets pipeline
// stages embed their completion handling in a struct they already allocate
// instead of capturing a closure per task.
package future

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAlreadySet is returned by SetResult/SetError when the future has already
// been completed. A future is a single-update variable.
var ErrAlreadySet = errors.New("future: result already set")

// ErrCanceled is the error stored in a future completed by Cancel.
var ErrCanceled = errors.New("future: canceled")

// State describes the lifecycle of a Future.
type State int32

const (
	// Pending means no result has been set.
	Pending State = iota
	// Resolved means a value was set.
	Resolved
	// Failed means an error was set.
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Resolved:
		return "resolved"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// DoneHook is the allocation-free alternative to AddDoneCallback: a value
// that already exists (a dispatch-pipeline attempt record, an executor relay)
// implements FutureDone and registers itself once with SetDoneHook, so
// completion notification costs no closure. The hook fires on the completing
// goroutine, before any AddDoneCallback callbacks, under the same must-not-
// block contract.
type DoneHook interface {
	FutureDone(*Future)
}

// closedChan is the shared pre-closed channel handed out by DoneChan on
// futures that completed before anyone asked for a channel.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Future is a single-assignment container for the eventual result of an
// asynchronous App invocation. The zero value is a pending future with
// TaskID 0; construct with New, NewForTask, Completed, or FromError when a
// task binding (or an immediate result) is needed.
type Future struct {
	mu sync.Mutex
	// state is written under mu but read lock-free (Done, State): the
	// atomic store in complete is a release paired with the acquire load,
	// so an observer of a terminal state also observes value/err.
	state atomic.Int32
	// done is created lazily, by the first DoneChan caller (or blocking
	// waiter) that finds the future still pending. Futures consumed purely
	// through callbacks/hooks — the dispatch pipeline's common case — never
	// allocate it.
	done  chan struct{}
	value any
	err   error
	// hook is the single embedded-completion slot (SetDoneHook); cb0 the
	// inline first callback; callbacks the overflow for fan-out edges.
	hook      DoneHook
	cb0       func(*Future)
	callbacks []func(*Future)

	// TaskID is the identifier of the task that will complete this future,
	// or a negative value when the future is not bound to a task (for
	// example, futures created by Completed).
	TaskID int64
}

// New returns a pending future not yet bound to a task.
func New() *Future {
	return &Future{TaskID: -1}
}

// NewForTask returns a pending future bound to the given task id.
func NewForTask(taskID int64) *Future {
	return &Future{TaskID: taskID}
}

// Completed returns a future already resolved with v.
func Completed(v any) *Future {
	f := New()
	// Cannot fail: the future is fresh.
	_ = f.SetResult(v)
	return f
}

// FromError returns a future already failed with err.
func FromError(err error) *Future {
	f := New()
	_ = f.SetError(err)
	return f
}

// SetResult completes the future with a value. It returns ErrAlreadySet if
// the future was previously completed.
func (f *Future) SetResult(v any) error {
	return f.complete(Resolved, v, nil)
}

// SetError completes the future with an error. It returns ErrAlreadySet if
// the future was previously completed.
func (f *Future) SetError(err error) error {
	if err == nil {
		err = errors.New("future: SetError called with nil error")
	}
	return f.complete(Failed, nil, err)
}

// Cancel completes a pending future with ErrCanceled. It reports whether the
// cancellation won the race (false if the future was already done).
func (f *Future) Cancel() bool {
	return f.complete(Failed, nil, ErrCanceled) == nil
}

func (f *Future) complete(s State, v any, err error) error {
	f.mu.Lock()
	if State(f.state.Load()) != Pending {
		f.mu.Unlock()
		return ErrAlreadySet
	}
	f.value = v
	f.err = err
	f.state.Store(int32(s)) // release: pairs with lock-free Done/State loads
	if f.done != nil {
		close(f.done)
	}
	hook := f.hook
	cb0 := f.cb0
	cbs := f.callbacks
	f.hook, f.cb0, f.callbacks = nil, nil, nil
	f.mu.Unlock()
	if hook != nil {
		hook.FutureDone(f)
	}
	if cb0 != nil {
		cb0(f)
	}
	for _, cb := range cbs {
		cb(f)
	}
	return nil
}

// Done reports, without blocking (and without locking), whether the future
// has completed. This is the analogue of Parsl's future.done().
func (f *Future) Done() bool {
	return State(f.state.Load()) != Pending
}

// DoneChan returns a channel closed when the future completes, so futures can
// participate in select statements. The channel is created on first demand;
// an already-done future returns a shared pre-closed channel.
func (f *Future) DoneChan() <-chan struct{} {
	f.mu.Lock()
	if State(f.state.Load()) != Pending {
		f.mu.Unlock()
		return closedChan
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	ch := f.done
	f.mu.Unlock()
	return ch
}

// State returns the current lifecycle state.
func (f *Future) State() State {
	return State(f.state.Load())
}

// Result blocks until the future completes and returns its value or error.
// This is the analogue of Parsl's future.result().
func (f *Future) Result() (any, error) {
	if !f.Done() {
		<-f.DoneChan()
	}
	// The acquire load in Done/DoneChan ordered value/err; take the lock
	// anyway to keep the race detector's view simple and the cost is one
	// uncontended lock on a settled future.
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value, f.err
}

// ResultCtx is Result with context cancellation. If ctx expires first, the
// future is left untouched and the context error is returned.
func (f *Future) ResultCtx(ctx context.Context) (any, error) {
	select {
	case <-f.DoneChan():
		return f.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ResultTimeout is Result bounded by a timeout.
func (f *Future) ResultTimeout(d time.Duration) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return f.ResultCtx(ctx)
}

// Err returns the future's error without blocking. It returns nil when the
// future is pending or resolved.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Value returns the future's value without blocking (nil while pending).
func (f *Future) Value() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value
}

// AddDoneCallback registers cb to run when the future completes. If the
// future is already done, cb runs synchronously before AddDoneCallback
// returns. Callbacks must not block: the DataFlowKernel relies on them for
// edge triggering and a blocking callback stalls the completing goroutine.
func (f *Future) AddDoneCallback(cb func(*Future)) {
	f.mu.Lock()
	if State(f.state.Load()) == Pending {
		if f.cb0 == nil {
			f.cb0 = cb
		} else {
			f.callbacks = append(f.callbacks, cb)
		}
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	cb(f)
}

// SetDoneHook registers h to be notified on completion, firing before any
// AddDoneCallback callbacks. One hook per future (last registration wins);
// if the future is already done, h fires synchronously before SetDoneHook
// returns. Same must-not-block contract as callbacks.
func (f *Future) SetDoneHook(h DoneHook) {
	f.mu.Lock()
	if State(f.state.Load()) == Pending {
		f.hook = h
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	h.FutureDone(f)
}

// String implements fmt.Stringer for debugging and monitoring output.
func (f *Future) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch State(f.state.Load()) {
	case Pending:
		return fmt.Sprintf("Future{task=%d pending}", f.TaskID)
	case Resolved:
		return fmt.Sprintf("Future{task=%d resolved %v}", f.TaskID, f.value)
	default:
		return fmt.Sprintf("Future{task=%d failed %v}", f.TaskID, f.err)
	}
}
