package future

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWaitAllResolved(t *testing.T) {
	a, b, c := Completed(1), Completed(2), Completed(3)
	if err := Wait(a, b, c); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestWaitFirstErrorInOrder(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	a := FromError(e1)
	b := FromError(e2)
	if err := Wait(a, b); !errors.Is(err, e1) {
		t.Fatalf("err = %v, want first in argument order", err)
	}
}

func TestWaitEmpty(t *testing.T) {
	if err := Wait(); err != nil {
		t.Fatalf("Wait() = %v", err)
	}
}

func TestWaitCtxCancel(t *testing.T) {
	f := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := WaitCtx(ctx, f); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestAllValuesInOrder(t *testing.T) {
	futs := make([]*Future, 5)
	for i := range futs {
		futs[i] = New()
	}
	all := All(futs...)
	// Complete in reverse order.
	for i := len(futs) - 1; i >= 0; i-- {
		_ = futs[i].SetResult(i)
	}
	v, err := all.Result()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	vals := v.([]any)
	for i := range vals {
		if vals[i] != i {
			t.Fatalf("vals[%d] = %v", i, vals[i])
		}
	}
}

func TestAllPropagatesError(t *testing.T) {
	a, b := New(), New()
	all := All(a, b)
	boom := errors.New("boom")
	_ = a.SetError(boom)
	if _, err := all.Result(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	_ = b.SetResult(1) // late completion must not panic or overwrite
	if _, err := all.Result(); !errors.Is(err, boom) {
		t.Fatalf("error overwritten: %v", err)
	}
}

func TestAllEmpty(t *testing.T) {
	v, err := All().Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.([]any)) != 0 {
		t.Fatalf("All() = %v", v)
	}
}

func TestAsCompletedYieldsAll(t *testing.T) {
	futs := make([]*Future, 8)
	for i := range futs {
		futs[i] = New()
	}
	ch := AsCompleted(futs...)
	var wg sync.WaitGroup
	for i := range futs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = futs[i].SetResult(i)
		}(i)
	}
	seen := 0
	for range ch {
		seen++
	}
	wg.Wait()
	if seen != len(futs) {
		t.Fatalf("saw %d completions, want %d", seen, len(futs))
	}
}

func TestAsCompletedOrderIsCompletionOrder(t *testing.T) {
	a, b := New(), New()
	ch := AsCompleted(a, b)
	_ = b.SetResult("b")
	first := <-ch
	if first.Value() != "b" {
		t.Fatalf("first completed = %v, want b", first.Value())
	}
	_ = a.SetResult("a")
	second := <-ch
	if second.Value() != "a" {
		t.Fatalf("second = %v", second.Value())
	}
	if _, open := <-ch; open {
		t.Fatal("channel not closed after all futures")
	}
}

func TestAsCompletedCtxYieldsAllWhenUncanceled(t *testing.T) {
	futs := []*Future{New(), New(), New()}
	for i, f := range futs {
		_ = f.SetResult(i)
	}
	ch := AsCompletedCtx(context.Background(), futs...)
	n := 0
	for range ch {
		n++
	}
	if n != len(futs) {
		t.Fatalf("yielded %d futures, want %d", n, len(futs))
	}
}

func TestAsCompletedCtxStopsOnCancel(t *testing.T) {
	done, stuck := New(), New()
	_ = done.SetResult("done")
	ctx, cancel := context.WithCancel(context.Background())
	ch := AsCompletedCtx(ctx, done, stuck)
	if f := <-ch; f != done {
		t.Fatalf("first yield = %v, want the completed future", f)
	}
	cancel() // stuck never completes; the channel must close anyway
	for f := range ch {
		if f == stuck {
			t.Fatal("yielded a future that never completed")
		}
	}
	if stuck.Done() {
		t.Fatal("cancellation must not touch the futures themselves")
	}
}

func TestWaitCtxFirstErrorWhenNotCanceled(t *testing.T) {
	ok, bad := New(), New()
	_ = ok.SetResult(1)
	wantErr := errors.New("boom")
	_ = bad.SetError(wantErr)
	if err := WaitCtx(context.Background(), ok, bad); !errors.Is(err, wantErr) {
		t.Fatalf("WaitCtx = %v, want %v", err, wantErr)
	}
}

func TestAsCompletedEmpty(t *testing.T) {
	ch := AsCompleted()
	if _, open := <-ch; open {
		t.Fatal("empty AsCompleted channel should be closed")
	}
}

func TestThenChains(t *testing.T) {
	f := New()
	g := Then(f, func(v any) (any, error) { return v.(int) * 2, nil })
	h := Then(g, func(v any) (any, error) { return v.(int) + 1, nil })
	_ = f.SetResult(10)
	v, err := h.Result()
	if err != nil || v != 21 {
		t.Fatalf("chained = %v, %v", v, err)
	}
}

func TestThenErrorShortCircuits(t *testing.T) {
	f := New()
	called := false
	g := Then(f, func(v any) (any, error) { called = true; return v, nil })
	boom := errors.New("boom")
	_ = f.SetError(boom)
	if _, err := g.Result(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if called {
		t.Fatal("fn called despite upstream error")
	}
}

func TestThenFnError(t *testing.T) {
	f := Completed(1)
	bad := errors.New("fn failed")
	g := Then(f, func(any) (any, error) { return nil, bad })
	if _, err := g.Result(); !errors.Is(err, bad) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectErrors(t *testing.T) {
	a := Completed(1)
	b := FromError(errors.New("x"))
	c := FromError(errors.New("y"))
	errs := CollectErrors(a, b, c)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2: %v", len(errs), errs)
	}
}
