package future

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBarrierEmptyWaitReturns(t *testing.T) {
	b := NewBarrier()
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierWaitsForAll(t *testing.T) {
	b := NewBarrier()
	futs := make([]*Future, 5)
	for i := range futs {
		futs[i] = New()
	}
	b.Add(futs...)
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	for i, f := range futs {
		select {
		case <-done:
			t.Fatalf("barrier released after %d of %d futures", i, len(futs))
		default:
		}
		_ = f.SetResult(i)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("barrier never released")
	}
}

func TestBarrierReportsErrors(t *testing.T) {
	b := NewBarrier()
	ok, bad := New(), New()
	b.Add(ok, bad)
	boom := errors.New("boom")
	_ = ok.SetResult(1)
	_ = bad.SetError(boom)
	if err := b.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(b.Errors()) != 1 {
		t.Fatalf("errors = %v", b.Errors())
	}
}

func TestBarrierAcceptsCompletedFutures(t *testing.T) {
	b := NewBarrier()
	b.Add(Completed(1), Completed(2))
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d", b.Pending())
	}
}

func TestBarrierDynamicAddWhileWaiting(t *testing.T) {
	b := NewBarrier()
	first := New()
	b.Add(first)
	released := make(chan error, 1)
	go func() { released <- b.Wait() }()

	// Widen the phase while a waiter is blocked.
	second := New()
	b.Add(second)
	_ = first.SetResult(nil)
	select {
	case <-released:
		t.Fatal("barrier released with second future pending")
	case <-time.After(20 * time.Millisecond):
	}
	_ = second.SetResult(nil)
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("never released")
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	b := NewBarrier()
	for phase := 0; phase < 3; phase++ {
		f := New()
		b.Add(f)
		_ = f.SetResult(phase)
		if err := b.Wait(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
	}
}

func TestBarrierWaitCtx(t *testing.T) {
	b := NewBarrier()
	b.Add(New()) // never completes
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if b.Pending() != 1 {
		t.Fatal("barrier state corrupted by ctx expiry")
	}
}

func TestBarrierManyWaiters(t *testing.T) {
	b := NewBarrier()
	f := New()
	b.Add(f)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- b.Wait()
		}()
	}
	_ = f.SetResult(nil)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
