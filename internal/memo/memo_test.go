package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/serialize"
)

func TestKeyComponents(t *testing.T) {
	k1, err := Key("f", "h1", []any{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("f", "h1", []any{2}, nil)
	k3, _ := Key("f", "h2", []any{1}, nil)
	k4, _ := Key("g", "h1", []any{1}, nil)
	if k1 == k2 || k1 == k3 || k1 == k4 {
		t.Fatalf("keys collide: %s %s %s %s", k1, k2, k3, k4)
	}
	k5, _ := Key("f", "h1", []any{1}, nil)
	if k1 != k5 {
		t.Fatal("key not deterministic")
	}
}

func TestKeyUnhashableArgs(t *testing.T) {
	if _, err := Key("f", "h", []any{make(chan int)}, nil); err == nil {
		t.Fatal("unhashable args produced a key")
	}
}

// TestKeyFromPayloadAgreesWithKey: the DFK derives keys from the
// encode-once payload; programs (and checkpoint files) written against
// Key() must land on the same entries.
func TestKeyFromPayloadAgreesWithKey(t *testing.T) {
	args := []any{1, "x", 2.5}
	kw := map[string]any{"b": 2, "a": 1}
	k1, err := Key("f", "h1", args, kw)
	if err != nil {
		t.Fatal(err)
	}
	p, err := serialize.EncodeArgs(args, kw)
	if err != nil {
		t.Fatal(err)
	}
	if k2 := KeyFromPayload("f", "h1", p); k2 != k1 {
		t.Fatalf("KeyFromPayload = %s, Key = %s", k2, k1)
	}
}

func TestLookupStoreAndStats(t *testing.T) {
	m := New()
	if _, ok := m.Lookup("k"); ok {
		t.Fatal("empty table hit")
	}
	if err := m.Store("k", 42); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Lookup("k")
	if !ok || v != 42 {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestCheckpointPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run", "checkpoint.jsonl")
	m1, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m1.Store(fmt.Sprintf("k%d", i), float64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart the program": a fresh memoizer on the same file sees all
	// completed results.
	m2, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 10 {
		t.Fatalf("recovered %d entries, want 10", m2.Len())
	}
	v, ok := m2.Lookup("k7")
	if !ok || v.(float64) != 49 {
		t.Fatalf("k7 = %v, %v", v, ok)
	}
}

func TestCheckpointCorruptTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	m1, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = m1.Store("good", "v")
	_ = m1.Close()
	// Simulate a crash mid-write.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	_, _ = f.WriteString(`{"key":"half`)
	_ = f.Close()

	m2, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatalf("corrupt tail should not be fatal: %v", err)
	}
	defer m2.Close()
	if _, ok := m2.Lookup("good"); !ok {
		t.Fatal("good entry lost")
	}
	if m2.Len() != 1 {
		t.Fatalf("len = %d", m2.Len())
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	m := New()
	if err := m.LoadCheckpoint(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file load returned nil")
	}
}

func TestSyncAndCloseWithoutCheckpoint(t *testing.T) {
	m := New()
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStoreLookup(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			_ = m.Store(key, i)
			m.Lookup(key)
		}(i)
	}
	wg.Wait()
	if m.Len() != 8 {
		t.Fatalf("len = %d", m.Len())
	}
}

// Property: store-then-lookup always round-trips the JSON-compatible value
// through the checkpoint file.
func TestQuickCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	prop := func(k string, v float64) bool {
		n++
		path := filepath.Join(dir, fmt.Sprintf("cp-%d.jsonl", n))
		m1, err := NewWithCheckpoint(path)
		if err != nil {
			return false
		}
		key := "key-" + k
		if m1.Store(key, v) != nil {
			return false
		}
		_ = m1.Close()
		m2, err := NewWithCheckpoint(path)
		if err != nil {
			return false
		}
		defer m2.Close()
		got, ok := m2.Lookup(key)
		return ok && got.(float64) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointHealsTornTail is the crash-atomicity test for checkpoint
// writes: a tail torn mid-append (no terminating newline) must be healed at
// open — rewritten via temp file + fsync + rename — so the NEXT append cannot
// merge with the fragment and lose both entries. Before healing existed, the
// store after reopen produced a line like `{"key":"half{"key":"new",...}`,
// silently destroying the new entry too.
func TestCheckpointHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	m1, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = m1.Store("survivor", "v1")
	_ = m1.Close()
	// Tear the tail: an unterminated fragment, exactly what a crash mid-
	// append leaves.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	_, _ = f.WriteString(`{"key":"torn","value":`)
	_ = f.Close()

	m2, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatalf("torn tail should heal, not fail: %v", err)
	}
	if _, ok := m2.Lookup("survivor"); !ok {
		t.Fatal("intact entry lost during heal")
	}
	// The heal must leave no trace of the fragment on disk, so the next
	// append lands on a clean line boundary.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(data); n == 0 || data[n-1] != '\n' {
		t.Fatalf("healed file does not end in a newline: %q", data)
	}
	_ = m2.Store("after-heal", "v2")
	_ = m2.Close()

	m3, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if _, ok := m3.Lookup("survivor"); !ok {
		t.Fatal("survivor lost after post-heal append")
	}
	if v, ok := m3.Lookup("after-heal"); !ok || v != "v2" {
		t.Fatalf("post-heal append lost or corrupted: %v %v", v, ok)
	}
	if m3.Len() != 2 {
		t.Fatalf("len = %d, want 2", m3.Len())
	}
}

// TestCheckpointTornTailEvenIfParseable: a tail that happens to be valid JSON
// but lacks its newline is still torn — an append would merge with it. The
// heal must preserve its value AND restore the line discipline.
func TestCheckpointTornTailEvenIfParseable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, []byte(`{"key":"k1","value":1}`+"\n"+`{"key":"k2","value":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want both entries loaded", m.Len())
	}
	_ = m.Store("k3", 3)
	_ = m.Close()

	m2, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for _, k := range []string{"k1", "k2", "k3"} {
		if _, ok := m2.Lookup(k); !ok {
			t.Fatalf("entry %q lost: the unterminated tail swallowed an append", k)
		}
	}
}

// TestFreezeStopsCheckpointWrites: entries stored after Freeze stay in memory
// but never reach the file — the simulated-crash disk contract the WAL crash
// matrix depends on.
func TestFreezeStopsCheckpointWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	m, err := NewWithCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Store("before", 1)
	m.Freeze()
	_ = m.Store("after", 2)
	if _, ok := m.Lookup("after"); !ok {
		t.Fatal("frozen store must still serve the live process from memory")
	}
	_ = m.Close()

	m2 := New()
	if err := m2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Lookup("before"); !ok {
		t.Fatal("pre-freeze entry lost")
	}
	if _, ok := m2.Lookup("after"); ok {
		t.Fatal("post-freeze entry leaked to disk")
	}
}
