// Package memo implements Parsl's app memoization and checkpointing (§4.1,
// §4.6): the DataFlowKernel computes a key from the app's name, a hash of
// its body, and a hash of its arguments, and consults a memo table (and,
// when configured, an on-disk checkpoint file) before launching a task.
// Program-level fault tolerance (§3.7) falls out of the checkpoint file: a
// re-executed program skips every app already called with the same
// arguments.
//
// # Checkpoint/WAL consistency contract
//
// The DFK stores a task's memo entry BEFORE appending its terminal record to
// the write-ahead log (internal/wal). Under the process-crash model both
// writes reach the OS synchronously, so a WAL terminal record implies the
// memo entry is at least as durable: recovery that finds a task terminal can
// always resolve its value from the checkpoint. The reverse window — memo
// entry written, terminal record lost — heals itself: the task replays as
// live, re-admits through the normal submit boundary, and the memo lookup
// hits, settling it without re-execution. A crash mid-write can still tear
// the checkpoint's final line; NewWithCheckpoint detects torn or corrupt
// lines (including an unterminated tail, which a later append would
// otherwise merge with and lose) and rewrites the file crash-atomically —
// temp file, fsync, rename — before reopening it for appends.
package memo

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/serialize"
)

// Key builds a memoization key from app identity and arguments — the
// "function name, body hash, and arguments" triple of §4.1. It re-encodes
// the arguments to hash them; the DFK's submit path instead derives the key
// from the encode-once payload via KeyFromPayload and pays no extra
// serialization.
//
// Compatibility: the args digest is the payload-codec digest
// (serialize.Payload.ArgsHash), pinned by golden tests and stable from
// payload version 1 onward. Checkpoint files written by builds that predate
// the encode-once payload used a gob-derived digest and go cold once — a
// one-time re-execution, never a wrong result, since unmatched keys only
// miss.
func Key(appName, bodyHash string, args []any, kwargs map[string]any) (string, error) {
	p, err := serialize.EncodeArgs(args, kwargs)
	if err != nil {
		return "", fmt.Errorf("memo: args not hashable: %w", err)
	}
	return KeyFromPayload(appName, bodyHash, p), nil
}

// KeyFromPayload builds the memoization key from a task's encode-once
// argument payload: the args digest is the hash of the already-encoded
// bytes (canonical — kwargs are sorted inside the payload), so computing
// the key costs one hash sweep and zero gob encoders. Key and
// KeyFromPayload agree for identical arguments, and keys are stable across
// runs, which is what checkpoint reuse (§3.7) depends on.
func KeyFromPayload(appName, bodyHash string, p *serialize.Payload) string {
	return appName + "|" + bodyHash + "|" + p.ArgsHash()
}

// entry is one memoized result. Failed results are never memoized — Parsl
// retries failures rather than caching them.
type entry struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Memoizer is the in-memory memo table with optional checkpoint persistence.
type Memoizer struct {
	mu    sync.RWMutex
	table map[string]any

	cpMu   sync.Mutex
	cpPath string
	cpFile *os.File
	enc    *json.Encoder
	frozen bool

	hits, misses int64
}

// New returns an empty memoizer with no checkpoint file.
func New() *Memoizer {
	return &Memoizer{table: make(map[string]any)}
}

// NewWithCheckpoint returns a memoizer that appends every stored result to
// the JSONL checkpoint file at path, creating it if needed, and preloads any
// results already in it (the "re-execute a program without re-running
// completed apps" workflow). A checkpoint torn by a crash mid-write — a
// corrupt line, or a final line with no terminating newline — is healed
// crash-atomically (rewritten to a temp file, fsynced, renamed over the
// original) before the file is reopened for appends, so the torn tail can
// never swallow the next entry appended after it.
func NewWithCheckpoint(path string) (*Memoizer, error) {
	m := New()
	clean, err := m.loadCheckpoint(path)
	exists := true
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		exists = false
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("memo: checkpoint dir: %w", err)
	}
	if exists && !clean {
		if err := m.healCheckpoint(path); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("memo: open checkpoint: %w", err)
	}
	m.cpPath = path
	m.cpFile = f
	m.enc = json.NewEncoder(f)
	return m, nil
}

// loadCheckpoint merges the file's entries into the table, reporting whether
// the file was clean: clean=false means a corrupt line or an unterminated
// final line — both the signature of a crash mid-write, both healable by
// rewriting the surviving entries.
func (m *Memoizer) loadCheckpoint(path string) (clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	clean = true
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			// Unterminated tail: a crash interrupted the final append. Even
			// if the fragment parses, the missing newline would merge it with
			// the next appended entry, losing both — heal required.
			line, data = data, nil
			clean = false
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			clean = false
			continue
		}
		m.mu.Lock()
		m.table[e.Key] = e.Value
		m.mu.Unlock()
	}
	return clean, nil
}

// healCheckpoint rewrites the checkpoint from the loaded table via temp
// file + fsync + rename, the crash-atomic sequence: a crash at any point
// leaves either the old (torn but loadable) file or the complete new one.
func (m *Memoizer) healCheckpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("memo: heal checkpoint: %w", err)
	}
	enc := json.NewEncoder(f)
	m.mu.RLock()
	for k, v := range m.table {
		if err := enc.Encode(entry{Key: k, Value: v}); err != nil {
			m.mu.RUnlock()
			_ = f.Close()
			return fmt.Errorf("memo: heal checkpoint: %w", err)
		}
	}
	m.mu.RUnlock()
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("memo: heal checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memo: heal checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("memo: heal checkpoint rename: %w", err)
	}
	// Make the rename itself durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// Freeze stops all further checkpoint writes, simulating a crashed process's
// disk state: entries stored after Freeze stay in memory (the live process
// continues) but never reach the file. The chaos plane's WAL crash injection
// freezes the memoizer and the log at the same record boundary, so a
// simulated crash leaves both durable layers consistent.
func (m *Memoizer) Freeze() {
	m.cpMu.Lock()
	m.frozen = true
	m.cpMu.Unlock()
}

// LoadCheckpoint merges entries from a JSONL checkpoint file into the table.
// Corrupt trailing lines (from a crash mid-write) are skipped, not fatal:
// losing the last checkpoint entry only costs one re-execution.
func (m *Memoizer) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	loaded := 0
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		m.mu.Lock()
		m.table[e.Key] = e.Value
		m.mu.Unlock()
		loaded++
	}
	return sc.Err()
}

// Lookup returns the memoized value for key, if any.
func (m *Memoizer) Lookup(key string) (any, bool) {
	m.mu.RLock()
	v, ok := m.table[key]
	m.mu.RUnlock()
	m.cpMu.Lock()
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	m.cpMu.Unlock()
	return v, ok
}

// Store records a successful result under key and, when checkpointing is
// enabled, appends it durably.
func (m *Memoizer) Store(key string, value any) error {
	m.mu.Lock()
	m.table[key] = value
	m.mu.Unlock()

	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.enc == nil || m.frozen {
		return nil
	}
	if err := m.enc.Encode(entry{Key: key, Value: value}); err != nil {
		return fmt.Errorf("memo: checkpoint write: %w", err)
	}
	return nil
}

// Range calls fn for every memoized entry until fn returns false. Iteration
// order is unspecified and the snapshot is taken under the table lock, so fn
// must not call back into the memoizer. Its shape matches cache.Cache.Seed,
// letting a shared content-addressed tier start warm from a checkpointed
// memo table: sharedCache.Seed(memoizer.Range).
func (m *Memoizer) Range(fn func(key string, value any) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, v := range m.table {
		if !fn(k, v) {
			return
		}
	}
}

// Len returns the number of memoized entries.
func (m *Memoizer) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.table)
}

// Stats returns cumulative (hits, misses).
func (m *Memoizer) Stats() (hits, misses int64) {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	return m.hits, m.misses
}

// Sync flushes the checkpoint file to stable storage.
func (m *Memoizer) Sync() error {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.cpFile == nil {
		return nil
	}
	return m.cpFile.Sync()
}

// Close flushes and closes the checkpoint file.
func (m *Memoizer) Close() error {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.cpFile == nil {
		return nil
	}
	err := m.cpFile.Close()
	m.cpFile = nil
	m.enc = nil
	return err
}
