// Package memo implements Parsl's app memoization and checkpointing (§4.1,
// §4.6): the DataFlowKernel computes a key from the app's name, a hash of
// its body, and a hash of its arguments, and consults a memo table (and,
// when configured, an on-disk checkpoint file) before launching a task.
// Program-level fault tolerance (§3.7) falls out of the checkpoint file: a
// re-executed program skips every app already called with the same
// arguments.
package memo

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/serialize"
)

// Key builds a memoization key from app identity and arguments — the
// "function name, body hash, and arguments" triple of §4.1. It re-encodes
// the arguments to hash them; the DFK's submit path instead derives the key
// from the encode-once payload via KeyFromPayload and pays no extra
// serialization.
//
// Compatibility: the args digest is the payload-codec digest
// (serialize.Payload.ArgsHash), pinned by golden tests and stable from
// payload version 1 onward. Checkpoint files written by builds that predate
// the encode-once payload used a gob-derived digest and go cold once — a
// one-time re-execution, never a wrong result, since unmatched keys only
// miss.
func Key(appName, bodyHash string, args []any, kwargs map[string]any) (string, error) {
	p, err := serialize.EncodeArgs(args, kwargs)
	if err != nil {
		return "", fmt.Errorf("memo: args not hashable: %w", err)
	}
	return KeyFromPayload(appName, bodyHash, p), nil
}

// KeyFromPayload builds the memoization key from a task's encode-once
// argument payload: the args digest is the hash of the already-encoded
// bytes (canonical — kwargs are sorted inside the payload), so computing
// the key costs one hash sweep and zero gob encoders. Key and
// KeyFromPayload agree for identical arguments, and keys are stable across
// runs, which is what checkpoint reuse (§3.7) depends on.
func KeyFromPayload(appName, bodyHash string, p *serialize.Payload) string {
	return appName + "|" + bodyHash + "|" + p.ArgsHash()
}

// entry is one memoized result. Failed results are never memoized — Parsl
// retries failures rather than caching them.
type entry struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Memoizer is the in-memory memo table with optional checkpoint persistence.
type Memoizer struct {
	mu    sync.RWMutex
	table map[string]any

	cpMu   sync.Mutex
	cpPath string
	cpFile *os.File
	enc    *json.Encoder

	hits, misses int64
}

// New returns an empty memoizer with no checkpoint file.
func New() *Memoizer {
	return &Memoizer{table: make(map[string]any)}
}

// NewWithCheckpoint returns a memoizer that appends every stored result to
// the JSONL checkpoint file at path, creating it if needed, and preloads any
// results already in it (the "re-execute a program without re-running
// completed apps" workflow).
func NewWithCheckpoint(path string) (*Memoizer, error) {
	m := New()
	if err := m.LoadCheckpoint(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("memo: checkpoint dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("memo: open checkpoint: %w", err)
	}
	m.cpPath = path
	m.cpFile = f
	m.enc = json.NewEncoder(f)
	return m, nil
}

// LoadCheckpoint merges entries from a JSONL checkpoint file into the table.
// Corrupt trailing lines (from a crash mid-write) are skipped, not fatal:
// losing the last checkpoint entry only costs one re-execution.
func (m *Memoizer) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	loaded := 0
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		m.mu.Lock()
		m.table[e.Key] = e.Value
		m.mu.Unlock()
		loaded++
	}
	return sc.Err()
}

// Lookup returns the memoized value for key, if any.
func (m *Memoizer) Lookup(key string) (any, bool) {
	m.mu.RLock()
	v, ok := m.table[key]
	m.mu.RUnlock()
	m.cpMu.Lock()
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	m.cpMu.Unlock()
	return v, ok
}

// Store records a successful result under key and, when checkpointing is
// enabled, appends it durably.
func (m *Memoizer) Store(key string, value any) error {
	m.mu.Lock()
	m.table[key] = value
	m.mu.Unlock()

	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.enc == nil {
		return nil
	}
	if err := m.enc.Encode(entry{Key: key, Value: value}); err != nil {
		return fmt.Errorf("memo: checkpoint write: %w", err)
	}
	return nil
}

// Len returns the number of memoized entries.
func (m *Memoizer) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.table)
}

// Stats returns cumulative (hits, misses).
func (m *Memoizer) Stats() (hits, misses int64) {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	return m.hits, m.misses
}

// Sync flushes the checkpoint file to stable storage.
func (m *Memoizer) Sync() error {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.cpFile == nil {
		return nil
	}
	return m.cpFile.Sync()
}

// Close flushes and closes the checkpoint file.
func (m *Memoizer) Close() error {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	if m.cpFile == nil {
		return nil
	}
	err := m.cpFile.Close()
	m.cpFile = nil
	m.enc = nil
	return err
}
