package fair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSingleTenantFIFO pins the compatibility contract: one tenant, no
// comparator — strict FIFO, exactly the queue the DFK's routing FIFO was.
func TestSingleTenantFIFO(t *testing.T) {
	q := NewQueue[int](nil)
	for i := 0; i < 100; i++ {
		q.Push(DefaultTenant, 0, i)
	}
	var got []int
	for len(got) < 100 {
		batch, ok := q.Take(7)
		if !ok {
			t.Fatal("queue closed unexpectedly")
		}
		got = append(got, batch...)
		q.PutBatch(batch)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d: got %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// TestDRRShares pins the deterministic weighted shares: tenants weighted 2:1
// with deep backlogs drain 2:1 in every window.
func TestDRRShares(t *testing.T) {
	q := NewQueue[string](nil)
	for i := 0; i < 300; i++ {
		q.Push("a", 2, "a")
		q.Push("b", 1, "b")
	}
	batch := q.TryTake(30)
	counts := map[string]int{}
	for _, v := range batch {
		counts[v]++
	}
	q.PutBatch(batch)
	if counts["a"] != 20 || counts["b"] != 10 {
		t.Fatalf("30-entry DRR window: got a=%d b=%d, want a=20 b=10", counts["a"], counts["b"])
	}
}

// TestDRRSharesSmallTakes pins that weights hold even when the consumer
// drains one entry at a time — the broker shape, where dispatch size is one
// free capacity slot. A quantum interrupted by a full batch must resume on
// the next take, not forfeit, or shares collapse toward round robin.
func TestDRRSharesSmallTakes(t *testing.T) {
	for _, takeSize := range []int{1, 2, 3} {
		q := NewQueue[string](nil)
		for i := 0; i < 400; i++ {
			q.Push("a", 10, "a")
			q.Push("b", 1, "b")
		}
		counts := map[string]int{}
		for drained := 0; drained < 110; {
			n := takeSize
			if rem := 110 - drained; n > rem {
				n = rem
			}
			batch := q.TryTake(n)
			for _, v := range batch {
				counts[v]++
			}
			drained += len(batch)
			q.PutBatch(batch)
		}
		if counts["a"] != 100 || counts["b"] != 10 {
			t.Fatalf("takeSize %d: 110 entries split a=%d b=%d, want 100/10",
				takeSize, counts["a"], counts["b"])
		}
	}
}

// TestTenantStateReclaimed: a drained tenant leaves no residue in the
// tenant table — high-cardinality one-shot tenants must not accumulate.
func TestTenantStateReclaimed(t *testing.T) {
	q := NewQueue[int](nil)
	for i := 0; i < 100; i++ {
		q.Push(fmt.Sprintf("tenant-%d", i), 2, i)
	}
	for {
		batch := q.TryTake(8)
		if len(batch) == 0 {
			break
		}
		q.PutBatch(batch)
	}
	q.mu.Lock()
	residual := len(q.tenants)
	q.mu.Unlock()
	if residual != 0 {
		t.Fatalf("%d tenant flows retained after drain, want 0", residual)
	}

	a := NewAdmission(1, nil, Block)
	for i := 0; i < 100; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if _, err := a.Admit(context.Background(), tenant); err != nil {
			t.Fatal(err)
		}
		a.Release(tenant)
	}
	a.mu.Lock()
	gates := len(a.tenants)
	a.mu.Unlock()
	if gates != 0 {
		t.Fatalf("%d admission gates retained after release, want 0", gates)
	}
}

// TestDRRInterleaves verifies a late-arriving light tenant is served on the
// next round rather than behind the heavy tenant's whole backlog.
func TestDRRInterleaves(t *testing.T) {
	q := NewQueue[string](nil)
	for i := 0; i < 1000; i++ {
		q.Push("heavy", 1, "heavy")
	}
	q.Push("light", 1, "light")
	batch := q.TryTake(4)
	defer q.PutBatch(batch)
	found := false
	for _, v := range batch {
		if v == "light" {
			found = true
		}
	}
	if !found {
		t.Fatalf("light tenant not served within the first 4 slots: %v", batch)
	}
}

type prioItem struct {
	prio int
	seq  int
}

func prioLess(a, b prioItem) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

// TestIntraTenantPriority checks the comparator path: within one tenant,
// higher priority pops first, equal priorities keep arrival order, and
// PeekMax reports the top queued priority.
func TestIntraTenantPriority(t *testing.T) {
	q := NewQueue[prioItem](prioLess)
	q.Push("t", 0, prioItem{prio: 0, seq: 1})
	q.Push("t", 0, prioItem{prio: 5, seq: 2})
	q.Push("t", 0, prioItem{prio: 0, seq: 3})
	q.Push("t", 0, prioItem{prio: 5, seq: 4})
	if got := q.PeekMax(func(it prioItem) int { return it.prio }); got != 5 {
		t.Fatalf("PeekMax = %d, want 5", got)
	}
	batch := q.TryTake(10)
	defer q.PutBatch(batch)
	want := []prioItem{{5, 2}, {5, 4}, {0, 1}, {0, 3}}
	if len(batch) != len(want) {
		t.Fatalf("got %d entries, want %d", len(batch), len(want))
	}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, batch[i], want[i])
		}
	}
}

// TestPriorityDoesNotCrossTenants: a tenant's urgent task jumps its own
// sub-queue only; the other tenant still gets its round share.
func TestPriorityDoesNotCrossTenants(t *testing.T) {
	q := NewQueue[prioItem](prioLess)
	for i := 0; i < 10; i++ {
		q.Push("noisy", 1, prioItem{prio: 100, seq: i})
	}
	q.Push("quiet", 1, prioItem{prio: 0, seq: 99})
	batch := q.TryTake(2)
	defer q.PutBatch(batch)
	seen := map[int]bool{}
	for _, it := range batch {
		seen[it.prio] = true
	}
	if !seen[0] {
		t.Fatalf("quiet tenant starved by another tenant's priorities: %+v", batch)
	}
}

// TestFilter removes entries and keeps DRR bookkeeping consistent.
func TestFilter(t *testing.T) {
	q := NewQueue[int](nil)
	for i := 0; i < 10; i++ {
		q.Push("a", 0, i)
		q.Push("b", 0, 100+i)
	}
	q.Filter(func(v int) bool { return v%2 == 0 })
	if got := q.Len(); got != 10 {
		t.Fatalf("Len after filter = %d, want 10", got)
	}
	per := q.PerTenant()
	if per["a"] != 5 || per["b"] != 5 {
		t.Fatalf("per-tenant after filter = %v, want a=5 b=5", per)
	}
	q.Filter(func(v int) bool { return v >= 100 })
	if got := q.Len(); got != 5 {
		t.Fatalf("Len after second filter = %d, want 5", got)
	}
	batch := q.TryTake(10)
	defer q.PutBatch(batch)
	for _, v := range batch {
		if v < 100 || v%2 != 0 {
			t.Fatalf("unexpected survivor %d", v)
		}
	}
}

// TestCloseDrains: Take returns queued items after Close, then (nil, false).
func TestCloseDrains(t *testing.T) {
	q := NewQueue[int](nil)
	q.Push("a", 0, 1)
	q.Close()
	batch, ok := q.Take(10)
	if !ok || len(batch) != 1 {
		t.Fatalf("Take after close = (%v, %v), want one item", batch, ok)
	}
	q.PutBatch(batch)
	if _, ok := q.Take(10); ok {
		t.Fatal("drained closed queue still returning items")
	}
}

// TestBlockingTakeWakes: a parked Take wakes on Push.
func TestBlockingTakeWakes(t *testing.T) {
	q := NewQueue[int](nil)
	done := make(chan int, 1)
	go func() {
		batch, _ := q.Take(1)
		done <- batch[0]
		q.PutBatch(batch)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("a", 0, 42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Take never woke")
	}
}

// TestQueueConcurrent hammers Push/Take/PerTenant from many goroutines under
// -race; every pushed item must come out exactly once.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue[int](nil)
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", p%3)
			for i := 0; i < perProducer; i++ {
				q.Push(tenant, p%3+1, p*perProducer+i)
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	seen := make(map[int]bool, producers*perProducer)
	var consumed int
	for {
		if consumed%100 == 0 {
			_ = q.PerTenant()
			_ = q.Len()
		}
		batch, ok := q.Take(64)
		if !ok {
			break
		}
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("item %d delivered twice", v)
			}
			seen[v] = true
		}
		consumed += len(batch)
		q.PutBatch(batch)
	}
	if consumed != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", consumed, producers*perProducer)
	}
}

// TestAdmissionShed: at quota, Shed returns ErrOverloaded without blocking;
// a release reopens admission.
func TestAdmissionShed(t *testing.T) {
	a := NewAdmission(2, nil, Shed)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := a.Admit(ctx, "t"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if _, err := a.Admit(ctx, "t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit over quota = %v, want ErrOverloaded", err)
	}
	if _, err := a.Admit(ctx, "other"); err != nil {
		t.Fatalf("other tenant sheds too: %v", err)
	}
	a.Release("t")
	if _, err := a.Admit(ctx, "t"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := a.Live("t"); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
}

// TestAdmissionBlockRelease: a blocked Admit wakes when quota frees and
// reports a non-zero wait.
func TestAdmissionBlockRelease(t *testing.T) {
	a := NewAdmission(1, nil, Block)
	ctx := context.Background()
	if _, err := a.Admit(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan time.Duration, 1)
	go func() {
		waited, err := a.Admit(ctx, "t")
		if err != nil {
			t.Error(err)
		}
		admitted <- waited
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-admitted:
		t.Fatal("Admit returned before quota freed")
	default:
	}
	a.Release("t")
	select {
	case waited := <-admitted:
		if waited <= 0 {
			t.Fatalf("waited = %v, want > 0", waited)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Admit never woke after Release")
	}
}

// TestAdmissionCtxCancel: canceling the context unblocks a parked Admit with
// the context's error and without consuming quota.
func TestAdmissionCtxCancel(t *testing.T) {
	a := NewAdmission(1, nil, Block)
	if _, err := a.Admit(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "t")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Admit after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Admit never returned")
	}
	if got := a.Live("t"); got != 1 {
		t.Fatalf("Live after canceled wait = %d, want 1 (no quota leak)", got)
	}
}

// TestAdmissionQuotaOverrides: per-tenant overrides beat the default, and a
// zero default means unlimited for everyone else.
func TestAdmissionQuotaOverrides(t *testing.T) {
	a := NewAdmission(0, map[string]int{"capped": 1}, Shed)
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := a.Admit(ctx, "free"); err != nil {
			t.Fatalf("unlimited tenant refused at %d: %v", i, err)
		}
	}
	if _, err := a.Admit(ctx, "capped"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit(ctx, "capped"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("override quota not enforced: %v", err)
	}
}

// TestAdmissionConcurrent floods a quota from many goroutines under -race:
// live count must never exceed the cap, and everyone eventually admits.
func TestAdmissionConcurrent(t *testing.T) {
	const quota, n = 4, 64
	a := NewAdmission(quota, nil, Block)
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Admit(ctx, "t"); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			a.Release("t")
		}()
	}
	wg.Wait()
	if maxInFlight > quota {
		t.Fatalf("observed %d concurrent admissions, quota %d", maxInFlight, quota)
	}
	if got := a.Live("t"); got != 0 {
		t.Fatalf("Live after drain = %d, want 0", got)
	}
}
