package fair

import (
	"sync"
	"testing"
)

func selfTenant(s string) string { return s }

// TestMPSCDeliversEverythingOnce hammers the queue from many producers and
// checks the single consumer sees every item exactly once.
func TestMPSCDeliversEverythingOnce(t *testing.T) {
	m := NewMPSC[int64](func(int64) string { return "t" })
	const producers, perProducer = 16, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				m.Push(v, v)
			}
		}(p)
	}
	go func() { wg.Wait(); m.Close() }()

	seen := make(map[int64]int)
	for {
		batch, ok := m.Take(64)
		if !ok {
			break
		}
		if len(batch) > 64 {
			t.Fatalf("batch of %d exceeds max 64", len(batch))
		}
		for _, v := range batch {
			seen[v]++
		}
		m.PutBatch(batch)
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d distinct items, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d delivered %d times", v, n)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after drain", m.Len())
	}
}

// TestMPSCSweepRotatesShards pins the anti-starvation property: when every
// shard holds work and the consumer takes less than everything, consecutive
// sweeps start from different shards instead of re-draining shard 0.
func TestMPSCSweepRotatesShards(t *testing.T) {
	m := NewMPSC[int64](func(int64) string { return "t" })
	// One item in each of the 32 shards (keys 0..31 map 1:1 by masking).
	for k := int64(0); k < mpscShards; k++ {
		m.Push(k, k)
	}
	// Taking one item at a time must eventually visit every shard: the
	// cursor advances after each non-empty sweep.
	seen := make(map[int64]bool)
	for i := 0; i < mpscShards; i++ {
		batch, ok := m.Take(1)
		if !ok || len(batch) != 1 {
			t.Fatalf("take %d: batch %v ok %v", i, batch, ok)
		}
		seen[batch[0]] = true
		m.PutBatch(batch)
	}
	if len(seen) != mpscShards {
		t.Fatalf("single-item sweeps visited %d shards, want %d (starvation)", len(seen), mpscShards)
	}
}

// TestMPSCCloseDrainsThenStops: items pushed before Close are delivered,
// pushes after Close are dropped, and Take then reports done.
func TestMPSCCloseDrainsThenStops(t *testing.T) {
	m := NewMPSC(selfTenant)
	m.Push(1, "kept")
	m.Close()
	m.Push(2, "dropped")
	batch, ok := m.Take(10)
	if !ok || len(batch) != 1 || batch[0] != "kept" {
		t.Fatalf("batch = %v ok %v, want [kept]", batch, ok)
	}
	m.PutBatch(batch)
	if batch, ok := m.Take(10); ok {
		t.Fatalf("Take after drain = %v, want done", batch)
	}
}

// TestMPSCPerTenantCountsOccupancy checks the admission-backlog probe.
func TestMPSCPerTenantCountsOccupancy(t *testing.T) {
	m := NewMPSC(selfTenant)
	for i := int64(0); i < 5; i++ {
		m.Push(i, "a")
	}
	for i := int64(0); i < 3; i++ {
		m.Push(i, "b")
	}
	pt := m.PerTenant()
	if pt["a"] != 5 || pt["b"] != 3 {
		t.Fatalf("PerTenant = %v, want a:5 b:3", pt)
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
}
