// Package fair implements the multi-tenant fairness and admission layer the
// DataFlowKernel and the HTEX interchange share. The paper's DFK (§3.5, §4.2)
// assumes one cooperative program; a service multiplexing many submitters
// needs two more mechanisms, both provided here:
//
//   - Queue, a deficit-round-robin weighted fair queue (Shreedhar & Varghese,
//     SIGCOMM 1995): each tenant owns a sub-queue, and consumers drain tasks
//     in proportion to tenant weights instead of global arrival order, so one
//     hot submitter cannot head-of-line-block everyone else. A single-tenant
//     workload degenerates to the plain FIFO (or priority order) it replaced —
//     the default behavior is identical to the pre-tenant pipeline.
//
//   - Admission, a per-tenant bound on live tasks with a configurable
//     overload policy: block the submitter (context-aware) until completions
//     free quota, or shed immediately with ErrOverloaded. This is what keeps
//     memory bounded under overload — the fair queue shapes *order*, the
//     admission bound shapes *volume*.
//
// Both types are safe for concurrent use. Neither blocks inside executor
// completion callbacks: Queue pushes never block (the queues stay unbounded;
// boundedness comes from admission at the submission boundary, where blocking
// is safe), and Admission.Release never blocks.
package fair

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the tenant id of submissions that never opted into
// multi-tenancy. It participates in DRR like any other tenant, with weight 1.
const DefaultTenant = ""

// ErrOverloaded is returned by Admission.Admit under the shed policy when a
// tenant is at its quota. Callers surface it to the submitter so overload is
// an explicit, typed outcome rather than unbounded queue growth.
var ErrOverloaded = errors.New("fair: tenant at admission quota")

// flow is one tenant's sub-queue plus its DRR state.
type flow[T any] struct {
	tenant  string
	weight  int
	deficit int
	// items[head:] are the queued entries; head advances on pop and the
	// backing array is compacted when the dead prefix outgrows the live
	// half, so pops are O(1) amortized without per-pop copying.
	items []T
	head  int
	// dirty marks that an append broke the comparator ordering; the flow is
	// re-sorted lazily on the next pop or peek. An in-order workload (the
	// common all-default-priority case) never pays the sort.
	dirty  bool
	active bool
}

func (f *flow[T]) len() int { return len(f.items) - f.head }

func (f *flow[T]) push(item T, less func(a, b T) bool) {
	if less != nil && f.len() > 0 && less(item, f.items[len(f.items)-1]) {
		f.dirty = true
	}
	f.items = append(f.items, item)
}

// ensureSorted restores comparator order on the live segment. SliceStable
// keeps arrival order among equal elements, preserving the FIFO tiebreak.
func (f *flow[T]) ensureSorted(less func(a, b T) bool) {
	if !f.dirty {
		return
	}
	live := f.items[f.head:]
	sort.SliceStable(live, func(i, j int) bool { return less(live[i], live[j]) })
	f.dirty = false
}

func (f *flow[T]) pop(less func(a, b T) bool) T {
	if less != nil {
		f.ensureSorted(less)
	}
	item := f.items[f.head]
	var zero T
	f.items[f.head] = zero // do not pin popped entries
	f.head++
	if f.head > len(f.items)/2 && f.head > 32 {
		n := copy(f.items, f.items[f.head:])
		for i := n; i < len(f.items); i++ {
			f.items[i] = zero
		}
		f.items = f.items[:n]
		f.head = 0
	}
	return item
}

// Queue is a blocking multi-producer queue that drains across tenants by
// deficit round robin: each take visits active tenants in rotation, tops the
// visited tenant's deficit up by its weight, and serves one queued entry per
// deficit unit. Over any backlogged interval, tenant shares converge to the
// weight ratio; a lone tenant receives strict FIFO (or, with a comparator,
// priority) order, byte-for-byte what the single-tenant queues it replaced
// provided.
type Queue[T any] struct {
	// less, when non-nil, orders entries *within* one tenant (e.g. dispatch
	// priority). Fairness across tenants always wins over intra-tenant
	// priority: a tenant's urgent task jumps that tenant's sub-queue, never
	// another tenant's share.
	less func(a, b T) bool

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*flow[T]
	// ring holds the active flows in round-robin order; cursor is the next
	// flow to visit. New flows join at the tail, per standard DRR.
	ring   []*flow[T]
	cursor int
	size   int
	closed bool

	batchPool sync.Pool
}

// NewQueue creates a fair queue. less, when non-nil, orders entries within
// each tenant's sub-queue (smallest first per less); nil means FIFO.
func NewQueue[T any](less func(a, b T) bool) *Queue[T] {
	q := &Queue[T]{less: less, tenants: make(map[string]*flow[T])}
	q.cond = sync.NewCond(&q.mu)
	q.batchPool.New = func() any {
		s := make([]T, 0, 256)
		return &s
	}
	return q
}

// Push enqueues one entry for tenant. weight > 0 updates the tenant's DRR
// weight (latest write wins; submissions carry it per-call); weight <= 0
// leaves the current weight (default 1) untouched. Push never blocks — the
// queue is unbounded by design, because pushes arrive from executor
// completion callbacks where blocking could deadlock the pipeline. Volume is
// bounded upstream by Admission, at the submission boundary.
func (q *Queue[T]) Push(tenant string, weight int, item T) {
	q.mu.Lock()
	f, ok := q.tenants[tenant]
	if !ok {
		f = &flow[T]{tenant: tenant, weight: 1}
		q.tenants[tenant] = f
	}
	if weight > 0 {
		f.weight = weight
	}
	f.push(item, q.less)
	if !f.active {
		f.active = true
		q.ring = append(q.ring, f)
	}
	q.size++
	q.mu.Unlock()
	q.cond.Signal()
}

// drain implements the DRR service loop; the caller holds q.mu. It pops up
// to max entries into a pooled batch.
func (q *Queue[T]) drain(max int) []T {
	batch := (*q.batchPool.Get().(*[]T))[:0]
	for len(batch) < max && q.size > 0 {
		f := q.ring[q.cursor]
		if f.deficit <= 0 {
			f.deficit += f.weight
		}
		for f.deficit > 0 && f.len() > 0 && len(batch) < max {
			batch = append(batch, f.pop(q.less))
			f.deficit--
			q.size--
		}
		switch {
		case f.len() == 0:
			// An idle flow leaves the rotation (and the tenant table: a
			// one-shot tenant must not leak a flow forever — its weight
			// rides every push, so nothing of value is lost) and forfeits
			// leftover deficit (standard DRR: credit must not accumulate
			// while idle).
			delete(q.tenants, f.tenant)
			f.active = false
			copy(q.ring[q.cursor:], q.ring[q.cursor+1:])
			q.ring[len(q.ring)-1] = nil
			q.ring = q.ring[:len(q.ring)-1]
		case f.deficit <= 0:
			// Quantum spent: the next flow gets the next visit.
			q.cursor++
		default:
			// The batch filled mid-quantum. Keep the cursor on this flow so
			// its remaining deficit is served by the next drain — advancing
			// here would forfeit the turn every time max < weight, and
			// small takes (a broker dispatching one capacity slot at a
			// time) would collapse weighted shares toward round-robin.
		}
		if len(q.ring) == 0 {
			q.cursor = 0
		} else {
			q.cursor %= len(q.ring)
		}
	}
	return batch
}

// Take blocks until at least one entry is queued (returning up to max in DRR
// order) or the queue is closed and drained (returning nil, false). The
// returned slice comes from a pooled scratch buffer; hand it back with
// PutBatch once the entries have been consumed.
func (q *Queue[T]) Take(max int) ([]T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	return q.drain(max), true
}

// TryTake drains up to max entries without blocking; it returns nil when the
// queue is empty. Same pooled-batch contract as Take.
func (q *Queue[T]) TryTake(max int) []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return nil
	}
	return q.drain(max)
}

// PutBatch clears a batch returned by Take/TryTake (so pooled slices do not
// pin consumed entries) and recycles it.
func (q *Queue[T]) PutBatch(batch []T) {
	var zero T
	for i := range batch {
		batch[i] = zero
	}
	batch = batch[:0]
	q.batchPool.Put(&batch)
}

// Len reports the total queued entries across tenants.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// PerTenant reports the queued backlog per tenant (nil when empty) — the
// signal surfaced through sched.Load.TenantBacklog and the interchange's
// tenant-depth probe.
func (q *Queue[T]) PerTenant() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return nil
	}
	out := make(map[string]int, len(q.ring))
	for _, f := range q.ring {
		out[f.tenant] = f.len()
	}
	return out
}

// PeekMax reports the maximum metric(entry) over all queued entries, or 0
// when empty. With a comparator configured, each flow's head is its extreme,
// so the scan is O(active tenants); without one the whole queue is scanned.
// The dispatch pipeline uses it to surface lane urgency (max queued priority).
func (q *Queue[T]) PeekMax(metric func(T) int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return 0
	}
	best := 0
	first := true
	for _, f := range q.ring {
		if q.less != nil {
			f.ensureSorted(q.less)
			if v := metric(f.items[f.head]); first || v > best {
				best, first = v, false
			}
			continue
		}
		for _, it := range f.items[f.head:] {
			if v := metric(it); first || v > best {
				best, first = v, false
			}
		}
	}
	return best
}

// Filter removes queued entries for which keep returns false (the
// cancellation path). Tenants left empty drop out of the rotation.
func (q *Queue[T]) Filter(keep func(T) bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, f := range q.ring {
		live := f.items[f.head:]
		kept := f.items[:f.head]
		for _, it := range live {
			if keep(it) {
				kept = append(kept, it)
			}
		}
		var zero T
		for i := len(kept); i < len(f.items); i++ {
			f.items[i] = zero
		}
		q.size -= f.len() - (len(kept) - f.head)
		f.items = kept
	}
	ring := q.ring[:0]
	for _, f := range q.ring {
		if f.len() > 0 {
			ring = append(ring, f)
		} else {
			f.active = false
			delete(q.tenants, f.tenant) // idle tenants are reclaimed, as in drain
		}
	}
	for i := len(ring); i < len(q.ring); i++ {
		q.ring[i] = nil
	}
	q.ring = ring
	if len(q.ring) == 0 {
		q.cursor = 0
	} else {
		q.cursor %= len(q.ring)
	}
}

// Close marks the queue finished; Take drains remaining entries first.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Policy selects what Admission does to a submission finding its tenant at
// quota.
type Policy int

const (
	// Block parks the submitter until a completion frees quota or its
	// context is canceled — backpressure propagated to the producer.
	Block Policy = iota
	// Shed rejects immediately with ErrOverloaded — load shedding for
	// submitters that would rather retry elsewhere than wait.
	Shed
)

// gate is one tenant's admission state. Blocked submitters wait on the
// current wakeup channel alongside their contexts; a release closes and
// replaces it — but only when waiters are actually parked, so the common
// uncontended Release (every task completion takes this path) costs no
// channel allocation.
type gate struct {
	live    int
	waiters int
	ch      chan struct{}
}

// Admission bounds live tasks per tenant. A task is live from Admit until
// Release — submission through terminal state — so the bound covers every
// queue the task can occupy in between, making total memory under overload
// O(sum of quotas) instead of O(submissions).
type Admission struct {
	quota  int
	quotas map[string]int
	policy Policy

	mu      sync.Mutex
	tenants map[string]*gate
}

// NewAdmission creates an admission bound: quota is the default per-tenant
// cap (<= 0 means unlimited), quotas overrides it per tenant id, and policy
// picks the overload behavior.
func NewAdmission(quota int, quotas map[string]int, policy Policy) *Admission {
	var cp map[string]int
	if len(quotas) > 0 {
		cp = make(map[string]int, len(quotas))
		for k, v := range quotas {
			cp[k] = v
		}
	}
	return &Admission{quota: quota, quotas: cp, policy: policy, tenants: make(map[string]*gate)}
}

// QuotaFor reports the live-task cap for tenant (<= 0 = unlimited).
func (a *Admission) QuotaFor(tenant string) int {
	if q, ok := a.quotas[tenant]; ok {
		return q
	}
	return a.quota
}

// Live reports tenant's admitted-but-unreleased task count.
func (a *Admission) Live(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.tenants[tenant]; ok {
		return g.live
	}
	return 0
}

// Admit claims one unit of tenant's quota, applying the overload policy when
// the tenant is at its cap: Shed returns ErrOverloaded immediately; Block
// waits until a Release frees quota or ctx is done (returning the context's
// error). waited reports how long the caller was parked, for monitoring.
//
// Admit must only be called from submission goroutines, never from executor
// completion callbacks — blocking there could deadlock the completion
// pipeline that Releases are issued from.
func (a *Admission) Admit(ctx context.Context, tenant string) (waited time.Duration, err error) {
	quota := a.QuotaFor(tenant)
	if quota <= 0 {
		return 0, nil
	}
	var start time.Time
	a.mu.Lock()
	g, ok := a.tenants[tenant]
	if !ok {
		g = &gate{ch: make(chan struct{})}
		a.tenants[tenant] = g
	}
	for g.live >= quota {
		if a.policy == Shed {
			a.mu.Unlock()
			return 0, ErrOverloaded
		}
		ch := g.ch
		g.waiters++
		a.mu.Unlock()
		if start.IsZero() {
			start = time.Now()
		}
		var cause error
		select {
		case <-ctx.Done():
			cause = context.Cause(ctx)
		case <-ch:
		}
		a.mu.Lock()
		g.waiters--
		if cause != nil {
			if g.live == 0 && g.waiters == 0 {
				delete(a.tenants, tenant)
			}
			a.mu.Unlock()
			return time.Since(start), cause
		}
	}
	g.live++
	a.mu.Unlock()
	if !start.IsZero() {
		waited = time.Since(start)
	}
	return waited, nil
}

// Release returns one unit of tenant's quota and wakes blocked submitters.
// Safe to call from any goroutine, including completion callbacks.
func (a *Admission) Release(tenant string) {
	a.mu.Lock()
	if g, ok := a.tenants[tenant]; ok && g.live > 0 {
		g.live--
		if g.waiters > 0 {
			close(g.ch)
			g.ch = make(chan struct{})
		} else if g.live == 0 {
			// Idle tenants are reclaimed so a high-cardinality id space
			// (tenant-per-user) cannot grow the table without bound.
			delete(a.tenants, tenant)
		}
	}
	a.mu.Unlock()
}
