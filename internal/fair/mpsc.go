package fair

import (
	"sync"
	"sync/atomic"
)

// mpscBatchCap matches the DRR queue's pooled batch capacity.
const mpscBatchCap = 256

// mpscShards is the shard count of an MPSC queue: a power of two matching
// the task graph's shard count, so a graph shard maps to a dispatch lane
// 1:1. Dense wire ids spread uniformly across shards by masking.
const mpscShards = 32

// MPSC is a sharded multi-producer single-consumer queue: the routing stage
// of the dispatch pipeline. Submitting goroutines push into the shard named
// by their item's key (graph-shard of the wire id), touching only that
// shard's mutex, so parallel submitters no longer contend on one queue head;
// the single router goroutine sweeps the shards round-robin.
//
// Compared to Queue (the DRR fair queue), MPSC deliberately does NOT
// schedule between tenants: routing is a fast, short hop, and waiting — the
// place where fairness matters — happens at the per-executor lanes, which
// remain DRR Queues. MPSC keeps per-tenant occupancy observable (PerTenant)
// so admission backlog accounting is unchanged.
//
// The boundedness contract matches the routing Queue it replaces: Push never
// blocks and never fails (it must be callable from future callbacks, which
// may not stall the completing goroutine); total occupancy is bounded
// externally by the DFK's admission controller.
type MPSC[T any] struct {
	// tenantOf extracts the fairness tenant from an item, for PerTenant.
	tenantOf func(T) string

	size   atomic.Int64
	closed atomic.Bool

	// notify holds at most one wake-up token for the consumer; producers
	// send non-blocking after publishing, so a sleeping consumer always
	// finds either the token or a non-zero size.
	notify   chan struct{}
	closedCh chan struct{}

	// cursor is consumer-owned: the next shard the sweep starts from, so
	// no shard is starved when the consumer takes less than everything.
	cursor int

	batchPool sync.Pool

	shards [mpscShards]mpscShard[T]
}

// mpscShard is one producer-side lane. The pad keeps hot shard headers on
// separate cache lines.
type mpscShard[T any] struct {
	mu    sync.Mutex
	items []T
	_     [40]byte
}

// NewMPSC returns an empty queue. tenantOf maps an item to its fairness
// tenant (used only for occupancy reporting).
func NewMPSC[T any](tenantOf func(T) string) *MPSC[T] {
	m := &MPSC[T]{
		tenantOf: tenantOf,
		notify:   make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	m.batchPool.New = func() any { return make([]T, 0, mpscBatchCap) }
	return m
}

// Push enqueues item on the shard selected by key. It never blocks: the
// shard lock is held only for an append. Pushes after Close are dropped
// (the pipeline is shutting down; admission has already stopped admitting).
func (m *MPSC[T]) Push(key int64, item T) {
	if m.closed.Load() {
		return
	}
	s := &m.shards[uint64(key)&(mpscShards-1)]
	s.mu.Lock()
	s.items = append(s.items, item)
	// Counted inside the critical section so the consumer's size view never
	// lags items it can already observe under the shard lock.
	m.size.Add(1)
	s.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// Take returns a batch of up to max items, blocking while the queue is open
// and empty. It returns ok=false only when the queue is closed and fully
// drained. Single consumer only. Return exhausted batches with PutBatch.
func (m *MPSC[T]) Take(max int) ([]T, bool) {
	if max <= 0 {
		max = mpscBatchCap
	}
	for {
		if m.size.Load() > 0 {
			if batch := m.sweep(max); len(batch) > 0 {
				return batch, true
			}
		}
		if m.closed.Load() && m.size.Load() == 0 {
			return nil, false
		}
		select {
		case <-m.notify:
		case <-m.closedCh:
			// Re-check: drain whatever remains, then report closed.
			if m.size.Load() == 0 {
				return nil, false
			}
		}
	}
}

// sweep collects up to max items starting at the consumer cursor.
func (m *MPSC[T]) sweep(max int) []T {
	batch := m.batchPool.Get().([]T)
	var zero T
	for i := 0; i < mpscShards && len(batch) < max; i++ {
		s := &m.shards[(m.cursor+i)&(mpscShards-1)]
		s.mu.Lock()
		take := len(s.items)
		if room := max - len(batch); take > room {
			take = room
		}
		if take > 0 {
			batch = append(batch, s.items[:take]...)
			n := copy(s.items, s.items[take:])
			for j := n; j < len(s.items); j++ {
				s.items[j] = zero
			}
			s.items = s.items[:n]
			m.size.Add(int64(-take))
		}
		s.mu.Unlock()
	}
	if len(batch) > 0 {
		m.cursor = (m.cursor + 1) & (mpscShards - 1)
	}
	return batch
}

// PutBatch returns a batch obtained from Take to the pool.
func (m *MPSC[T]) PutBatch(batch []T) {
	if cap(batch) == 0 {
		return
	}
	var zero T
	for i := range batch {
		batch[i] = zero
	}
	m.batchPool.Put(batch[:0])
}

// Len returns the current number of queued items.
func (m *MPSC[T]) Len() int { return int(m.size.Load()) }

// PerTenant returns current queue occupancy per tenant.
func (m *MPSC[T]) PerTenant() map[string]int {
	out := make(map[string]int)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, it := range s.items {
			out[m.tenantOf(it)]++
		}
		s.mu.Unlock()
	}
	return out
}

// Close marks the queue closed. The consumer drains remaining items and
// then Take reports ok=false; subsequent pushes are dropped.
func (m *MPSC[T]) Close() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.closedCh)
	}
}
