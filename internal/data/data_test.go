package data

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ftp"
	"repro/internal/globus"
)

func TestNewFileSchemes(t *testing.T) {
	cases := []struct {
		url, scheme, host, path string
	}{
		{"/tmp/x.dat", SchemeFile, "", "/tmp/x.dat"},
		{"file:///tmp/y.dat", SchemeFile, "", "/tmp/y.dat"},
		{"relative/z.dat", SchemeFile, "", "relative/z.dat"},
		{"http://mdf.org/data/a.csv", SchemeHTTP, "mdf.org", "/data/a.csv"},
		{"https://mdf.org/b.csv", SchemeHTTPS, "mdf.org", "/b.csv"},
		{"ftp://mirror:21/pub/c.gz", SchemeFTP, "mirror:21", "/pub/c.gz"},
		{"globus://alcf/sim/d.bin", SchemeGlobus, "alcf", "/sim/d.bin"},
	}
	for _, c := range cases {
		f, err := NewFile(c.url)
		if err != nil {
			t.Fatalf("%s: %v", c.url, err)
		}
		if f.Scheme != c.scheme || f.Host != c.host || f.Path != c.path {
			t.Fatalf("%s parsed as %q %q %q", c.url, f.Scheme, f.Host, f.Path)
		}
	}
}

func TestNewFileErrors(t *testing.T) {
	for _, bad := range []string{"", "gopher://x/y", "http://nopath", "http:///missinghost"} {
		if _, err := NewFile(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestMustFilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFile did not panic")
		}
	}()
	MustFile("gopher://bad/x")
}

func TestFileAccessors(t *testing.T) {
	f := MustFile("http://host/dir/genome.fa")
	if f.Filename() != "genome.fa" {
		t.Fatalf("filename = %q", f.Filename())
	}
	if !f.Remote() {
		t.Fatal("http file not remote")
	}
	if f.Staged() {
		t.Fatal("unstaged file reports staged")
	}
	f.SetLocalPath("/work/genome.fa")
	if f.LocalPath() != "/work/genome.fa" || !f.Staged() {
		t.Fatal("local path lost")
	}
	if f.String() != "http://host/dir/genome.fa" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestLocalFileTranslatesToItself(t *testing.T) {
	f := MustFile("/abs/path.txt")
	if f.Remote() {
		t.Fatal("local file reports remote")
	}
	if f.LocalPath() != "/abs/path.txt" {
		t.Fatalf("local path = %q", f.LocalPath())
	}
}

func TestStageInLocalPassThrough(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := MustFile("/some/local.file")
	p, err := m.StageIn(f)
	if err != nil || p != "/some/local.file" {
		t.Fatalf("stage-in local: %q, %v", p, err)
	}
}

func TestStageInHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/model/weights.bin" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("weights"))
	}))
	defer srv.Close()

	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := MustFile(srv.URL + "/model/weights.bin")
	p, err := m.StageIn(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "weights" {
		t.Fatalf("staged content %q, %v", got, err)
	}
	if f.LocalPath() != p {
		t.Fatal("file not marked staged")
	}
	// Second stage-in is a no-op returning the same path.
	p2, err := m.StageIn(f)
	if err != nil || p2 != p {
		t.Fatalf("re-stage: %q, %v", p2, err)
	}
}

func TestStageInHTTP404(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	m, _ := NewManager(t.TempDir())
	f := MustFile(srv.URL + "/gone")
	if _, err := m.StageIn(f); err == nil {
		t.Fatal("404 staged successfully")
	}
}

func TestStageInFTP(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "ref.fa"), []byte("ACGT"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := ftp.NewServer("127.0.0.1:0", root)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer srv.Close()

	m, _ := NewManager(t.TempDir())
	f := MustFile("ftp://" + srv.Addr() + "/ref.fa")
	p, err := m.StageIn(f)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "ACGT" {
		t.Fatalf("staged %q", got)
	}
}

func TestStageInGlobusThirdParty(t *testing.T) {
	svc := globus.NewService()
	remote := svc.AddEndpoint("mdf")
	svc.AddEndpoint("compute")
	remote.Put("/dft/stopping.csv", []byte("dft-data"))
	tok := svc.Login(time.Hour)

	m, err := NewManager(t.TempDir(), WithGlobus(svc, tok, "compute"))
	if err != nil {
		t.Fatal(err)
	}
	f := MustFile("globus://mdf/dft/stopping.csv")
	p, err := m.StageIn(f)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "dft-data" {
		t.Fatalf("staged %q", got)
	}
}

func TestStageInGlobusWithoutService(t *testing.T) {
	m, _ := NewManager(t.TempDir())
	if _, err := m.StageIn(MustFile("globus://ep/x")); err == nil {
		t.Fatal("globus stage-in without service succeeded")
	}
}

func TestStageOutFile(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir)
	src := filepath.Join(dir, "result.txt")
	if err := os.WriteFile(src, []byte("out"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "published", "result.txt")
	if err := m.StageOut(MustFile(dst), src); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if string(got) != "out" {
		t.Fatalf("staged out %q", got)
	}
}

func TestStageOutFTP(t *testing.T) {
	root := t.TempDir()
	srv, err := ftp.NewServer("127.0.0.1:0", root)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer srv.Close()
	dir := t.TempDir()
	m, _ := NewManager(dir)
	src := filepath.Join(dir, "up.dat")
	_ = os.WriteFile(src, []byte("upload"), 0o644)
	if err := m.StageOut(MustFile("ftp://"+srv.Addr()+"/in/up.dat"), src); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(root, "in", "up.dat"))
	if err != nil || string(got) != "upload" {
		t.Fatalf("ftp stage-out: %q, %v", got, err)
	}
}

func TestStageOutGlobus(t *testing.T) {
	svc := globus.NewService()
	remote := svc.AddEndpoint("archive")
	svc.AddEndpoint("compute")
	tok := svc.Login(time.Hour)
	dir := t.TempDir()
	m, _ := NewManager(dir, WithGlobus(svc, tok, "compute"))
	src := filepath.Join(dir, "image.fits")
	_ = os.WriteFile(src, []byte("pixels"), 0o644)
	if err := m.StageOut(MustFile("globus://archive/lsst/image.fits"), src); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get("/lsst/image.fits")
	if err != nil || string(got) != "pixels" {
		t.Fatalf("globus stage-out: %q, %v", got, err)
	}
}

func TestStageOutUnsupported(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir)
	src := filepath.Join(dir, "x")
	_ = os.WriteFile(src, nil, 0o644)
	if err := m.StageOut(MustFile("http://host/x"), src); !errors.Is(err, ErrUnsupportedScheme) {
		t.Fatalf("err = %v", err)
	}
}

func TestStageOutMissingLocal(t *testing.T) {
	m, _ := NewManager(t.TempDir())
	if err := m.StageOut(MustFile("/dst"), "/no/such/file"); err == nil {
		t.Fatal("missing local staged out")
	}
}

func TestThirdParty(t *testing.T) {
	if !ThirdParty(SchemeGlobus) {
		t.Fatal("globus not third-party")
	}
	if ThirdParty(SchemeHTTP) || ThirdParty(SchemeFTP) || ThirdParty(SchemeFile) {
		t.Fatal("worker-mediated scheme marked third-party")
	}
}

func TestStagePathsUnique(t *testing.T) {
	m, _ := NewManager(t.TempDir())
	a := m.stagePath(MustFile("http://h/same.bin"))
	b := m.stagePath(MustFile("http://h/same.bin"))
	if a == b {
		t.Fatal("stage paths collide for identical filenames")
	}
}

func TestStageInURLDedup(t *testing.T) {
	var fetches atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		_, _ = w.Write([]byte("shared-bytes"))
	}))
	defer srv.Close()

	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct File handles for the same URL (two tasks naming the same
	// input): one transfer, the second resolves from the URL index.
	a := MustFile(srv.URL + "/data.bin")
	b := MustFile(srv.URL + "/data.bin")
	pa, err := m.StageIn(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.StageIn(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("same URL staged twice: %q vs %q", pa, pb)
	}
	if fetches.Load() != 1 {
		t.Fatalf("server saw %d fetches, want 1", fetches.Load())
	}
	st := m.Stats()
	if st.Fetches != 1 || st.URLReuses != 1 || st.DigestReuses != 0 {
		t.Fatalf("stats = %+v, want 1 fetch / 1 URL reuse", st)
	}
	if st.ReusedBytes != int64(len("shared-bytes")) {
		t.Fatalf("ReusedBytes = %d", st.ReusedBytes)
	}
}

func TestStageInDigestDedup(t *testing.T) {
	var fetches atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		_, _ = w.Write([]byte("identical-content"))
	}))
	defer srv.Close()

	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two different URLs serving byte-identical content: both transfers
	// happen (the URL index can't know in advance), but the second copy is
	// discarded and both files share one staged path.
	a := MustFile(srv.URL + "/mirror-one/data.bin")
	b := MustFile(srv.URL + "/mirror-two/data.bin")
	pa, err := m.StageIn(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.StageIn(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("identical content staged at two paths: %q vs %q", pa, pb)
	}
	if fetches.Load() != 2 {
		t.Fatalf("server saw %d fetches, want 2", fetches.Load())
	}
	got, err := os.ReadFile(pa)
	if err != nil || string(got) != "identical-content" {
		t.Fatalf("staged content %q, %v", got, err)
	}
	st := m.Stats()
	if st.Fetches != 2 || st.DigestReuses != 1 || st.URLReuses != 0 {
		t.Fatalf("stats = %+v, want 2 fetches / 1 digest reuse", st)
	}
	// A third handle for the second URL now rides the URL index.
	c := MustFile(srv.URL + "/mirror-two/data.bin")
	pc, err := m.StageIn(c)
	if err != nil || pc != pa {
		t.Fatalf("URL-index after digest dedup: %q, %v", pc, err)
	}
	if st := m.Stats(); st.URLReuses != 1 {
		t.Fatalf("URLReuses = %d after third stage", st.URLReuses)
	}
}
