// Package data implements Parsl's data management layer (§4.5): the File
// abstraction that keeps programs location independent, and the data manager
// that stages remote files in/out and transparently translates paths. Files
// can be local, http(s)://, ftp://, or globus:// references; the manager
// turns a remote reference into a local path in the run's working directory.
//
// HTTP and FTP stage-ins execute as ordinary transfer tasks (the DFK injects
// them into the task graph); Globus transfers are third-party and are driven
// directly by the data manager, which is why the manager owns a simulated
// compute-side Globus endpoint.
package data

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/ftp"
	"repro/internal/globus"
)

func init() {
	gob.Register(&File{})
	gob.Register([]*File{})
}

// Schemes understood by the data manager.
const (
	SchemeFile   = "file"
	SchemeHTTP   = "http"
	SchemeHTTPS  = "https"
	SchemeFTP    = "ftp"
	SchemeGlobus = "globus"
)

// ErrUnsupportedScheme is returned for URLs the manager cannot stage.
var ErrUnsupportedScheme = errors.New("data: unsupported scheme")

// File is a location-independent file reference. Programs pass *File values
// to apps; the runtime replaces them with staged local paths before the app
// body runs. Fields are exported for gob transport; treat them as read-only.
type File struct {
	URL    string
	Scheme string
	Host   string
	Path   string
	// Local is the staged local path ("" before staging). It is exported so
	// the translation survives the serialization boundary to workers; use
	// LocalPath/SetLocalPath rather than touching it directly.
	Local string

	mu sync.Mutex
}

// NewFile parses a file reference. Plain paths become file:// references.
func NewFile(rawurl string) (*File, error) {
	if rawurl == "" {
		return nil, errors.New("data: empty file URL")
	}
	f := &File{URL: rawurl}
	switch {
	case strings.HasPrefix(rawurl, "http://"):
		f.Scheme = SchemeHTTP
	case strings.HasPrefix(rawurl, "https://"):
		f.Scheme = SchemeHTTPS
	case strings.HasPrefix(rawurl, "ftp://"):
		f.Scheme = SchemeFTP
	case strings.HasPrefix(rawurl, "globus://"):
		f.Scheme = SchemeGlobus
	case strings.HasPrefix(rawurl, "file://"):
		f.Scheme = SchemeFile
		f.Path = strings.TrimPrefix(rawurl, "file://")
		return f, nil
	case strings.Contains(rawurl, "://"):
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedScheme, rawurl)
	default:
		f.Scheme = SchemeFile
		f.Path = rawurl
		return f, nil
	}
	rest := rawurl[strings.Index(rawurl, "://")+3:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return nil, fmt.Errorf("data: %s has no path component", rawurl)
	}
	f.Host = rest[:slash]
	f.Path = rest[slash:]
	if f.Host == "" {
		return nil, fmt.Errorf("data: %s has no host component", rawurl)
	}
	return f, nil
}

// MustFile is NewFile that panics, for tests and examples with literal URLs.
func MustFile(rawurl string) *File {
	f, err := NewFile(rawurl)
	if err != nil {
		panic(err)
	}
	return f
}

// Filename returns the base name of the file.
func (f *File) Filename() string { return path.Base(f.Path) }

// Remote reports whether staging is required before local use.
func (f *File) Remote() bool { return f.Scheme != SchemeFile }

// LocalPath returns the translated local path, or "" before staging. Local
// files translate to themselves.
func (f *File) LocalPath() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.Local != "" {
		return f.Local
	}
	if f.Scheme == SchemeFile {
		return f.Path
	}
	return ""
}

// SetLocalPath records the staged location (called by the data manager).
func (f *File) SetLocalPath(p string) {
	f.mu.Lock()
	f.Local = p
	f.mu.Unlock()
}

// Staged reports whether the file is usable locally.
func (f *File) Staged() bool { return f.LocalPath() != "" }

// String implements fmt.Stringer.
func (f *File) String() string { return f.URL }

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithGlobus wires a simulated Globus service into the manager. computeEP is
// the endpoint name representing the compute resource's storage; token must
// come from service.Login.
func WithGlobus(service *globus.Service, token, computeEP string) ManagerOption {
	return func(m *Manager) {
		m.globus = service
		m.globusToken = token
		m.computeEP = computeEP
	}
}

// WithHTTPClient overrides the HTTP client (tests inject short timeouts).
func WithHTTPClient(c *http.Client) ManagerOption {
	return func(m *Manager) { m.httpClient = c }
}

// StageStats counts the staging layer's traffic, separating bytes actually
// moved from bytes saved by the content-addressed indexes. The locality
// scenario reads these to prove a warm run moves ~0 bytes.
type StageStats struct {
	// Fetches is remote transfers actually performed; FetchedBytes the bytes
	// they moved.
	Fetches      int64
	FetchedBytes int64
	// URLReuses is stage-ins served whole from the URL index — no transfer
	// at all. DigestReuses is transfers whose content matched an
	// already-staged copy byte for byte (same digest under a different URL);
	// the duplicate is discarded and the staged copy shared.
	URLReuses    int64
	DigestReuses int64
	// ReusedBytes is the bytes reuse avoided moving or duplicating.
	ReusedBytes int64
}

// Manager stages files to and from the run's working directory. Staged
// content is indexed twice — by source URL (repeat stage-ins of the same
// reference skip the transfer entirely) and by content digest (distinct URLs
// carrying identical bytes share one staged copy) — so a warm run's staging
// cost collapses to index lookups.
type Manager struct {
	workDir     string
	httpClient  *http.Client
	globus      *globus.Service
	globusToken string
	computeEP   string

	mu       sync.Mutex
	stageSeq int64
	byURL    map[string]string // source URL -> staged local path
	byDigest map[string]string // content digest -> staged local path
	stats    StageStats
}

// NewManager creates a manager staging into workDir (created if absent).
func NewManager(workDir string, opts ...ManagerOption) (*Manager, error) {
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, fmt.Errorf("data: workdir: %w", err)
	}
	m := &Manager{
		workDir:    workDir,
		httpClient: &http.Client{Timeout: 30 * time.Second},
		byURL:      make(map[string]string),
		byDigest:   make(map[string]string),
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// WorkDir returns the staging directory.
func (m *Manager) WorkDir() string { return m.workDir }

// stagePath allocates a unique local destination for a file.
func (m *Manager) stagePath(f *File) string {
	m.mu.Lock()
	m.stageSeq++
	seq := m.stageSeq
	m.mu.Unlock()
	return filepath.Join(m.workDir, fmt.Sprintf("stage%04d_%s", seq, f.Filename()))
}

// StageIn makes f available locally and returns the translated path. Local
// files pass through; remote files are fetched per scheme. The translated
// path is also recorded on the File so later references resolve without
// re-transfer ("the data manager first inspects the file to see if it is
// available", §4.5).
func (m *Manager) StageIn(f *File) (string, error) {
	if p := f.LocalPath(); p != "" {
		return p, nil
	}
	// URL index: a different *File naming the same source was already staged;
	// hand it the same local copy with no transfer at all.
	m.mu.Lock()
	if p, ok := m.byURL[f.URL]; ok {
		if fi, err := os.Stat(p); err == nil {
			m.stats.URLReuses++
			m.stats.ReusedBytes += fi.Size()
			m.mu.Unlock()
			f.SetLocalPath(p)
			return p, nil
		}
		// The staged copy vanished out from under the index; re-fetch.
		delete(m.byURL, f.URL)
	}
	m.mu.Unlock()
	dst := m.stagePath(f)
	var digest string
	var size int64
	var err error
	switch f.Scheme {
	case SchemeHTTP, SchemeHTTPS:
		digest, size, err = m.stageHTTP(f, dst)
	case SchemeFTP:
		digest, size, err = m.stageFTP(f, dst)
	case SchemeGlobus:
		digest, size, err = m.stageGlobusIn(f, dst)
	default:
		return "", fmt.Errorf("%w: %s", ErrUnsupportedScheme, f.Scheme)
	}
	if err != nil {
		return "", err
	}
	final := m.commitStage(f.URL, digest, dst, size)
	f.SetLocalPath(final)
	return final, nil
}

// commitStage indexes one fetched file by URL and content digest. When an
// identical copy is already staged (same digest, typically under another
// URL), the fresh duplicate is deleted and the existing path shared.
func (m *Manager) commitStage(url, digest, dst string, size int64) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Fetches++
	m.stats.FetchedBytes += size
	if p, ok := m.byDigest[digest]; ok && p != dst {
		if _, err := os.Stat(p); err == nil {
			m.stats.DigestReuses++
			m.stats.ReusedBytes += size
			m.byURL[url] = p
			_ = os.Remove(dst)
			return p
		}
		delete(m.byDigest, digest)
	}
	m.byDigest[digest] = dst
	m.byURL[url] = dst
	return dst
}

// Stats snapshots the staging layer's fetch/reuse counters.
func (m *Manager) Stats() StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// contentDigest is the %016x FNV-64a content hash — the same digest format
// serialize.Payload.ArgsHash and serialize.DigestBytes report, so staging,
// memoization, and locality advertisements speak one digest vocabulary.
func contentDigest(b []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// stageHTTP fetches f over HTTP(S) into dst, hashing the stream while it
// copies (no second pass over the bytes), and reports the content digest and
// size for the staging indexes.
func (m *Manager) stageHTTP(f *File, dst string) (string, int64, error) {
	resp, err := m.httpClient.Get(f.URL)
	if err != nil {
		return "", 0, fmt.Errorf("data: http stage-in %s: %w", f.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("data: http stage-in %s: status %d", f.URL, resp.StatusCode)
	}
	out, err := os.Create(dst)
	if err != nil {
		return "", 0, fmt.Errorf("data: create %s: %w", dst, err)
	}
	h := fnv.New64a()
	n, err := io.Copy(io.MultiWriter(out, h), resp.Body)
	if err != nil {
		_ = out.Close()
		return "", 0, fmt.Errorf("data: http stage-in %s: %w", f.URL, err)
	}
	if err := out.Close(); err != nil {
		return "", 0, err
	}
	return fmt.Sprintf("%016x", h.Sum64()), n, nil
}

func (m *Manager) stageFTP(f *File, dst string) (string, int64, error) {
	c, err := ftp.Dial(f.Host)
	if err != nil {
		return "", 0, fmt.Errorf("data: ftp stage-in %s: %w", f.URL, err)
	}
	defer c.Quit()
	payload, err := c.Retr(strings.TrimPrefix(f.Path, "/"))
	if err != nil {
		return "", 0, fmt.Errorf("data: ftp stage-in %s: %w", f.URL, err)
	}
	if err := os.WriteFile(dst, payload, 0o644); err != nil {
		return "", 0, err
	}
	return contentDigest(payload), int64(len(payload)), nil
}

func (m *Manager) stageGlobusIn(f *File, dst string) (string, int64, error) {
	if m.globus == nil {
		return "", 0, errors.New("data: globus file used but no Globus service configured")
	}
	// Third-party transfer: source endpoint -> compute endpoint, then
	// materialize onto the local filesystem of the compute resource.
	task, err := m.globus.Submit(m.globusToken, f.Host, f.Path, m.computeEP, f.Path)
	if err != nil {
		return "", 0, fmt.Errorf("data: globus stage-in %s: %w", f.URL, err)
	}
	if _, err := task.Wait(2 * time.Minute); err != nil {
		return "", 0, fmt.Errorf("data: globus stage-in %s: %w", f.URL, err)
	}
	ep, err := m.globus.Endpoint(m.computeEP)
	if err != nil {
		return "", 0, err
	}
	payload, err := ep.Get(f.Path)
	if err != nil {
		return "", 0, err
	}
	if err := os.WriteFile(dst, payload, 0o644); err != nil {
		return "", 0, err
	}
	return contentDigest(payload), int64(len(payload)), nil
}

// StageOut pushes a local file to the remote location f names. Supported for
// file://, ftp:// and globus:// outputs.
func (m *Manager) StageOut(f *File, localPath string) error {
	payload, err := os.ReadFile(localPath)
	if err != nil {
		return fmt.Errorf("data: stage-out read %s: %w", localPath, err)
	}
	switch f.Scheme {
	case SchemeFile:
		if err := os.MkdirAll(filepath.Dir(f.Path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(f.Path, payload, 0o644)
	case SchemeFTP:
		c, err := ftp.Dial(f.Host)
		if err != nil {
			return fmt.Errorf("data: ftp stage-out %s: %w", f.URL, err)
		}
		defer c.Quit()
		return c.Stor(strings.TrimPrefix(f.Path, "/"), payload)
	case SchemeGlobus:
		if m.globus == nil {
			return errors.New("data: globus file used but no Globus service configured")
		}
		ep, err := m.globus.Endpoint(m.computeEP)
		if err != nil {
			return err
		}
		ep.Put(f.Path, payload)
		task, err := m.globus.Submit(m.globusToken, m.computeEP, f.Path, f.Host, f.Path)
		if err != nil {
			return fmt.Errorf("data: globus stage-out %s: %w", f.URL, err)
		}
		if _, err := task.Wait(2 * time.Minute); err != nil {
			return fmt.Errorf("data: globus stage-out %s: %w", f.URL, err)
		}
		return nil
	default:
		return fmt.Errorf("%w for stage-out: %s", ErrUnsupportedScheme, f.Scheme)
	}
}

// ThirdParty reports whether a scheme transfers without occupying a worker
// (§4.5: Globus transfers are executed by the data manager itself, deferring
// resource provisioning; HTTP/FTP transfers run as ordinary tasks).
func ThirdParty(scheme string) bool { return scheme == SchemeGlobus }
