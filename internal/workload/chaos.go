package workload

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/memo"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// ChaosConfig shapes one chaos-plane run: a reference multi-executor
// workload (threadpool + HTEX over the in-memory network) driven under a
// seeded fault schedule, with system invariants asserted afterwards. The
// same seed always arms the same fault schedule (see internal/chaos), so a
// failing run is reproduced by re-running its seed.
type ChaosConfig struct {
	// Seed fixes the fault schedule, the DFK's executor selection, and the
	// interchange's manager selection.
	Seed int64
	// Tasks is the number of distinct tasks submitted (default 240).
	Tasks int
	// DupSubmissions resubmits the first n task arguments a second time,
	// exercising memoization consistency under chaos (default Tasks/8).
	DupSubmissions int
	// Workers sizes the threadpool executor (default 4).
	Workers int
	// Managers is the HTEX manager count (default 3); MgrWorkers the worker
	// goroutines per manager (default 2).
	Managers, MgrWorkers int
	// Retries is the per-task retry budget (default 8 — chaos runs need
	// headroom: every dropped frame or killed manager consumes an attempt).
	Retries int
	// TaskTimeout bounds one attempt; it is the recovery backstop for
	// silently lost work (dropped frames, results lost to corruption), so
	// chaos runs must set it (default 700ms).
	TaskTimeout time.Duration
	// Checkpoint, when non-empty, enables memo checkpointing to this file
	// and arms the post-run checkpoint-consistency invariant.
	Checkpoint string
	// Plan is the fault plan (nil = DefaultChaosPlan()). An empty non-nil
	// plan runs the workload with chaos armed but inert.
	Plan chaos.Plan
	// Watchdog bounds the whole run; a task not terminal by then is reported
	// as the "task stuck" invariant violation (default 90s).
	Watchdog time.Duration
}

func (c *ChaosConfig) normalize() {
	if c.Tasks <= 0 {
		c.Tasks = 240
	}
	if c.DupSubmissions < 0 {
		c.DupSubmissions = 0
	} else if c.DupSubmissions == 0 {
		c.DupSubmissions = c.Tasks / 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Managers <= 0 {
		c.Managers = 3
	}
	if c.MgrWorkers <= 0 {
		c.MgrWorkers = 2
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 700 * time.Millisecond
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 90 * time.Second
	}
	if c.Plan == nil {
		c.Plan = DefaultChaosPlan()
	}
}

// DefaultChaosPlan arms every fault point with modest probabilities: enough
// that a run exercises drop, duplication, corruption, stream resync, manager
// death, injected panics, and dispatch failures, while a Retries-deep budget
// still drives every task to completion.
func DefaultChaosPlan() chaos.Plan {
	return chaos.Plan{
		// Client → interchange task stream.
		{Point: chaos.PointClientSend, Act: chaos.ActDrop, Prob: 0.02},
		{Point: chaos.PointClientSend, Act: chaos.ActDup, Prob: 0.03},
		{Point: chaos.PointClientSend, Act: chaos.ActCorrupt, Prob: 0.03},
		{Point: chaos.PointClientSend, Act: chaos.ActDelay, Prob: 0.05, Delay: time.Millisecond},
		// Interchange → manager task stream.
		{Point: chaos.PointIxTasks, Act: chaos.ActCorrupt, Prob: 0.02},
		{Point: chaos.PointIxTasks, Act: chaos.ActTruncate, Prob: 0.01},
		{Point: chaos.PointIxTasks, Act: chaos.ActDelay, Prob: 0.04, Delay: time.Millisecond},
		// Manager → interchange result stream.
		{Point: chaos.PointMgrResults, Act: chaos.ActCorrupt, Prob: 0.02},
		{Point: chaos.PointMgrResults, Act: chaos.ActDup, Prob: 0.02},
		// Interchange → client result relay. Corruption here is the most
		// expensive fault (recovery waits out the attempt timeout), so it is
		// rare; duplication is cheap and dedups at the client.
		{Point: chaos.PointIxResults, Act: chaos.ActCorrupt, Prob: 0.01},
		{Point: chaos.PointIxResults, Act: chaos.ActDup, Prob: 0.02},
		// Abrupt manager death, at most one per run so a three-manager pool
		// always retains capacity.
		{Point: chaos.PointMgrKill, Act: chaos.ActKill, Prob: 0.004, Max: 1},
		// Execution kernel: real panics through the recovery sandbox, stalls
		// on both executor classes.
		{Point: chaos.PointExecRun, Act: chaos.ActPanic, Prob: 0.01},
		{Point: chaos.PointExecRun, Act: chaos.ActStall, Prob: 0.02, Delay: 2 * time.Millisecond},
		// DFK dispatch pipeline.
		{Point: chaos.PointSubmitFail, Act: chaos.ActFail, Prob: 0.02},
		{Point: chaos.PointLaneDelay, Act: chaos.ActDelay, Prob: 0.05, Delay: 500 * time.Microsecond},
	}
}

// ChaosResult reports one run: outcome tallies, the fired-fault log, and any
// invariant violations (empty = the run upheld every recovery guarantee).
type ChaosResult struct {
	Submitted  int
	Done       int
	Memoized   int
	Failed     int
	Executions int64 // app-body executions; > Done means retries/duplicates ran (legal)
	Retried    int   // tasks that took more than one attempt
	MaxAttempt int   // largest per-task attempt count observed
	Events     []chaos.Event
	Violations []string
	Elapsed    time.Duration
}

// chaosValue is the reference app's deterministic function of the task
// index, so every invariant can recompute the expected value.
func chaosValue(i int) int { return i*3 + 7 }

// RunChaos executes the reference workload under cfg's fault schedule and
// checks the recovery invariants: every task terminal (none lost, none
// stuck), every success carries the right value exactly once, retry counts
// within budget, the broker fully drained, and — when checkpointing — the
// checkpoint file consistent with delivered results.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.normalize()
	inj := chaos.New(cfg.Seed, cfg.Plan)

	reg := serialize.NewRegistry()
	execs := make([]atomic.Int64, cfg.Tasks)
	chaosFn := func(args []any, _ map[string]any) (any, error) {
		i := args[0].(int)
		execs[i].Add(1)
		time.Sleep(500 * time.Microsecond)
		return chaosValue(i), nil
	}

	pool := threadpool.NewWithDepth("pool", cfg.Workers, 64, reg)
	hx := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: cfg.Managers}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: cfg.MgrWorkers, Prefetch: cfg.MgrWorkers},
		Interchange: htex.InterchangeConfig{
			Seed:               cfg.Seed,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 300 * time.Millisecond,
		},
	})
	// Chaos runs with record pooling ON (the default): terminal records are
	// pruned and recycled while faults fire, so the run doubles as the
	// use-after-recycle stress (generation-guard panics would fail the run).
	// Per-task invariants therefore read the monitoring stream, not records.
	store := monitor.NewStore()
	d, err := dfk.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{pool, hx},
		Retries:     cfg.Retries,
		Memoize:     true,
		Checkpoint:  cfg.Checkpoint,
		TaskTimeout: cfg.TaskTimeout,
		Seed:        cfg.Seed,
		Monitor:     store,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	appF, err := d.PythonApp("chaos-f", chaosFn)
	if err != nil {
		_ = d.Shutdown()
		return ChaosResult{}, err
	}

	// Arm the fault plane only around the workload itself, so DFK/executor
	// startup is never faulted (the paper's fault model is runtime failure,
	// not failed deployment).
	restore := chaos.Enable(inj)
	start := time.Now()

	ctx := context.Background()
	submit := func(i int) *future.Future {
		// A third pinned to each executor, a third routed by the scheduler:
		// chaos has to hold invariants on every dispatch shape.
		switch i % 3 {
		case 0:
			return appF.Submit(ctx, []any{i}, dfk.WithExecutor("pool"))
		case 1:
			return appF.Submit(ctx, []any{i}, dfk.WithExecutor("htex"))
		default:
			return appF.Submit(ctx, []any{i})
		}
	}
	// The watchdog covers every wait in the run, including the memoization
	// warm-up below — a wedged early task must surface as a "stuck"
	// violation with the event log attached, never as a silent hang. A
	// closed channel (not time.After's one-shot value) so expiry stays
	// observable across every later wait.
	expired := make(chan struct{})
	watchdog := time.AfterFunc(cfg.Watchdog, func() { close(expired) })
	defer watchdog.Stop()
	settled := func(fs []*future.Future) bool {
		for _, f := range fs {
			select {
			case <-f.DoneChan():
			case <-expired:
				return false
			}
		}
		return true
	}

	futs := make([]*future.Future, 0, cfg.Tasks+cfg.DupSubmissions)
	idx := make([]int, 0, cap(futs))
	for i := 0; i < cfg.Tasks; i++ {
		futs = append(futs, submit(i))
		idx = append(idx, i)
	}

	res := ChaosResult{Submitted: cfg.Tasks}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Duplicate submissions exercise memoization under chaos from both
	// sides: the first half waits for its originals (guaranteed memo hits —
	// unless chaos failed the original), the second half races them
	// (legal double execution, reconciled by value).
	stuck := !settled(futs[:cfg.DupSubmissions/2])
	if !stuck {
		for i := 0; i < cfg.DupSubmissions; i++ {
			futs = append(futs, submit(i))
			idx = append(idx, i)
		}
		res.Submitted = len(futs)
		// Invariant: the graph drains within the watchdog — no task lost or
		// stuck.
		stuck = !settled(futs)
	}
	if stuck {
		n := 0
		for _, f := range futs {
			if !f.Done() {
				n++
			}
		}
		violate("watchdog %v expired with %d/%d tasks unsettled", cfg.Watchdog, n, len(futs))
	}
	restore()
	res.Events = inj.Events()

	if stuck {
		// A graceful Shutdown would block on the stuck tasks, but leaving
		// the wedged DFK running would leak its traffic into the process-
		// global fault points — polluting the next seed's schedule in a
		// multi-seed run. Best effort: shutting the executors fails all
		// pending work fast, which drains the DFK's retry machinery; bound
		// the wait in case even that wedges. The violation above already
		// fails the run either way.
		_ = pool.Shutdown()
		_ = hx.Shutdown()
		sd := make(chan struct{})
		go func() {
			_ = d.Shutdown()
			close(sd)
		}()
		select {
		case <-sd:
		case <-time.After(15 * time.Second):
			violate("teardown of the wedged run did not complete; later seeds in this process may see foreign fault-point traffic")
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Invariant: every success carries exactly the expected value.
	for k, f := range futs {
		v, ferr := f.Result()
		if ferr != nil {
			res.Failed++
			violate("task arg %d lost: retry budget exhausted: %v", idx[k], ferr)
			continue
		}
		if got, ok := v.(int); !ok || got != chaosValue(idx[k]) {
			violate("task arg %d: value %v, want %d", idx[k], v, chaosValue(idx[k]))
		}
	}

	// Broker invariants before teardown: the interchange queue and every
	// manager's outstanding set drain to zero — no in-flight leak survived
	// the faults. Ghost attempts (timed out at the DFK, retried elsewhere,
	// but still crossing the htex wire) may lag the futures briefly, so this
	// is an eventually-drains check, not an instantaneous sample.
	drained := func() bool {
		if hx.Interchange().QueueDepth() != 0 {
			return false
		}
		for _, n := range hx.Interchange().OutstandingByManager() {
			if n != 0 {
				return false
			}
		}
		// hx.Outstanding covers the client's pending map: a wire-lost ghost
		// attempt (dropped frame + timeout retry) must not leak there.
		return pool.Outstanding() == 0 && hx.Outstanding() == 0
	}
	quiesce := time.Now().Add(15 * time.Second)
	for !drained() && time.Now().Before(quiesce) {
		time.Sleep(2 * time.Millisecond)
	}
	if qd := hx.Interchange().QueueDepth(); qd != 0 {
		violate("interchange queue holds %d tasks after drain", qd)
	}
	for mgr, n := range hx.Interchange().OutstandingByManager() {
		if n != 0 {
			violate("manager %s still holds %d tasks after drain", mgr, n)
		}
	}
	if n := pool.Outstanding(); n != 0 {
		violate("threadpool still holds %d tasks after drain", n)
	}
	if n := hx.Outstanding(); n != 0 {
		violate("htex client still tracks %d tasks after drain — ghost attempts leaked", n)
	}

	// Task-level invariants, reconstructed from the monitoring stream —
	// terminal records have been pruned and recycled, so the records
	// themselves are gone by design: exactly one terminal transition per
	// task (a result is never delivered twice), launches within the retry
	// budget.
	launches := make(map[int64]int)
	terminals := make(map[int64]int)
	finals := make(map[int64]string)
	for _, e := range store.Events(monitor.KindTaskState) {
		switch e.To {
		case "launched":
			launches[e.TaskID]++
		case "done", "failed", "memoized":
			terminals[e.TaskID]++
		}
		finals[e.TaskID] = e.To
	}
	for id, st := range finals {
		if n := terminals[id]; n != 1 {
			violate("task %d reached a terminal state %d times (final %q)", id, n, st)
		}
	}
	for id, n := range launches {
		// Each launch is one attempt: at most Retries retries plus the
		// first attempt.
		if n > cfg.Retries+1 {
			violate("task %d launched %d times, budget %d+1", id, n, cfg.Retries)
		}
		if n > 1 {
			res.Retried++
			if n > res.MaxAttempt {
				res.MaxAttempt = n
			}
		}
	}
	sum := d.Summary()
	res.Done = sum["done"]
	res.Memoized = sum["memoized"]
	if d.Outstanding() != 0 {
		violate("graph outstanding = %d after drain", d.Outstanding())
	}

	// Reclamation invariants: with pooling on, the drained graph is empty —
	// steady-state residency is the live frontier, so once every future has
	// settled (WaitAll orders us after the final retire) every record must
	// have been pruned and recycled, and the monitor must have seen pruning.
	d.WaitAll()
	if n := d.Graph().LiveNodes(); n != 0 {
		violate("graph holds %d live records after drain (reclamation leak)", n)
	}
	if n := d.Graph().RecycledNodes(); n != int64(res.Submitted) {
		violate("recycled %d records, want %d (one per submission)", n, res.Submitted)
	}
	if len(store.Events(monitor.KindGraph)) == 0 {
		violate("no graph-reclamation event emitted")
	}

	for i := range execs {
		if execs[i].Load() == 0 && res.Failed == 0 {
			violate("task arg %d completed without ever executing", i)
		}
	}
	res.Executions = totalExecs(execs)

	if err := d.Shutdown(); err != nil {
		violate("shutdown: %v", err)
	}

	// Checkpoint consistency: every distinct argument that completed must be
	// present in the persisted file under its recomputed memo key, with the
	// delivered value (JSON round-trips ints as float64, so compare
	// numerically). Keys are recomputed from scratch — app name, body hash,
	// re-encoded args — because the records that carried them are recycled.
	if cfg.Checkpoint != "" {
		m := memo.New()
		if err := m.LoadCheckpoint(cfg.Checkpoint); err != nil {
			violate("checkpoint reload: %v", err)
		} else {
			entry, _ := reg.Lookup("chaos-f")
			seen := make(map[int]bool)
			for k, f := range futs {
				i := idx[k]
				if seen[i] {
					continue
				}
				seen[i] = true
				v, ferr := f.Result()
				if ferr != nil {
					continue // lost to an exhausted retry budget; not checkpointed
				}
				p, perr := serialize.EncodeArgs([]any{i}, nil)
				if perr != nil {
					violate("re-encode args %d: %v", i, perr)
					continue
				}
				key := memo.KeyFromPayload("chaos-f", entry.BodyHash(), p)
				p.Release()
				got, ok := m.Lookup(key)
				if !ok {
					violate("completed task arg %d missing from checkpoint", i)
					continue
				}
				if toF64(got) != toF64(v) {
					violate("task arg %d checkpoint value %v != delivered %v", i, got, v)
				}
			}
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

func totalExecs(execs []atomic.Int64) int64 {
	var n int64
	for i := range execs {
		n += execs[i].Load()
	}
	return n
}

func toF64(v any) float64 {
	switch t := v.(type) {
	case int:
		return float64(t)
	case int64:
		return float64(t)
	case float64:
		return t
	default:
		return -1
	}
}
