package workload

import (
	"fmt"
	"testing"
)

// TestWALCrashMatrix generalizes TestChaosCheckpointResume from "crash after
// a clean first program" to "crash at EVERY WAL record boundary": a baseline
// run establishes the full record count R, then the two-lifetime scenario is
// replayed R+1 times with the process hard-stopped at record boundary k for
// every k in [0, R]. At no boundary may a task be lost, double-delivered,
// re-executed after its terminal record was durable, or launched past its
// cross-lifetime retry budget.
func TestWALCrashMatrix(t *testing.T) {
	const tasks = 6
	cfg := WALCrashConfig{Tasks: tasks, Retries: 1, Seed: 7}

	// Baseline: no crash. The record stream must be exactly submit + launch +
	// terminal per task — this pins R for the matrix AND catches accidental
	// extra records on the dispatch path.
	cfg.Boundary = -1
	cfg.Dir = t.TempDir()
	base, err := RunWALCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range base.Violations {
		t.Errorf("baseline: %s", v)
	}
	if base.Records != 3*tasks {
		t.Fatalf("baseline wrote %d records; want %d (3 per task)", base.Records, 3*tasks)
	}
	if base.LiveAtCrash != 0 || base.TerminalAtCrash != tasks {
		t.Fatalf("baseline frontier: live=%d terminal=%d", base.LiveAtCrash, base.TerminalAtCrash)
	}
	if base.ReExecuted != 0 {
		t.Fatalf("baseline re-executed %d tasks after a clean shutdown", base.ReExecuted)
	}

	for k := int64(0); k <= base.Records; k++ {
		k := k
		t.Run(fmt.Sprintf("boundary-%02d", k), func(t *testing.T) {
			cfg := cfg
			cfg.Boundary = k
			cfg.Dir = t.TempDir()
			res, err := RunWALCrash(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("boundary %d: %s", k, v)
			}
			if t.Failed() {
				t.Logf("boundary %d state: records=%d live=%d terminal=%d reexec=%d memohits=%d",
					k, res.Records, res.LiveAtCrash, res.TerminalAtCrash, res.ReExecuted, res.MemoHits)
			}
			if res.Records != k {
				t.Errorf("crash at boundary %d left %d durable records", k, res.Records)
			}
		})
	}
}
