package workload

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// chaosSeeds returns the seed matrix: CHAOS_SEEDS (comma-separated) when
// set — the CI chaos job pins one seed per matrix leg, and a failing seed is
// re-run locally the same way — else the default five.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3, 4, 5}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// dumpChaosLog writes a run's seed and fired-fault schedule to
// CHAOS_LOG_DIR (when set) so CI can attach the reproduction recipe to a
// failure artifact.
func dumpChaosLog(t *testing.T, name string, seed int64, res ChaosResult) {
	dir := os.Getenv("CHAOS_LOG_DIR")
	if dir == "" {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\nseed: %d\nreproduce: CHAOS_SEEDS=%d go test ./internal/workload/ -run TestChaosRecoverySeeds -race -count=1\n", name, seed, seed)
	fmt.Fprintf(&b, "submitted=%d done=%d memoized=%d failed=%d executions=%d retried=%d elapsed=%v\n",
		res.Submitted, res.Done, res.Memoized, res.Failed, res.Executions, res.Retried, res.Elapsed)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	for _, e := range res.Events {
		fmt.Fprintf(&b, "event: %s\n", e)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos log dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos_%s_seed%d.log", name, seed))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos log write: %v", err)
	}
}

// TestChaosRecoverySeeds is the acceptance matrix: the reference
// multi-executor workload, under the full default fault plan, upholds every
// recovery invariant for each seed. Checkpointing is enabled so the
// memo/checkpoint-consistency invariant is armed too.
func TestChaosRecoverySeeds(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			res, err := RunChaos(ChaosConfig{
				Seed:       seed,
				Checkpoint: filepath.Join(t.TempDir(), "chaos.ckpt"),
			})
			if err != nil {
				t.Fatal(err)
			}
			dumpChaosLog(t, "recovery", seed, res)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				t.Logf("reproduce with: CHAOS_SEEDS=%d go test ./internal/workload/ -run TestChaosRecoverySeeds -race -count=1", seed)
				for _, e := range res.Events {
					t.Logf("event: %s", e)
				}
			}
			if res.Done == 0 {
				t.Fatal("no task completed")
			}
			if res.Memoized == 0 {
				t.Error("no memo hit — duplicate submissions not exercising memoization")
			}
		})
	}
}

// TestChaosScheduleReproducible re-runs one seed and asserts the pure-function
// property that makes a CI seed replayable: the decision for a given
// (point, rule, matched-hit) is fixed — every firing observed in both runs
// must agree on action and delay, and a (rule, hit) pair never fires twice
// within a run. (Which hits get to fire CAN differ across runs: sibling
// rules at a point advance their counters on every hit, so under
// concurrency the pairing of sibling hit indices within one call skews
// with the interleaving, and a hit fired in one run may be suppressed by a
// sibling winning that call in the other. Hit counts also track traffic
// volume, which retries change.)
func TestChaosScheduleReproducible(t *testing.T) {
	run := func() ChaosResult {
		res, err := RunChaos(ChaosConfig{Seed: 7, Tasks: 120})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res
	}
	a, b := run(), run()

	decisions := func(evs []chaos.Event) map[string]string {
		out := make(map[string]string)
		for _, e := range evs {
			k := fmt.Sprintf("%s/r%d#%d", e.Point, e.Rule, e.Hit)
			v := fmt.Sprintf("%s %v", e.Act, e.Delay)
			if prev, dup := out[k]; dup {
				t.Fatalf("%s fired twice in one run: %q then %q", k, prev, v)
			}
			out[k] = v
		}
		return out
	}
	da, db := decisions(a.Events), decisions(b.Events)
	if len(da) == 0 {
		t.Fatal("run fired no faults")
	}
	common := 0
	for k, va := range da {
		vb, ok := db[k]
		if !ok {
			continue
		}
		common++
		if va != vb {
			t.Fatalf("decision diverged at %s: %q vs %q", k, va, vb)
		}
	}
	if common == 0 {
		t.Fatalf("no common (rule, hit) firings between runs (%d vs %d events) — schedules are unrelated", len(da), len(db))
	}
}

// TestChaosManagerKillRecovery is the end-to-end crash-recovery test: a
// manager is killed mid-batch through the chaos plane (abrupt death, no
// BYE), and every outstanding task must still complete — the interchange
// reports the held tasks lost, the DFK retries them onto surviving capacity
// — with each result observed exactly once.
func TestChaosManagerKillRecovery(t *testing.T) {
	// The kill fires on the schedule's first hit at the kill point: the
	// first task any manager dequeues kills that manager while the rest of
	// the batch sits in its buffer — mid-batch by construction.
	inj := chaos.New(1, chaos.Plan{
		{Point: chaos.PointMgrKill, Act: chaos.ActKill, Prob: 1.0, Max: 1},
	})
	restore := chaos.Enable(inj)
	defer restore()

	reg := serialize.NewRegistry()
	var execs atomic.Int64
	hx := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 3}),
		InitBlocks: 1,
		// Manager heartbeat must beat the interchange's loss threshold —
		// the default 200ms period is rejected against a 150ms threshold.
		Manager: htex.ManagerConfig{Workers: 2, Prefetch: 2, HeartbeatPeriod: 50 * time.Millisecond},
		Interchange: htex.InterchangeConfig{
			Seed:               1,
			HeartbeatPeriod:    30 * time.Millisecond,
			HeartbeatThreshold: 150 * time.Millisecond,
		},
	})
	// Pooling stays on: the kill/retry churn must recycle records cleanly,
	// so retry evidence is read from the monitoring stream instead.
	store := monitor.NewStore()
	d, err := dfk.New(dfk.Config{
		Registry:  reg,
		Executors: []executor.Executor{hx},
		Retries:   4,
		Seed:      1,
		Monitor:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.PythonApp("kill-f", func(args []any, _ map[string]any) (any, error) {
		execs.Add(1)
		time.Sleep(time.Millisecond)
		return args[0].(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	futs := make([]*future.Future, n)
	completions := make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = app.Submit(context.Background(), []any{i})
		futs[i].AddDoneCallback(func(*future.Future) { completions[i].Add(1) })
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatalf("task %d lost across manager kill: %v", i, err)
		}
		if v != i*2 {
			t.Fatalf("task %d = %v, want %d", i, v, i*2)
		}
	}
	if got := inj.Fires(chaos.PointMgrKill); got != 1 {
		t.Fatalf("kill fired %d times, want 1", got)
	}
	// The kill must actually have cost tasks a retry: at least one task
	// launched more than once, with the retries flowing through the lost-
	// task requeue path. The records themselves are recycled by now, so the
	// launch counts come from the task-state event history.
	launches := make(map[int64]int)
	for _, e := range store.Events(monitor.KindTaskState) {
		if e.To == "launched" {
			launches[e.TaskID]++
		}
	}
	retried := 0
	for _, c := range launches {
		if c > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("manager kill cost no task a retry — the crash was not mid-batch")
	}
	// Kill-path recycling: the drained graph holds nothing, every record
	// was reclaimed, despite mid-batch loss and ghost attempts.
	d.WaitAll()
	if got := d.Graph().LiveNodes(); got != 0 {
		t.Fatalf("graph holds %d live records after drain", got)
	}
	if got := d.Graph().RecycledNodes(); got != n {
		t.Fatalf("recycled %d records, want %d", got, n)
	}
	for i := range completions {
		if c := completions[i].Load(); c != 1 {
			t.Fatalf("task %d observed %d completions, want exactly 1", i, c)
		}
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCheckpointResume is the checkpoint-resume integration test: a
// workload runs with Config.Checkpoint, the DFK is torn down mid-run (half
// the tasks canceled before they can complete), and a restarted DFK over the
// same file must memo-hit every completed task and re-execute — to the same
// values — only the ones the teardown interrupted.
func TestChaosCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "resume.ckpt")
	reg1 := serialize.NewRegistry()
	const n = 40
	var execs1 [n]atomic.Int64

	pool1 := threadpool.New("pool", 4, reg1)
	d1, err := dfk.New(dfk.Config{
		Registry: reg1, Executors: []executor.Executor{pool1},
		Memoize: true, Checkpoint: ckpt, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	app1, err := d1.PythonApp("resume-f", func(args []any, _ map[string]any) (any, error) {
		i := args[0].(int)
		execs1[i].Add(1)
		return i*10 + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// First half completes; second half is canceled before launch — the
	// mid-run teardown. Canceled tasks never reach the memo table.
	gate := make(chan struct{})
	gateApp, err := d1.PythonApp("resume-gate", func([]any, map[string]any) (any, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	doneHalf := make([]*future.Future, n/2)
	for i := 0; i < n/2; i++ {
		doneHalf[i] = app1.Submit(context.Background(), []any{i})
	}
	if err := future.Wait(doneHalf...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	gateFut := gateApp.Submit(context.Background(), nil)
	interrupted := make([]*future.Future, 0, n/2)
	for i := n / 2; i < n; i++ {
		// Dependency on the gate keeps these unlaunched until canceled.
		interrupted = append(interrupted, app1.Submit(ctx, []any{i, gateFut}))
	}
	cancel()
	for _, f := range interrupted {
		if _, err := f.Result(); !errors.Is(err, dfk.ErrCanceled) {
			t.Fatalf("interrupted task: %v, want ErrCanceled", err)
		}
	}
	close(gate)
	if err := d1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same checkpoint: same app name and version, so
	// memo keys match across processes.
	reg2 := serialize.NewRegistry()
	var execs2 [n]atomic.Int64
	pool2 := threadpool.New("pool", 4, reg2)
	d2, err := dfk.New(dfk.Config{
		Registry: reg2, Executors: []executor.Executor{pool2},
		Memoize: true, Checkpoint: ckpt, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown()
	app2, err := d2.PythonApp("resume-f", func(args []any, _ map[string]any) (any, error) {
		i := args[0].(int)
		execs2[i].Add(1)
		return i*10 + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = app2.Submit(context.Background(), []any{i})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatalf("resumed task %d: %v", i, err)
		}
		// JSON checkpoints round-trip ints as float64; both are the same
		// value numerically.
		if got := toF64(v); got != float64(i*10+1) {
			t.Fatalf("resumed task %d = %v, want %d", i, v, i*10+1)
		}
	}
	// The records are recycled once terminal; the state tallies (which fold
	// in pruned counts) carry the memo-hit/re-execution split.
	sum := d2.Summary()
	memoized, reexecuted := sum["memoized"], sum["done"]
	if memoized != n/2 || reexecuted != n/2 {
		t.Fatalf("memoized=%d reexecuted=%d, want %d/%d", memoized, reexecuted, n/2, n/2)
	}
	for i := 0; i < n/2; i++ {
		if execs2[i].Load() != 0 {
			t.Fatalf("checkpointed task %d re-executed on resume", i)
		}
	}
	for i := n / 2; i < n; i++ {
		if execs2[i].Load() != 1 {
			t.Fatalf("interrupted task %d executed %d times on resume, want 1", i, execs2[i].Load())
		}
	}
}

// TestChaosInertPlanIsCleanRun pins that an armed-but-empty plan changes
// nothing: the workload completes with no retries and no fired events.
func TestChaosInertPlanIsCleanRun(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 3, Tasks: 60, Plan: chaos.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Events) != 0 {
		t.Fatalf("inert plan fired events: %v", res.Events)
	}
	if res.Failed != 0 {
		t.Fatalf("failed=%d", res.Failed)
	}
}

// TestChaosDroppedFrameLeavesNoGhosts pins the ghost-attempt cleanup: a
// dropped client→interchange frame makes its tasks time out and retry under
// fresh wire ids, and the abandoned attempts must be struck from the htex
// client (pending map, inflight map, Outstanding) rather than leaking for
// the life of the process and inflating the scheduler's load signal.
func TestChaosDroppedFrameLeavesNoGhosts(t *testing.T) {
	inj := chaos.New(31, chaos.Plan{
		{Point: chaos.PointClientSend, Act: chaos.ActDrop, Prob: 1.0, Max: 1},
	})
	restore := chaos.Enable(inj)
	defer restore()

	reg := serialize.NewRegistry()
	hx := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: 2, Prefetch: 2},
		Interchange: htex.InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	})
	d, err := dfk.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{hx},
		Retries:     3,
		TaskTimeout: 300 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("ghost-f", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*future.Future, 6)
	for i := range futs {
		futs[i] = app.Submit(context.Background(), []any{i})
	}
	for i, f := range futs {
		if v, err := f.Result(); err != nil || v != i {
			t.Fatalf("task %d: %v, %v", i, v, err)
		}
	}
	if inj.Fires(chaos.PointClientSend) != 1 {
		t.Fatalf("drop fired %d times, want 1", inj.Fires(chaos.PointClientSend))
	}
	// The dropped frame's attempts must be fully struck from the client.
	deadline := time.Now().Add(5 * time.Second)
	for hx.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := hx.Outstanding(); n != 0 {
		t.Fatalf("htex client still tracks %d ghost attempts after all futures settled", n)
	}
}
