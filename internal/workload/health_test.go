package workload

import (
	"testing"
	"time"
)

// TestHealthScenarioSeeds drives the self-healing kill-storm scenario across
// a small seed matrix: repeated manager kills plus one poison task. RunHealth
// itself asserts the invariants (poison quarantined after exactly N kills,
// bulk goodput recovers through breaker failover, zero tasks lost or
// double-delivered); the test fails on any reported violation.
func TestHealthScenarioSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm scenario in -short mode")
	}
	for _, seed := range []int64{11, 23} {
		res, err := RunHealth(HealthConfig{Seed: seed, Tasks: 120, Watchdog: 60 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: violation: %s", seed, v)
		}
		t.Logf("seed %d: submitted=%d done=%d kills=%d poison=%v transitions=%v backoffs=%d retried=%d maxLaunches=%d elapsed=%v",
			seed, res.Submitted, res.Done, res.Kills, res.PoisonKills, res.Transitions,
			res.Backoffs, res.Retried, res.MaxLaunches, res.Elapsed)
		if t.Failed() {
			t.Fatalf("seed %d: reproduce with: go test ./internal/workload/ -run TestHealthScenarioSeeds (seed list in test body)", seed)
		}
	}
}
