package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// This file holds the two arms of the sharded-control-plane scenario:
//
//   - RunShardFailover kills one interchange shard of a sharded HTEX pool
//     mid-workload (through the chaos plane, addressed by shard label) and
//     asserts the failover contract: only the dead shard's outstanding set
//     is re-executed, the survivors keep draining untouched, and every task
//     still completes exactly once.
//   - RunShardScaling drives the same total manager capacity through S
//     shards and reports client-observed throughput, so CI can hold the
//     horizontal-scaling bar (N shards beat one broker once the single
//     router is the bottleneck).

// ShardFailoverConfig shapes one failover run.
type ShardFailoverConfig struct {
	// Seed fixes the chaos schedule, manager selection, and DFK jitter.
	Seed int64
	// Shards is the interchange shard count (default 4, min 2 — killing the
	// only shard is a different scenario).
	Shards int
	// Victim is the shard index the chaos plan kills (default 1).
	Victim int
	// Tasks is the workload size (default 160).
	Tasks int
	// Managers is the total manager count across all shards (default 8);
	// MgrWorkers the worker goroutines per manager (default 1).
	Managers, MgrWorkers int
	// TaskMillis is each task's simulated work (default 15ms — long enough
	// that the victim shard still holds work when the kill lands).
	TaskMillis int
	// Retries is the charged per-task retry budget (default 8; shard loss
	// classifies as executor-lost, which also has free-retry headroom).
	Retries int
	// TaskTimeout bounds one attempt (default 5s).
	TaskTimeout time.Duration
	// Watchdog bounds the whole run (default 90s).
	Watchdog time.Duration
	// SchedulerPolicy names the DFK's executor-selection policy ("" = the
	// default random pick). The acceptance matrix drives "locality" through
	// here: digest-aware routing must survive a shard kill unchanged.
	SchedulerPolicy string
}

func (c *ShardFailoverConfig) normalize() {
	if c.Shards < 2 {
		c.Shards = 4
	}
	if c.Victim < 0 || c.Victim >= c.Shards {
		c.Victim = 1
	}
	if c.Tasks <= 0 {
		c.Tasks = 160
	}
	if c.Managers <= 0 {
		c.Managers = 8
	}
	if c.MgrWorkers <= 0 {
		c.MgrWorkers = 1
	}
	if c.TaskMillis <= 0 {
		c.TaskMillis = 15
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 5 * time.Second
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 90 * time.Second
	}
}

// ShardFailoverResult reports one failover run.
type ShardFailoverResult struct {
	Submitted     int
	Done          int
	Retried       int   // tasks that took more than one launch
	ExtraLaunches int   // total launches beyond one per task
	VictimHeld    int   // victim shard's inflight count at the kill snapshot
	SurvivorMgrs  []int // per-survivor-shard manager counts after the kill
	ShardsAlive   int
	ShardsTotal   int
	Health        string // merged breaker state after the kill ("degraded")
	Kills         int    // chaos PointIxKill fires (must be exactly 1)
	Events        []chaos.Event
	Violations    []string
	Elapsed       time.Duration
}

func shardValue(i int) int { return i*7 + 1 }

// RunShardFailover executes the kill-one-shard scenario. The chaos plan is
// armed only once the victim shard demonstrably holds outstanding work, so
// the kill always lands mid-flight; the injector addresses the victim by its
// shard label ("htex[1]"), proving the chaos plane resolves individual
// shards of one logical executor.
func RunShardFailover(cfg ShardFailoverConfig) (ShardFailoverResult, error) {
	cfg.normalize()
	victimLabel := fmt.Sprintf("htex[%d]", cfg.Victim)
	inj := chaos.New(cfg.Seed, chaos.Plan{
		{Point: chaos.PointIxKill, Act: chaos.ActKill, Prob: 1, Match: victimLabel, Max: 1},
	})

	reg := serialize.NewRegistry()
	taskFn := func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(cfg.TaskMillis) * time.Millisecond)
		return shardValue(args[0].(int)), nil
	}

	hx := htex.New(htex.Config{
		Label:      "htex",
		Shards:     cfg.Shards,
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: cfg.Managers}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: cfg.MgrWorkers, Prefetch: cfg.MgrWorkers},
		Interchange: htex.InterchangeConfig{
			Seed:               cfg.Seed,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 300 * time.Millisecond,
		},
	})
	store := monitor.NewStore()
	d, err := dfk.New(dfk.Config{
		Registry:        reg,
		Executors:       []executor.Executor{hx},
		Retries:         cfg.Retries,
		TaskTimeout:     cfg.TaskTimeout,
		Seed:            cfg.Seed,
		Monitor:         store,
		SchedulerPolicy: cfg.SchedulerPolicy,
	})
	if err != nil {
		return ShardFailoverResult{}, err
	}
	app, err := d.PythonApp("shard-bulk", taskFn)
	if err != nil {
		_ = d.Shutdown()
		return ShardFailoverResult{}, err
	}

	start := time.Now()
	res := ShardFailoverResult{Submitted: cfg.Tasks, ShardsTotal: cfg.Shards}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Every shard must hold managers before work flows, or placement spills
	// around empty shards and the victim may carry nothing worth killing.
	ready := time.Now().Add(10 * time.Second)
	for {
		placed, total := 0, 0
		for i := 0; i < hx.ShardCount(); i++ {
			n := hx.Shard(i).ManagerCount()
			total += n
			if n > 0 {
				placed++
			}
		}
		// The whole fleet must be registered — a partial snapshot would read
		// late registrations as kill fallout on the survivors.
		if placed == cfg.Shards && total == cfg.Managers {
			break
		}
		if time.Now().After(ready) {
			_ = d.Shutdown()
			return res, fmt.Errorf("shard failover: %d/%d managers on %d/%d shards",
				total, cfg.Managers, placed, cfg.Shards)
		}
		time.Sleep(time.Millisecond)
	}
	preMgrs := make([]int, hx.ShardCount())
	for i := range preMgrs {
		preMgrs[i] = hx.Shard(i).ManagerCount()
	}

	ctx := context.Background()
	futs := make([]*future.Future, 0, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		futs = append(futs, app.Submit(ctx, []any{i}))
	}

	// Arm the kill only once the victim holds outstanding work: the next
	// frame its interchange handles (a heartbeat at the latest) detonates.
	// The inflight snapshot taken here is a superset of what the victim
	// holds at the kill instant (tasks leave a shard only by completing),
	// so it upper-bounds legitimate re-execution.
	killDeadline := time.Now().Add(10 * time.Second)
	for hx.InflightByShard()[cfg.Victim] == 0 && time.Now().Before(killDeadline) {
		time.Sleep(time.Millisecond)
	}
	pre := hx.InflightByShard()
	res.VictimHeld = pre[cfg.Victim]
	if res.VictimHeld == 0 {
		violate("victim shard %d never held inflight tasks: %v", cfg.Victim, pre)
	}
	restore := chaos.Enable(inj)

	expired := make(chan struct{})
	watchdog := time.AfterFunc(cfg.Watchdog, func() { close(expired) })
	defer watchdog.Stop()
	stuck := false
	for _, f := range futs {
		select {
		case <-f.DoneChan():
		case <-expired:
			stuck = true
		}
		if stuck {
			break
		}
	}
	restore()
	res.Events = inj.Events()
	res.Kills = int(inj.Fires(chaos.PointIxKill))
	if stuck {
		n := 0
		for _, f := range futs {
			if !f.Done() {
				n++
			}
		}
		violate("watchdog %v expired with %d/%d tasks unsettled", cfg.Watchdog, n, len(futs))
		_ = hx.Shutdown()
		_ = d.Shutdown()
		res.Elapsed = time.Since(start)
		return res, nil
	}

	if res.Kills != 1 {
		violate("chaos fired %d shard kills, want exactly 1", res.Kills)
	}

	// Goodput invariant: every task completes with the right value — the
	// victim's lost set re-executes on the survivors via the retry plane.
	for i, f := range futs {
		v, ferr := f.Result()
		if ferr != nil {
			violate("task %d lost: %v", i, ferr)
			continue
		}
		if got, ok := v.(int); !ok || got != shardValue(i) {
			violate("task %d: value %v, want %d", i, v, shardValue(i))
		}
	}

	// Membership invariant: exactly the victim is gone, and the merged
	// health view degrades without going down.
	res.ShardsAlive, res.ShardsTotal = hx.ShardCounts()
	if res.ShardsAlive != cfg.Shards-1 {
		violate("shards alive = %d, want %d (only the victim dead)", res.ShardsAlive, cfg.Shards-1)
	}
	res.Health = hx.ShardHealth()
	if res.Health != "degraded" {
		violate("merged shard health %q, want degraded", res.Health)
	}
	// Blast-radius invariant: the survivors' manager fleets are untouched —
	// the kill must not cascade past the victim's endpoint.
	for i := 0; i < hx.ShardCount(); i++ {
		if i == cfg.Victim {
			continue
		}
		n := hx.Shard(i).ManagerCount()
		res.SurvivorMgrs = append(res.SurvivorMgrs, n)
		if n != preMgrs[i] {
			violate("shard %d manager count %d, was %d before the kill — survivors must be untouched", i, n, preMgrs[i])
		}
	}

	// Exactly-once + bounded-requeue invariants from the monitoring stream:
	// one terminal transition per task, and total re-execution bounded by
	// what the victim held when the kill armed. Tasks on the survivors never
	// relaunch, so extra launches can only come from the victim's set.
	launches := make(map[int64]int)
	terminals := make(map[int64]int)
	for _, e := range store.Events(monitor.KindTaskState) {
		switch e.To {
		case "launched":
			launches[e.TaskID]++
		case "done", "failed", "memoized":
			terminals[e.TaskID]++
		}
	}
	for id, n := range terminals {
		if n != 1 {
			violate("task %d reached a terminal state %d times", id, n)
		}
	}
	for _, n := range launches {
		if n > 1 {
			res.Retried++
			res.ExtraLaunches += n - 1
		}
	}
	if res.Retried == 0 {
		violate("no task re-executed though the victim held %d — the kill missed the workload", res.VictimHeld)
	}
	if res.Retried > res.VictimHeld {
		violate("%d tasks re-executed but the victim held only %d — survivors' tasks were requeued too",
			res.Retried, res.VictimHeld)
	}

	sum := d.Summary()
	res.Done = sum["done"]
	if res.Done != cfg.Tasks {
		violate("done = %d, want %d", res.Done, cfg.Tasks)
	}
	if hx.Outstanding() != 0 {
		violate("htex client still tracks %d tasks after drain", hx.Outstanding())
	}
	for i := 0; i < hx.ShardCount(); i++ {
		if i == cfg.Victim {
			continue
		}
		if qd := hx.Shard(i).QueueDepth(); qd != 0 {
			violate("survivor shard %d queue holds %d tasks after drain", i, qd)
		}
	}
	if d.Outstanding() != 0 {
		violate("graph outstanding = %d after drain", d.Outstanding())
	}

	if err := d.Shutdown(); err != nil {
		violate("shutdown: %v", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ShardScalingConfig shapes one throughput arm of the scaling comparison:
// the same total manager capacity behind S interchange shards, driven hard
// by parallel submitters.
type ShardScalingConfig struct {
	Seed int64
	// Shards is this arm's shard count (default 1).
	Shards int
	// Managers is the total manager count, held constant across arms
	// (default 8); MgrWorkers the workers per manager (default 2).
	Managers, MgrWorkers int
	// Tasks is the total task count (default 4000).
	Tasks int
	// Submitters is the parallel submitter goroutine count (default 4);
	// Batch the tasks per SubmitBatch call (default 32).
	Submitters, Batch int
}

func (c *ShardScalingConfig) normalize() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Managers <= 0 {
		c.Managers = 8
	}
	if c.MgrWorkers <= 0 {
		c.MgrWorkers = 2
	}
	if c.Tasks <= 0 {
		c.Tasks = 4000
	}
	if c.Submitters <= 0 {
		c.Submitters = 4
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
}

// ShardScalingResult reports one throughput arm.
type ShardScalingResult struct {
	Shards      int
	Tasks       int
	Elapsed     time.Duration
	TasksPerSec float64
}

// RunShardScaling drives Tasks no-op tasks through an S-shard HTEX pool and
// reports client-observed throughput. Compare arms at equal total manager
// capacity: the single-broker arm serializes every frame through one router
// goroutine, the sharded arm spreads them over S — the ratio is the
// horizontal scaling the shard layer buys (only observable with enough
// cores to actually run the routers in parallel; the CI bar is gated on
// that).
func RunShardScaling(cfg ShardScalingConfig) (ShardScalingResult, error) {
	cfg.normalize()
	reg := serialize.NewRegistry()
	if err := reg.Register("noop", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	}); err != nil {
		return ShardScalingResult{}, err
	}

	hx := htex.New(htex.Config{
		Label:      "htex",
		Shards:     cfg.Shards,
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: cfg.Managers}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: cfg.MgrWorkers, Prefetch: 2 * cfg.MgrWorkers},
		Interchange: htex.InterchangeConfig{
			Seed:               cfg.Seed,
			HeartbeatPeriod:    100 * time.Millisecond,
			HeartbeatThreshold: time.Second,
		},
	})
	if err := hx.Start(); err != nil {
		return ShardScalingResult{}, err
	}
	defer func() { _ = hx.Shutdown() }()
	ready := time.Now().Add(10 * time.Second)
	for hx.ConnectedWorkers() < cfg.Managers*cfg.MgrWorkers {
		if time.Now().After(ready) {
			return ShardScalingResult{}, fmt.Errorf("shard scaling: %d/%d workers connected",
				hx.ConnectedWorkers(), cfg.Managers*cfg.MgrWorkers)
		}
		time.Sleep(time.Millisecond)
	}

	perSubmitter := cfg.Tasks / cfg.Submitters
	total := perSubmitter * cfg.Submitters
	futs := make([][]*future.Future, cfg.Submitters)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := int64(s * perSubmitter)
			out := make([]*future.Future, 0, perSubmitter)
			for off := 0; off < perSubmitter; off += cfg.Batch {
				n := cfg.Batch
				if off+n > perSubmitter {
					n = perSubmitter - off
				}
				batch := make([]serialize.TaskMsg, n)
				for i := range batch {
					id := base + int64(off+i)
					batch[i] = serialize.TaskMsg{ID: id, App: "noop", Args: []any{int(id)}}
				}
				out = append(out, hx.SubmitBatch(batch)...)
			}
			futs[s] = out
		}(s)
	}
	wg.Wait()
	for _, fs := range futs {
		if err := future.Wait(fs...); err != nil {
			return ShardScalingResult{}, fmt.Errorf("shard scaling (%d shards): %w", cfg.Shards, err)
		}
	}
	elapsed := time.Since(start)
	return ShardScalingResult{
		Shards:      cfg.Shards,
		Tasks:       total,
		Elapsed:     elapsed,
		TasksPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}
