package workload

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/sched"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// This file holds the data-aware scheduling scenario: the content-addressed
// planes (shared result cache, staged-file dedup, digest-advertising
// heartbeats, locality routing) driven end to end, with the cold-vs-warm
// deltas the CI bar pins.
//
//   - Phase 1/2 (cold/warm): a workflow runs once cold — staging every input
//     and executing every task — then a second workflow process (a fresh DFK
//     with an empty memo table) replays it against the same shared cache and
//     staging site. The warm replay must move ~zero bytes and re-execute
//     ~zero tasks.
//   - Phase 3 (routing): two HTEX pools execute a distinct input each; the
//     locality policy must route the repeat of every input to the pool whose
//     managers advertised its digest.
//   - Phase 4 (stale advert): the shard holding one warm digest is killed;
//     the repeat of that input must fall back to a cold run and complete —
//     a stale advertisement is a performance miss, never an error.

// LocalityConfig shapes one locality scenario run.
type LocalityConfig struct {
	// Seed fixes manager selection and DFK jitter.
	Seed int64
	// Tasks is the distinct-input count per phase (default 16).
	Tasks int
	// PayloadBytes sizes each staged input file (default 4096).
	PayloadBytes int
	// Managers is the manager count per pool (default 4); MgrWorkers the
	// worker goroutines per manager (default 1).
	Managers, MgrWorkers int
	// Watchdog bounds the whole run (default 90s).
	Watchdog time.Duration
}

func (c *LocalityConfig) normalize() {
	if c.Tasks <= 0 {
		c.Tasks = 16
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 4096
	}
	if c.Managers <= 0 {
		c.Managers = 4
	}
	if c.MgrWorkers <= 0 {
		c.MgrWorkers = 1
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 90 * time.Second
	}
}

// LocalityResult reports one locality scenario run.
type LocalityResult struct {
	Tasks int

	// Cold/warm replay deltas (phases 1–2). The warm numbers are the bar:
	// executions and fetched bytes must both be ~0 on the replay.
	ColdExecutions, WarmExecutions   int
	ColdFetches, WarmFetches         int64
	ColdBytesFetched, WarmBytesMoved int64
	WarmHitRate                      float64
	CacheStats                       cache.Stats
	StageStats                       data.StageStats

	// Locality routing (phase 3): policy-level hit/miss counters and how
	// many repeats landed on the pool that advertised their digest.
	RouteHits, RouteMisses          int64
	RoutedToHolder, RoutedElsewhere int

	// Stale advertisement (phase 4).
	StaleRerunOK bool

	Violations []string
	Elapsed    time.Duration
}

// localityInput derives input i's content digest exactly as the submit path
// does: the canonical encode-once payload bytes of the task's arguments.
func localityInput(i int) (string, error) {
	p, err := serialize.EncodeArgs([]any{i}, nil)
	if err != nil {
		return "", err
	}
	d := p.ArgsHash()
	p.Release()
	return d, nil
}

func newLocalityHTEX(label string, seed int64, shards int, reg *serialize.Registry, cfg LocalityConfig) *htex.Executor {
	return htex.New(htex.Config{
		Label:      label,
		Shards:     shards,
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: cfg.Managers}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: cfg.MgrWorkers, Prefetch: cfg.MgrWorkers},
		Interchange: htex.InterchangeConfig{
			Seed:               seed,
			Locality:           true,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 300 * time.Millisecond,
		},
	})
}

// RunLocality executes the data-aware scheduling scenario.
func RunLocality(cfg LocalityConfig) (LocalityResult, error) {
	cfg.normalize()
	start := time.Now()
	res := LocalityResult{Tasks: cfg.Tasks}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	deadline := time.Now().Add(cfg.Watchdog)
	waitFor := func(what string, cond func() bool) bool {
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		violate("watchdog: %s", what)
		return false
	}

	// ---- Phases 1–2: cold run, then a warm replay from a second process ----

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, cfg.PayloadBytes)
		for j := range body {
			body[j] = byte(len(r.URL.Path) + j)
		}
		_, _ = w.Write(body)
	}))
	defer srv.Close()
	stageDir, err := os.MkdirTemp("", "locality-stage-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(stageDir)
	site, err := data.NewManager(stageDir)
	if err != nil {
		return res, err
	}

	shared := cache.New(cache.Options{})
	var executions atomic.Int32
	analyze := func(args []any, _ map[string]any) (any, error) {
		executions.Add(1)
		return args[0].(int) * 2, nil
	}

	runReplay := func(procLabel string) error {
		reg := serialize.NewRegistry()
		hx := newLocalityHTEX("htex-"+procLabel, cfg.Seed, 1, reg, cfg)
		d, err := dfk.New(dfk.Config{
			Registry:        reg,
			Executors:       []executor.Executor{hx},
			Seed:            cfg.Seed,
			Memoize:         true,
			SharedCache:     shared,
			SchedulerPolicy: "locality",
		})
		if err != nil {
			return err
		}
		defer func() { _ = d.Shutdown() }()
		app, err := d.PythonApp("analyze", analyze)
		if err != nil {
			return err
		}
		// Stage every input through the shared site, then run the workflow.
		for i := 0; i < cfg.Tasks; i++ {
			f := data.MustFile(fmt.Sprintf("%s/input-%d.bin", srv.URL, i))
			if _, err := site.StageIn(f); err != nil {
				return fmt.Errorf("%s: stage input %d: %w", procLabel, i, err)
			}
		}
		futs := make([]*future.Future, 0, cfg.Tasks)
		for i := 0; i < cfg.Tasks; i++ {
			futs = append(futs, app.Call(i))
		}
		for i, f := range futs {
			v, err := f.Result()
			if err != nil {
				return fmt.Errorf("%s: task %d: %w", procLabel, i, err)
			}
			if v != i*2 {
				return fmt.Errorf("%s: task %d = %v, want %d", procLabel, i, v, i*2)
			}
		}
		return nil
	}

	if err := runReplay("cold"); err != nil {
		return res, err
	}
	res.ColdExecutions = int(executions.Load())
	coldStage := site.Stats()
	res.ColdFetches = coldStage.Fetches
	res.ColdBytesFetched = coldStage.FetchedBytes
	coldCache := shared.Stats()
	if res.ColdExecutions != cfg.Tasks {
		violate("cold run executed %d of %d tasks", res.ColdExecutions, cfg.Tasks)
	}
	if coldCache.Stores != int64(cfg.Tasks) {
		violate("cold run published %d results to the shared cache, want %d", coldCache.Stores, cfg.Tasks)
	}

	if err := runReplay("warm"); err != nil {
		return res, err
	}
	res.WarmExecutions = int(executions.Load()) - res.ColdExecutions
	warmStage := site.Stats()
	res.WarmFetches = warmStage.Fetches - coldStage.Fetches
	res.WarmBytesMoved = warmStage.FetchedBytes - coldStage.FetchedBytes
	res.CacheStats = shared.Stats()
	res.StageStats = warmStage
	if n := res.CacheStats.Hits - coldCache.Hits; n > 0 {
		res.WarmHitRate = float64(n) / float64(cfg.Tasks)
	}
	if res.WarmExecutions != 0 {
		violate("warm replay re-executed %d tasks, want 0", res.WarmExecutions)
	}
	if res.WarmFetches != 0 || res.WarmBytesMoved != 0 {
		violate("warm replay moved %d bytes in %d fetches, want 0", res.WarmBytesMoved, res.WarmFetches)
	}
	if res.WarmHitRate < 1 {
		violate("warm hit rate %.3f, want 1.0", res.WarmHitRate)
	}

	// ---- Phase 3: locality routing across two pools ----

	type runRecord struct {
		mu   sync.Mutex
		byIn map[int][]string
	}
	rec := &runRecord{byIn: make(map[int][]string)}
	recorder := func(label string) serialize.Fn {
		return func(args []any, _ map[string]any) (any, error) {
			i := args[0].(int)
			rec.mu.Lock()
			rec.byIn[i] = append(rec.byIn[i], label)
			rec.mu.Unlock()
			return i, nil
		}
	}
	alphaReg, betaReg := serialize.NewRegistry(), serialize.NewRegistry()
	if err := alphaReg.Register("route", recorder("alpha")); err != nil {
		return res, err
	}
	if err := betaReg.Register("route", recorder("beta")); err != nil {
		return res, err
	}
	alpha := newLocalityHTEX("alpha", cfg.Seed, 2, alphaReg, cfg)
	beta := newLocalityHTEX("beta", cfg.Seed+1, 2, betaReg, cfg)
	loc := sched.NewLocality()
	routeDFK, err := dfk.New(dfk.Config{
		Registry:  serialize.NewRegistry(),
		Executors: []executor.Executor{alpha, beta},
		Seed:      cfg.Seed,
		Retries:   4,
		Scheduler: loc,
	})
	if err != nil {
		return res, err
	}
	defer func() { _ = routeDFK.Shutdown() }()
	route, err := routeDFK.PythonApp("route", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		return res, err
	}

	digests := make([]string, cfg.Tasks)
	for i := range digests {
		if digests[i], err = localityInput(i); err != nil {
			return res, err
		}
	}
	runRound := func(round string) bool {
		futs := make([]*future.Future, 0, cfg.Tasks)
		for i := 0; i < cfg.Tasks; i++ {
			futs = append(futs, route.Call(i))
		}
		for i, f := range futs {
			if _, err := f.Result(); err != nil {
				violate("%s round task %d: %v", round, i, err)
				return false
			}
		}
		return true
	}
	if !runRound("cold") {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	// Every input ran exactly once on exactly one pool; wait until that
	// pool's heartbeat advert makes the digest visible.
	if !waitFor("digest advertisements propagate", func() bool {
		for _, dg := range digests {
			if !alpha.HoldsDigest(dg) && !beta.HoldsDigest(dg) {
				return false
			}
		}
		return true
	}) {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	preHits, _ := loc.Stats()
	if !runRound("warm") {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	res.RouteHits, res.RouteMisses = loc.Stats()
	if warmHits := res.RouteHits - preHits; warmHits != int64(cfg.Tasks) {
		violate("warm round scored %d locality hits, want %d", warmHits, cfg.Tasks)
	}
	rec.mu.Lock()
	for i := 0; i < cfg.Tasks; i++ {
		runs := rec.byIn[i]
		if len(runs) != 2 {
			violate("input %d ran %d times across the routing rounds, want 2", i, len(runs))
			continue
		}
		if runs[1] == runs[0] {
			res.RoutedToHolder++
		} else {
			res.RoutedElsewhere++
		}
	}
	rec.mu.Unlock()
	if res.RoutedElsewhere > 0 {
		violate("%d repeats ran away from their digest holder", res.RoutedElsewhere)
	}

	// ---- Phase 4: stale advertisement degrades to a cold run ----

	// Kill the shard holding input 0's warm digest: the advertisement
	// disappears with it, so the next repeat must fall back, re-execute
	// cold somewhere with capacity, and complete without error.
	staleHolder := alpha
	if beta.HoldsDigest(digests[0]) {
		staleHolder = beta
	}
	killed := false
	for s := 0; s < staleHolder.ShardCount(); s++ {
		if staleHolder.Shard(s).HasDigest(digests[0]) {
			killed = staleHolder.KillShard(s)
			break
		}
	}
	if !killed {
		violate("stale phase: no shard held input 0's digest")
	} else {
		preRuns := len(rec.byIn[0])
		v, err := route.Call(0).Result()
		if err != nil {
			violate("stale rerun failed: %v", err)
		} else if v != 0 {
			violate("stale rerun = %v, want 0", v)
		} else {
			rec.mu.Lock()
			res.StaleRerunOK = len(rec.byIn[0]) == preRuns+1
			rec.mu.Unlock()
			if !res.StaleRerunOK {
				violate("stale rerun did not re-execute (advert should be gone)")
			}
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}
