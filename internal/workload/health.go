package workload

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// HealthConfig shapes one self-healing run: a bulk workload across a
// threadpool and an HTEX pool driven through a seeded manager kill-storm,
// plus one poison task that decapitates every manager that dequeues it. The
// run asserts the retry plane's guarantees: goodput recovers through breaker
// failover, the poison task is quarantined after exactly the configured kill
// count, and no task is lost or double-delivered.
type HealthConfig struct {
	// Seed fixes the kill schedule, executor selection, and backoff jitter.
	Seed int64
	// Tasks is the bulk task count (default 160).
	Tasks int
	// Workers sizes the threadpool (default 4).
	Workers int
	// Managers is the HTEX manager count (default 8); MgrWorkers the worker
	// goroutines per manager (default 2).
	Managers, MgrWorkers int
	// Retries is the charged per-task retry budget (default 8); class-free
	// retries ride on top of it.
	Retries int
	// TaskTimeout bounds one attempt (default 1s — manager-loss detection
	// must land inside it so kills classify as executor-lost, not timeout).
	TaskTimeout time.Duration
	// PoisonKills is the distinct-manager kill count that quarantines the
	// poison task (default 3). The kill rule's fire budget matches it.
	PoisonKills int
	// StormKills is how many additional managers the background kill-storm
	// may take down while dequeuing bulk tasks (default 2). Managers must
	// exceed PoisonKills+StormKills so the pool retains capacity.
	StormKills int
	// Watchdog bounds the whole run (default 90s).
	Watchdog time.Duration
}

func (c *HealthConfig) normalize() {
	if c.Tasks <= 0 {
		c.Tasks = 160
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Managers <= 0 {
		c.Managers = 8
	}
	if c.MgrWorkers <= 0 {
		c.MgrWorkers = 2
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = time.Second
	}
	if c.PoisonKills <= 0 {
		c.PoisonKills = 3
	}
	if c.StormKills < 0 {
		c.StormKills = 0
	} else if c.StormKills == 0 {
		c.StormKills = 2
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 90 * time.Second
	}
}

// HealthResult reports one self-healing run.
type HealthResult struct {
	Submitted   int
	Done        int
	Failed      int      // bulk tasks lost (any is a violation)
	Kills       int      // manager kills the chaos plane fired
	PoisonKills []string // the quarantined task's distinct-manager kill history
	Transitions []string // htex breaker transitions, in order ("closed->open", ...)
	Backoffs    int      // KindHealth backoff events observed
	Retried     int      // tasks that took more than one launch
	MaxLaunches int      // largest per-task launch count observed
	Events      []chaos.Event
	Violations  []string
	Elapsed     time.Duration
}

func healthValue(i int) int { return i*5 + 3 }

// RunHealth executes the kill-storm workload and checks the self-healing
// invariants: the poison task quarantines after exactly PoisonKills distinct
// manager kills, every bulk task completes exactly once with the right value
// (failing over around open breakers), the htex breaker demonstrably cycles
// closed→open→half-open, and the broker drains clean.
func RunHealth(cfg HealthConfig) (HealthResult, error) {
	cfg.normalize()
	inj := chaos.New(cfg.Seed, chaos.Plan{
		// The poison task kills every manager that dequeues it, up to the
		// quarantine bar.
		{Point: chaos.PointMgrKill, Act: chaos.ActKill, Prob: 1, Match: "app=poison", Max: cfg.PoisonKills},
		// A background storm takes down managers dequeuing ordinary work, so
		// recovery is exercised on bulk tasks too (LOST bursts, failover).
		{Point: chaos.PointMgrKill, Act: chaos.ActKill, Prob: 0.9, Max: cfg.StormKills},
	})

	reg := serialize.NewRegistry()
	bulkFn := func(args []any, _ map[string]any) (any, error) {
		time.Sleep(500 * time.Microsecond)
		return healthValue(args[0].(int)), nil
	}
	poisonFn := func(args []any, _ map[string]any) (any, error) { return "survived", nil }

	pool := threadpool.NewWithDepth("pool", cfg.Workers, 64, reg)
	hx := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: cfg.Managers}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: cfg.MgrWorkers, Prefetch: cfg.MgrWorkers},
		Interchange: htex.InterchangeConfig{
			Seed:               cfg.Seed,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 300 * time.Millisecond,
		},
	})
	store := monitor.NewStore()
	d, err := dfk.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{pool, hx},
		Retries:     cfg.Retries,
		TaskTimeout: cfg.TaskTimeout,
		Seed:        cfg.Seed,
		Monitor:     store,
		Health: &health.Options{
			Seed:            cfg.Seed,
			QuarantineAfter: cfg.PoisonKills,
			// MinSamples 1 makes the breaker open on the first recorded loss:
			// the kill schedule, not sample accumulation, decides when the
			// breaker trips, which keeps the run deterministic per seed.
			Breaker: health.BreakerConfig{
				Window: 8, MinSamples: 1, FailureThreshold: 0.5,
				OpenFor: 250 * time.Millisecond, HalfOpenProbes: 2,
			},
		},
	})
	if err != nil {
		return HealthResult{}, err
	}
	bulk, err := d.PythonApp("health-bulk", bulkFn)
	if err != nil {
		_ = d.Shutdown()
		return HealthResult{}, err
	}
	poisonApp, err := d.PythonApp("poison", poisonFn)
	if err != nil {
		_ = d.Shutdown()
		return HealthResult{}, err
	}

	restore := chaos.Enable(inj)
	start := time.Now()
	ctx := context.Background()

	res := HealthResult{Submitted: cfg.Tasks + 1}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	expired := make(chan struct{})
	watchdog := time.AfterFunc(cfg.Watchdog, func() { close(expired) })
	defer watchdog.Stop()

	futs := make([]*future.Future, 0, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		futs = append(futs, bulk.Submit(ctx, []any{i}))
	}
	// The poison task is pinned to HTEX: it cannot escape to the threadpool,
	// so every launch decapitates another manager until quarantine.
	poison := poisonApp.Submit(ctx, nil, dfk.WithExecutor("htex"))

	stuck := false
	for _, f := range append(append([]*future.Future{}, futs...), poison) {
		select {
		case <-f.DoneChan():
		case <-expired:
			stuck = true
		}
		if stuck {
			break
		}
	}
	if stuck {
		n := 0
		for _, f := range futs {
			if !f.Done() {
				n++
			}
		}
		violate("watchdog %v expired with %d/%d bulk tasks unsettled (poison done=%v)",
			cfg.Watchdog, n, len(futs), poison.Done())
	}
	restore()
	res.Events = inj.Events()
	res.Kills = int(inj.Fires(chaos.PointMgrKill))

	if stuck {
		_ = pool.Shutdown()
		_ = hx.Shutdown()
		sd := make(chan struct{})
		go func() {
			_ = d.Shutdown()
			close(sd)
		}()
		select {
		case <-sd:
		case <-time.After(15 * time.Second):
			violate("teardown of the wedged run did not complete")
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Poison invariant: quarantined with exactly the configured kill history —
	// not lost to the retry budget, not completed.
	if _, perr := poison.Result(); perr == nil {
		violate("poison task completed; it must be quarantined")
	} else {
		var qe *health.QuarantineError
		if !errors.As(perr, &qe) {
			violate("poison task failed with %v, want a QuarantineError", perr)
		} else {
			res.PoisonKills = qe.Kills
			if len(qe.Kills) != cfg.PoisonKills {
				violate("poison kill history %v, want %d distinct managers", qe.Kills, cfg.PoisonKills)
			}
		}
	}

	// Goodput invariant: every bulk task completes with the right value.
	for i, f := range futs {
		v, ferr := f.Result()
		if ferr != nil {
			res.Failed++
			violate("bulk task %d lost: %v", i, ferr)
			continue
		}
		if got, ok := v.(int); !ok || got != healthValue(i) {
			violate("bulk task %d: value %v, want %d", i, v, healthValue(i))
		}
	}

	// Breaker invariant: the htex breaker demonstrably cycled — at least one
	// trip and at least one half-open probe window (the poison task cannot
	// reach kill #2 without probing through one).
	for _, e := range store.Events(monitor.KindHealth) {
		switch {
		case e.Detail == "breaker" && e.Executor == "htex":
			res.Transitions = append(res.Transitions, e.From+"->"+e.To)
		case strings.HasPrefix(e.Detail, "backoff"):
			res.Backoffs++
		}
	}
	if !containsString(res.Transitions, "closed->open") {
		violate("htex breaker never opened: transitions %v", res.Transitions)
	}
	if !containsString(res.Transitions, "open->half-open") {
		violate("htex breaker never probed half-open: transitions %v", res.Transitions)
	}
	if res.Backoffs == 0 {
		violate("no backoff events: retries re-entered dispatch inline")
	}
	quarantines := 0
	for _, e := range store.Events(monitor.KindHealth) {
		if strings.HasPrefix(e.Detail, "quarantine") {
			quarantines++
		}
	}
	if quarantines != 1 {
		violate("quarantine events = %d, want exactly 1", quarantines)
	}

	// Broker drain: no in-flight leak survived the kill-storm.
	drained := func() bool {
		if hx.Interchange().QueueDepth() != 0 {
			return false
		}
		for _, n := range hx.Interchange().OutstandingByManager() {
			if n != 0 {
				return false
			}
		}
		return pool.Outstanding() == 0 && hx.Outstanding() == 0
	}
	quiesce := time.Now().Add(15 * time.Second)
	for !drained() && time.Now().Before(quiesce) {
		time.Sleep(2 * time.Millisecond)
	}
	if qd := hx.Interchange().QueueDepth(); qd != 0 {
		violate("interchange queue holds %d tasks after drain", qd)
	}
	if n := pool.Outstanding(); n != 0 {
		violate("threadpool still holds %d tasks after drain", n)
	}
	if n := hx.Outstanding(); n != 0 {
		violate("htex client still tracks %d tasks after drain", n)
	}

	// Exactly-once delivery, reconstructed from the monitoring stream: one
	// terminal transition per task, launches bounded by the charged budget
	// plus the free per-class allowances (executor-lost 6 + transient 8).
	launches := make(map[int64]int)
	terminals := make(map[int64]int)
	for _, e := range store.Events(monitor.KindTaskState) {
		switch e.To {
		case "launched":
			launches[e.TaskID]++
		case "done", "failed", "memoized":
			terminals[e.TaskID]++
		}
	}
	for id, n := range terminals {
		if n != 1 {
			violate("task %d reached a terminal state %d times", id, n)
		}
	}
	freeAllowance := 14
	for id, n := range launches {
		if n > cfg.Retries+1+freeAllowance {
			violate("task %d launched %d times, budget %d+1 (+%d free)", id, n, cfg.Retries, freeAllowance)
		}
		if n > 1 {
			res.Retried++
		}
		if n > res.MaxLaunches {
			res.MaxLaunches = n
		}
	}
	sum := d.Summary()
	res.Done = sum["done"]
	if res.Done != cfg.Tasks {
		violate("done = %d, want %d bulk tasks", res.Done, cfg.Tasks)
	}
	if d.Outstanding() != 0 {
		violate("graph outstanding = %d after drain", d.Outstanding())
	}

	if err := d.Shutdown(); err != nil {
		violate("shutdown: %v", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func containsString(s []string, v string) bool {
	for _, e := range s {
		if e == v {
			return true
		}
	}
	return false
}
