package workload

import (
	"testing"
	"time"
)

// TestFig6ElasticityShape reproduces the headline Fig. 6 comparison at a
// compressed time scale: elasticity must raise utilization substantially (at
// the cost of a modest makespan increase), and the fixed arm must sit near
// the analytic 68% utilization.
func TestFig6ElasticityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elasticity run")
	}
	scale := 8 * time.Millisecond

	fixed, err := RunElasticity(ElasticityConfig{TimeScale: scale, Elastic: false})
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := RunElasticity(ElasticityConfig{TimeScale: scale, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed:   makespan=%.0fs util=%.1f%% peak=%d min=%d",
		fixed.MakespanSeconds, fixed.Utilization*100, fixed.PeakWorkers, fixed.MinWorkers)
	t.Logf("elastic: makespan=%.0fs util=%.1f%% peak=%d min=%d",
		elastic.MakespanSeconds, elastic.Utilization*100, elastic.PeakWorkers, elastic.MinWorkers)

	// Paper: 68.15% → 84.28% utilization; 301 s → 331 s makespan.
	if fixed.Utilization < 0.55 || fixed.Utilization > 0.75 {
		t.Errorf("fixed utilization = %.1f%%, paper 68.15%%", fixed.Utilization*100)
	}
	if elastic.Utilization < fixed.Utilization+0.05 {
		t.Errorf("elasticity did not raise utilization: %.1f%% vs %.1f%%",
			elastic.Utilization*100, fixed.Utilization*100)
	}
	if fixed.MakespanSeconds < 295 || fixed.MakespanSeconds > 340 {
		t.Errorf("fixed makespan = %.0f paper-seconds, paper 301", fixed.MakespanSeconds)
	}
	if elastic.MakespanSeconds < fixed.MakespanSeconds {
		t.Errorf("elastic makespan %.0f < fixed %.0f: queue delays should cost something",
			elastic.MakespanSeconds, fixed.MakespanSeconds)
	}
	// Paper overhead is +9.9%; at the compressed 8 ms/paper-second scale the
	// scale-out round trips cost whole polling quanta, and -race slows them
	// further — observed up to ~1.36x on a loaded machine. The bar is 1.5x:
	// wide enough to be deterministic under race instrumentation, tight
	// enough that elasticity pathologies (e.g. thrashing re-provision loops,
	// which land >2x) still fail.
	if elastic.MakespanSeconds > fixed.MakespanSeconds*1.5 {
		t.Errorf("elastic makespan %.0f too much worse than fixed %.0f (paper: +9.9%%)",
			elastic.MakespanSeconds, fixed.MakespanSeconds)
	}
	// Elastic arm must actually have scaled: peak at full allocation,
	// trough at one block.
	if elastic.PeakWorkers != 20 {
		t.Errorf("elastic peak workers = %d, want 20", elastic.PeakWorkers)
	}
	if elastic.MinWorkers > 5 {
		t.Errorf("elastic min workers = %d, want <= 5 (scaled in)", elastic.MinWorkers)
	}
	// Fixed arm holds 20 workers throughout.
	if fixed.PeakWorkers != 20 || fixed.MinWorkers != 20 {
		t.Errorf("fixed arm workers varied: peak=%d min=%d", fixed.PeakWorkers, fixed.MinWorkers)
	}
}
