package workload

import (
	"testing"
	"time"

	"repro/internal/serialize"
)

func TestRegisterBenchApps(t *testing.T) {
	reg := serialize.NewRegistry()
	if err := RegisterBenchApps(reg); err != nil {
		t.Fatal(err)
	}
	noop, ok := reg.Lookup("noop")
	if !ok {
		t.Fatal("noop missing")
	}
	if v, err := noop.Fn(nil, nil); err != nil || v != nil {
		t.Fatalf("noop = %v, %v", v, err)
	}
	sleep, _ := reg.Lookup("sleep")
	start := time.Now()
	if _, err := sleep.Fn([]any{20}, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("sleep too short")
	}
	if _, err := sleep.Fn([]any{"oops"}, nil); err == nil {
		t.Fatal("bad arg accepted")
	}
}

func TestFig5WorkflowShape(t *testing.T) {
	stages := Fig5Workflow(time.Millisecond)
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Tasks != 20 || stages[1].Tasks != 1 || stages[2].Tasks != 20 || stages[3].Tasks != 1 {
		t.Fatalf("widths wrong: %+v", stages)
	}
	if stages[0].Duration != 100*time.Millisecond || stages[1].Duration != 50*time.Millisecond {
		t.Fatalf("durations wrong: %+v", stages)
	}
	// Total work = 20×100 + 50 + 20×100 + 50 = 4100 paper seconds.
	if TaskSeconds(stages) != 4100*time.Millisecond {
		t.Fatalf("task seconds = %v", TaskSeconds(stages))
	}
}

func TestUseCasesMatchTable1(t *testing.T) {
	ucs := UseCases()
	if len(ucs) != 5 {
		t.Fatalf("use cases = %d", len(ucs))
	}
	byName := map[string]UseCase{}
	for _, u := range ucs {
		byName[u.Name] = u
	}
	if u := byName["ml-inference"]; u.Pattern != "bag-of-tasks" || !u.LatencySensitive || u.Paradigm != "FaaS" {
		t.Fatalf("ml-inference = %+v", u)
	}
	if u := byName["sequence-analysis"]; u.Pattern != "dataflow" || u.LatencySensitive {
		t.Fatalf("sequence-analysis = %+v", u)
	}
	if u := byName["cosmology"]; u.Nodes != "thousands" || u.Executor != "exex" {
		t.Fatalf("cosmology = %+v", u)
	}
}

func TestTrailingTasks(t *testing.T) {
	ts := TrailingTasks(10, 5, 100, 0.2)
	if len(ts) != 10 {
		t.Fatalf("len = %d", len(ts))
	}
	long := 0
	for _, d := range ts {
		if d == 100 {
			long++
		} else if d != 5 {
			t.Fatalf("unexpected duration %d", d)
		}
	}
	if long != 2 {
		t.Fatalf("long tasks = %d", long)
	}
}

func TestCosmologyBundles(t *testing.T) {
	bundles := CosmologyBundles(130, 64)
	if len(bundles) != 3 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	if len(bundles[0]) != 64 || len(bundles[1]) != 64 || len(bundles[2]) != 2 {
		t.Fatalf("sizes = %d %d %d", len(bundles[0]), len(bundles[1]), len(bundles[2]))
	}
	if bundles[1][0] != 64 {
		t.Fatalf("bundle content = %v", bundles[1][:3])
	}
	if got := CosmologyBundles(5, 0); len(got) != 5 {
		t.Fatalf("b=0 clamp: %d bundles", len(got))
	}
}
