// Package workload provides the synthetic task generators used throughout
// the evaluation (no-op and sleep tasks of §5.1–5.3), the four-stage
// map-reduce workflow of Fig. 5, and workload shapes mirroring the five
// scientific use cases of Table 1. The bench harness and the examples both
// build on these generators.
package workload

import (
	"fmt"
	"time"

	"repro/internal/serialize"
)

// RegisterBenchApps installs the evaluation apps ("noop", "sleep") into a
// registry. Sleep durations arrive in milliseconds, as in the paper's
// 0/10/100/1000 ms task classes.
func RegisterBenchApps(reg *serialize.Registry) error {
	if err := reg.Register("noop", func([]any, map[string]any) (any, error) {
		return nil, nil // a Python function that exits immediately (§5.2)
	}); err != nil {
		return err
	}
	return reg.Register("sleep", func(args []any, _ map[string]any) (any, error) {
		ms, ok := args[0].(int)
		if !ok {
			return nil, fmt.Errorf("workload: sleep wants int ms, got %T", args[0])
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
}

// UseCase describes one Table 1 row.
type UseCase struct {
	Name             string
	Pattern          string // dataflow | bag-of-tasks | sequential
	Paradigm         string // HTC | FaaS | Interactive | Batch
	Nodes            string // order of magnitude
	Tasks            int    // representative task count (scaled down)
	TaskDuration     time.Duration
	LatencySensitive bool
	Executor         string // recommended executor label
}

// UseCases returns the five Table 1 rows with laptop-scaled task counts.
func UseCases() []UseCase {
	return []UseCase{
		{Name: "sequence-analysis", Pattern: "dataflow", Paradigm: "HTC",
			Nodes: "hundreds", Tasks: 200, TaskDuration: 20 * time.Millisecond,
			LatencySensitive: false, Executor: "htex"},
		{Name: "ml-inference", Pattern: "bag-of-tasks", Paradigm: "FaaS",
			Nodes: "tens", Tasks: 500, TaskDuration: 2 * time.Millisecond,
			LatencySensitive: true, Executor: "llex"},
		{Name: "materials-science", Pattern: "dataflow", Paradigm: "Interactive",
			Nodes: "tens", Tasks: 100, TaskDuration: 5 * time.Millisecond,
			LatencySensitive: true, Executor: "llex"},
		{Name: "neuroscience", Pattern: "sequential", Paradigm: "Batch",
			Nodes: "tens", Tasks: 50, TaskDuration: 50 * time.Millisecond,
			LatencySensitive: false, Executor: "htex"},
		{Name: "cosmology", Pattern: "dataflow", Paradigm: "HTC",
			Nodes: "thousands", Tasks: 2000, TaskDuration: 10 * time.Millisecond,
			LatencySensitive: false, Executor: "exex"},
	}
}

// Stage describes one stage of the Fig. 5 elasticity workflow.
type Stage struct {
	Tasks    int
	Duration time.Duration // per-task duration in *paper seconds* × scale
}

// Fig5Workflow returns the four-stage workflow of Fig. 5 — two wide map
// stages of 20×100 s separated by single 50 s reduce tasks — with every
// paper second scaled by timeScale (tests use ~10–20 ms per paper second).
func Fig5Workflow(timeScale time.Duration) []Stage {
	return []Stage{
		{Tasks: 20, Duration: 100 * timeScale},
		{Tasks: 1, Duration: 50 * timeScale},
		{Tasks: 20, Duration: 100 * timeScale},
		{Tasks: 1, Duration: 50 * timeScale},
	}
}

// TaskSeconds returns the total task work in the workflow, in units of
// timeScale (i.e., paper seconds when divided back).
func TaskSeconds(stages []Stage) time.Duration {
	var total time.Duration
	for _, s := range stages {
		total += time.Duration(s.Tasks) * s.Duration
	}
	return total
}

// TrailingTasks builds a bag-of-tasks with a long tail: most tasks short,
// a few stragglers — the imbalance §4.4 cites ("trailing tasks with a thin
// workload"). Durations are returned in milliseconds for the sleep app.
func TrailingTasks(n int, shortMs, longMs int, tailFrac float64) []int {
	out := make([]int, n)
	tail := int(float64(n) * tailFrac)
	for i := range out {
		if i >= n-tail {
			out[i] = longMs
		} else {
			out[i] = shortMs
		}
	}
	return out
}

// CosmologyBundles groups n tasks into bundles of size b, modeling the LSST
// simulation's rebalancing of catalog tasks into node-sized chunks (§2.1:
// "group (and rebalance) tasks into appropriate sized bundles ... e.g., 64
// tasks for a 64-core processor").
func CosmologyBundles(n, b int) [][]int {
	if b <= 0 {
		b = 1
	}
	var bundles [][]int
	for start := 0; start < n; start += b {
		end := start + b
		if end > n {
			end = n
		}
		bundle := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			bundle = append(bundle, i)
		}
		bundles = append(bundles, bundle)
	}
	return bundles
}
