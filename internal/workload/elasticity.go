package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
	"repro/internal/strategy"
)

// ElasticityConfig parameterizes the Fig. 6 experiment. The paper ran the
// Fig. 5 workflow on Midway with and without elasticity; here one paper
// second is scaled to TimeScale of wall time so the experiment runs in
// seconds instead of minutes.
type ElasticityConfig struct {
	// TimeScale is the wall-clock length of one paper second (default 10 ms).
	TimeScale time.Duration
	// Elastic enables the scaling strategy; false is the control arm.
	Elastic bool
	// Parallelism is the Simple-strategy knob (§4.4); default 1.
	Parallelism float64
	// WorkersPerBlock: the paper scaled in blocks; 5 workers/block × 4
	// blocks covers the 20-wide stages.
	WorkersPerBlock int
	// MaxBlocks bounds scale-out (default 4 = 20 workers).
	MaxBlocks int
	// QueueDelaySeconds is LRM queue latency in paper seconds (default 3).
	QueueDelaySeconds int
}

func (c *ElasticityConfig) normalize() {
	if c.TimeScale <= 0 {
		c.TimeScale = 10 * time.Millisecond
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.WorkersPerBlock <= 0 {
		c.WorkersPerBlock = 5
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 4
	}
	if c.QueueDelaySeconds <= 0 {
		c.QueueDelaySeconds = 3
	}
}

// ElasticityResult reports the Fig. 6 metrics, normalized back to paper
// seconds.
type ElasticityResult struct {
	// MakespanSeconds is workflow completion time in paper seconds
	// (paper: 301 s fixed, 331 s elastic).
	MakespanSeconds float64
	// Utilization is task-seconds / worker-seconds (paper: 68.15% fixed,
	// 84.28% elastic).
	Utilization float64
	// WorkerSeconds and TaskSeconds are the raw integrals.
	WorkerSeconds float64
	TaskSeconds   float64
	// PeakWorkers and MinWorkers trace the elasticity behaviour.
	PeakWorkers int
	MinWorkers  int
}

// RunElasticity executes the Fig. 5 workflow and measures utilization and
// makespan, reproducing the Fig. 6 experiment.
func RunElasticity(cfg ElasticityConfig) (ElasticityResult, error) {
	cfg.normalize()
	stages := Fig5Workflow(cfg.TimeScale)

	// A Midway-like simulated cluster: one worker per node, block = 5 nodes.
	cl, err := cluster.New(cluster.Config{
		Name:         "midway",
		Nodes:        cfg.WorkersPerBlock * cfg.MaxBlocks,
		CoresPerNode: 1,
		QueueDelay:   time.Duration(cfg.QueueDelaySeconds) * cfg.TimeScale,
	})
	if err != nil {
		return ElasticityResult{}, err
	}
	defer cl.Close()

	reg := serialize.NewRegistry()
	prov := provider.NewSlurm(cl, provider.Config{NodesPerBlock: cfg.WorkersPerBlock})

	initBlocks := cfg.MaxBlocks // fixed arm: full allocation for the run
	minBlocks := cfg.MaxBlocks
	if cfg.Elastic {
		initBlocks = 1
		minBlocks = 1
	}
	ex := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   prov,
		InitBlocks: initBlocks,
		Manager:    htex.ManagerConfig{Workers: 1, HeartbeatPeriod: 50 * time.Millisecond},
		Interchange: htex.InterchangeConfig{
			Seed:               1,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 5 * time.Second,
		},
	})

	d, err := dfk.New(dfk.Config{Registry: reg, Executors: []executor.Executor{ex}, Seed: 1})
	if err != nil {
		return ElasticityResult{}, err
	}
	defer d.Shutdown()

	sleepApp, err := d.PythonApp("fig5-sleep", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		return ElasticityResult{}, err
	}

	var ctrl *strategy.Controller
	if cfg.Elastic {
		ctrl = strategy.NewController(ex, strategy.Simple{Parallelism: cfg.Parallelism},
			strategy.ControllerConfig{
				Interval:        cfg.TimeScale, // one decision per paper second
				WorkersPerBlock: cfg.WorkersPerBlock,
				MinBlocks:       minBlocks,
				MaxBlocks:       cfg.MaxBlocks,
				ScaleInHoldoff:  3 * cfg.TimeScale,
			})
		ctrl.Start()
		defer ctrl.Stop()
	}

	// Wait for the initial allocation to come up before starting the clock,
	// as the paper's runs did (workers deployed, then tasks submitted).
	deadline := time.Now().Add(30 * time.Second)
	for ex.ConnectedWorkers() < initBlocks*cfg.WorkersPerBlock {
		if time.Now().After(deadline) {
			return ElasticityResult{}, fmt.Errorf("workload: initial blocks never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Utilization sampler: integrate connected workers over the run.
	var (
		samplerDone = make(chan struct{})
		samplerWG   sync.WaitGroup
		mu          sync.Mutex
		workerInt   float64 // worker-seconds in paper units
		peak        int
		minW        = 1 << 30
	)
	sampleEvery := cfg.TimeScale / 2
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		ticker := time.NewTicker(sampleEvery)
		defer ticker.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-ticker.C:
				w := ex.ConnectedWorkers()
				mu.Lock()
				workerInt += float64(w) * (float64(sampleEvery) / float64(cfg.TimeScale))
				if w > peak {
					peak = w
				}
				if w < minW {
					minW = w
				}
				mu.Unlock()
			}
		}
	}()

	start := time.Now()
	var prev []*future.Future
	for _, st := range stages {
		ms := int(st.Duration / time.Millisecond)
		futs := make([]*future.Future, st.Tasks)
		for i := 0; i < st.Tasks; i++ {
			args := []any{ms}
			if len(prev) > 0 {
				// Stage barrier: every task consumes all prior futures.
				args = append(args, anySlice(prev))
			}
			futs[i] = sleepApp.Submit(context.Background(), args)
		}
		prev = futs
	}
	if err := future.Wait(prev...); err != nil {
		close(samplerDone)
		samplerWG.Wait()
		return ElasticityResult{}, err
	}
	makespan := time.Since(start)
	close(samplerDone)
	samplerWG.Wait()

	taskSeconds := float64(TaskSeconds(stages)) / float64(cfg.TimeScale)
	mu.Lock()
	defer mu.Unlock()
	util := 0.0
	if workerInt > 0 {
		util = taskSeconds / workerInt
	}
	if util > 1 {
		util = 1
	}
	return ElasticityResult{
		MakespanSeconds: float64(makespan) / float64(cfg.TimeScale),
		Utilization:     util,
		WorkerSeconds:   workerInt,
		TaskSeconds:     taskSeconds,
		PeakWorkers:     peak,
		MinWorkers:      minW,
	}, nil
}

func anySlice(futs []*future.Future) []any {
	out := make([]any, len(futs))
	for i, f := range futs {
		out[i] = f
	}
	return out
}
