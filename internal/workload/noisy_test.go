package workload

import (
	"testing"
	"time"
)

// TestNoisyFairShares runs the pure-DRR arm at test scale: with tenants
// weighted 10:1 and both backlogged, observed completion-throughput shares
// must land within 2× of the weight ratio.
func TestNoisyFairShares(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res, err := RunNoisy(NoisyConfig{
		Workers: 8, QueueDepth: 8, TaskDuration: 4 * time.Millisecond,
		HeavyTasks: 4000, LightTasks: 150,
		HeavyWeight: 10, LightWeight: 1,
		Tenanted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shares heavy:light = %.1f:1, light p95 %v (uncontended %v, ratio %.1fx)",
		res.ShareRatio, res.ContendedP95, res.UncontendedP95, res.LatencyRatio)
	if res.ShareRatio < 5 || res.ShareRatio > 20 {
		t.Fatalf("share ratio %.1f:1 outside 2x of the 10:1 weight ratio", res.ShareRatio)
	}
	// Latency dilation under pure weighted sharing is bounded by the share
	// the weights grant: (10+1)/1 = 11x, plus scheduling noise — crucially
	// independent of the burst being 27x the light workload. The FIFO
	// contrast arm (TestNoisyFIFOContrast) shows what "unbounded" looks like.
	if res.LatencyRatio > 16 {
		t.Fatalf("light p95 dilated %.1fx, want <= ~11x (weight-predicted bound)", res.LatencyRatio)
	}
}

// TestNoisyBoundedAdmission runs the bounded-admission arm: with the burst
// tenant's live tasks quota-capped, the light tenant's p95 submit-to-start
// latency stays under 10× its uncontended value even while the burst runs.
func TestNoisyBoundedAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res, err := RunNoisy(NoisyConfig{
		Workers: 8, QueueDepth: 2, TaskDuration: 4 * time.Millisecond,
		HeavyTasks: 4000, LightTasks: 150,
		HeavyWeight: 10, LightWeight: 1,
		HeavyQuota: 4,
		Tenanted:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("quota arm: light p95 %v (uncontended %v, ratio %.1fx), shares %.1f:1",
		res.ContendedP95, res.UncontendedP95, res.LatencyRatio, res.ShareRatio)
	if res.LatencyRatio >= 10 {
		t.Fatalf("light p95 dilated %.1fx under a quota-bounded burst, want < 10x", res.LatencyRatio)
	}
}

// TestNoisyFIFOContrast pins the "before" picture the fairness layer exists
// to fix: without tenancy the light workload queues behind the entire burst,
// so its p95 scales with the burst size rather than its own workload.
func TestNoisyFIFOContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res, err := RunNoisy(NoisyConfig{
		Workers: 8, QueueDepth: 8, TaskDuration: 4 * time.Millisecond,
		HeavyTasks: 4000, LightTasks: 150,
		Tenanted: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fifo contrast: light p95 %v (uncontended %v, ratio %.1fx)",
		res.ContendedP95, res.UncontendedP95, res.LatencyRatio)
	// The light workload is 150 tasks behind a 4000-task burst: FIFO must
	// dilate it far beyond the fair-sharing arms (conservative floor).
	if res.LatencyRatio < 12 {
		t.Fatalf("FIFO contrast dilated only %.1fx — expected far worse than fair queuing", res.LatencyRatio)
	}
}
