package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/serialize"
)

// NoisyConfig shapes one noisy-neighbor run: a burst ("heavy") tenant floods
// the pool while a small ("light") tenant submits its own modest workload,
// and the run measures what the light tenant observes. The three arms of the
// scenario differ only in knobs:
//
//   - pure fair queuing: HeavyQuota 0 — DRR weights alone govern; completion
//     throughput splits HeavyWeight:LightWeight, and the light tenant's
//     latency dilates by at most (HeavyWeight+LightWeight)/LightWeight,
//     independent of how large the burst is.
//   - bounded admission: HeavyQuota > 0 — the burst tenant's live tasks are
//     capped, so the light tenant's latency stays within a small factor of
//     its uncontended value even under a 10k burst.
//   - no tenancy: Tenanted false — the pre-tenant FIFO baseline, where the
//     light tenant waits behind the entire burst.
type NoisyConfig struct {
	// Workers sizes the thread pool (default 8).
	Workers int
	// QueueDepth bounds the pool's input queue (default 8). Shallow on
	// purpose: backlog must wait in the DFK's tenant-fair lanes, not in the
	// executor's FIFO channel, for fairness to shape latency.
	QueueDepth int
	// TaskDuration is each task's sleep (default 5ms).
	TaskDuration time.Duration
	// HeavyTasks is the burst size (default 10000); LightTasks the light
	// tenant's workload (default 300).
	HeavyTasks, LightTasks int
	// HeavyWeight:LightWeight is the DRR weight ratio (default 10:1).
	HeavyWeight, LightWeight int
	// HeavyQuota caps the burst tenant's live tasks (0 = unbounded).
	HeavyQuota int
	// Tenanted false runs both workloads as the default tenant — the
	// pre-tenancy contrast arm.
	Tenanted bool
}

func (c *NoisyConfig) normalize() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.TaskDuration <= 0 {
		c.TaskDuration = 5 * time.Millisecond
	}
	if c.HeavyTasks <= 0 {
		c.HeavyTasks = 10000
	}
	if c.LightTasks <= 0 {
		c.LightTasks = 300
	}
	if c.HeavyWeight <= 0 {
		c.HeavyWeight = 10
	}
	if c.LightWeight <= 0 {
		c.LightWeight = 1
	}
}

// NoisyResult reports what the light tenant observed.
type NoisyResult struct {
	// UncontendedP95 is the light tenant's p95 submit-to-start latency with
	// the pool to itself; ContendedP95 the same measure while the heavy
	// burst runs; LatencyRatio their quotient.
	UncontendedP95, ContendedP95 time.Duration
	LatencyRatio                 float64
	// HeavyCompleted counts burst-tenant completions inside the light
	// tenant's contended window; ShareRatio is the observed completion-
	// throughput ratio heavy:light over that window.
	HeavyCompleted int
	LightCompleted int
	ShareRatio     float64
	Elapsed        time.Duration
}

// p95 returns the 95th-percentile of latencies (nanoseconds).
func p95(lat []int64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]int64(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}

// RunNoisy executes one noisy-neighbor scenario and reports the light
// tenant's latency and throughput share. The heavy burst is canceled once
// the light tenant finishes — the measurement window is the light tenant's
// lifetime, and draining the remaining burst would only slow the harness.
func RunNoisy(cfg NoisyConfig) (NoisyResult, error) {
	cfg.normalize()
	reg := serialize.NewRegistry()
	tp := threadpool.NewWithDepth("pool", cfg.Workers, cfg.QueueDepth, reg)
	dcfg := dfk.Config{Registry: reg, Executors: []executor.Executor{tp}}
	if cfg.HeavyQuota > 0 && cfg.Tenanted {
		dcfg.TenantQuotas = map[string]int{"heavy": cfg.HeavyQuota}
		dcfg.OverloadPolicy = dfk.OverloadBlock
	}
	d, err := dfk.New(dcfg)
	if err != nil {
		return NoisyResult{}, err
	}
	defer d.Shutdown()

	// The app measures its own submit-to-start latency: the submit
	// timestamp rides as an argument, and the returned value is the
	// nanoseconds between submission and the app body starting.
	lat, err := d.PythonApp("noisy-lat", func(args []any, _ map[string]any) (any, error) {
		started := time.Now().UnixNano() - args[0].(int64)
		time.Sleep(time.Duration(args[1].(int)) * time.Microsecond)
		return started, nil
	})
	if err != nil {
		return NoisyResult{}, err
	}

	us := int(cfg.TaskDuration / time.Microsecond)
	submit := func(ctx context.Context, tenant string, weight int) *future.Future {
		args := []any{time.Now().UnixNano(), us}
		if !cfg.Tenanted {
			return lat.Submit(ctx, args)
		}
		return lat.Submit(ctx, args, dfk.WithTenant(tenant, weight))
	}
	collect := func(futs []*future.Future) ([]int64, error) {
		out := make([]int64, 0, len(futs))
		for _, f := range futs {
			v, err := f.Result()
			if err != nil {
				return nil, err
			}
			out = append(out, v.(int64))
		}
		return out, nil
	}

	ctx := context.Background()

	// Phase 1 — uncontended baseline: the light workload with the pool to
	// itself.
	base := make([]*future.Future, cfg.LightTasks)
	for i := range base {
		base[i] = submit(ctx, "light", cfg.LightWeight)
	}
	baseLat, err := collect(base)
	if err != nil {
		return NoisyResult{}, err
	}

	// Phase 2 — contended: the heavy tenant bursts, then the light tenant
	// runs the same workload. Heavy submission happens on its own goroutine
	// because bounded admission is allowed to park it (that *is* the
	// backpressure); its context is canceled once the light window closes.
	start := time.Now()
	hctx, cancelHeavy := context.WithCancel(ctx)
	defer cancelHeavy()
	var heavyDone atomic.Int64
	heavySubmitted := make(chan struct{})
	var submittedOnce sync.Once
	saturated := func() { submittedOnce.Do(func() { close(heavySubmitted) }) }
	// The light window opens once the burst is established: for unbounded
	// arms that means the whole burst is queued (it is a burst — the light
	// tenant arrives behind all of it); for the quota arm the submitter
	// parks at its cap, so "established" is the cap being reached.
	markAt := cfg.HeavyTasks - 1
	if cfg.Tenanted && cfg.HeavyQuota > 0 && cfg.HeavyQuota < markAt {
		markAt = cfg.HeavyQuota
	}
	go func() {
		defer saturated() // tiny bursts and canceled bursts unblock too
		for i := 0; i < cfg.HeavyTasks && hctx.Err() == nil; i++ {
			f := submit(hctx, "heavy", cfg.HeavyWeight)
			f.AddDoneCallback(func(df *future.Future) {
				if df.Err() == nil {
					heavyDone.Add(1)
				}
			})
			if i >= markAt {
				saturated()
			}
		}
	}()
	select {
	case <-heavySubmitted:
	case <-time.After(30 * time.Second):
		return NoisyResult{}, fmt.Errorf("workload: heavy burst failed to start")
	}

	heavyAtOpen := heavyDone.Load()
	light := make([]*future.Future, cfg.LightTasks)
	for i := range light {
		light[i] = submit(ctx, "light", cfg.LightWeight)
	}
	lightLat, err := collect(light)
	if err != nil {
		return NoisyResult{}, err
	}
	heavyInWindow := int(heavyDone.Load() - heavyAtOpen)
	cancelHeavy()

	res := NoisyResult{
		UncontendedP95: p95(baseLat),
		ContendedP95:   p95(lightLat),
		HeavyCompleted: heavyInWindow,
		LightCompleted: cfg.LightTasks,
		Elapsed:        time.Since(start),
	}
	if res.UncontendedP95 > 0 {
		res.LatencyRatio = float64(res.ContendedP95) / float64(res.UncontendedP95)
	}
	if cfg.LightTasks > 0 {
		res.ShareRatio = float64(heavyInWindow) / float64(cfg.LightTasks)
	}
	return res, nil
}
