package workload

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestShardFailoverSeeds is the CI shard job's scenario: kill one
// interchange shard of a 4-shard pool mid-workload, per seed, under -race.
// CHAOS_SEEDS pins the matrix leg; a failure reproduces with the same seed.
func TestShardFailoverSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("shard failover scenario is not -short")
	}
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := RunShardFailover(ShardFailoverConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			dumpShardLog(t, seed, res)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				t.Logf("reproduce with: CHAOS_SEEDS=%d go test ./internal/workload/ -run TestShardFailoverSeeds -race -count=1", seed)
			}
			t.Logf("victim held %d, retried %d (extra launches %d), shards %d/%d, health %q, %v",
				res.VictimHeld, res.Retried, res.ExtraLaunches,
				res.ShardsAlive, res.ShardsTotal, res.Health, res.Elapsed)
		})
	}
}

// TestShardFailoverVictims sweeps the victim index at one seed, so the kill
// contract is not an artifact of which shard dies.
func TestShardFailoverVictims(t *testing.T) {
	if testing.Short() {
		t.Skip("shard failover scenario is not -short")
	}
	for victim := 0; victim < 4; victim++ {
		t.Run(fmt.Sprintf("victim=%d", victim), func(t *testing.T) {
			res, err := RunShardFailover(ShardFailoverConfig{Seed: 11, Victim: victim})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestShardScalingSmoke drives both scaling arms small: the bar belongs to
// parsl-bench/CI (it needs real cores); the test just proves both arms run
// to completion and report sane throughput.
func TestShardScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shard scaling smoke is not -short")
	}
	for _, shards := range []int{1, 4} {
		res, err := RunShardScaling(ShardScalingConfig{Seed: 1, Shards: shards, Tasks: 400})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if res.Tasks != 400 || res.TasksPerSec <= 0 {
			t.Fatalf("%d shards: degenerate result %+v", shards, res)
		}
		t.Logf("%d shards: %.0f tasks/s over %d tasks", shards, res.TasksPerSec, res.Tasks)
	}
}

func dumpShardLog(t *testing.T, seed int64, res ShardFailoverResult) {
	dir := os.Getenv("CHAOS_LOG_DIR")
	if dir == "" {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: shard-failover\nseed: %d\nreproduce: CHAOS_SEEDS=%d go test ./internal/workload/ -run TestShardFailoverSeeds -race -count=1\n", seed, seed)
	fmt.Fprintf(&b, "victimHeld=%d retried=%d extraLaunches=%d shards=%d/%d health=%s kills=%d elapsed=%v\n",
		res.VictimHeld, res.Retried, res.ExtraLaunches, res.ShardsAlive, res.ShardsTotal, res.Health, res.Kills, res.Elapsed)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	for _, e := range res.Events {
		fmt.Fprintf(&b, "event: %s\n", e.String())
	}
	path := fmt.Sprintf("%s/shard-failover-seed%d.log", dir, seed)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos log %s: %v", path, err)
	}
}
