package workload

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/serialize"
)

// GraphConfig shapes the million-task DAG drain scenario: W independent
// dependency chains advanced with a lookahead window of L outstanding tasks
// each, so the live frontier is bounded by ~W×L records regardless of total
// DAG size. With record recycling this makes steady-state memory O(frontier)
// while the task count grows without bound — the property the scenario
// exists to measure.
type GraphConfig struct {
	// Nodes is the total task count across all chains (default 1_000_000).
	Nodes int
	// Chains is W, the number of independent chains (default 64).
	Chains int
	// Window is L, the per-chain lookahead: how many tasks of one chain may
	// be outstanding at once (default 128).
	Window int
	// Workers sizes the threadpool executor (default GOMAXPROCS).
	Workers int
	// RSSBaseBytes is the fixed allowance subtracted from peak RSS before
	// computing the per-task byte cost (runtime, executor, code pages). Zero
	// means report raw peak only.
	RSSBaseBytes int64
}

// GraphResult reports the drain: throughput, memory high-water marks, and
// the recycling evidence (live vs recycled node counts).
type GraphResult struct {
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Chains        int     `json:"chains"`
	Window        int     `json:"window"`
	MakespanMs    float64 `json:"makespan_ms"`
	TasksPerSec   float64 `json:"tasks_per_sec"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
	RSSPerTask    float64 `json:"rss_bytes_per_task"`
	LiveNodesMax  int64   `json:"live_nodes_max"`
	RecycledNodes int64   `json:"recycled_nodes"`
	AllocsPerTask float64 `json:"allocs_per_task"`
}

// RunGraph builds and drains the windowed-chain DAG, sampling the graph's
// live-node count throughout. Every non-root task depends on its chain
// predecessor's future, so the scenario exercises the full dependency
// pipeline — future propagation, encode-once payloads, dispatch lanes — not
// just independent submission.
func RunGraph(cfg GraphConfig) (*GraphResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1_000_000
	}
	if cfg.Chains <= 0 {
		cfg.Chains = 64
	}
	if cfg.Chains > cfg.Nodes {
		cfg.Chains = cfg.Nodes
	}
	if cfg.Window <= 0 {
		cfg.Window = 128
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}

	reg := serialize.NewRegistry()
	d, err := dfk.New(dfk.Config{
		Registry:  reg,
		Executors: []executor.Executor{threadpool.New("graph", cfg.Workers, reg)},
		Seed:      7,
	})
	if err != nil {
		return nil, err
	}
	defer d.Shutdown()

	chain, err := d.PythonApp("graph-chain", func(args []any, _ map[string]any) (any, error) {
		return 1, nil
	})
	if err != nil {
		return nil, err
	}

	// Sample the live frontier while the drain runs. 1 ms resolution is
	// plenty: the frontier changes by at most a window per chain step.
	var liveMax atomic.Int64
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				if live := int64(d.Graph().LiveNodes()); live > liveMax.Load() {
					liveMax.Store(live)
				}
			}
		}
	}()

	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Distribute nodes over chains; the first nodes%chains chains get one
	// extra so every node is submitted exactly once.
	per := cfg.Nodes / cfg.Chains
	extra := cfg.Nodes % cfg.Chains
	start := time.Now()
	var chainWG sync.WaitGroup
	errc := make(chan error, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		n := per
		if c < extra {
			n++
		}
		if n == 0 {
			continue
		}
		chainWG.Add(1)
		go func(n int) {
			defer chainWG.Done()
			window := make([]*future.Future, cfg.Window)
			var prev *future.Future
			for i := 0; i < n; i++ {
				// Slide the window: block on the task L steps back before
				// submitting the next, bounding this chain's outstanding
				// frontier at L.
				if i >= cfg.Window {
					if _, err := window[i%cfg.Window].Result(); err != nil {
						errc <- err
						return
					}
				}
				if prev == nil {
					prev = chain.Call(0)
				} else {
					prev = chain.Call(prev)
				}
				window[i%cfg.Window] = prev
			}
			if _, err := prev.Result(); err != nil {
				errc <- err
			}
		}(n)
	}
	chainWG.Wait()
	d.WaitAll()
	makespan := time.Since(start)
	close(stopSampler)
	samplerWG.Wait()
	select {
	case err := <-errc:
		return nil, fmt.Errorf("workload: graph chain failed: %w", err)
	default:
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	res := &GraphResult{
		Nodes:         cfg.Nodes,
		Edges:         cfg.Nodes - cfg.Chains,
		Chains:        cfg.Chains,
		Window:        cfg.Window,
		MakespanMs:    float64(makespan.Microseconds()) / 1000,
		TasksPerSec:   float64(cfg.Nodes) / makespan.Seconds(),
		PeakRSSBytes:  peakRSSBytes(),
		LiveNodesMax:  liveMax.Load(),
		RecycledNodes: d.Graph().RecycledNodes(),
		AllocsPerTask: float64(after.Mallocs-before.Mallocs) / float64(cfg.Nodes),
	}
	if cfg.RSSBaseBytes > 0 && res.PeakRSSBytes > cfg.RSSBaseBytes {
		res.RSSPerTask = float64(res.PeakRSSBytes-cfg.RSSBaseBytes) / float64(cfg.Nodes)
	}
	return res, nil
}

// peakRSSBytes reads the process's resident-set high-water mark (VmHWM)
// from /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(b, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
