package workload

import "testing"

// TestLocalityScenario is the CI locality job's scenario: the full
// data-aware pipeline — cold run, warm cross-process replay over the shared
// cache and staging site, digest-routed repeats, and the stale-advert
// degradation — with the warm-side zeros asserted.
func TestLocalityScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("locality scenario is not -short")
	}
	res, err := RunLocality(LocalityConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Logf("cold: %d executions, %d fetches (%d bytes); warm: %d executions, %d fetches (%d bytes), hit rate %.3f",
		res.ColdExecutions, res.ColdFetches, res.ColdBytesFetched,
		res.WarmExecutions, res.WarmFetches, res.WarmBytesMoved, res.WarmHitRate)
	t.Logf("routing: %d hits / %d misses, %d to holder / %d elsewhere; stale rerun ok=%v; %v",
		res.RouteHits, res.RouteMisses, res.RoutedToHolder, res.RoutedElsewhere, res.StaleRerunOK, res.Elapsed)
}

// TestShardFailoverWithLocalityPolicy is the acceptance cross: the
// kill-one-shard failover contract must hold unchanged when the DFK routes
// through the digest-aware locality policy.
func TestShardFailoverWithLocalityPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("shard failover scenario is not -short")
	}
	res, err := RunShardFailover(ShardFailoverConfig{Seed: 11, SchedulerPolicy: "locality"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Logf("victim held %d, retried %d, shards %d/%d, health %q, %v",
		res.VictimHeld, res.Retried, res.ShardsAlive, res.ShardsTotal, res.Health, res.Elapsed)
}
