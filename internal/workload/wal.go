package workload

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/monitor"
	"repro/internal/serialize"
	"repro/internal/wal"
)

// WALCrashConfig shapes one two-lifetime crash-recovery run: a first DFK
// lifetime writes the durable dataflow log and is "killed" at an exact WAL
// record boundary (the chaos plane freezes the log and the memo checkpoint at
// that boundary, leaving the disk byte-for-byte what a real process death
// would), then a second lifetime recovers from the frozen state and the
// exactly-once invariants are checked across both.
type WALCrashConfig struct {
	// Tasks is the number of tasks the first lifetime submits (default 8).
	Tasks int
	// Retries is the per-task retry budget, enforced ACROSS lifetimes
	// (default 1).
	Retries int
	// Boundary is the 0-based WAL record boundary to crash at: records
	// 0..Boundary-1 are durable, the Boundary-th append and everything after
	// it are lost. Negative runs both lifetimes without a crash.
	Boundary int64
	// Dir is the working directory holding wal/ and checkpoint.jsonl; it must
	// be empty before the run.
	Dir string
	// Seed feeds the DFK's executor selection and the chaos schedule.
	Seed int64
}

func (c *WALCrashConfig) normalize() {
	if c.Tasks <= 0 {
		c.Tasks = 8
	}
	if c.Retries <= 0 {
		c.Retries = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// WALCrashResult reports one crash-recovery run. Violations empty means every
// exactly-once guarantee held at this boundary.
type WALCrashResult struct {
	// Records is the count of durable WAL records at the crash.
	Records int64
	// LiveAtCrash / TerminalAtCrash describe the replayed frontier.
	LiveAtCrash     int
	TerminalAtCrash int
	// ReExecuted counts tasks whose app body ran again in the second
	// lifetime; the invariant bounds it by LiveAtCrash.
	ReExecuted int
	// MemoHits counts resumed tasks settled from the surviving checkpoint
	// without re-execution.
	MemoHits int
	// RecoveryTime is lifetime 2's Recover() wall clock.
	RecoveryTime time.Duration
	Violations   []string
}

// walValue is the reference app's deterministic function of the task index.
func walValue(i int) int { return i*2 + 1 }

// walTaskIndex decodes the task index back out of a logged payload.
func walTaskIndex(payload []byte) (int, error) {
	args, _, err := serialize.DecodeArgsBytes(payload)
	if err != nil {
		return -1, err
	}
	if len(args) != 1 {
		return -1, fmt.Errorf("decoded %d args, want 1", len(args))
	}
	i, ok := args[0].(int)
	if !ok {
		return -1, fmt.Errorf("decoded arg %T, want int", args[0])
	}
	return i, nil
}

// RunWALCrash executes the two-lifetime scenario and checks, at the given
// record boundary: no task is lost (every submitted task eventually resolves
// with the right value in some lifetime), no pre-crash-terminal task is
// re-executed, recovery re-executes at most the in-flight set, each resumed
// task reaches a terminal state exactly once, and the launch budget spans both
// lifetimes.
func RunWALCrash(cfg WALCrashConfig) (WALCrashResult, error) {
	cfg.normalize()
	var res WALCrashResult
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	walDir := filepath.Join(cfg.Dir, "wal")
	cpPath := filepath.Join(cfg.Dir, "checkpoint.jsonl")

	// Lifetime 1: run the workload with the log freezing at the boundary.
	// The process itself runs on (futures settle in memory), but the disk
	// stops dead at record Boundary — exactly a kill at that point.
	execs1 := make([]atomic.Int64, cfg.Tasks)
	{
		reg := serialize.NewRegistry()
		d, err := dfk.New(dfk.Config{
			Registry:        reg,
			Executors:       []executor.Executor{threadpool.New("tp", 4, reg)},
			Retries:         cfg.Retries,
			Memoize:         true,
			Checkpoint:      cpPath,
			Seed:            cfg.Seed,
			WAL:             true,
			WALDir:          walDir,
			WALCompactEvery: -1, // keep the raw record stream inspectable
		})
		if err != nil {
			return res, err
		}
		app, err := d.PythonApp("wal-crashf", func(args []any, _ map[string]any) (any, error) {
			i := args[0].(int)
			execs1[i].Add(1)
			return walValue(i), nil
		})
		if err != nil {
			_ = d.Shutdown()
			return res, err
		}
		if cfg.Boundary >= 0 {
			restore := chaos.Enable(chaos.New(cfg.Seed, chaos.Plan{{
				Point: chaos.PointWALAppend, Act: chaos.ActKill,
				Prob: 1, Max: 1, After: cfg.Boundary,
			}}))
			defer restore()
		}
		for i := 0; i < cfg.Tasks; i++ {
			app.Call(i)
		}
		d.WaitAll()
		if err := d.Shutdown(); err != nil {
			return res, fmt.Errorf("lifetime 1 shutdown: %w", err)
		}
		chaos.Disable()
	}

	// Autopsy of the frozen disk: which tasks does the durable log say were
	// live, and which terminal, at the crash?
	fr, err := wal.Replay(walDir)
	if err != nil {
		return res, fmt.Errorf("replay frozen log: %w", err)
	}
	res.Records = fr.Records
	res.LiveAtCrash = len(fr.Live)
	res.TerminalAtCrash = int(fr.TerminalTotal())
	keyToIdx := make(map[int64]int, cfg.Tasks)
	preTerminal := make(map[int]bool)
	for key, info := range fr.Live {
		i, err := walTaskIndex(info.Payload)
		if err != nil {
			violate("live task %d: %v", key, err)
			continue
		}
		keyToIdx[key] = i
	}
	for key, term := range fr.Terminals {
		if term.Info == nil {
			violate("terminal task %d lost its submit info without compaction", key)
			continue
		}
		i, err := walTaskIndex(term.Info.Payload)
		if err != nil {
			violate("terminal task %d: %v", key, err)
			continue
		}
		keyToIdx[key] = i
		preTerminal[i] = true
	}

	// Lifetime 2: a fresh process over the same durable state.
	execs2 := make([]atomic.Int64, cfg.Tasks)
	reg2 := serialize.NewRegistry()
	store2 := monitor.NewStore()
	d2, err := dfk.New(dfk.Config{
		Registry:        reg2,
		Executors:       []executor.Executor{threadpool.New("tp", 4, reg2)},
		Retries:         cfg.Retries,
		Memoize:         true,
		Checkpoint:      cpPath,
		Seed:            cfg.Seed + 1,
		Monitor:         store2,
		WAL:             true,
		WALDir:          walDir,
		WALCompactEvery: -1,
	})
	if err != nil {
		return res, fmt.Errorf("lifetime 2 start: %w", err)
	}
	if _, err := d2.PythonApp("wal-crashf", func(args []any, _ map[string]any) (any, error) {
		i := args[0].(int)
		execs2[i].Add(1)
		return walValue(i), nil
	}); err != nil {
		_ = d2.Shutdown()
		return res, err
	}
	rcv, err := d2.Recover()
	if err != nil {
		_ = d2.Shutdown()
		return res, fmt.Errorf("recover: %w", err)
	}
	res.RecoveryTime = rcv.Elapsed
	res.MemoHits = rcv.MemoHits
	if rcv.LiveAtCrash != res.LiveAtCrash || rcv.TerminalAtCrash+int(fr.Folded) != res.TerminalAtCrash {
		violate("recovery saw live=%d terminal=%d; replay saw %d, %d",
			rcv.LiveAtCrash, rcv.TerminalAtCrash, res.LiveAtCrash, res.TerminalAtCrash)
	}

	// Invariant: no task lost — every live-at-crash task resolves with the
	// right value in lifetime 2 (exactly-once delivery across lifetimes).
	resumedIDs := make(map[int64]int, len(rcv.Resumed))
	for key, fut := range rcv.Resumed {
		i, known := keyToIdx[key]
		if !known {
			violate("resumed task %d has no payload mapping", key)
			continue
		}
		v, ferr := fut.Result()
		if ferr != nil {
			violate("task %d (wal key %d) lost across the crash: %v", i, key, ferr)
			continue
		}
		if got, ok := v.(int); !ok || got != walValue(i) {
			// The checkpoint round-trips ints through JSON; accept the
			// float64 shape of the same value.
			if f, okf := v.(float64); !okf || f != float64(walValue(i)) {
				violate("task %d resolved to %v, want %d", i, v, walValue(i))
			}
		}
		resumedIDs[fut.TaskID] = i
	}
	d2.WaitAll()

	// Invariant: zero re-execution of pre-crash-terminal tasks, and recovery
	// re-executes no more tasks than were in flight at the crash.
	for i := 0; i < cfg.Tasks; i++ {
		n := int(execs2[i].Load())
		if n > 0 {
			res.ReExecuted++
		}
		if preTerminal[i] && n > 0 {
			violate("task %d was terminal before the crash but re-executed %d times", i, n)
		}
	}
	if res.ReExecuted > res.LiveAtCrash {
		violate("recovery re-executed %d tasks; only %d were in flight at the crash",
			res.ReExecuted, res.LiveAtCrash)
	}

	// Invariant: each resumed task reaches a terminal state exactly once in
	// lifetime 2, and its launches across BOTH lifetimes fit the budget.
	launches := make(map[int64]int)
	terminals := make(map[int64]int)
	for _, e := range store2.Events(monitor.KindTaskState) {
		switch e.To {
		case "launched":
			launches[e.TaskID]++
		case "done", "failed", "memoized":
			terminals[e.TaskID]++
		}
	}
	for id, i := range resumedIDs {
		if n := terminals[id]; n != 1 {
			violate("resumed task %d reached a terminal state %d times", i, n)
		}
	}
	for key, fut := range rcv.Resumed {
		pre := 0
		if info := fr.Live[key]; info != nil {
			pre = info.Launches
		}
		if total := pre + launches[fut.TaskID]; total > cfg.Retries+1 {
			violate("task %d launched %d times across lifetimes (pre-crash %d), budget %d+1",
				keyToIdx[key], total, pre, cfg.Retries)
		}
	}

	if err := d2.Shutdown(); err != nil {
		violate("lifetime 2 shutdown: %v", err)
	}

	// The durable state after lifetime 2 accounts for every LOGGED task
	// exactly once: nothing live, one terminal per task whose submit record
	// was durable at the crash. A task whose submit append was itself killed
	// never entered the log's exactly-once domain — a real crash loses it
	// before the submitter could have been acknowledged.
	final, err := wal.Replay(walDir)
	if err != nil {
		return res, fmt.Errorf("final replay: %w", err)
	}
	if len(final.Live) != 0 {
		violate("final log still holds %d live tasks", len(final.Live))
	}
	if got, want := final.TerminalTotal(), int64(len(keyToIdx)); got != want {
		violate("final log holds %d terminals, want %d (one per logged task)", got, want)
	}
	return res, nil
}
