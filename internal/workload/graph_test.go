package workload

import "testing"

// TestRunGraphBoundsFrontierAndRecycles drains a scaled-down DAG and checks
// the scenario's core claims: every node completes and recycles, and the
// live frontier never exceeds the windowed bound (W×L plus dispatch slack).
func TestRunGraphBoundsFrontierAndRecycles(t *testing.T) {
	const nodes, chains, window = 20_000, 8, 32
	res, err := RunGraph(GraphConfig{Nodes: nodes, Chains: chains, Window: window, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecycledNodes != nodes {
		t.Fatalf("RecycledNodes = %d, want %d (every record must recycle)", res.RecycledNodes, nodes)
	}
	if res.Edges != nodes-chains {
		t.Fatalf("Edges = %d, want %d", res.Edges, nodes-chains)
	}
	// The frontier bound: W chains × L window, doubled for dispatch-pipeline
	// slack (tasks between retire and the sampler's next tick).
	if bound := int64(2 * chains * window); res.LiveNodesMax > bound {
		t.Fatalf("LiveNodesMax = %d exceeds frontier bound %d", res.LiveNodesMax, bound)
	}
	if res.TasksPerSec <= 0 || res.MakespanMs <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
}

// TestRunGraphTinyConfig exercises the remainder distribution (nodes not a
// multiple of chains) and chains > nodes clamping.
func TestRunGraphTinyConfig(t *testing.T) {
	res, err := RunGraph(GraphConfig{Nodes: 7, Chains: 16, Window: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecycledNodes != 7 {
		t.Fatalf("RecycledNodes = %d, want 7", res.RecycledNodes)
	}
	if res.Chains != 7 {
		t.Fatalf("Chains = %d, want clamped to 7", res.Chains)
	}
}
