package exex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

func testRegistry(t *testing.T) *serialize.Registry {
	t.Helper()
	reg := serialize.NewRegistry()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register("echo", func(args []any, _ map[string]any) (any, error) { return args[0], nil }))
	must(reg.Register("sleep", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Millisecond)
		return "slept", nil
	}))
	must(reg.Register("fail", func([]any, map[string]any) (any, error) { return nil, errors.New("boom") }))
	return reg
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

// newEXEX builds an executor with `pools` MPI pools of `ranks` ranks each.
func newEXEX(t *testing.T, pools, ranks int, tune func(*Config)) *Executor {
	t.Helper()
	cfg := Config{
		Label:       "exex-test",
		Transport:   simnet.NewNetwork(0),
		Registry:    testRegistry(t),
		Provider:    provider.NewLocal(provider.Config{NodesPerBlock: pools}),
		InitBlocks:  1,
		Pool:        PoolConfig{Ranks: ranks, HeartbeatPeriod: 50 * time.Millisecond},
		Interchange: htexInterchangeCfg(),
	}
	if tune != nil {
		tune(&cfg)
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown() })
	waitCond(t, "pools registered", func() bool { return e.Interchange().ManagerCount() == pools })
	return e
}

func TestRoundTripThroughMPIPool(t *testing.T) {
	e := newEXEX(t, 1, 3, nil)
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"extreme"}}).Result()
	if err != nil || v != "extreme" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestHierarchicalDistribution(t *testing.T) {
	e := newEXEX(t, 2, 5, nil) // 2 pools × 4 worker ranks
	const n = 100
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
}

func TestWorkerRanksRunInParallel(t *testing.T) {
	e := newEXEX(t, 1, 5, nil) // 4 worker ranks
	start := time.Now()
	var futs []*future.Future
	for i := 0; i < 8; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "sleep", Args: []any{50}}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	// 8×50 ms over 4 ranks ≈ 100 ms; sequential would be 400 ms.
	if elapsed := time.Since(start); elapsed > 350*time.Millisecond {
		t.Fatalf("ranks not parallel: %v", elapsed)
	}
}

func TestAppErrorThroughPool(t *testing.T) {
	e := newEXEX(t, 1, 2, nil)
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "fail"}).Result()
	var re *executor.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestRankFailureKillsWholePool(t *testing.T) {
	// §4.3.2: "job and node failures can result in the loss of the entire
	// MPI application". Killing one rank must fail in-flight tasks of the
	// whole pool via heartbeat expiry.
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	cfg := Config{
		Label:       "exex-fault",
		Transport:   tr,
		Registry:    reg,
		Provider:    provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Pool:        PoolConfig{Ranks: 3, HeartbeatPeriod: 30 * time.Millisecond},
		Interchange: htexInterchangeCfg(),
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	pool, err := StartPool(tr, e.Interchange().Addr(), "pool-victim", reg, cfg.Pool)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "pool registered", func() bool { return e.Interchange().ManagerCount() == 1 })

	fut := e.Submit(serialize.TaskMsg{ID: 5, App: "sleep", Args: []any{10000}})
	waitCond(t, "task in flight on pool", func() bool {
		return e.Interchange().OutstandingByManager()["pool-victim"] == 1
	})

	pool.FailRank(2) // one rank dies -> whole communicator aborts

	_, err = fut.Result()
	var lost *executor.LostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want LostError", err)
	}
	if !pool.Comm().Aborted() {
		t.Fatal("communicator survived rank failure")
	}
	waitCond(t, "pool deregistered", func() bool { return e.Interchange().ManagerCount() == 0 })
}

func TestSmallPoolsIsolateFailures(t *testing.T) {
	// The recommended mitigation: two pools; killing one leaves the other
	// able to finish work.
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	cfg := Config{
		Label: "exex-isolate", Transport: tr, Registry: reg,
		Provider:    provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Pool:        PoolConfig{Ranks: 2, HeartbeatPeriod: 30 * time.Millisecond},
		Interchange: htexInterchangeCfg(),
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	dead, err := StartPool(tr, e.Interchange().Addr(), "pool-a", reg, cfg.Pool)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := StartPool(tr, e.Interchange().Addr(), "pool-b", reg, cfg.Pool)
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Stop()
	waitCond(t, "both pools", func() bool { return e.Interchange().ManagerCount() == 2 })

	dead.FailRank(1)
	waitCond(t, "one pool left", func() bool { return e.Interchange().ManagerCount() == 1 })

	v, err := e.Submit(serialize.TaskMsg{ID: 9, App: "echo", Args: []any{"survived"}}).Result()
	if err != nil || v != "survived" {
		t.Fatalf("surviving pool: %v, %v", v, err)
	}
	if alive.Executed() == 0 {
		t.Fatal("surviving pool executed nothing")
	}
}

func TestPoolExecutedCounter(t *testing.T) {
	e := newEXEX(t, 1, 3, nil)
	var futs []*future.Future
	for i := 0; i < 10; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
}

func TestScaleOutAddsPools(t *testing.T) {
	e := newEXEX(t, 1, 2, nil)
	if err := e.ScaleOut(2); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "3 pools", func() bool { return e.Interchange().ManagerCount() == 3 })
	if err := e.ScaleIn(2); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "1 pool", func() bool { return e.Interchange().ManagerCount() == 1 })
}

func htexInterchangeCfg() htex.InterchangeConfig {
	return htex.InterchangeConfig{
		Seed:               1,
		HeartbeatPeriod:    30 * time.Millisecond,
		HeartbeatThreshold: 150 * time.Millisecond,
	}
}

// TestStreamCorruptionRecovery corrupts both of the pool's manager-protocol
// stream legs — the interchange's TASKS stream in, the pool's RESULTS
// stream out — and asserts the NACK resync protocol recovers exactly as it
// does for htex managers: every task completes, nothing wedges. (Before the
// pool implemented the NACK contract, one corrupted frame on either leg
// permanently wedged the pool's stream.)
func TestStreamCorruptionRecovery(t *testing.T) {
	inj := chaos.New(29, chaos.Plan{
		{Point: chaos.PointIxTasks, Act: chaos.ActCorrupt, Prob: 0.3},
		{Point: chaos.PointMgrResults, Act: chaos.ActCorrupt, Prob: 0.3},
	})
	restore := chaos.Enable(inj)
	defer restore()

	e := newEXEX(t, 1, 3, nil)
	const n = 40
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	deadline := time.Now().Add(30 * time.Second)
	for i, f := range futs {
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Millisecond
		}
		v, err := f.ResultTimeout(rem)
		if err != nil {
			t.Fatalf("task %d stuck after stream corruption: %v", i, err)
		}
		if v != i {
			t.Fatalf("task %d = %v", i, v)
		}
	}
	if inj.Fires(chaos.PointIxTasks)+inj.Fires(chaos.PointMgrResults) == 0 {
		t.Fatal("no corruption fired")
	}
	waitCond(t, "interchange drained", func() bool {
		if e.Interchange().QueueDepth() != 0 {
			return false
		}
		for _, held := range e.Interchange().OutstandingByManager() {
			if held != 0 {
				return false
			}
		}
		return true
	})
}
