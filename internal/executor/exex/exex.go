// Package exex implements Parsl's Extreme Scale Executor (§4.3.2). EXEX
// targets the largest machines by replacing per-worker network connections
// with MPI inside each worker pool: rank 0 of a pool acts as the manager,
// speaking the interchange protocol on behalf of the worker ranks, which
// communicate over the (simulated) MPI fabric. The hierarchy is what lets
// EXEX reach 262 144 workers where connection-per-worker designs exhaust the
// hub.
//
// The cost is MPI's fault model: a single rank failure aborts the entire
// pool, which surfaces here exactly as the paper describes — the interchange
// heartbeat expires and every in-flight task of the pool is reported lost.
// The recommended mitigation, several smaller pools per scheduler job, is
// the deployment shape New builds (one pool per node).
package exex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/mpi"
	"repro/internal/mq"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// MPI message tags used inside a pool.
const (
	tagTask   = 1
	tagResult = 2
)

// PoolConfig tunes one MPI worker pool.
type PoolConfig struct {
	// Ranks is the MPI communicator size: 1 manager + (Ranks-1) workers.
	Ranks int
	// Prefetch is extra capacity advertised beyond worker count.
	Prefetch int
	// ResultFlush / FlushInterval batch results toward the interchange.
	ResultFlush   int
	FlushInterval time.Duration
	// HeartbeatPeriod is the manager's interchange heartbeat.
	HeartbeatPeriod time.Duration
	// MPILatency simulates fabric point-to-point latency.
	MPILatency time.Duration
}

func (c *PoolConfig) normalize() {
	if c.Ranks < 2 {
		c.Ranks = 2
	}
	if c.ResultFlush <= 0 {
		c.ResultFlush = 16
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 5 * time.Millisecond
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 200 * time.Millisecond
	}
}

// Pool is one MPI job: rank 0 manager plus worker ranks.
type Pool struct {
	id   string
	cfg  PoolConfig
	comm *mpi.Comm
	reg  *serialize.Registry

	dealer *mq.Dealer
	// resEnc is this pool's persistent RESULTS stream toward the
	// interchange. A field (not loop-local) because the NACK resync
	// protocol resets it from the receive loop (see managerRecvLoop).
	resEnc *htex.ResultStreamEncoder

	done     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
	executed atomic.Int64

	mu       sync.Mutex
	busy     map[int]bool // worker rank -> executing
	inflight map[int64]int
}

// StartPool launches an MPI pool whose rank 0 registers with the interchange
// at addr.
func StartPool(tr simnet.Transport, addr, id string, reg *serialize.Registry, cfg PoolConfig) (*Pool, error) {
	cfg.normalize()
	comm, err := mpi.NewComm(cfg.Ranks)
	if err != nil {
		return nil, fmt.Errorf("exex: pool %s: %w", id, err)
	}
	comm.SetLatency(cfg.MPILatency)

	dealer, err := mq.DialDealer(tr, addr, id)
	if err != nil {
		return nil, fmt.Errorf("exex: pool %s dial: %w", id, err)
	}
	p := &Pool{
		id: id, cfg: cfg, comm: comm, reg: reg, dealer: dealer,
		resEnc:   htex.NewResultStreamEncoder(),
		done:     make(chan struct{}),
		busy:     make(map[int]bool),
		inflight: make(map[int64]int),
	}
	capacity := (cfg.Ranks - 1) + cfg.Prefetch
	if err := dealer.Send(mq.Message{[]byte("REG"), []byte(fmt.Sprintf("%d", capacity))}); err != nil {
		_ = dealer.Close()
		return nil, fmt.Errorf("exex: pool %s register: %w", id, err)
	}

	// Worker ranks 1..n-1.
	for r := 1; r < cfg.Ranks; r++ {
		p.wg.Add(1)
		go p.workerRank(r)
	}
	// Rank 0: manager-side loops.
	p.wg.Add(3)
	go p.managerRecvLoop()
	go p.managerResultLoop()
	go p.heartbeatLoop()
	return p, nil
}

// ID returns the pool's interchange identity.
func (p *Pool) ID() string { return p.id }

// Executed returns tasks completed by this pool.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Comm exposes the communicator for failure injection in tests.
func (p *Pool) Comm() *mpi.Comm { return p.comm }

// workerRank is the code running on MPI ranks 1..n-1: receive a task over
// MPI, execute, send the result back to rank 0.
func (p *Pool) workerRank(rank int) {
	defer p.wg.Done()
	workerID := fmt.Sprintf("%s/rank%d", p.id, rank)
	for {
		env, err := p.comm.Recv(rank, 0, tagTask)
		if err != nil {
			return // communicator aborted: the whole pool dies
		}
		task, err := serialize.DecodeTask(env.Data)
		if err != nil {
			continue
		}
		res := executor.RunKernel(p.reg, task, workerID)
		payload, err := serialize.EncodeResult(res)
		if err != nil {
			continue
		}
		if err := p.comm.Send(rank, 0, tagResult, payload); err != nil {
			return
		}
	}
}

// managerRecvLoop is rank 0's interchange-facing half: receive task batches
// off the interchange's per-manager stream and fan them out to idle worker
// ranks over MPI.
func (p *Pool) managerRecvLoop() {
	defer p.wg.Done()
	taskDec := htex.NewTaskStreamDecoder()
	for {
		msg, err := p.dealer.Recv()
		if err != nil {
			p.Stop()
			return
		}
		if len(msg) == 0 {
			continue
		}
		switch string(msg[0]) {
		case "TASKS":
			if len(msg) < 2 {
				continue
			}
			batch, err := taskDec.Decode(msg[1])
			if err != nil {
				// Same resync contract as htex managers: NACK so the
				// interchange restarts this pool's task stream and requeues
				// what the pool was holding — without it one corrupted frame
				// would wedge the pool's stream for the rest of the session.
				_ = p.dealer.Send(htex.NackMessage(msg[1]))
				continue
			}
			for _, t := range batch {
				if !p.dispatchMPI(t) {
					return
				}
			}
		case "HB":
			// Interchange liveness echo; nothing to track beyond receipt.
		case "NACK":
			// The interchange cannot decode this pool's RESULTS stream:
			// resync to a fresh self-describing epoch (epoch-matched, so
			// duplicate NACKs for one epoch collapse to one reset).
			if len(msg) >= 2 {
				if ep := htex.NackEpoch(msg[1]); ep != 0 && p.resEnc.Epoch() == ep {
					p.resEnc.Reset()
				}
			}
		}
	}
}

// dispatchMPI sends one task to an idle rank, blocking until one frees. The
// MPI interior uses one-shot envelopes (every rank must decode standalone),
// and the argument payload inside is the submit-time encoding, forwarded
// byte-for-byte — rank 0 never re-serializes arguments.
func (p *Pool) dispatchMPI(t serialize.WireTask) bool {
	payload, err := serialize.EncodeWire(t)
	if err != nil {
		return true
	}
	for {
		rank := -1
		p.mu.Lock()
		for r := 1; r < p.cfg.Ranks; r++ {
			if !p.busy[r] {
				p.busy[r] = true
				rank = r
				break
			}
		}
		if rank >= 0 {
			p.inflight[t.ID] = rank
		}
		p.mu.Unlock()
		if rank >= 0 {
			return p.comm.Send(0, rank, tagTask, payload) == nil
		}
		select {
		case <-p.done:
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// managerResultLoop is rank 0's MPI-facing half: gather results from worker
// ranks and batch them to the interchange.
func (p *Pool) managerResultLoop() {
	defer p.wg.Done()
	var batch []serialize.ResultMsg
	flushTimer := time.NewTimer(p.cfg.FlushInterval)
	defer flushTimer.Stop()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		_ = p.resEnc.Encode(batch, func(frame []byte) error {
			return chaos.Frame(chaos.PointMgrResults, p.id, frame, func(fr []byte) error {
				return p.dealer.Send(mq.Message{[]byte("RESULTS"), fr})
			})
		})
		batch = nil
	}
	for {
		select {
		case <-p.done:
			flush()
			return
		default:
		}
		ok, err := p.comm.Probe(0, mpi.AnySource, tagResult)
		if err != nil {
			flush()
			p.Stop()
			return
		}
		if !ok {
			select {
			case <-flushTimer.C:
				flush()
				flushTimer.Reset(p.cfg.FlushInterval)
			case <-time.After(200 * time.Microsecond):
			case <-p.done:
				flush()
				return
			}
			continue
		}
		env, err := p.comm.Recv(0, mpi.AnySource, tagResult)
		if err != nil {
			flush()
			p.Stop()
			return
		}
		res, err := serialize.DecodeResult(env.Data)
		if err != nil {
			continue
		}
		p.executed.Add(1)
		p.mu.Lock()
		p.busy[env.Source] = false
		delete(p.inflight, res.ID)
		p.mu.Unlock()
		batch = append(batch, res)
		if len(batch) >= p.cfg.ResultFlush {
			flush()
		}
	}
}

func (p *Pool) heartbeatLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			if p.comm.Aborted() {
				// MPI job died (rank failure): stop heartbeating so the
				// interchange declares the pool lost.
				p.Stop()
				return
			}
			if err := p.dealer.Send(mq.Message{[]byte("HB")}); err != nil {
				p.Stop()
				return
			}
		}
	}
}

// FailRank simulates a node/rank failure inside the pool, killing the whole
// MPI job (§4.3.2's fault model).
func (p *Pool) FailRank(rank int) { p.comm.Abort(rank) }

// Drain announces clean departure, requeueing in-flight work.
func (p *Pool) Drain() {
	_ = p.dealer.Send(mq.Message{[]byte("BYE")})
	p.Stop()
}

// Stop tears the pool down.
func (p *Pool) Stop() {
	p.once.Do(func() {
		close(p.done)
		p.comm.Abort(-1)
		_ = p.dealer.Close()
	})
}

// Config assembles an EXEX deployment: an HTEX-protocol interchange plus
// MPI pools placed by the provider (one pool per node, the "several smaller
// MPI worker pools within a single scheduler job" mitigation).
type Config struct {
	Label       string
	Transport   simnet.Transport
	Addr        string
	Registry    *serialize.Registry
	Provider    provider.Provider
	InitBlocks  int
	Pool        PoolConfig
	Interchange htex.InterchangeConfig
}

// Executor is the EXEX client: the HTEX client/interchange machinery with
// MPI pools as node payloads. Embedding htex.Executor also promotes its
// native SubmitBatch, so the DFK's batched dispatch reaches EXEX pools as
// one TASKB frame into the shared interchange rather than the generic
// per-task fallback loop.
type Executor struct {
	*htex.Executor
	poolSeq atomic.Int64
}

// New creates an EXEX executor.
func New(cfg Config) *Executor {
	if cfg.Label == "" {
		cfg.Label = "exex"
	}
	if cfg.Transport == nil {
		cfg.Transport = simnet.NewNetwork(0)
	}
	cfg.Pool.normalize()
	e := &Executor{}
	inner := htex.New(htex.Config{
		Label:      cfg.Label,
		Transport:  cfg.Transport,
		Addr:       cfg.Addr,
		Registry:   cfg.Registry,
		Provider:   cfg.Provider,
		InitBlocks: cfg.InitBlocks,
		// Mirror the pool's heartbeat clock into ManagerConfig so the htex
		// client's period-vs-threshold cross-check validates the clock the
		// pools actually beat at, not the default manager period.
		Manager: htex.ManagerConfig{
			Workers:         cfg.Pool.Ranks - 1,
			HeartbeatPeriod: cfg.Pool.HeartbeatPeriod,
		},
		Interchange: cfg.Interchange,
		PayloadFactory: func(addr string, node provider.Node) (func(), error) {
			id := fmt.Sprintf("pool-%s-%d", node.BlockID, e.poolSeq.Add(1))
			pool, err := StartPool(cfg.Transport, addr, id, cfg.Registry, cfg.Pool)
			if err != nil {
				return nil, err
			}
			return pool.Drain, nil
		},
	})
	e.Executor = inner
	return e
}
