// Package executor defines Parsl's modular executor interface (§4.3) and the
// shared execution kernel. Executors move tasks to resources, run them, and
// complete the future the DataFlowKernel is holding. Concrete executors live
// in subpackages: threadpool (in-process), htex (high throughput), exex
// (extreme scale over MPI), and llex (low latency).
package executor

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/chaos"
	"repro/internal/future"
	"repro/internal/serialize"
)

// Executor runs tasks on some set of resources. It extends the spirit of
// concurrent.futures.Executor the way Parsl does: submission returns a
// future, plus lifecycle and introspection hooks the DFK and the elasticity
// strategy need.
type Executor interface {
	// Label is the config-assigned name used for executor selection hints.
	Label() string
	// Start brings the executor up. It must be called before Submit.
	Start() error
	// Submit schedules a task; the returned future completes with the
	// task's result or error.
	Submit(msg serialize.TaskMsg) *future.Future
	// Outstanding reports tasks submitted but not yet completed, the
	// workload-pressure signal used by scaling strategies (§3.6).
	Outstanding() int
	// Shutdown stops the executor and releases its resources.
	Shutdown() error
}

// Scalable is implemented by executors that support block-based elasticity.
type Scalable interface {
	Executor
	// ScaleOut requests n more blocks.
	ScaleOut(n int) error
	// ScaleIn releases n blocks.
	ScaleIn(n int) error
	// ActiveBlocks reports provisioned blocks.
	ActiveBlocks() int
	// ConnectedWorkers reports currently registered workers.
	ConnectedWorkers() int
}

// BatchSubmitter is implemented by executors that can accept a batch of
// ready tasks in one call, amortizing per-submit locking and wire framing.
// The DFK's dispatch pipeline groups ready tasks by target executor and
// prefers this interface, degrading to one Submit call per task for
// executors that do not implement it.
type BatchSubmitter interface {
	// SubmitBatch schedules every task in msgs and returns their futures in
	// matching order. Submission failures are reported through the affected
	// future, never by shortening the slice.
	SubmitBatch(msgs []serialize.TaskMsg) []*future.Future
}

// Canceler is implemented by executors that can drop submitted work that
// has not started running. Cancel names the task by its wire id and reports
// whether the cancellation settled the task's executor-side future (false
// when the task is unknown or already completed). Cancellation is a queue
// operation, not a kill: work already running is never preempted, and how
// much the bool promises depends on the executor's distance. The in-process
// threadpool claims the task atomically, so true means the work will never
// start; distributed executors (htex) settle the client-side handle and
// forward a best-effort drop — true there means the result will be
// discarded, while a task already executing remotely still runs to
// completion. Callers with non-idempotent work must not treat true as proof
// that no side effects occurred.
type Canceler interface {
	Cancel(wireID int64) bool
}

// ErrShutdown is returned by Submit after Shutdown.
var ErrShutdown = errors.New("executor: shut down")

// RemoteError is an app or infrastructure failure reported by a worker. The
// DFK unwraps it when deciding whether to retry.
type RemoteError struct {
	TaskID int64
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("task %d failed remotely: %s", e.TaskID, e.Msg)
}

// LostError indicates the infrastructure (manager, worker pool) executing
// the task was lost — distinct from the app itself failing, and always
// retriable (§4.3.1: "an exception is sent to the executor so that DFK can
// make appropriate decisions").
type LostError struct {
	TaskID int64
	Detail string
	// Manager identifies the lost manager when known ("" otherwise); the
	// health plane's poison-task quarantine counts distinct managers a task's
	// attempts have killed.
	Manager string
}

// Error implements error.
func (e *LostError) Error() string {
	if e.Manager != "" {
		return fmt.Sprintf("task %d lost: %s (manager %s)", e.TaskID, e.Detail, e.Manager)
	}
	return fmt.Sprintf("task %d lost: %s", e.TaskID, e.Detail)
}

// RunKernel is the common execution kernel every executor shares (§4.3):
// resolve the app in the registry, execute it against its (already
// deserialized) arguments inside a panic sandbox, and package the outcome.
func RunKernel(reg *serialize.Registry, msg serialize.TaskMsg, workerID string) (res serialize.ResultMsg) {
	res = serialize.ResultMsg{ID: msg.ID, WorkerID: workerID}
	entry, ok := reg.Lookup(msg.App)
	if !ok {
		res.Err = fmt.Sprintf("app %q not registered on worker %s", msg.App, workerID)
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			res.Value = nil
			res.Err = fmt.Sprintf("panic in app %q: %v\n%s", msg.App, r, debug.Stack())
		}
	}()
	// Execution fault point, inside the recover sandbox: an injected panic
	// takes exactly the path a panicking app body would, an injected stall
	// models a slow task on this worker, and an injected failure (plain or
	// class-typed) becomes the task's reported error. No-op unless chaos is
	// armed.
	if err := chaos.Exec(chaos.PointExecRun, workerID); err != nil {
		res.Err = err.Error()
		return res
	}
	v, err := entry.Fn(msg.Args, msg.Kwargs)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Value = v
	return res
}

// Complete applies a ResultMsg to a future using the error conventions above.
func Complete(fut *future.Future, res serialize.ResultMsg) {
	if res.Err != "" {
		_ = fut.SetError(&RemoteError{TaskID: res.ID, Msg: res.Err})
		return
	}
	_ = fut.SetResult(res.Value)
}
