package htex

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/mq"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// ManagerConfig tunes one pilot agent.
type ManagerConfig struct {
	// Workers is the number of worker goroutines (one per core in the
	// paper's deployments).
	Workers int
	// Prefetch is extra task slots advertised beyond Workers, letting the
	// manager buffer tasks and hide interchange round trips (§4.3.1:
	// "configurable batching and prefetching of tasks to minimize
	// communication overheads").
	Prefetch int
	// ResultFlush batches results until this many accumulate or
	// FlushInterval passes.
	ResultFlush   int
	FlushInterval time.Duration
	// HeartbeatPeriod is how often the manager pings the interchange; if
	// the interchange stays silent for 5 periods the manager exits
	// ("managers, upon losing contact with the interchange, exit
	// immediately to avoid resource wastage").
	HeartbeatPeriod time.Duration
}

// Validate rejects impossible manager configurations (negative knobs). Zero
// values are fine — normalize fills them.
func (c ManagerConfig) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("htex: manager Workers %d is negative", c.Workers)
	}
	if c.Prefetch < 0 {
		return fmt.Errorf("htex: manager Prefetch %d is negative", c.Prefetch)
	}
	if c.ResultFlush < 0 {
		return fmt.Errorf("htex: manager ResultFlush %d is negative", c.ResultFlush)
	}
	if c.FlushInterval < 0 {
		return fmt.Errorf("htex: manager FlushInterval %v is negative", c.FlushInterval)
	}
	if c.HeartbeatPeriod < 0 {
		return fmt.Errorf("htex: manager HeartbeatPeriod %v is negative", c.HeartbeatPeriod)
	}
	return nil
}

func (c *ManagerConfig) normalize() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Prefetch < 0 {
		c.Prefetch = 0
	}
	if c.ResultFlush <= 0 {
		c.ResultFlush = 16
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 5 * time.Millisecond
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 200 * time.Millisecond
	}
}

// Manager is the per-node pilot agent: it registers capacity with the
// interchange, feeds a pool of worker goroutines, and streams result batches
// back. Tasks arrive as wire envelopes; the argument payload — encoded once
// at submit time on the client — is decoded here, by the worker goroutine
// about to execute the task, and nowhere else.
type Manager struct {
	id     string
	cfg    ManagerConfig
	reg    *serialize.Registry
	dealer *mq.Dealer
	// taskDec consumes the interchange's per-manager TASKS stream; resEnc
	// produces this manager's RESULTS stream.
	taskDec *TaskStreamDecoder
	resEnc  *ResultStreamEncoder

	tasks   chan serialize.WireTask
	results chan serialize.ResultMsg

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu       sync.Mutex
	lastSeen time.Time
	executed int64
	// canceled holds wire ids the interchange struck while they sat in this
	// manager's task buffer; workers drop them on dequeue instead of running
	// them. Entries are removed when encountered. An id canceled after its
	// task already ran leaves a stale entry — bounded by cancellations per
	// manager lifetime, and harmless because wire ids are never reused.
	canceled map[int64]struct{}
	// digests is the content-digest set this manager advertises in its
	// heartbeats: the Payload.ArgsHash of every task it has successfully
	// executed recently (its warm inputs/results), bounded FIFO by
	// maxAdvertisedDigests. digestOrder tracks insertion order for eviction.
	digests     map[string]struct{}
	digestOrder []string
}

// maxAdvertisedDigests bounds one manager's heartbeat digest-set summary.
// At 16 hex chars + separator per digest the advert stays under ~9 KiB.
const maxAdvertisedDigests = 512

// StartManager connects a manager to the interchange at addr and begins
// executing tasks from reg.
func StartManager(tr simnet.Transport, addr, id string, reg *serialize.Registry, cfg ManagerConfig) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.normalize()
	dealer, err := mq.DialDealer(tr, addr, id)
	if err != nil {
		return nil, fmt.Errorf("htex: manager %s: %w", id, err)
	}
	m := &Manager{
		id:       id,
		cfg:      cfg,
		reg:      reg,
		dealer:   dealer,
		taskDec:  NewTaskStreamDecoder(),
		resEnc:   NewResultStreamEncoder(),
		tasks:    make(chan serialize.WireTask, cfg.Workers+cfg.Prefetch),
		results:  make(chan serialize.ResultMsg, cfg.Workers+cfg.Prefetch),
		done:     make(chan struct{}),
		lastSeen: time.Now(),
		canceled: make(map[int64]struct{}),
		digests:  make(map[string]struct{}),
	}
	capacity := cfg.Workers + cfg.Prefetch
	if err := dealer.Send(mq.Message{[]byte(frameReg), []byte(strconv.Itoa(capacity))}); err != nil {
		_ = dealer.Close()
		return nil, fmt.Errorf("htex: manager %s register: %w", id, err)
	}

	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker(fmt.Sprintf("%s/w%d", id, i))
	}
	m.wg.Add(3)
	go m.recvLoop()
	go m.resultLoop()
	go m.heartbeatLoop()
	return m, nil
}

// ID returns the manager's identity.
func (m *Manager) ID() string { return m.id }

// Executed returns the number of tasks this manager has run.
func (m *Manager) Executed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.executed
}

func (m *Manager) recvLoop() {
	defer m.wg.Done()
	for {
		msg, err := m.dealer.Recv()
		if err != nil {
			m.Stop() // interchange gone: exit immediately
			return
		}
		if len(msg) == 0 {
			continue
		}
		switch string(msg[0]) {
		case frameTasks:
			if len(msg) < 2 {
				continue
			}
			batch, err := m.taskDec.Decode(msg[1])
			if err != nil {
				// Undecodable task stream: NACK so the interchange resyncs
				// this manager's encoder and requeues what it was holding
				// (codec.go). Without this, the lost frame's tasks would sit
				// in the broker's outstanding set forever, leaking capacity.
				_ = m.dealer.Send(mq.Message{[]byte(frameNack), nackPayload(msg[1])})
				continue
			}
			for _, t := range batch {
				select {
				case m.tasks <- t:
				case <-m.done:
					return
				}
			}
		case frameHB:
			m.mu.Lock()
			m.lastSeen = time.Now()
			m.mu.Unlock()
		case frameCancel:
			if len(msg) < 2 {
				continue
			}
			ids, err := decodeIDs(msg[1])
			if err != nil {
				continue
			}
			m.mu.Lock()
			for _, id := range ids {
				m.canceled[id] = struct{}{}
			}
			m.mu.Unlock()
		case frameNack:
			// The interchange cannot decode this manager's RESULTS stream:
			// resync to a fresh self-describing epoch. The interchange
			// requeued our outstanding set when it sent the NACK, so the
			// lost frame's results re-execute elsewhere (codec.go).
			if len(msg) >= 2 {
				if epoch := nackEpoch(msg[1]); epoch != 0 && m.resEnc.Epoch() == epoch {
					m.resEnc.Reset()
				}
			}
		}
	}
}

// dropCanceled reports (and consumes) a pending cancellation for id.
func (m *Manager) dropCanceled(id int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.canceled[id]; ok {
		delete(m.canceled, id)
		return true
	}
	return false
}

func (m *Manager) worker(workerID string) {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case w := <-m.tasks:
			// Chaos: abrupt manager death mid-batch — no BYE, no result. The
			// interchange's disconnect/heartbeat policing reports the held
			// tasks LOST, and the DFK retry path re-executes them (§3.7). The
			// detail carries the dequeued app name so poison-task scenarios
			// can Match a specific task killing every manager it lands on.
			if chaos.Kill(chaos.PointMgrKill, m.id+" app="+w.App) {
				m.Stop()
				return
			}
			if m.dropCanceled(w.ID) {
				continue // struck by the interchange; never starts
			}
			// First and only decode of the argument payload, on the
			// goroutine that executes it — the decode is the worker's
			// private deep copy, so no further isolation copy is needed.
			// The wire frame's bytes go straight to the decoder
			// (DecodeArgsBytes); no intermediate Payload wrapper, no copy
			// of the buffer, and the stack-built TaskMsg carries only the
			// decoded values into the kernel.
			args, kwargs, err := serialize.DecodeArgsBytes(w.P)
			if err != nil {
				select {
				case m.results <- serialize.ResultMsg{ID: w.ID, WorkerID: workerID,
					Err: fmt.Sprintf("decode task %d: %v", w.ID, err)}:
				case <-m.done:
					return
				}
				continue
			}
			res := executor.RunKernel(m.reg, serialize.TaskMsg{
				ID: w.ID, App: w.App, Priority: w.Priority,
				Tenant: w.Tenant, Weight: w.Weight,
				Args: args, Kwargs: kwargs,
			}, workerID)
			m.mu.Lock()
			m.executed++
			if res.Err == "" {
				// Successful execution warms this manager for the task's
				// exact input bytes: note the content digest (derived from
				// the wire payload — the same FNV value the client's
				// Payload.ArgsHash reports) for the heartbeat advert.
				m.noteDigestLocked(serialize.DigestBytes(w.P))
			}
			m.mu.Unlock()
			select {
			case m.results <- res:
			case <-m.done:
				return
			}
		}
	}
}

// resultLoop aggregates results and sends them in batches (§4.3.1: "results
// are aggregated from workers and sent to the interchange in batches").
func (m *Manager) resultLoop() {
	defer m.wg.Done()
	var batch []serialize.ResultMsg
	timer := time.NewTimer(m.cfg.FlushInterval)
	defer timer.Stop()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		_ = m.resEnc.Encode(batch, func(frame []byte) error {
			return chaos.Frame(chaos.PointMgrResults, m.id, frame, func(fr []byte) error {
				return m.dealer.Send(mq.Message{[]byte(frameResults), fr})
			})
		})
		// The gob encode above copied the batch into the encoder's frame
		// buffer synchronously (and the stream encoder reuses that buffer
		// across frames — see serialize.StreamEncoder), so the slice can be
		// reused in place: result batching allocates once per manager, not
		// once per flush.
		batch = batch[:0]
	}
	for {
		select {
		case <-m.done:
			flush()
			return
		case r := <-m.results:
			batch = append(batch, r)
			if len(batch) >= m.cfg.ResultFlush {
				flush()
			}
		case <-timer.C:
			flush()
			timer.Reset(m.cfg.FlushInterval)
		}
	}
}

// noteDigestLocked records a warm content digest for the heartbeat advert,
// evicting the oldest entry past the bound. Caller holds m.mu.
func (m *Manager) noteDigestLocked(d string) {
	if _, ok := m.digests[d]; ok {
		return
	}
	m.digests[d] = struct{}{}
	m.digestOrder = append(m.digestOrder, d)
	for len(m.digestOrder) > maxAdvertisedDigests {
		delete(m.digests, m.digestOrder[0])
		m.digestOrder = m.digestOrder[1:]
	}
}

// digestAdvert renders the compact digest-set summary attached to
// heartbeats: the bounded set of warm digests, comma-joined. Empty before
// the first successful execution (and the HB then carries no extra part).
func (m *Manager) digestAdvert() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.digestOrder) == 0 {
		return nil
	}
	return []byte(strings.Join(m.digestOrder, ","))
}

func (m *Manager) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			// The heartbeat doubles as the locality advertisement: an extra
			// frame part carries the digest-set summary so the interchange
			// can aggregate who holds what without any new message type.
			// Interchanges ignore parts they don't expect, so an empty set
			// sends the classic single-part HB.
			hb := mq.Message{[]byte(frameHB)}
			if adv := m.digestAdvert(); adv != nil {
				hb = append(hb, adv)
			}
			if err := m.dealer.Send(hb); err != nil {
				m.Stop()
				return
			}
			m.mu.Lock()
			silent := time.Since(m.lastSeen)
			m.mu.Unlock()
			if silent > 5*m.cfg.HeartbeatPeriod {
				m.Stop()
				return
			}
		}
	}
}

// Drain announces clean departure so in-flight tasks are requeued rather
// than reported lost, then stops. It waits (bounded) for the interchange to
// acknowledge by hanging up, so the BYE is processed before the connection
// drops — otherwise the disconnect would race the BYE and the interchange
// would report the tasks lost instead of requeueing them.
func (m *Manager) Drain() {
	if err := m.dealer.Send(mq.Message{[]byte(frameBye)}); err == nil {
		select {
		case <-m.done: // recvLoop saw the interchange hang up
		case <-time.After(2 * time.Second):
		}
	}
	m.Stop()
}

// Stop terminates the manager's goroutines and connection.
func (m *Manager) Stop() {
	m.closeOnce.Do(func() {
		close(m.done)
		_ = m.dealer.Close()
	})
}

// Wait blocks until all manager goroutines exit (tests).
func (m *Manager) Wait() { m.wg.Wait() }
