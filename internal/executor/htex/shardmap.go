package htex

import (
	"sort"
	"sync"
)

// This file is the routing layer of the sharded control plane: the HTEX
// client runs N interchange shards as one logical executor, and ShardMap
// decides — deterministically — which shard every manager and every task
// lands on. Placement is consistent hashing over a virtual-node ring, so
// shard death moves only the dead shard's keys (bounded key movement) and a
// tenant's tasks stay together on one shard (tenant affinity) as long as the
// membership holds. The shard core itself — queues, heartbeats, NACK resync —
// is the unchanged Interchange; everything cross-shard lives here and in the
// client's fan-out/reconcile paths.

// shardVNodes is the virtual-node count per shard. 64 points per shard keeps
// the ring's load spread within a few percent of uniform at the shard counts
// this executor targets (single digits to low tens) while membership changes
// stay O(vnodes·shards·log) — rebuilt only on shard death, never per task.
const shardVNodes = 64

// ringEntry is one virtual node: a point on the hash circle owned by a shard.
type ringEntry struct {
	point uint64
	shard int
}

// ShardMap places managers and tasks onto interchange shards by consistent
// hash. It is safe for concurrent use: placement takes a read lock, and the
// single-shard deployment (the default) short-circuits before hashing so the
// unsharded hot path stays allocation- and hash-free.
type ShardMap struct {
	mu     sync.RWMutex
	total  int
	alive  []bool
	aliveN int
	ring   []ringEntry // sorted vnode points over the alive shards
}

// NewShardMap builds a map over shards 0..n-1, all alive.
func NewShardMap(n int) *ShardMap {
	if n < 1 {
		n = 1
	}
	m := &ShardMap{total: n, alive: make([]bool, n), aliveN: n}
	for i := range m.alive {
		m.alive[i] = true
	}
	m.rebuildLocked()
	return m
}

// rebuildLocked regenerates the vnode ring from the alive set. Points are a
// pure function of (shard, replica), so the ring after any membership
// history equals the ring built fresh from the same alive set — placement
// depends on membership, not on the order shards died.
func (m *ShardMap) rebuildLocked() {
	m.ring = m.ring[:0]
	for s := 0; s < m.total; s++ {
		if !m.alive[s] {
			continue
		}
		for r := 0; r < shardVNodes; r++ {
			// Double-mixed so the vnode domain is disjoint from task-id
			// hashes: a single mix64(s<<32|r) would make shard 0's points
			// exactly mix64(0..63), the same values tenantless task ids
			// 0..63 hash to, pinning every early task onto shard 0.
			m.ring = append(m.ring, ringEntry{
				point: mix64(mix64(uint64(s)+1) ^ uint64(r)),
				shard: s,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool { return m.ring[i].point < m.ring[j].point })
}

// Total reports the configured shard count.
func (m *ShardMap) Total() int { return m.total }

// AliveCount reports how many shards currently accept placement.
func (m *ShardMap) AliveCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.aliveN
}

// IsAlive reports whether shard i accepts placement.
func (m *ShardMap) IsAlive(i int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return i >= 0 && i < m.total && m.alive[i]
}

// Alive returns the alive shard indices in ascending order.
func (m *ShardMap) Alive() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, m.aliveN)
	for i, a := range m.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Remove marks shard i dead and rebuilds the ring: only keys whose vnode arc
// belonged to i move (to the arcs' successors); every other placement is
// unchanged. Returns false if i was already dead or out of range. The last
// alive shard cannot be removed — a map with no shards places nothing.
func (m *ShardMap) Remove(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= m.total || !m.alive[i] || m.aliveN == 1 {
		return false
	}
	m.alive[i] = false
	m.aliveN--
	m.rebuildLocked()
	return true
}

// Restore marks shard i alive again (tests; a future shard-respawn path).
// The inverse movement property holds: only keys on i's arcs move back.
func (m *ShardMap) Restore(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= m.total || m.alive[i] {
		return false
	}
	m.alive[i] = true
	m.aliveN++
	m.rebuildLocked()
	return true
}

// locate finds the ring successor of point h. Callers hold m.mu (read).
func (m *ShardMap) locateLocked(h uint64) int {
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].point >= h })
	if i == len(m.ring) {
		i = 0
	}
	return i
}

// Place maps a string key (a manager identity, a tenant) to an alive shard.
func (m *ShardMap) Place(key string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.aliveN == 1 {
		return m.ring[0].shard
	}
	return m.ring[m.locateLocked(hashString(key))].shard
}

// PlaceTask maps one task to a shard, tenant-affine: a task carrying a
// tenant follows its tenant's hash so a tenant's whole queue lands on one
// shard (its DRR share is then enforced by that shard's fair queue exactly
// as in the single-broker design); tenantless tasks spread by wire id. The
// single-alive-shard fast path does no hashing — the default deployment
// routes in a few nanoseconds with zero allocations.
func (m *ShardMap) PlaceTask(tenant string, id int64) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.aliveN == 1 {
		return m.ring[0].shard
	}
	var h uint64
	if tenant != "" {
		h = hashString(tenant)
	} else {
		h = mix64(uint64(id))
	}
	return m.ring[m.locateLocked(h)].shard
}

// PlaceTaskFunc is PlaceTask with a capacity veto: when ok rejects the
// hash-preferred shard (no registered managers, breaker open), the walk
// continues around the ring to the first distinct shard ok accepts, so a
// temporarily capacity-less shard spills to its ring successor instead of
// wedging its tasks. If no shard passes, the preferred shard is returned —
// placement never fails, it only waits.
func (m *ShardMap) PlaceTaskFunc(tenant string, id int64, ok func(shard int) bool) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.aliveN == 1 {
		return m.ring[0].shard
	}
	var h uint64
	if tenant != "" {
		h = hashString(tenant)
	} else {
		h = mix64(uint64(id))
	}
	start := m.locateLocked(h)
	preferred := m.ring[start].shard
	if ok(preferred) {
		return preferred
	}
	seen := 1
	for i := 1; i < len(m.ring) && seen < m.aliveN; i++ {
		s := m.ring[(start+i)%len(m.ring)].shard
		if s == preferred {
			continue
		}
		if ok(s) {
			return s
		}
		seen++
	}
	return preferred
}

// PlaceManagerBounded places a manager by consistent hash with a bounded-load
// guarantee: if the hash-preferred shard already holds a full share of
// managers (ceil((total+1)/alive)), the walk continues to the next shard on
// the ring with headroom. Pure hashing can starve a shard of managers at
// small manager counts, and a manager-less shard cannot drain the tasks
// hashed onto it; the bound keeps every shard's capacity within one manager
// of even while preserving hash stability for the unconstrained majority.
// counts[i] is the current manager count of shard i (dead shards ignored).
func (m *ShardMap) PlaceManagerBounded(id string, counts []int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.aliveN == 1 {
		return m.ring[0].shard
	}
	total := 0
	for i, a := range m.alive {
		if a && i < len(counts) {
			total += counts[i]
		}
	}
	limit := (total + m.aliveN) / m.aliveN // ceil((total+1)/alive)
	start := m.locateLocked(hashString(id))
	first := -1
	for i := 0; i < len(m.ring); i++ {
		s := m.ring[(start+i)%len(m.ring)].shard
		if first == -1 {
			first = s
		}
		if s < len(counts) && counts[s] >= limit {
			continue
		}
		return s
	}
	return first
}

// MergeTenantDepths merges per-shard tenant backlog maps into the one view
// the scheduler layer sees: the sharded executor reports exactly what a
// single interchange holding the union of the queues would report. Nil maps
// contribute nothing; a nil result means every shard was empty.
func MergeTenantDepths(perShard ...map[string]int) map[string]int {
	var out map[string]int
	for _, sm := range perShard {
		for tenant, n := range sm {
			if out == nil {
				out = make(map[string]int, len(sm))
			}
			out[tenant] += n
		}
	}
	return out
}

// mix64 is the SplitMix64 finalizer: full-avalanche mixing so sequential
// shard/replica indices and wire ids land uniformly on the ring.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a 64 over the key, finalized through mix64 — cheap,
// allocation-free, and stable across processes (placement must agree between
// runs for seeded scenarios to reproduce).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}
