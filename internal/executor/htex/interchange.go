package htex

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/mq"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// clientIdentity is the dealer identity of the executor client.
const clientIdentity = "htex-client"

// Selection is the manager-selection policy for task dispatch.
type Selection int

const (
	// SelectRandom is the paper's policy: "a randomized selection method
	// to ensure task distribution fairness" (§4.3.1).
	SelectRandom Selection = iota
	// SelectRoundRobin cycles deterministically — the ablation arm.
	SelectRoundRobin
)

// InterchangeConfig tunes the broker.
type InterchangeConfig struct {
	// BatchSize caps tasks per dispatch message to one manager.
	BatchSize int
	// HeartbeatPeriod is how often liveness is checked.
	HeartbeatPeriod time.Duration
	// HeartbeatThreshold is silence after which a manager is declared lost.
	HeartbeatThreshold time.Duration
	// Seed fixes the randomized manager selection for tests (0 = time).
	Seed int64
	// Selection picks the dispatch policy (default SelectRandom).
	Selection Selection
}

func (c *InterchangeConfig) normalize() {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 200 * time.Millisecond
	}
	if c.HeartbeatThreshold <= 0 {
		c.HeartbeatThreshold = 5 * c.HeartbeatPeriod
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
}

// managerState is the interchange's view of one registered manager.
type managerState struct {
	id          string
	capacity    int // workers + prefetch slots
	outstanding map[int64]serialize.TaskMsg
	lastSeen    time.Time
	blacklisted bool
}

func (m *managerState) free() int { return m.capacity - len(m.outstanding) }

// Interchange is the hub: it queues tasks from the client, matches them to
// managers with advertised capacity (random among eligible, §4.3.1), relays
// result batches back, and polices heartbeats.
type Interchange struct {
	cfg    InterchangeConfig
	router *mq.Router
	rng    *rand.Rand

	mu       sync.Mutex
	managers map[string]*managerState
	queue    []serialize.TaskMsg // priority-ordered; see enqueue
	client   string              // identity of the connected client, "" until it speaks
	rrNext   int                 // round-robin cursor (SelectRoundRobin)

	done chan struct{}
	wg   sync.WaitGroup
}

// StartInterchange launches an interchange listening at addr on tr.
func StartInterchange(tr simnet.Transport, addr string, cfg InterchangeConfig) (*Interchange, error) {
	cfg.normalize()
	r, err := mq.NewRouter(tr, addr)
	if err != nil {
		return nil, fmt.Errorf("htex: interchange: %w", err)
	}
	ix := &Interchange{
		cfg:      cfg,
		router:   r,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		managers: make(map[string]*managerState),
		done:     make(chan struct{}),
	}
	ix.wg.Add(2)
	go ix.mainLoop()
	go ix.heartbeatLoop()
	return ix, nil
}

// Addr returns the interchange's bound address.
func (ix *Interchange) Addr() string { return ix.router.Addr() }

func (ix *Interchange) mainLoop() {
	defer ix.wg.Done()
	for {
		select {
		case <-ix.done:
			return
		case ev := <-ix.router.Events():
			if !ev.Joined {
				ix.managerLost(ev.ID, "disconnected")
			}
		case del, ok := <-ix.router.Incoming():
			if !ok {
				return
			}
			ix.handle(del)
		}
	}
}

func (ix *Interchange) handle(del mq.Delivery) {
	if len(del.Msg) == 0 {
		return
	}
	switch string(del.Msg[0]) {
	case frameTask:
		ix.mu.Lock()
		ix.client = del.From
		ix.mu.Unlock()
		if len(del.Msg) < 2 {
			return
		}
		task, err := serialize.DecodeTask(del.Msg[1])
		if err != nil {
			return
		}
		ix.mu.Lock()
		ix.enqueue(task)
		ix.mu.Unlock()
		ix.dispatch()
	case frameTaskSub:
		ix.mu.Lock()
		ix.client = del.From
		ix.mu.Unlock()
		if len(del.Msg) < 2 {
			return
		}
		batch, err := decodeTasks(del.Msg[1])
		if err != nil {
			return
		}
		ix.mu.Lock()
		ix.enqueue(batch...)
		ix.mu.Unlock()
		ix.dispatch()
	case frameReg:
		if len(del.Msg) < 2 {
			return
		}
		capacity, err := strconv.Atoi(string(del.Msg[1]))
		if err != nil || capacity <= 0 {
			return
		}
		ix.mu.Lock()
		ix.managers[del.From] = &managerState{
			id:          del.From,
			capacity:    capacity,
			outstanding: make(map[int64]serialize.TaskMsg),
			lastSeen:    time.Now(),
		}
		ix.mu.Unlock()
		ix.dispatch()
	case frameResults:
		if len(del.Msg) < 2 {
			return
		}
		results, err := decodeResults(del.Msg[1])
		if err != nil {
			return
		}
		ix.mu.Lock()
		if m, ok := ix.managers[del.From]; ok {
			m.lastSeen = time.Now()
			for _, r := range results {
				delete(m.outstanding, r.ID)
			}
		}
		client := ix.client
		ix.mu.Unlock()
		if client != "" {
			_ = ix.router.SendTo(client, mq.Message{[]byte(frameResults), del.Msg[1]})
		}
		ix.dispatch()
	case frameHB:
		ix.mu.Lock()
		if m, ok := ix.managers[del.From]; ok {
			m.lastSeen = time.Now()
		}
		ix.mu.Unlock()
		// Echo so managers can police us too.
		_ = ix.router.SendTo(del.From, mq.Message{[]byte(frameHB)})
	case frameBye:
		ix.mu.Lock()
		m, ok := ix.managers[del.From]
		if ok {
			// Clean departure: requeue outstanding instead of failing.
			for _, t := range m.outstanding {
				ix.enqueue(t)
			}
			delete(ix.managers, del.From)
		}
		ix.mu.Unlock()
		// Hang up on the peer so its Drain can observe the ack.
		ix.router.Disconnect(del.From)
		ix.dispatch()
	case frameCancel:
		if len(del.Msg) < 2 {
			return
		}
		ids, err := decodeIDs(del.Msg[1])
		if err != nil {
			return
		}
		ix.cancel(ids)
	case frameCmd:
		ix.mu.Lock()
		ix.client = del.From
		ix.mu.Unlock()
		ix.command(del)
	}
}

// cancel drops the named tasks: entries still in the interchange queue are
// removed outright; tasks already dispatched are struck from their manager's
// outstanding set (freeing its advertised capacity) and the drop is
// forwarded so the manager can skip them before they start. Tasks already
// running are beyond reach — their results arrive and are ignored client
// side.
func (ix *Interchange) cancel(ids []int64) {
	drop := make(map[int64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	forward := make(map[string][]int64)
	ix.mu.Lock()
	kept := ix.queue[:0]
	for _, t := range ix.queue {
		if !drop[t.ID] {
			kept = append(kept, t)
		}
	}
	ix.queue = kept
	for _, m := range ix.managers {
		for id := range drop {
			if _, ok := m.outstanding[id]; ok {
				delete(m.outstanding, id)
				forward[m.id] = append(forward[m.id], id)
			}
		}
	}
	ix.mu.Unlock()
	for mgr, mgrIDs := range forward {
		if payload, err := encodeIDs(mgrIDs); err == nil {
			_ = ix.router.SendTo(mgr, mq.Message{[]byte(frameCancel), payload})
		}
	}
	ix.dispatch() // struck tasks freed manager capacity
}

// command implements the synchronous administrative channel (§4.3.1):
// outstanding-task queries, manager listing, blacklisting, shutdown.
func (ix *Interchange) command(del mq.Delivery) {
	if len(del.Msg) < 2 {
		return
	}
	name := string(del.Msg[1])
	arg := ""
	if len(del.Msg) > 2 {
		arg = string(del.Msg[2])
	}
	reply := func(parts ...string) {
		m := mq.Message{[]byte(frameCmdRep), []byte(name)}
		for _, p := range parts {
			m = append(m, []byte(p))
		}
		_ = ix.router.SendTo(del.From, m)
	}
	switch name {
	case "OUTSTANDING":
		ix.mu.Lock()
		n := len(ix.queue)
		for _, m := range ix.managers {
			n += len(m.outstanding)
		}
		ix.mu.Unlock()
		reply(strconv.Itoa(n))
	case "MANAGERS":
		ix.mu.Lock()
		var ids []string
		for id := range ix.managers {
			ids = append(ids, id)
		}
		ix.mu.Unlock()
		reply(ids...)
	case "BLACKLIST":
		ix.mu.Lock()
		if m, ok := ix.managers[arg]; ok {
			m.blacklisted = true
		}
		ix.mu.Unlock()
		reply("ok")
	case "SHUTDOWN":
		reply("ok")
		go ix.Close()
	default:
		reply("unknown-command")
	}
}

// enqueue appends tasks to the interchange queue, honoring the wire-carried
// dispatch priority: the queue is kept priority-ordered (non-increasing,
// stable, so equal priorities dispatch in arrival order) and dispatch's
// take-from-the-front becomes highest-priority-first. The sort runs only
// when an append actually breaks the ordering invariant — an all-default
// workload, or the steady state after a priority burst drains, appends in
// O(1) like the old FIFO. Callers must hold ix.mu.
func (ix *Interchange) enqueue(tasks ...serialize.TaskMsg) {
	if len(tasks) == 0 {
		return
	}
	prev := tasks[0].Priority
	if n := len(ix.queue); n > 0 {
		prev = ix.queue[n-1].Priority
	}
	needSort := false
	for _, t := range tasks {
		if t.Priority > prev {
			needSort = true
		}
		prev = t.Priority
	}
	ix.queue = append(ix.queue, tasks...)
	if needSort {
		sort.SliceStable(ix.queue, func(i, j int) bool {
			return ix.queue[i].Priority > ix.queue[j].Priority
		})
	}
}

// dispatch matches queued tasks to managers with free capacity, choosing
// uniformly at random among eligible managers for fairness.
func (ix *Interchange) dispatch() {
	for {
		ix.mu.Lock()
		if len(ix.queue) == 0 {
			ix.mu.Unlock()
			return
		}
		var eligible []*managerState
		for _, m := range ix.managers {
			if !m.blacklisted && m.free() > 0 {
				eligible = append(eligible, m)
			}
		}
		if len(eligible) == 0 {
			ix.mu.Unlock()
			return
		}
		var m *managerState
		if ix.cfg.Selection == SelectRoundRobin {
			// Stable order for determinism: sort by identity.
			sort.Slice(eligible, func(i, j int) bool { return eligible[i].id < eligible[j].id })
			m = eligible[ix.rrNext%len(eligible)]
			ix.rrNext++
		} else {
			m = eligible[ix.rng.Intn(len(eligible))]
		}
		n := m.free()
		if n > ix.cfg.BatchSize {
			n = ix.cfg.BatchSize
		}
		if n > len(ix.queue) {
			n = len(ix.queue)
		}
		batch := make([]serialize.TaskMsg, n)
		copy(batch, ix.queue[:n])
		ix.queue = ix.queue[n:]
		for _, t := range batch {
			m.outstanding[t.ID] = t
		}
		id := m.id
		ix.mu.Unlock()

		payload, err := encodeTasks(batch)
		if err != nil {
			continue
		}
		if err := ix.router.SendTo(id, mq.Message{[]byte(frameTasks), payload}); err != nil {
			// Send failed: the manager is gone; requeue via loss path.
			ix.managerLost(id, "send failed")
		}
	}
}

// heartbeatLoop expires silent managers.
func (ix *Interchange) heartbeatLoop() {
	defer ix.wg.Done()
	ticker := time.NewTicker(ix.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ix.done:
			return
		case <-ticker.C:
			ix.mu.Lock()
			var lost []string
			for id, m := range ix.managers {
				if time.Since(m.lastSeen) > ix.cfg.HeartbeatThreshold {
					lost = append(lost, id)
				}
			}
			ix.mu.Unlock()
			for _, id := range lost {
				ix.managerLost(id, "heartbeat expired")
			}
		}
	}
}

// managerLost handles a lost manager: its outstanding tasks are reported to
// the client as LOST so the DFK can retry or rescale (§4.3.1).
func (ix *Interchange) managerLost(id, reason string) {
	ix.mu.Lock()
	m, ok := ix.managers[id]
	if !ok {
		ix.mu.Unlock()
		return
	}
	delete(ix.managers, id)
	var lostIDs []int64
	for tid := range m.outstanding {
		lostIDs = append(lostIDs, tid)
	}
	client := ix.client
	ix.mu.Unlock()

	ix.router.Disconnect(id)
	if client != "" && len(lostIDs) > 0 {
		if payload, err := encodeIDs(lostIDs); err == nil {
			_ = ix.router.SendTo(client, mq.Message{[]byte(frameLost), payload, []byte(reason)})
		}
	}
}

// ManagerCount reports registered managers (monitoring/tests).
func (ix *Interchange) ManagerCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.managers)
}

// OutstandingByManager reports in-flight tasks per manager — what scale-in
// uses to prefer idle blocks.
func (ix *Interchange) OutstandingByManager() map[string]int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make(map[string]int, len(ix.managers))
	for id, m := range ix.managers {
		out[id] = len(m.outstanding)
	}
	return out
}

// QueueDepth reports tasks waiting for capacity.
func (ix *Interchange) QueueDepth() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.queue)
}

// Close shuts the interchange down.
func (ix *Interchange) Close() error {
	select {
	case <-ix.done:
		return nil
	default:
	}
	close(ix.done)
	err := ix.router.Close()
	ix.wg.Wait()
	return err
}
