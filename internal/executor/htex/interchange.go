package htex

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/fair"
	"repro/internal/mq"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// clientIdentity is the dealer identity of the executor client.
const clientIdentity = "htex-client"

// Selection is the manager-selection policy for task dispatch.
type Selection int

const (
	// SelectRandom is the paper's policy: "a randomized selection method
	// to ensure task distribution fairness" (§4.3.1).
	SelectRandom Selection = iota
	// SelectRoundRobin cycles deterministically — the ablation arm.
	SelectRoundRobin
)

// InterchangeConfig tunes the broker.
type InterchangeConfig struct {
	// Label names this interchange instance for the chaos plane and shard
	// diagnostics ("htex[2]"). The sharded client fills it per shard so
	// fault rules and breaker telemetry can address one shard; a standalone
	// interchange may leave it empty.
	Label string
	// BatchSize caps tasks per dispatch message to one manager.
	BatchSize int
	// HeartbeatPeriod is how often liveness is checked.
	HeartbeatPeriod time.Duration
	// HeartbeatThreshold is silence after which a manager is declared lost.
	HeartbeatThreshold time.Duration
	// Seed fixes the randomized manager selection for tests (0 = time).
	Seed int64
	// Selection picks the dispatch policy (default SelectRandom).
	Selection Selection
	// Locality enables data-aware dispatch: a task whose input digest some
	// eligible manager advertises (heartbeat digest-set summary) is routed
	// to that manager instead of the fairness pick, provided it has free
	// capacity. Off by default — the advert is still aggregated (it feeds
	// the client-side locality view either way), but manager selection
	// stays exactly the paper's randomized policy.
	Locality bool
}

// Validate rejects configurations that cannot work: negative durations and a
// threshold at or below the check period (a manager would be declared lost
// between two liveness checks). Zero values are fine — normalize fills them.
func (c InterchangeConfig) Validate() error {
	if c.BatchSize < 0 {
		return fmt.Errorf("htex: interchange BatchSize %d is negative", c.BatchSize)
	}
	if c.HeartbeatPeriod < 0 {
		return fmt.Errorf("htex: interchange HeartbeatPeriod %v is negative", c.HeartbeatPeriod)
	}
	if c.HeartbeatThreshold < 0 {
		return fmt.Errorf("htex: interchange HeartbeatThreshold %v is negative", c.HeartbeatThreshold)
	}
	if c.HeartbeatPeriod > 0 && c.HeartbeatThreshold > 0 && c.HeartbeatThreshold <= c.HeartbeatPeriod {
		return fmt.Errorf("htex: interchange HeartbeatThreshold %v must exceed HeartbeatPeriod %v",
			c.HeartbeatThreshold, c.HeartbeatPeriod)
	}
	return nil
}

func (c *InterchangeConfig) normalize() {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 200 * time.Millisecond
	}
	if c.HeartbeatThreshold <= 0 {
		c.HeartbeatThreshold = 5 * c.HeartbeatPeriod
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
}

// managerState is the interchange's view of one registered manager.
type managerState struct {
	id          string
	capacity    int // workers + prefetch slots
	outstanding map[int64]serialize.WireTask
	lastSeen    time.Time
	blacklisted bool
	// enc is the manager's private TASKS stream: descriptors cross once per
	// manager session, and every batch after the first is values only.
	enc *serialize.StreamEncoder
	// digests is the manager's last heartbeat digest-set summary: the warm
	// input digests it advertises. Replaced wholesale on every advert (the
	// manager's view is authoritative); nil until the first one arrives.
	digests map[string]struct{}
}

func (m *managerState) free() int { return m.capacity - len(m.outstanding) }

// Interchange is the hub: it queues tasks from the client, matches them to
// managers with advertised capacity (random among eligible, §4.3.1), relays
// result batches back, and polices heartbeats. It brokers task envelopes
// (serialize.WireTask) exclusively: the argument payload inside is routed,
// queued, and re-framed as opaque bytes, never decoded or re-encoded here.
type Interchange struct {
	cfg    InterchangeConfig
	router *mq.Router
	rng    *rand.Rand

	// clientEnc streams RESULTS to the client. Result batches arriving from
	// managers are decoded (the interchange needs the ids for capacity
	// bookkeeping anyway) and re-framed here, so the client holds exactly
	// one result stream regardless of how many managers feed it.
	clientEnc *serialize.StreamEncoder

	mu       sync.Mutex
	managers map[string]*managerState
	// queue holds tasks waiting for manager capacity. It is tenant-fair:
	// dispatch drains tenants by deficit round robin in proportion to the
	// weights carried on the wire envelopes, with priority ordering within
	// each tenant — so fairness established on the client leg holds past
	// the submission boundary too. Single-tenant traffic (the default)
	// drains in plain priority-then-arrival order, exactly as before.
	queue  *fair.Queue[serialize.WireTask]
	client string // identity of the connected client, "" until it speaks
	// clientEpoch is the last stream epoch observed on the client's TASKB
	// stream; a change marks a new client session (see handle).
	clientEpoch uint32
	rrNext      int // round-robin cursor (SelectRoundRobin)
	// decs holds one stream decoder per connected peer (client TASKB,
	// manager RESULTS), keyed by identity. Decoding itself happens only on
	// the mainLoop goroutine; the map is locked because the heartbeat
	// goroutine prunes entries for lost managers.
	decs map[string]*serialize.StreamDecoder

	done chan struct{}
	wg   sync.WaitGroup
}

// StartInterchange launches an interchange listening at addr on tr.
func StartInterchange(tr simnet.Transport, addr string, cfg InterchangeConfig) (*Interchange, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.normalize()
	r, err := mq.NewRouter(tr, addr)
	if err != nil {
		return nil, fmt.Errorf("htex: interchange: %w", err)
	}
	ix := &Interchange{
		cfg:    cfg,
		router: r,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		queue: fair.NewQueue(func(a, b serialize.WireTask) bool {
			return a.Priority > b.Priority
		}),
		clientEnc: serialize.NewStreamEncoder(),
		managers:  make(map[string]*managerState),
		decs:      make(map[string]*serialize.StreamDecoder),
		done:      make(chan struct{}),
	}
	ix.wg.Add(2)
	go ix.mainLoop()
	go ix.heartbeatLoop()
	return ix, nil
}

// Addr returns the interchange's bound address.
func (ix *Interchange) Addr() string { return ix.router.Addr() }

// Config reports the normalized configuration the interchange runs with —
// the values tests assert heartbeat plumbing against.
func (ix *Interchange) Config() InterchangeConfig { return ix.cfg }

func (ix *Interchange) mainLoop() {
	defer ix.wg.Done()
	for {
		select {
		case <-ix.done:
			return
		case ev := <-ix.router.Events():
			if !ev.Joined {
				ix.managerLost(ev.ID, "disconnected")
			}
		case del, ok := <-ix.router.Incoming():
			if !ok {
				return
			}
			ix.handle(del)
		}
	}
}

func (ix *Interchange) handle(del mq.Delivery) {
	if len(del.Msg) == 0 {
		return
	}
	// Chaos: abrupt shard death while brokering — the router drops with no
	// goodbye, exactly as a crashed interchange process would. The detail is
	// this shard's label, so a Match-scoped rule kills one shard of a
	// sharded deployment and the failover invariant (only that shard's
	// outstanding set requeues) is seed-reproducible.
	if chaos.Kill(chaos.PointIxKill, ix.cfg.Label) {
		go ix.Close()
		return
	}
	switch string(del.Msg[0]) {
	case frameTask:
		// Legacy single-task path: a one-shot envelope, no stream state
		// required — the self-describing fallback framing.
		ix.setClient(del.From)
		if len(del.Msg) < 2 {
			return
		}
		task, err := serialize.DecodeWire(del.Msg[1])
		if err != nil {
			return
		}
		ix.enqueue(task)
		ix.dispatch()
	case frameTaskSub:
		ix.setClient(del.From)
		if len(del.Msg) < 2 {
			return
		}
		// A new epoch on the client's task stream is the in-band signal of
		// a new client session (epochs are globally unique per encoder
		// incarnation): restart the RESULTS stream so the newcomer's
		// decoder syncs on a self-describing first frame. In-band, because
		// connection events ride a lossy channel with no ordering against
		// deliveries. The task decoder itself needs no such help — it
		// resyncs on the epoch carried by every frame.
		if epoch, ok := serialize.PeekFrameEpoch(del.Msg[1]); ok {
			ix.mu.Lock()
			newSession := epoch != ix.clientEpoch
			ix.clientEpoch = epoch
			ix.mu.Unlock()
			if newSession {
				ix.clientEnc.Reset()
			}
		}
		var batch []serialize.WireTask
		if err := ix.decoderFor(del.From).DecodeFrame(del.Msg[1], &batch); err != nil {
			// Undecodable client task stream: NACK so the client resets to a
			// fresh epoch and retransmits its in-flight tasks (codec.go).
			_ = ix.router.SendTo(del.From, mq.Message{[]byte(frameNack), nackPayload(del.Msg[1])})
			return
		}
		ix.enqueue(batch...)
		ix.dispatch()
	case frameReg:
		if len(del.Msg) < 2 {
			return
		}
		capacity, err := strconv.Atoi(string(del.Msg[1]))
		if err != nil || capacity <= 0 {
			return
		}
		ix.mu.Lock()
		ix.managers[del.From] = &managerState{
			id:          del.From,
			capacity:    capacity,
			outstanding: make(map[int64]serialize.WireTask),
			lastSeen:    time.Now(),
			enc:         serialize.NewStreamEncoder(),
		}
		ix.mu.Unlock()
		ix.dispatch()
	case frameResults:
		if len(del.Msg) < 2 {
			return
		}
		var results []serialize.ResultMsg
		if err := ix.decoderFor(del.From).DecodeFrame(del.Msg[1], &results); err != nil {
			// Undecodable manager result stream: NACK so the manager resets
			// its encoder, and requeue everything this manager holds — the
			// lost frame's results cannot be recovered, so their tasks must
			// re-execute, and the broker must not leak their capacity slots.
			// Tasks still running on the manager finish twice at most; the
			// client's pending map reconciles duplicates (codec.go).
			_ = ix.router.SendTo(del.From, mq.Message{[]byte(frameNack), nackPayload(del.Msg[1])})
			ix.requeueOutstanding(del.From)
			return
		}
		ix.mu.Lock()
		if m, ok := ix.managers[del.From]; ok {
			m.lastSeen = time.Now()
			for _, r := range results {
				delete(m.outstanding, r.ID)
			}
		}
		client := ix.client
		ix.mu.Unlock()
		if client != "" {
			_ = ix.clientEnc.EncodeFrame(results, func(frame []byte) error {
				return chaos.Frame(chaos.PointIxResults, ix.cfg.Label, frame, func(fr []byte) error {
					return ix.router.SendTo(client, mq.Message{[]byte(frameResults), fr})
				})
			})
		}
		ix.dispatch()
	case frameHB:
		ix.mu.Lock()
		if m, ok := ix.managers[del.From]; ok {
			m.lastSeen = time.Now()
			// An extra part is the manager's digest-set advert: the content
			// digests of tasks it has executed and so holds warm. Replace
			// the aggregated view wholesale — the advert is authoritative.
			if len(del.Msg) > 1 {
				m.digests = parseDigestSet(del.Msg[1])
			}
		}
		ix.mu.Unlock()
		// Echo so managers can police us too.
		_ = ix.router.SendTo(del.From, mq.Message{[]byte(frameHB)})
	case frameBye:
		ix.mu.Lock()
		m, ok := ix.managers[del.From]
		if ok {
			// Clean departure: requeue outstanding instead of failing.
			for _, t := range m.outstanding {
				ix.enqueue(t)
			}
			delete(ix.managers, del.From)
			delete(ix.decs, del.From)
		}
		ix.mu.Unlock()
		// Hang up on the peer so its Drain can observe the ack.
		ix.router.Disconnect(del.From)
		ix.dispatch()
	case frameCancel:
		if len(del.Msg) < 2 {
			return
		}
		ids, err := decodeIDs(del.Msg[1])
		if err != nil {
			return
		}
		ix.cancel(ids)
	case frameCmd:
		ix.setClient(del.From)
		ix.command(del)
	case frameNack:
		if len(del.Msg) < 2 {
			return
		}
		ix.handleNack(del.From, nackEpoch(del.Msg[1]))
	}
}

// handleNack repairs one of the interchange's outbound streams after a peer
// reported it undecodable. Epoch matching dedups stale NACKs (codec.go).
func (ix *Interchange) handleNack(from string, epoch uint32) {
	if epoch == 0 {
		return
	}
	ix.mu.Lock()
	m, isMgr := ix.managers[from]
	isClient := from == ix.client
	ix.mu.Unlock()
	switch {
	case isMgr && m.enc.Epoch() == epoch:
		// The manager cannot decode its TASKS stream: resync the encoder and
		// requeue everything it was holding — the lost frame's tasks never
		// arrived, and the interchange cannot tell which those were.
		m.enc.Reset()
		ix.requeueOutstanding(from)
	case isClient && ix.clientEnc.Epoch() == epoch:
		// The client cannot decode the RESULTS stream: resync. Results in
		// the lost frame are gone; the DFK's attempt timeout re-executes
		// their tasks (codec.go).
		ix.clientEnc.Reset()
	}
}

// requeueOutstanding moves every task a manager holds back into the
// interchange queue (stream-corruption repair; the clean-departure BYE path
// does its own inline requeue under the lock).
func (ix *Interchange) requeueOutstanding(id string) {
	ix.mu.Lock()
	m, ok := ix.managers[id]
	var tasks []serialize.WireTask
	if ok {
		for _, t := range m.outstanding {
			tasks = append(tasks, t)
		}
		m.outstanding = make(map[int64]serialize.WireTask)
	}
	ix.mu.Unlock()
	if len(tasks) == 0 {
		return
	}
	ix.enqueue(tasks...)
	ix.dispatch()
}

// setClient records the identity results are relayed to. Stream resync for
// a new client session is detected in-band from the epoch on its TASKB
// stream (see handle), since every client shares the same dealer identity.
func (ix *Interchange) setClient(from string) {
	ix.mu.Lock()
	ix.client = from
	ix.mu.Unlock()
}

// decoderFor returns the stream decoder for one peer, creating it on first
// contact. Decoding is serialized on the mainLoop goroutine; the lock only
// orders map access against lost-manager pruning.
func (ix *Interchange) decoderFor(id string) *serialize.StreamDecoder {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	d, ok := ix.decs[id]
	if !ok {
		d = serialize.NewStreamDecoder()
		ix.decs[id] = d
	}
	return d
}

// cancel drops the named tasks: entries still in the interchange queue are
// removed outright; tasks already dispatched are struck from their manager's
// outstanding set (freeing its advertised capacity) and the drop is
// forwarded so the manager can skip them before they start. Tasks already
// running are beyond reach — their results arrive and are ignored client
// side.
func (ix *Interchange) cancel(ids []int64) {
	drop := make(map[int64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	forward := make(map[string][]int64)
	ix.mu.Lock()
	ix.queue.Filter(func(t serialize.WireTask) bool { return !drop[t.ID] })
	for _, m := range ix.managers {
		for id := range drop {
			if _, ok := m.outstanding[id]; ok {
				delete(m.outstanding, id)
				forward[m.id] = append(forward[m.id], id)
			}
		}
	}
	ix.mu.Unlock()
	for mgr, mgrIDs := range forward {
		if payload, err := encodeIDs(mgrIDs); err == nil {
			_ = ix.router.SendTo(mgr, mq.Message{[]byte(frameCancel), payload})
		}
	}
	ix.dispatch() // struck tasks freed manager capacity
}

// command implements the synchronous administrative channel (§4.3.1):
// outstanding-task queries, manager listing, blacklisting, shutdown.
func (ix *Interchange) command(del mq.Delivery) {
	if len(del.Msg) < 2 {
		return
	}
	name := string(del.Msg[1])
	arg := ""
	if len(del.Msg) > 2 {
		arg = string(del.Msg[2])
	}
	reply := func(parts ...string) {
		m := mq.Message{[]byte(frameCmdRep), []byte(name)}
		for _, p := range parts {
			m = append(m, []byte(p))
		}
		_ = ix.router.SendTo(del.From, m)
	}
	switch name {
	case "OUTSTANDING":
		ix.mu.Lock()
		n := ix.queue.Len()
		for _, m := range ix.managers {
			n += len(m.outstanding)
		}
		ix.mu.Unlock()
		reply(strconv.Itoa(n))
	case "MANAGERS":
		ix.mu.Lock()
		var ids []string
		for id := range ix.managers {
			ids = append(ids, id)
		}
		ix.mu.Unlock()
		reply(ids...)
	case "BLACKLIST":
		ix.mu.Lock()
		if m, ok := ix.managers[arg]; ok {
			m.blacklisted = true
		}
		ix.mu.Unlock()
		reply("ok")
	case "SHUTDOWN":
		reply("ok")
		go ix.Close()
	default:
		reply("unknown-command")
	}
}

// enqueue hands tasks to the tenant-fair interchange queue, keyed by the
// tenant and weight each wire envelope carries. Within a tenant, dispatch
// order honors the wire-carried priority (stable, so equal priorities
// dispatch in arrival order); across tenants, deficit round robin applies.
// The queue locks internally; callers need not hold ix.mu.
func (ix *Interchange) enqueue(tasks ...serialize.WireTask) {
	for _, t := range tasks {
		ix.queue.Push(t.Tenant, t.Weight, t)
	}
}

// dispatch matches queued tasks to managers with advertised free capacity,
// choosing uniformly at random among eligible managers for distribution
// fairness (§4.3.1) and draining the queue tenant-fairly for share fairness.
func (ix *Interchange) dispatch() {
	for {
		ix.mu.Lock()
		// Empty-queue check before manager selection: an idle-queue poke
		// (result or heartbeat frames trigger dispatch too) must not
		// advance the round-robin cursor, or rotation order would depend
		// on arrival timing.
		if ix.queue.Len() == 0 {
			ix.mu.Unlock()
			return
		}
		var eligible []*managerState
		for _, m := range ix.managers {
			if !m.blacklisted && m.free() > 0 {
				eligible = append(eligible, m)
			}
		}
		if len(eligible) == 0 {
			ix.mu.Unlock()
			return
		}
		var m *managerState
		if ix.cfg.Selection == SelectRoundRobin {
			// Stable order for determinism: sort by identity.
			sort.Slice(eligible, func(i, j int) bool { return eligible[i].id < eligible[j].id })
			m = eligible[ix.rrNext%len(eligible)]
			ix.rrNext++
		} else {
			m = eligible[ix.rng.Intn(len(eligible))]
		}
		n := m.free()
		if n > ix.cfg.BatchSize {
			n = ix.cfg.BatchSize
		}
		scratch := ix.queue.TryTake(n)
		if len(scratch) == 0 {
			ix.mu.Unlock()
			return
		}
		// Copy out of the pooled scratch: the frame encode below runs
		// outside ix.mu and must not hold pooled storage.
		batch := make([]serialize.WireTask, len(scratch))
		copy(batch, scratch)
		ix.queue.PutBatch(scratch)

		// Data-aware rerouting (cfg.Locality): a task whose input digest
		// another eligible manager advertises moves to that holder — its
		// inputs are warm there — capped by the holder's free capacity.
		// The fairness pick m keeps everything else, so with no adverts in
		// play the dispatch is byte-identical to the classic policy. The
		// digest is hashed from the opaque payload column; the broker
		// still never decodes arguments.
		type send struct {
			id    string
			enc   *serialize.StreamEncoder
			batch []serialize.WireTask
		}
		var sends []send
		if ix.cfg.Locality && len(eligible) > 1 {
			taken := make(map[*managerState]int)
			reroutes := make(map[*managerState][]serialize.WireTask)
			kept := batch[:0]
			for _, t := range batch {
				d := serialize.DigestBytes(t.P)
				if _, warm := m.digests[d]; warm {
					kept = append(kept, t)
					continue
				}
				var holder *managerState
				for _, cand := range eligible {
					if cand == m {
						continue
					}
					if _, ok := cand.digests[d]; ok && cand.free()-taken[cand] > 0 {
						holder = cand
						break
					}
				}
				if holder == nil {
					kept = append(kept, t)
					continue
				}
				taken[holder]++
				holder.outstanding[t.ID] = t
				reroutes[holder] = append(reroutes[holder], t)
			}
			batch = kept
			for h, ts := range reroutes {
				sends = append(sends, send{id: h.id, enc: h.enc, batch: ts})
			}
		}
		for _, t := range batch {
			m.outstanding[t.ID] = t
		}
		if len(batch) > 0 {
			sends = append(sends, send{id: m.id, enc: m.enc, batch: batch})
		}
		ix.mu.Unlock()

		// Re-frame the envelopes on each target manager's stream; the
		// argument payloads inside pass through as opaque bytes.
		for _, s := range sends {
			err := s.enc.EncodeFrame(s.batch, func(frame []byte) error {
				return chaos.Frame(chaos.PointIxTasks, ix.cfg.Label, frame, func(fr []byte) error {
					return ix.router.SendTo(s.id, mq.Message{[]byte(frameTasks), fr})
				})
			})
			if err != nil {
				// Send failed: the manager is gone; requeue via loss path.
				ix.managerLost(s.id, "send failed")
			}
		}
	}
}

// heartbeatLoop expires silent managers.
func (ix *Interchange) heartbeatLoop() {
	defer ix.wg.Done()
	ticker := time.NewTicker(ix.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ix.done:
			return
		case <-ticker.C:
			ix.mu.Lock()
			var lost []string
			for id, m := range ix.managers {
				if time.Since(m.lastSeen) > ix.cfg.HeartbeatThreshold {
					lost = append(lost, id)
				}
			}
			ix.mu.Unlock()
			for _, id := range lost {
				ix.managerLost(id, "heartbeat expired")
			}
		}
	}
}

// managerLost handles a lost manager: its outstanding tasks are reported to
// the client as LOST so the DFK can retry or rescale (§4.3.1).
func (ix *Interchange) managerLost(id, reason string) {
	ix.mu.Lock()
	m, ok := ix.managers[id]
	if !ok {
		ix.mu.Unlock()
		return
	}
	delete(ix.managers, id)
	delete(ix.decs, id) // a reconnecting identity starts a fresh stream
	var lostIDs []int64
	for tid := range m.outstanding {
		lostIDs = append(lostIDs, tid)
	}
	client := ix.client
	ix.mu.Unlock()

	ix.router.Disconnect(id)
	if client != "" && len(lostIDs) > 0 {
		if payload, err := encodeIDs(lostIDs); err == nil {
			// Fourth part: the lost manager's identity, so the client-side
			// LostError names which manager died — the health plane's poison
			// quarantine counts distinct managers a task has killed.
			_ = ix.router.SendTo(client, mq.Message{[]byte(frameLost), payload, []byte(reason), []byte(id)})
		}
	}
}

// ManagerCount reports registered managers (monitoring/tests).
func (ix *Interchange) ManagerCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.managers)
}

// OutstandingByManager reports in-flight tasks per manager — what scale-in
// uses to prefer idle blocks.
func (ix *Interchange) OutstandingByManager() map[string]int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make(map[string]int, len(ix.managers))
	for id, m := range ix.managers {
		out[id] = len(m.outstanding)
	}
	return out
}

// parseDigestSet decodes a heartbeat digest-set advert (comma-joined
// digests) into a lookup set. Empty input yields nil.
func parseDigestSet(b []byte) map[string]struct{} {
	if len(b) == 0 {
		return nil
	}
	parts := strings.Split(string(b), ",")
	set := make(map[string]struct{}, len(parts))
	for _, p := range parts {
		if p != "" {
			set[p] = struct{}{}
		}
	}
	return set
}

// HasDigest reports whether any registered, non-blacklisted manager
// advertises the content digest — this shard's slice of the locality view.
// Adverts ride heartbeats, so the answer can be stale by up to one manager
// heartbeat period in either direction; callers treat it as a routing hint,
// never a correctness signal.
func (ix *Interchange) HasDigest(d string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, m := range ix.managers {
		if m.blacklisted {
			continue
		}
		if _, ok := m.digests[d]; ok {
			return true
		}
	}
	return false
}

// AdvertisedDigests counts the distinct content digests advertised across
// this shard's managers (monitoring and the sched.Load locality view).
func (ix *Interchange) AdvertisedDigests() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	seen := make(map[string]struct{})
	for _, m := range ix.managers {
		if m.blacklisted {
			continue
		}
		for d := range m.digests {
			seen[d] = struct{}{}
		}
	}
	return len(seen)
}

// QueueDepth reports tasks waiting for capacity.
func (ix *Interchange) QueueDepth() int { return ix.queue.Len() }

// QueueDepthByTenant reports the waiting tasks per tenant (key "" is the
// default tenant; nil when the queue is empty) — the broker-side half of the
// backlog signal sched.Load.TenantBacklog exposes on the client side.
func (ix *Interchange) QueueDepthByTenant() map[string]int { return ix.queue.PerTenant() }

// Close shuts the interchange down.
func (ix *Interchange) Close() error {
	select {
	case <-ix.done:
		return nil
	default:
	}
	close(ix.done)
	err := ix.router.Close()
	ix.wg.Wait()
	return err
}
