package htex

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/sched"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// TestShardRestoreRejoinsRing drives the full death-and-respawn cycle at the
// executor boundary: kill one shard, restore it, and prove the ring heals —
// placement counts it alive again, the manager-less restored broker is
// capacity-vetoed (tasks spill, nothing stalls), and once a manager connects
// to the respawned interchange the shard serves traffic end to end.
func TestShardRestoreRejoinsRing(t *testing.T) {
	e := newShardedHTEX(t, 3, 6, 1)
	waitCond(t, "every shard has a manager", func() bool {
		for _, n := range managersPerShard(e) {
			if n == 0 {
				return false
			}
		}
		return true
	})

	const victim = 1
	if !e.KillShard(victim) {
		t.Fatalf("KillShard(%d) refused", victim)
	}
	if alive, total := e.ShardCounts(); alive != 2 || total != 3 {
		t.Fatalf("ShardCounts = %d/%d after kill, want 2/3", alive, total)
	}

	if err := e.RestoreShard(-1); err == nil {
		t.Fatal("RestoreShard(-1) accepted an out-of-range index")
	}
	if err := e.RestoreShard(99); err == nil {
		t.Fatal("RestoreShard(99) accepted an out-of-range index")
	}
	if err := e.RestoreShard(victim); err != nil {
		t.Fatalf("RestoreShard(%d): %v", victim, err)
	}
	// Restoring an alive shard is a no-op, not an error: callers can retry
	// idempotently from a supervision loop.
	if err := e.RestoreShard(victim); err != nil {
		t.Fatalf("RestoreShard on alive shard: %v", err)
	}
	if alive, total := e.ShardCounts(); alive != 3 || total != 3 {
		t.Fatalf("ShardCounts = %d/%d after restore, want 3/3", alive, total)
	}
	if n := e.Shard(victim).ManagerCount(); n != 0 {
		t.Fatalf("restored broker has %d managers, want 0 (it starts empty)", n)
	}

	// Manager-less restored shard: the capacity veto must spill its hash
	// arcs to ring successors, so every task still completes.
	futs := make([]*future.Future, 0, 30)
	for i := 0; i < 30; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{
			ID: int64(1000 + i), App: "echo", Args: []any{i},
			Tenant: fmt.Sprintf("t%d", i%6),
		}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatalf("submit against manager-less restored shard: %v", err)
	}

	// Attach a manager straight to the respawned interchange — exactly what
	// the next ScaleOut's bounded-hash placement does, minus the hash
	// nondeterminism a unit test can't wait on.
	mgr, err := StartManager(e.cfg.Transport, e.Shard(victim).Addr(), "mgr-restored", e.cfg.Registry, e.cfg.Manager)
	if err != nil {
		t.Fatalf("StartManager on restored shard: %v", err)
	}
	t.Cleanup(mgr.Drain)
	waitCond(t, "manager registered on restored shard", func() bool {
		return e.Shard(victim).ManagerCount() == 1
	})

	// With capacity back, the restored shard must carry live traffic again.
	futs = futs[:0]
	for i := 0; i < 60; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{
			ID: int64(2000 + i), App: "sleep", Args: []any{50},
			Tenant: fmt.Sprintf("t%d", i%6),
		}))
	}
	waitCond(t, "restored shard holds inflight tasks", func() bool {
		return e.InflightByShard()[victim] > 0
	})
	if err := future.Wait(futs...); err != nil {
		t.Fatalf("post-rejoin traffic: %v", err)
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", e.Outstanding())
	}
}

// TestRestoreShardAfterShutdown: a stopped executor refuses to respawn
// shards instead of leaking a fresh interchange nobody will close.
func TestRestoreShardAfterShutdown(t *testing.T) {
	e := newShardedHTEX(t, 2, 2, 1)
	if !e.KillShard(0) {
		t.Fatal("KillShard refused")
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreShard(0); err == nil {
		t.Fatal("RestoreShard accepted a stopped executor")
	}
}

// TestHeartbeatCrossCheckWithPayloadFactory pins the satellite bugfix: the
// manager-period vs interchange-threshold validation used to be skipped for
// configs with a custom PayloadFactory, silently deploying pools whose
// managers would be declared dead while healthy. The cross-check now applies
// unconditionally.
func TestHeartbeatCrossCheckWithPayloadFactory(t *testing.T) {
	e := New(Config{
		Label:     "htex-hbcheck",
		Transport: simnet.NewNetwork(0),
		Registry:  testRegistry(t),
		Provider:  provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		PayloadFactory: func(addr string, node provider.Node) (func(), error) {
			return func() {}, nil
		},
		Manager: ManagerConfig{Workers: 1, HeartbeatPeriod: 500 * time.Millisecond},
		Interchange: InterchangeConfig{
			HeartbeatThreshold: 250 * time.Millisecond,
		},
	})
	err := e.Start()
	if err == nil {
		_ = e.Shutdown()
		t.Fatal("Start accepted HeartbeatPeriod >= HeartbeatThreshold under a custom PayloadFactory")
	}
	if !strings.Contains(err.Error(), "HeartbeatThreshold") {
		t.Fatalf("err = %v, want the heartbeat cross-check rejection", err)
	}
}

// TestDigestAdvertisement: executing a task makes its manager advertise the
// task's content digest in the next heartbeat, and the advertisement is
// visible through every layer — interchange aggregation, the executor's
// shard union, and the scheduler's LoadOf probe.
func TestDigestAdvertisement(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)

	p, err := serialize.EncodeArgs([]any{"warm-input"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	digest := p.ArgsHash()
	p.Release()

	if e.HoldsDigest(digest) {
		t.Fatal("digest advertised before any execution")
	}
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"warm-input"}}).Result()
	if err != nil || v != "warm-input" {
		t.Fatalf("submit: %v, %v", v, err)
	}
	waitCond(t, "digest advertised after execution", func() bool {
		return e.HoldsDigest(digest)
	})
	if n := e.AdvertisedDigests(); n == 0 {
		t.Fatal("AdvertisedDigests = 0 after a warm advertisement")
	}
	l := sched.LoadOf(e)
	if l.HasDigest == nil || !l.HasDigest(digest) {
		t.Fatal("sched.LoadOf must surface the digest probe")
	}
	if l.AdvertisedDigests == 0 {
		t.Fatal("sched.LoadOf must surface the advertised-digest count")
	}
	if e.HoldsDigest("ffffffffffffffff") {
		t.Fatal("HoldsDigest matched a digest nobody executed")
	}
}
