// Package htex implements Parsl's High Throughput Executor (§4.3.1): an
// executor client, an interchange brokering between the client and
// registered managers over the mq fabric, and multi-worker managers deployed
// one per node by a provider. It supports task batching with prefetch,
// randomized manager selection for fairness, heartbeat-based fault
// detection, lost-manager exceptions, a synchronous command channel, and
// block-based scaling.
//
// Wire path: task and result batches ride persistent per-connection
// streaming codecs (serialize.StreamEncoder/StreamDecoder) that amortize
// gob type-descriptor transmission across a session, and tasks travel as
// serialize.WireTask envelopes whose argument payload was encoded exactly
// once at submit time — the interchange queues, prioritizes, cancels, and
// re-frames tasks without ever decoding the argument bytes. Control frames
// (registration, ids, heartbeats, commands) stay one-shot: they are small,
// rare, and must be decodable without session state.
package htex

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/serialize"
)

// Wire message type tags (first frame part).
const (
	frameTask    = "TASK"    // client -> interchange: one one-shot WireTask
	frameTaskSub = "TASKB"   // client -> interchange: streamed batch of WireTask
	frameTasks   = "TASKS"   // interchange -> manager: streamed batch of WireTask
	frameResults = "RESULTS" // manager -> interchange -> client: streamed batch of ResultMsg
	frameReg     = "REG"     // manager -> interchange: registration
	frameHB      = "HB"      // both directions
	frameCmd     = "CMD"     // client -> interchange: command channel
	frameCmdRep  = "CMDREP"  // interchange -> client: command reply
	frameLost    = "LOST"    // interchange -> client: tasks lost with a manager
	frameBye     = "BYE"     // manager -> interchange: clean departure
	frameCancel  = "CANCEL"  // client -> interchange -> manager: drop tasks not yet started
)

// TaskStreamDecoder decodes the interchange's TASKS frames. It wraps one
// per-connection stream decoder, exported so sibling executors that speak
// the manager protocol (EXEX pools) share the exact wire format. Not safe
// for concurrent use — one per receive loop.
type TaskStreamDecoder struct {
	dec *serialize.StreamDecoder
}

// NewTaskStreamDecoder returns a decoder for one manager-protocol session.
func NewTaskStreamDecoder() *TaskStreamDecoder {
	return &TaskStreamDecoder{dec: serialize.NewStreamDecoder()}
}

// Decode decodes one TASKS frame into its task-envelope batch.
func (d *TaskStreamDecoder) Decode(frame []byte) ([]serialize.WireTask, error) {
	var batch []serialize.WireTask
	if err := d.dec.DecodeFrame(frame, &batch); err != nil {
		return nil, fmt.Errorf("htex: decode batch: %w", err)
	}
	return batch, nil
}

// ResultStreamEncoder encodes RESULTS frames on a persistent stream toward
// the interchange; exported for EXEX pools. The frame passed to send is only
// valid during the call. Safe for concurrent use.
type ResultStreamEncoder struct {
	enc *serialize.StreamEncoder
}

// NewResultStreamEncoder returns an encoder for one manager-protocol session.
func NewResultStreamEncoder() *ResultStreamEncoder {
	return &ResultStreamEncoder{enc: serialize.NewStreamEncoder()}
}

// Encode frames one result batch and hands it to send.
func (e *ResultStreamEncoder) Encode(batch []serialize.ResultMsg, send func(frame []byte) error) error {
	if err := e.enc.EncodeFrame(batch, send); err != nil {
		return fmt.Errorf("htex: encode results: %w", err)
	}
	return nil
}

// encodeIDs / decodeIDs carry wire-id lists (CANCEL, LOST) as one-shot gob:
// they are tiny and infrequent, so stream state would buy nothing.
func encodeIDs(ids []int64) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ids); err != nil {
		return nil, fmt.Errorf("htex: encode ids: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeIDs(b []byte) ([]int64, error) {
	var ids []int64
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ids); err != nil {
		return nil, fmt.Errorf("htex: decode ids: %w", err)
	}
	return ids, nil
}
