// Package htex implements Parsl's High Throughput Executor (§4.3.1): an
// executor client, an interchange brokering between the client and
// registered managers over the mq fabric, and multi-worker managers deployed
// one per node by a provider. It supports task batching with prefetch,
// randomized manager selection for fairness, heartbeat-based fault
// detection, lost-manager exceptions, a synchronous command channel, and
// block-based scaling.
//
// Wire path: task and result batches ride persistent per-connection
// streaming codecs (serialize.StreamEncoder/StreamDecoder) that amortize
// gob type-descriptor transmission across a session, and tasks travel as
// serialize.WireTask envelopes whose argument payload was encoded exactly
// once at submit time — the interchange queues, prioritizes, cancels, and
// re-frames tasks without ever decoding the argument bytes. Control frames
// (registration, ids, heartbeats, commands) stay one-shot: they are small,
// rare, and must be decodable without session state.
package htex

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/mq"
	"repro/internal/serialize"
)

// Wire message type tags (first frame part).
const (
	frameTask    = "TASK"    // client -> interchange: one one-shot WireTask
	frameTaskSub = "TASKB"   // client -> interchange: streamed batch of WireTask
	frameTasks   = "TASKS"   // interchange -> manager: streamed batch of WireTask
	frameResults = "RESULTS" // manager -> interchange -> client: streamed batch of ResultMsg
	frameReg     = "REG"     // manager -> interchange: registration
	frameHB      = "HB"      // both directions
	frameCmd     = "CMD"     // client -> interchange: command channel
	frameCmdRep  = "CMDREP"  // interchange -> client: command reply
	frameLost    = "LOST"    // interchange -> client: tasks lost with a manager
	frameBye     = "BYE"     // manager -> interchange: clean departure
	frameCancel  = "CANCEL"  // client -> interchange -> manager: drop tasks not yet started
	frameNack    = "NACK"    // receiver -> sender: your stream (epoch attached) is undecodable; resync
)

// TaskStreamDecoder decodes the interchange's TASKS frames. It wraps one
// per-connection stream decoder, exported so sibling executors that speak
// the manager protocol (EXEX pools) share the exact wire format. Not safe
// for concurrent use — one per receive loop.
type TaskStreamDecoder struct {
	dec *serialize.StreamDecoder
}

// NewTaskStreamDecoder returns a decoder for one manager-protocol session.
func NewTaskStreamDecoder() *TaskStreamDecoder {
	return &TaskStreamDecoder{dec: serialize.NewStreamDecoder()}
}

// Decode decodes one TASKS frame into its task-envelope batch.
func (d *TaskStreamDecoder) Decode(frame []byte) ([]serialize.WireTask, error) {
	var batch []serialize.WireTask
	if err := d.dec.DecodeFrame(frame, &batch); err != nil {
		return nil, fmt.Errorf("htex: decode batch: %w", err)
	}
	return batch, nil
}

// ResultStreamEncoder encodes RESULTS frames on a persistent stream toward
// the interchange; exported for EXEX pools. The frame passed to send is only
// valid during the call. Safe for concurrent use.
type ResultStreamEncoder struct {
	enc *serialize.StreamEncoder
}

// NewResultStreamEncoder returns an encoder for one manager-protocol session.
func NewResultStreamEncoder() *ResultStreamEncoder {
	return &ResultStreamEncoder{enc: serialize.NewStreamEncoder()}
}

// Encode frames one result batch and hands it to send.
func (e *ResultStreamEncoder) Encode(batch []serialize.ResultMsg, send func(frame []byte) error) error {
	if err := e.enc.EncodeFrame(batch, send); err != nil {
		return fmt.Errorf("htex: encode results: %w", err)
	}
	return nil
}

// Stream-corruption recovery (NACK protocol)
//
// A persistent gob stream is stateful: one corrupted, truncated, or dropped
// frame can make every later frame of the same epoch undecodable, because
// type descriptors transmitted earlier in the stream are referenced, not
// repeated. Silently ignoring an undecodable frame therefore risks wedging a
// whole session. Instead, every stream receiver in the HTEX triangle NACKs
// the sender with the epoch of the frame it could not decode:
//
//   - interchange -> client  (client's TASKB stream failed): the client
//     resets its task encoder — the next frame opens a fresh, self-
//     describing epoch — and retransmits every in-flight task. Tasks that
//     were actually delivered execute twice at most; the client's pending
//     map delivers each result exactly once.
//   - client -> interchange  (interchange's RESULTS stream failed): the
//     interchange resets its client encoder. Results inside the lost frame
//     are gone — no layer retains delivered results — so the affected tasks
//     recover through the DFK's attempt timeout and retry. That backstop is
//     deliberate: retaining results for replay would buy little and cost a
//     replay buffer on the broker's hot path.
//   - manager -> interchange (manager's TASKS stream failed): the
//     interchange resets that manager's task encoder and requeues the
//     manager's entire outstanding set (it cannot know which tasks the lost
//     frame carried). Tasks the manager did receive run twice at most;
//     duplicates reconcile at the client.
//   - interchange -> manager (manager's RESULTS stream failed): the manager
//     resets its result encoder; the interchange requeues that manager's
//     outstanding set when it sends the NACK, so results lost in the bad
//     frame re-execute elsewhere rather than leaking broker capacity.
//
// Stale NACKs are deduplicated by epoch: a receiver acts only when the
// NACKed epoch matches its encoder's current epoch, so a burst of failures
// against one epoch triggers exactly one reset/retransmit cycle.

// nackPayload encodes the undecodable frame's epoch for a NACK frame. A
// corrupted NACK payload is self-limiting — a wrong epoch matches nothing
// and the NACK is ignored — so no checksum is needed here.
func nackPayload(frame []byte) []byte {
	epoch, _ := serialize.PeekFrameEpoch(frame)
	// Epoch 0 is never issued by an encoder, so a NACK for a frame whose
	// header was itself mangled matches nothing and is ignored; the next
	// failing frame of the stream carries a readable epoch and repairs it.
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, epoch)
	return b
}

// nackEpoch decodes a NACK payload.
func nackEpoch(b []byte) uint32 {
	if len(b) != 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Epoch exposes the encoder's current stream epoch (NACK dedup).
func (e *ResultStreamEncoder) Epoch() uint32 { return e.enc.Epoch() }

// Reset abandons the current stream; the next frame is self-describing.
func (e *ResultStreamEncoder) Reset() { e.enc.Reset() }

// NackMessage builds the manager-protocol NACK reply for an undecodable
// frame. Exported, with NackEpoch, so sibling executors that speak the
// manager protocol (EXEX pool rank 0) implement the same resync contract.
func NackMessage(frame []byte) mq.Message {
	return mq.Message{[]byte(frameNack), nackPayload(frame)}
}

// NackEpoch extracts the stream epoch a received NACK payload names
// (0 = unmatchable; ignore the NACK).
func NackEpoch(payload []byte) uint32 { return nackEpoch(payload) }

// encodeIDs / decodeIDs carry wire-id lists (CANCEL, LOST) as checksummed
// one-shot frames: they are tiny and infrequent, so stream state would buy
// nothing, but they name tasks by id — a bit-flipped id that decoded
// "successfully" would cancel or fail the wrong task, so they get the same
// CRC-verified framing as task and result payloads.
func encodeIDs(ids []int64) ([]byte, error) {
	var out []byte
	err := serialize.OneShotCodec{}.EncodeFrame(ids, func(frame []byte) error {
		out = bytes.Clone(frame) // the frame is pooled, valid only during send
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("htex: encode ids: %w", err)
	}
	return out, nil
}

func decodeIDs(b []byte) ([]int64, error) {
	var ids []int64
	if err := serialize.NewStreamDecoder().DecodeFrame(b, &ids); err != nil {
		return nil, fmt.Errorf("htex: decode ids: %w", err)
	}
	return ids, nil
}
