// Package htex implements Parsl's High Throughput Executor (§4.3.1): an
// executor client, an interchange brokering between the client and
// registered managers over the mq fabric, and multi-worker managers deployed
// one per node by a provider. It supports task batching with prefetch,
// randomized manager selection for fairness, heartbeat-based fault
// detection, lost-manager exceptions, a synchronous command channel, and
// block-based scaling.
package htex

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/serialize"
)

// Wire message type tags (first frame part).
const (
	frameTask    = "TASK"    // client -> interchange: one TaskMsg
	frameTaskSub = "TASKB"   // client -> interchange: batch of TaskMsg
	frameTasks   = "TASKS"   // interchange -> manager: batch of TaskMsg
	frameResults = "RESULTS" // manager -> interchange -> client: batch of ResultMsg
	frameReg     = "REG"     // manager -> interchange: registration
	frameHB      = "HB"      // both directions
	frameCmd     = "CMD"     // client -> interchange: command channel
	frameCmdRep  = "CMDREP"  // interchange -> client: command reply
	frameLost    = "LOST"    // interchange -> client: tasks lost with a manager
	frameBye     = "BYE"     // manager -> interchange: clean departure
	frameCancel  = "CANCEL"  // client -> interchange -> manager: drop tasks not yet started
)

func encodeTasks(batch []serialize.TaskMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		return nil, fmt.Errorf("htex: encode batch: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeTasks(b []byte) ([]serialize.TaskMsg, error) {
	var batch []serialize.TaskMsg
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&batch); err != nil {
		return nil, fmt.Errorf("htex: decode batch: %w", err)
	}
	return batch, nil
}

func encodeResults(batch []serialize.ResultMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		return nil, fmt.Errorf("htex: encode results: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeResults(b []byte) ([]serialize.ResultMsg, error) {
	var batch []serialize.ResultMsg
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&batch); err != nil {
		return nil, fmt.Errorf("htex: decode results: %w", err)
	}
	return batch, nil
}

// DecodeTaskBatch exposes the task-batch codec to sibling executors (EXEX
// pools speak the same manager protocol).
func DecodeTaskBatch(b []byte) ([]serialize.TaskMsg, error) { return decodeTasks(b) }

// EncodeResultBatch exposes the result-batch codec to sibling executors.
func EncodeResultBatch(batch []serialize.ResultMsg) ([]byte, error) { return encodeResults(batch) }

func encodeIDs(ids []int64) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ids); err != nil {
		return nil, fmt.Errorf("htex: encode ids: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeIDs(b []byte) ([]int64, error) {
	var ids []int64
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ids); err != nil {
		return nil, fmt.Errorf("htex: decode ids: %w", err)
	}
	return ids, nil
}
