package htex

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/sched"
	"repro/internal/serialize"
)

// newShardedHTEX builds an executor over shards interchange shards with one
// block of nodes managers (bounded-hash-placed across the shards).
func newShardedHTEX(t *testing.T, shards, nodes, workers int) *Executor {
	t.Helper()
	return newHTEX(t, nodes, workers, func(c *Config) {
		c.Shards = shards
	})
}

// managersPerShard sums registered managers over every shard.
func managersPerShard(e *Executor) []int {
	out := make([]int, e.ShardCount())
	for i := range out {
		out[i] = e.Shard(i).ManagerCount()
	}
	return out
}

func TestShardedRoundTrip(t *testing.T) {
	e := newShardedHTEX(t, 3, 6, 2)
	// Bounded-load placement must leave no shard manager-less: a bare shard
	// could only drain by spilling, and capacity would sit idle.
	waitCond(t, "every shard has a manager", func() bool {
		for _, n := range managersPerShard(e) {
			if n == 0 {
				return false
			}
		}
		return true
	})
	const n = 300
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{
			ID: int64(i), App: "echo", Args: []any{i},
			Tenant: fmt.Sprintf("t%d", i%5),
		})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v, %v", i, v, err)
		}
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
	if alive, total := e.ShardCounts(); alive != 3 || total != 3 {
		t.Fatalf("ShardCounts = %d/%d, want 3/3", alive, total)
	}
	if h := e.ShardHealth(); h != "closed" {
		t.Fatalf("ShardHealth = %q, want closed", h)
	}
}

// TestShardedKillFailsOnlyVictims is the failover invariant at the executor
// boundary: killing one shard surfaces LostError for exactly the tasks
// inflight on that shard — naming the shard — while every task on the other
// shards completes normally and no task is double-settled.
func TestShardedKillFailsOnlyVictims(t *testing.T) {
	e := newShardedHTEX(t, 3, 6, 1)
	waitCond(t, "every shard has a manager", func() bool {
		for _, n := range managersPerShard(e) {
			if n == 0 {
				return false
			}
		}
		return true
	})

	const n = 60
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "sleep", Args: []any{100}})
	}
	// Freeze the task→shard assignment while everything is still inflight.
	e.mu.Lock()
	shardOf := make(map[int64]int, len(e.inflight))
	for id, it := range e.inflight {
		shardOf[id] = it.shard
	}
	e.mu.Unlock()
	if len(shardOf) != n {
		t.Fatalf("only %d of %d tasks inflight at snapshot", len(shardOf), n)
	}
	perShard := e.InflightByShard()
	victim := 0
	for i, c := range perShard {
		if c > perShard[victim] {
			victim = i
		}
	}
	if perShard[victim] == 0 {
		t.Fatalf("no shard holds inflight tasks: %v", perShard)
	}
	label := fmt.Sprintf("%s[%d]", e.cfg.Label, victim)

	if !e.KillShard(victim) {
		t.Fatalf("KillShard(%d) refused", victim)
	}
	if e.KillShard(victim) {
		t.Fatal("double KillShard reported success")
	}

	victims, survivors := 0, 0
	for i, f := range futs {
		v, err := f.Result()
		if shardOf[int64(i)] == victim {
			var le *executor.LostError
			if !errors.As(err, &le) {
				t.Fatalf("victim-shard task %d: want LostError, got %v, %v", i, v, err)
			}
			if le.Manager != label {
				t.Fatalf("victim-shard task %d lost by %q, want shard label %q", i, le.Manager, label)
			}
			victims++
		} else {
			if err != nil || v != "slept" {
				t.Fatalf("survivor-shard task %d failed: %v, %v — other shards must keep draining", i, v, err)
			}
			survivors++
		}
	}
	if victims == 0 || survivors == 0 {
		t.Fatalf("degenerate split victims=%d survivors=%d", victims, survivors)
	}
	if victims != perShard[victim] {
		t.Fatalf("failed %d tasks, victim shard held %d — kill must requeue exactly its outstanding set", victims, perShard[victim])
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after reconciliation", e.Outstanding())
	}
	if alive, total := e.ShardCounts(); alive != 2 || total != 3 {
		t.Fatalf("ShardCounts = %d/%d, want 2/3", alive, total)
	}
	if h := e.ShardHealth(); h != "degraded" {
		t.Fatalf("ShardHealth = %q, want degraded", h)
	}

	// The survivors still form a working executor: new work completes.
	v, err := e.Submit(serialize.TaskMsg{ID: n + 1, App: "echo", Args: []any{"after"}}).Result()
	if err != nil || v != "after" {
		t.Fatalf("post-failover submit: %v, %v", v, err)
	}
}

// TestShardedMergedLoad: the scheduler-facing probes report the union of the
// shards — queue depth, tenant backlog, shard membership — exactly as one
// broker holding all the queues would.
func TestShardedMergedLoad(t *testing.T) {
	e := newShardedHTEX(t, 4, 4, 1)
	waitCond(t, "managers registered on every shard", func() bool {
		for _, n := range managersPerShard(e) {
			if n == 0 {
				return false
			}
		}
		return true
	})
	// Saturate: 4 managers × (1 worker + 1 prefetch) hold 8; the rest queue.
	const n = 80
	futs := make([]*future.Future, 0, n)
	for i := 0; i < n; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{
			ID: int64(i), App: "sleep", Args: []any{30},
			Tenant: fmt.Sprintf("t%d", i%3), Weight: 1,
		}))
	}
	waitCond(t, "queues back up", func() bool { return e.QueueDepth() > 0 })

	sum := 0
	for i := 0; i < e.ShardCount(); i++ {
		sum += e.Shard(i).QueueDepth()
	}
	if got := e.QueueDepth(); got > sum+n || got == 0 {
		t.Fatalf("merged QueueDepth %d vs per-shard sum %d", got, sum)
	}
	merged := e.QueueDepthByTenant()
	direct := MergeTenantDepths(
		e.Shard(0).QueueDepthByTenant(), e.Shard(1).QueueDepthByTenant(),
		e.Shard(2).QueueDepthByTenant(), e.Shard(3).QueueDepthByTenant(),
	)
	mergedTotal, directTotal := 0, 0
	for _, v := range merged {
		mergedTotal += v
	}
	for _, v := range direct {
		directTotal += v
	}
	// The queues drain concurrently, so totals can differ between the two
	// samples; both must be merged views (non-empty while saturated).
	if mergedTotal == 0 && directTotal > 0 {
		t.Fatalf("merged tenant view empty while shards report %v", direct)
	}

	l := sched.LoadOf(e)
	if l.ShardsAlive != 4 || l.ShardsTotal != 4 {
		t.Fatalf("LoadOf shards = %d/%d, want 4/4", l.ShardsAlive, l.ShardsTotal)
	}
	if l.Health != "closed" {
		t.Fatalf("LoadOf health = %q", l.Health)
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCommandChannel: administrative commands fan across shards —
// OUTSTANDING sums, MANAGERS concatenates every shard's registry.
func TestShardedCommandChannel(t *testing.T) {
	e := newShardedHTEX(t, 3, 6, 1)
	waitCond(t, "all managers registered", func() bool {
		total := 0
		for _, n := range managersPerShard(e) {
			total += n
		}
		return total == 6
	})
	mgrs, err := e.Command("MANAGERS", "", 5*time.Second)
	if err != nil || len(mgrs) != 6 {
		t.Fatalf("MANAGERS = %v, %v (want 6 ids)", mgrs, err)
	}
	n, err := e.OutstandingRemote()
	if err != nil || n != 0 {
		t.Fatalf("OutstandingRemote = %d, %v", n, err)
	}
	futs := make([]*future.Future, 0, 12)
	for i := 0; i < 12; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "sleep", Args: []any{50}}))
	}
	waitCond(t, "remote outstanding visible", func() bool {
		n, err := e.OutstandingRemote()
		return err == nil && n > 0
	})
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFixedAddrRejected: N routers cannot share one fixed port.
func TestShardedFixedAddrRejected(t *testing.T) {
	e := New(Config{
		Label:    "htex-fixed",
		Registry: testRegistry(t),
		Addr:     "127.0.0.1:7777",
		Shards:   2,
	})
	if err := e.Start(); err == nil {
		_ = e.Shutdown()
		t.Fatal("Start accepted 2 shards on one fixed address")
	}
}
