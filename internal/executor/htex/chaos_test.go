package htex

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// The stream-corruption suite injects corrupt/truncated frames into each
// persistent codec leg and asserts the NACK resync protocol (codec.go)
// recovers: no deadlock, no task stuck in flight, every future settles.
// Corruption probabilities are high (every recovery cycle is itself subject
// to further corruption), so these tests exercise repeated resyncs.

// waitAllOrFatal fails the test if any future is unsettled after timeout —
// the "no deadlock" assertion.
func waitAllOrFatal(t *testing.T, timeout time.Duration, futs []*future.Future) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for i, f := range futs {
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Millisecond
		}
		if _, err := f.ResultTimeout(rem); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("task %d stuck %v after corruption — stream never recovered", i, timeout)
			}
			t.Fatalf("task %d: %v", i, err)
		}
	}
}

// corruptionHarness runs n echo tasks under plan and asserts full recovery:
// all results correct, broker fully drained.
func corruptionHarness(t *testing.T, plan chaos.Plan, n int, tune func(*Config)) *Injector {
	t.Helper()
	inj := chaos.New(11, plan)
	restore := chaos.Enable(inj)
	defer restore()

	e := newHTEX(t, 2, 2, tune)
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		// One frame per Submit: many frames means many corruption rolls.
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	waitAllOrFatal(t, 30*time.Second, futs)
	for i, f := range futs {
		if v, _ := f.Result(); v != i {
			t.Fatalf("task %d = %v, want %d", i, v, i)
		}
	}
	// No task stuck in flight anywhere in the broker.
	waitCond(t, "interchange drained", func() bool {
		if e.Interchange().QueueDepth() != 0 {
			return false
		}
		for _, held := range e.Interchange().OutstandingByManager() {
			if held != 0 {
				return false
			}
		}
		return true
	})
	if e.Outstanding() != 0 {
		t.Fatalf("client outstanding = %d", e.Outstanding())
	}
	return inj
}

// Injector is re-exported for the harness return (keeps call sites short).
type Injector = chaos.Injector

func TestStreamCorruptionClientLeg(t *testing.T) {
	inj := corruptionHarness(t, chaos.Plan{
		{Point: chaos.PointClientSend, Act: chaos.ActCorrupt, Prob: 0.4},
		{Point: chaos.PointClientSend, Act: chaos.ActTruncate, Prob: 0.1},
	}, 60, nil)
	if inj.Fires(chaos.PointClientSend) == 0 {
		t.Fatal("no corruption fired — test exercised nothing")
	}
}

func TestStreamCorruptionInterchangeTasksLeg(t *testing.T) {
	inj := corruptionHarness(t, chaos.Plan{
		{Point: chaos.PointIxTasks, Act: chaos.ActCorrupt, Prob: 0.3},
		{Point: chaos.PointIxTasks, Act: chaos.ActTruncate, Prob: 0.1},
	}, 60, nil)
	if inj.Fires(chaos.PointIxTasks) == 0 {
		t.Fatal("no corruption fired")
	}
}

func TestStreamCorruptionManagerResultsLeg(t *testing.T) {
	inj := corruptionHarness(t, chaos.Plan{
		{Point: chaos.PointMgrResults, Act: chaos.ActCorrupt, Prob: 0.3},
	}, 60, nil)
	if inj.Fires(chaos.PointMgrResults) == 0 {
		t.Fatal("no corruption fired")
	}
}

// TestStreamCorruptionResultsRelayResyncs corrupts the interchange → client
// RESULTS relay once, then keeps submitting: the NACK must resync the relay
// stream so every subsequent result flows. Results inside the one lost frame
// are unrecoverable at this layer by design (nothing retains delivered
// results); TestStreamCorruptionResultsRelayTimeoutRecovery covers their
// task-level recovery through the DFK.
func TestStreamCorruptionResultsRelayResyncs(t *testing.T) {
	inj := chaos.New(13, chaos.Plan{
		{Point: chaos.PointIxResults, Act: chaos.ActCorrupt, Prob: 1.0, Max: 1},
	})
	restore := chaos.Enable(inj)
	defer restore()

	e := newHTEX(t, 1, 2, nil)
	first := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"lost"}})
	// The first result frame is corrupted; the client NACKs and the relay
	// resyncs. The task's result is gone — it must NOT settle.
	waitCond(t, "corruption fired", func() bool { return inj.Fires(chaos.PointIxResults) == 1 })

	// The fire is counted at interchange send time, which can precede the
	// client's NACK and the relay reset — results framed in that window ride
	// the dead epoch and are lost like the first one. Probe serially until
	// one settles (each lost probe's own decode failure re-NACKs, so
	// recovery is at most a probe or two behind); after that the stream is
	// healthy and everything must flow.
	lostProbes := 0
	recovered := false
	for i := 0; i < 20 && !recovered; i++ {
		p := e.Submit(serialize.TaskMsg{ID: int64(100 + i), App: "echo", Args: []any{i}})
		if _, err := p.ResultTimeout(2 * time.Second); err == nil {
			recovered = true
		} else {
			lostProbes++
		}
	}
	if !recovered {
		t.Fatal("relay stream never resynced after corruption")
	}
	futs := make([]*future.Future, 20)
	for i := range futs {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(200 + i), App: "echo", Args: []any{i}})
	}
	waitAllOrFatal(t, 10*time.Second, futs)
	if first.Done() {
		t.Fatal("task whose result frame was corrupted settled at the htex layer — no layer should have retained it")
	}
	// Outstanding = the original lost task plus any probes lost in the
	// resync window; nothing after recovery may be stuck.
	if got := e.Outstanding(); got != 1+lostProbes {
		t.Fatalf("client outstanding = %d, want %d (1 lost task + %d lost probes)", got, 1+lostProbes, lostProbes)
	}
}

// TestStreamCorruptionResultsRelayTimeoutRecovery is the end-to-end arm: a
// corrupted RESULTS relay frame loses a result, and the DFK's attempt
// timeout + retry re-executes the task to completion — the documented
// recovery path for the one leg where NACK cannot repair task state.
func TestStreamCorruptionResultsRelayTimeoutRecovery(t *testing.T) {
	inj := chaos.New(17, chaos.Plan{
		{Point: chaos.PointIxResults, Act: chaos.ActCorrupt, Prob: 1.0, Max: 1},
	})
	restore := chaos.Enable(inj)
	defer restore()

	reg := serialize.NewRegistry()
	hx := New(Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		InitBlocks: 1,
		Manager:    ManagerConfig{Workers: 2, Prefetch: 2},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	})
	d, err := dfk.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{hx},
		Retries:     3,
		TaskTimeout: 400 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("echo2", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*future.Future, 8)
	for i := range futs {
		futs[i] = app.Submit(context.Background(), []any{i})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatalf("task %d not recovered: %v", i, err)
		}
		if v != i {
			t.Fatalf("task %d = %v", i, v)
		}
	}
	if inj.Fires(chaos.PointIxResults) != 1 {
		t.Fatalf("corruption fired %d times, want 1", inj.Fires(chaos.PointIxResults))
	}
}

// TestChaosDelayPreservesStreamOrder: delays on a stream leg stall frames
// but must never reorder them (the delay happens under the stream encoder's
// lock), so heavy delay probability alone cannot break a stream.
func TestChaosDelayPreservesStreamOrder(t *testing.T) {
	inj := chaos.New(19, chaos.Plan{
		{Point: chaos.PointIxTasks, Act: chaos.ActDelay, Prob: 0.5, Delay: 2 * time.Millisecond},
		{Point: chaos.PointMgrResults, Act: chaos.ActDelay, Prob: 0.5, Delay: 2 * time.Millisecond},
	})
	restore := chaos.Enable(inj)
	defer restore()

	e := newHTEX(t, 2, 2, nil)
	futs := make([]*future.Future, 40)
	for i := range futs {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{fmt.Sprint(i)}})
	}
	waitAllOrFatal(t, 20*time.Second, futs)
}
