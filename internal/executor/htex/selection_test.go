package htex

import (
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/mq"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

func trackingRegistry(t *testing.T) *serialize.Registry {
	t.Helper()
	reg := serialize.NewRegistry()
	if err := reg.Register("who", func(_ []any, _ map[string]any) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func runSelection(t *testing.T, sel Selection, tasks int) {
	t.Helper()
	reg := trackingRegistry(t)
	e := New(Config{
		Label:       "sel",
		Transport:   simnet.NewNetwork(0),
		Registry:    reg,
		Provider:    provider.NewLocal(provider.Config{NodesPerBlock: 3}),
		InitBlocks:  1,
		Manager:     ManagerConfig{Workers: 1},
		Interchange: InterchangeConfig{Seed: 7, Selection: sel, BatchSize: 1},
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown() })
	waitCond(t, "managers", func() bool { return e.Interchange().ManagerCount() == 3 })

	futs := make([]*future.Future, tasks)
	for i := 0; i < tasks; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "who"})
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinCompletesAll(t *testing.T)      { runSelection(t, SelectRoundRobin, 30) }
func TestRandomSelectionCompletesAll(t *testing.T) { runSelection(t, SelectRandom, 30) }

func TestRoundRobinCyclesManagersEvenly(t *testing.T) {
	// Direct policy check: three serial managers, batch size 1, round-robin
	// — every manager must execute exactly n/3 tasks. Each manager
	// advertises capacity for its whole share (prefetch n/3 - 1), so all
	// three stay dispatch-eligible until the queue is empty and the
	// rotation is a pure function of arrival order. With capacity 1 the
	// even split would instead depend on result-return timing (whichever
	// manager freed first got the next task) — a load-dependent flake.
	reg := trackingRegistry(t)
	tr := simnet.NewNetwork(0)
	ix, err := StartInterchange(tr, "ix-rr", InterchangeConfig{
		Seed: 1, Selection: SelectRoundRobin, BatchSize: 1,
		HeartbeatPeriod: time.Hour, HeartbeatThreshold: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var mgrs []*Manager
	for _, id := range []string{"mgr-a", "mgr-b", "mgr-c"} {
		m, err := StartManager(tr, ix.Addr(), id, reg, ManagerConfig{Workers: 1, Prefetch: 3, HeartbeatPeriod: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Stop()
		mgrs = append(mgrs, m)
	}
	waitCond(t, "3 managers", func() bool { return ix.ManagerCount() == 3 })

	// A bare client dealer submits tasks straight to the interchange.
	client, err := mq.DialDealer(tr, ix.Addr(), clientIdentity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 12
	for i := 0; i < n; i++ {
		payload, err := serialize.EncodeTask(serialize.TaskMsg{ID: int64(i), App: "who"})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Send(mq.Message{[]byte(frameTask), payload}); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "all executed", func() bool {
		total := int64(0)
		for _, m := range mgrs {
			total += m.Executed()
		}
		return total == n
	})
	for _, m := range mgrs {
		if got := m.Executed(); got != n/3 {
			t.Fatalf("manager %s executed %d, want %d (round robin)", m.ID(), got, n/3)
		}
	}
}
