package htex

import (
	"fmt"
	"reflect"
	"testing"
)

// TestShardMapPlacementStability is the bounded-key-movement contract:
// removing one shard moves only the keys that shard owned (they fall to ring
// successors), and restoring it moves exactly those keys back. Everyone
// else's placement is untouched through the whole membership episode.
func TestShardMapPlacementStability(t *testing.T) {
	const shards, keys = 5, 10_000
	m := NewShardMap(shards)

	before := make([]int, keys)
	for i := range before {
		before[i] = m.PlaceTask("", int64(i))
	}
	if !m.Remove(2) {
		t.Fatal("Remove(2) refused")
	}
	moved := 0
	for i := range before {
		got := m.PlaceTask("", int64(i))
		if before[i] == 2 {
			if got == 2 {
				t.Fatalf("key %d still places on removed shard 2", i)
			}
			moved++
			continue
		}
		if got != before[i] {
			t.Fatalf("key %d moved %d→%d though shard %d is alive — movement must be bounded to the removed shard's keys",
				i, before[i], got, before[i])
		}
	}
	if moved == 0 {
		t.Fatal("shard 2 owned no keys out of 10k — ring spread broken")
	}
	// A fair ring gives shard 2 about keys/shards of the keyspace; allow 2×.
	if max := 2 * keys / shards; moved > max {
		t.Fatalf("%d keys moved on one shard removal (fair share %d, cap %d)", moved, keys/shards, max)
	}

	if !m.Restore(2) {
		t.Fatal("Restore(2) refused")
	}
	for i := range before {
		if got := m.PlaceTask("", int64(i)); got != before[i] {
			t.Fatalf("key %d at %d after restore, want original %d", i, got, before[i])
		}
	}
}

// TestShardMapTenantAffinity: every task of one tenant lands on one shard
// regardless of wire id, and distinct tenants actually spread.
func TestShardMapTenantAffinity(t *testing.T) {
	m := NewShardMap(4)
	for tenant := 0; tenant < 50; tenant++ {
		name := fmt.Sprintf("tenant-%d", tenant)
		home := m.PlaceTask(name, 0)
		for id := int64(1); id < 100; id++ {
			if got := m.PlaceTask(name, id); got != home {
				t.Fatalf("%s task %d on shard %d, tenant home is %d — tenant affinity broken", name, id, got, home)
			}
		}
	}
	homes := map[int]bool{}
	for tenant := 0; tenant < 50; tenant++ {
		homes[m.PlaceTask(fmt.Sprintf("tenant-%d", tenant), 0)] = true
	}
	if len(homes) < 2 {
		t.Fatalf("50 tenants all hashed to %d shard(s) of 4", len(homes))
	}
	// Tenantless tasks spread by id.
	spread := map[int]bool{}
	for id := int64(0); id < 1000; id++ {
		spread[m.PlaceTask("", id)] = true
	}
	if len(spread) != 4 {
		t.Fatalf("tenantless ids reached %d shards of 4", len(spread))
	}
}

// TestShardMapDeterministic: placement is a pure function of (membership,
// key) — two maps with the same history agree on every key, which is what
// lets seeded scenarios reproduce cross-process.
func TestShardMapDeterministic(t *testing.T) {
	a, b := NewShardMap(6), NewShardMap(6)
	a.Remove(1)
	b.Remove(1)
	for i := int64(0); i < 2000; i++ {
		if a.PlaceTask("", i) != b.PlaceTask("", i) {
			t.Fatalf("maps with identical membership disagree on id %d", i)
		}
	}
	if a.Place("mgr-b0-7") != b.Place("mgr-b0-7") {
		t.Fatal("maps disagree on string key placement")
	}
}

// TestShardMapMergedDepthsEquivalence: splitting one tenant backlog across
// shards and merging the per-shard views reproduces exactly the single-shard
// map — the merged-Load contract the scheduler layer relies on.
func TestShardMapMergedDepthsEquivalence(t *testing.T) {
	m := NewShardMap(4)
	single := map[string]int{}
	perShard := make([]map[string]int, 4)
	for i := 0; i < 500; i++ {
		tenant := fmt.Sprintf("t%d", i%7)
		single[tenant]++
		s := m.PlaceTask(tenant, int64(i))
		if perShard[s] == nil {
			perShard[s] = map[string]int{}
		}
		perShard[s][tenant]++
	}
	if got := MergeTenantDepths(perShard...); !reflect.DeepEqual(got, single) {
		t.Fatalf("merged view %v != single-shard view %v", got, single)
	}
	if MergeTenantDepths(nil, nil) != nil {
		t.Fatal("merging empty shards should report nil, like an empty queue")
	}
	if got := MergeTenantDepths(map[string]int{"a": 1}, nil, map[string]int{"a": 2, "b": 3}); got["a"] != 3 || got["b"] != 3 {
		t.Fatalf("merge = %v", got)
	}
}

// TestShardMapBoundedManagerPlacement: sequential manager placement with
// live counts leaves no shard manager-less once managers ≥ shards, and no
// shard hoards more than the ceil-share bound.
func TestShardMapBoundedManagerPlacement(t *testing.T) {
	const shards, managers = 4, 8
	m := NewShardMap(shards)
	counts := make([]int, shards)
	for i := 0; i < managers; i++ {
		s := m.PlaceManagerBounded(fmt.Sprintf("mgr-b%d-%d", i, i), counts)
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d got no managers (counts %v) — its queued tasks could never drain", s, counts)
		}
		if n > (managers+shards)/shards {
			t.Fatalf("shard %d got %d managers, above the bounded-load cap (counts %v)", s, n, counts)
		}
	}
}

// TestShardMapPlaceTaskFunc: a vetoed preferred shard spills to a different
// alive shard; an all-veto map falls back to the preferred shard rather
// than failing placement.
func TestShardMapPlaceTaskFunc(t *testing.T) {
	m := NewShardMap(3)
	preferred := m.PlaceTask("hot-tenant", 0)
	got := m.PlaceTaskFunc("hot-tenant", 0, func(s int) bool { return s != preferred })
	if got == preferred {
		t.Fatalf("veto of shard %d ignored", preferred)
	}
	if all := m.PlaceTaskFunc("hot-tenant", 0, func(int) bool { return false }); all != preferred {
		t.Fatalf("all-veto placement = %d, want preferred %d", all, preferred)
	}
	if ok := m.PlaceTaskFunc("hot-tenant", 0, func(int) bool { return true }); ok != preferred {
		t.Fatalf("no-veto placement = %d, want preferred %d (spill must not reorder clean placement)", ok, preferred)
	}
}

// TestShardMapLastShard: the map never goes empty — the final alive shard
// cannot be removed, and the single-shard fast path always answers 0 work.
func TestShardMapLastShard(t *testing.T) {
	m := NewShardMap(2)
	if !m.Remove(0) {
		t.Fatal("Remove(0) refused with two alive")
	}
	if m.Remove(1) {
		t.Fatal("removed the last alive shard")
	}
	if m.Remove(0) {
		t.Fatal("double-removed shard 0")
	}
	if got := m.PlaceTask("any", 42); got != 1 {
		t.Fatalf("placement on sole survivor = %d, want 1", got)
	}
	if alive, total := m.AliveCount(), m.Total(); alive != 1 || total != 2 {
		t.Fatalf("alive/total = %d/%d, want 1/2", alive, total)
	}
	if got := m.Alive(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Alive() = %v", got)
	}
}
