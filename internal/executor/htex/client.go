package htex

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/mq"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// Config assembles a complete HTEX deployment: the interchange settings, the
// per-node manager settings, and the provider that places managers on nodes.
type Config struct {
	Label     string
	Transport simnet.Transport
	// Addr is where the interchange listens ("" lets simnet auto-assign;
	// use "127.0.0.1:0" over TCP). With Shards > 1 the address must be an
	// auto-assign form — N routers cannot share one fixed port.
	Addr        string
	Registry    *serialize.Registry
	Provider    provider.Provider
	InitBlocks  int
	Manager     ManagerConfig
	Interchange InterchangeConfig
	// Shards is how many interchange shards form this one logical executor
	// (default 1 — the single-broker deployment, whose wire path is
	// byte-identical to the pre-shard design). With N > 1 the client runs N
	// independent interchanges, places managers and tasks onto them by
	// consistent hash (tenant-affine; see ShardMap), fans each submitted
	// batch across the owning shards, and reconciles results, LOST, and
	// CANCEL traffic from all of them. Each shard preserves every
	// single-broker invariant — per-shard queues, heartbeats, NACK resync —
	// and a shard death requeues only that shard's outstanding set while the
	// others keep draining.
	Shards int
	// PayloadFactory overrides what runs on each provisioned node. The
	// default starts a Manager; EXEX injects an MPI worker pool whose rank
	// 0 speaks the same manager protocol (§4.3.2's hierarchical model).
	PayloadFactory func(interchangeAddr string, node provider.Node) (stop func(), err error)
}

// shardConn is one shard's live connection state: the broker, the dealer
// connection, and the per-connection stream codec pair. It sits behind an
// atomic pointer on shardLink so RestoreShard can swap a respawned broker in
// without racing the receive loop, the senders, or monitoring probes still
// holding the previous connection.
type shardConn struct {
	ix     *Interchange
	dealer *mq.Dealer
	// taskEnc streams TASKB frames to this shard; resDec consumes its
	// RESULTS stream. One pair per shard connection — gob type descriptors
	// cross each wire once per session, not per batch.
	taskEnc *serialize.StreamEncoder
	resDec  *serialize.StreamDecoder
}

// shardLink is the client's handle to one interchange shard: the current
// connection (swappable on restore), the command-reply channel, and the
// shard's circuit breaker. Everything here is per-shard because the
// invariants are per-shard: a NACK resyncs one shard's stream, a breaker
// trips on one shard's sends, a death fails one shard's inflight.
type shardLink struct {
	idx   int
	label string // "htex[0]" — the shard's chaos/breaker/LOST identity
	conn  atomic.Pointer[shardConn]
	// breaker tracks this shard's send outcomes so routing can stop
	// offering work to a flaky-but-alive shard (half-open probes let it
	// back in). Shard death is tracked by down; RestoreShard clears it when
	// a respawned broker rejoins the placement ring.
	breaker    *health.Breaker
	cmdReplies chan mq.Message
	down       atomic.Bool
}

// broker returns the shard's current interchange.
func (s *shardLink) broker() *Interchange { return s.conn.Load().ix }

// inflightTask is one submitted-but-unresolved task plus the shard it was
// placed on — the shard is what lets a NACK retransmit or a shard death
// touch exactly the affected subset of the inflight registry.
type inflightTask struct {
	msg   serialize.TaskMsg
	shard int
}

// Executor is the HTEX client-side executor: it owns the interchange shards,
// tracks submitted tasks, and scales blocks of managers through its provider.
type Executor struct {
	cfg Config

	shards []*shardLink
	smap   *ShardMap

	mu        sync.Mutex
	pending   map[int64]*future.Future
	inflight  map[int64]inflightTask // for retransmit on manager/shard loss
	blocks    []string
	blockMgrs map[string][]string // block id -> manager identities
	mgrShard  map[string]int      // manager identity -> shard index
	mgrSeq    int64
	started   bool
	closed    bool

	cmdMu sync.Mutex

	outstanding atomic.Int64
	wg          sync.WaitGroup
}

// New creates an HTEX executor. Start launches the interchange shards and
// the initial blocks.
func New(cfg Config) *Executor {
	if cfg.Label == "" {
		cfg.Label = "htex"
	}
	if cfg.Transport == nil {
		cfg.Transport = simnet.NewNetwork(0)
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Executor{
		cfg:       cfg,
		pending:   make(map[int64]*future.Future),
		inflight:  make(map[int64]inflightTask),
		blockMgrs: make(map[string][]string),
		mgrShard:  make(map[string]int),
	}
}

// Label implements executor.Executor.
func (e *Executor) Label() string { return e.cfg.Label }

// Interchange exposes shard 0's broker (tests and monitoring; the whole
// broker when sharding is off). Shard addresses the others.
func (e *Executor) Interchange() *Interchange { return e.shards[0].broker() }

// Shard exposes shard i's broker, nil when out of range.
func (e *Executor) Shard(i int) *Interchange {
	if i < 0 || i >= len(e.shards) {
		return nil
	}
	return e.shards[i].broker()
}

// ShardCount reports the configured shard count.
func (e *Executor) ShardCount() int { return len(e.shards) }

// ShardCounts reports (alive, total) shards — the merged-Load probe
// internal/sched samples so policies can see a degraded control plane.
func (e *Executor) ShardCounts() (alive, total int) {
	if e.smap == nil {
		return 0, 0
	}
	return e.smap.AliveCount(), e.smap.Total()
}

// ShardHealth aggregates the per-shard breakers into one executor-level
// signal: "closed" when every alive shard routes cleanly, "degraded" when at
// least one shard is dead or its breaker is open/half-open, "down" when no
// shard is routable at all.
func (e *Executor) ShardHealth() string {
	if len(e.shards) == 0 {
		return ""
	}
	routable, degraded := 0, false
	for _, s := range e.shards {
		if s.down.Load() {
			degraded = true
			continue
		}
		if st := s.breaker.State(); st != health.BreakerClosed {
			degraded = true
			if st == health.BreakerOpen {
				continue
			}
		}
		routable++
	}
	switch {
	case routable == 0:
		return "down"
	case degraded:
		return "degraded"
	default:
		return "closed"
	}
}

// Start implements executor.Executor: bring up the interchange shards,
// connect one client dealer per shard, and provision InitBlocks.
func (e *Executor) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil
	}
	e.started = true
	e.mu.Unlock()

	if err := e.cfg.Manager.Validate(); err != nil {
		return err
	}
	if err := e.cfg.Interchange.Validate(); err != nil {
		return err
	}
	// Cross-check the two heartbeat clocks after normalization: a manager
	// that pings slower than the interchange's loss threshold would be
	// declared dead while perfectly healthy. The check applies to custom
	// PayloadFactory pools too — whatever speaks the manager protocol on the
	// nodes inherits ManagerConfig's heartbeat clock (EXEX mirrors its pool
	// period into it), and the interchange polices the threshold regardless
	// of what runs behind the dealer.
	mgrCfg, ixCfg := e.cfg.Manager, e.cfg.Interchange
	mgrCfg.normalize()
	ixCfg.normalize()
	if mgrCfg.HeartbeatPeriod >= ixCfg.HeartbeatThreshold {
		return fmt.Errorf("htex: manager HeartbeatPeriod %v must be below interchange HeartbeatThreshold %v",
			mgrCfg.HeartbeatPeriod, ixCfg.HeartbeatThreshold)
	}

	n := e.cfg.Shards
	addr := e.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	if n > 1 && !strings.HasSuffix(addr, ":0") {
		return fmt.Errorf("htex: %d shards cannot share fixed address %q (use an auto-assign :0 form)", n, e.cfg.Addr)
	}

	e.smap = NewShardMap(n)
	e.shards = make([]*shardLink, 0, n)
	fail := func(err error) error {
		for _, s := range e.shards {
			c := s.conn.Load()
			_ = c.dealer.Close()
			_ = c.ix.Close()
		}
		return err
	}
	for i := 0; i < n; i++ {
		ixCfg := e.cfg.Interchange
		ixCfg.Label = fmt.Sprintf("%s[%d]", e.cfg.Label, i)
		if ixCfg.Seed != 0 {
			// Decorrelate the shards' manager-selection streams while keeping
			// the whole deployment a pure function of the configured seed.
			ixCfg.Seed += int64(i)
		}
		ix, err := StartInterchange(e.cfg.Transport, addr, ixCfg)
		if err != nil {
			return fail(err)
		}
		dealer, err := mq.DialDealer(e.cfg.Transport, ix.Addr(), clientIdentity)
		if err != nil {
			_ = ix.Close()
			return fail(fmt.Errorf("htex: client dial %s: %w", ixCfg.Label, err))
		}
		s := &shardLink{
			idx:        i,
			label:      ixCfg.Label,
			breaker:    health.NewBreaker(health.BreakerConfig{}),
			cmdReplies: make(chan mq.Message, 16),
		}
		s.conn.Store(&shardConn{
			ix:      ix,
			dealer:  dealer,
			taskEnc: serialize.NewStreamEncoder(),
			resDec:  serialize.NewStreamDecoder(),
		})
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go e.recvLoop(s)
	}

	for i := 0; i < e.cfg.InitBlocks; i++ {
		if err := e.ScaleOut(1); err != nil {
			return err
		}
	}
	return nil
}

// recvLoop reconciles one shard's traffic: results, LOST reports, command
// replies, and NACKs all resolve against the shared pending/inflight
// registries, so N shards look like one executor to everything above. A
// receive error outside shutdown means the shard's router is gone — the
// shard-death rebalance path. The loop is bound to one connection: a
// RestoreShard swap starts a fresh loop, and this one exits without
// reporting a death that belongs to the connection it was reading.
func (e *Executor) recvLoop(s *shardLink) {
	defer e.wg.Done()
	c := s.conn.Load()
	for {
		msg, err := c.dealer.Recv()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if !closed && s.conn.Load() == c {
				e.shardDown(s)
			}
			return
		}
		if len(msg) == 0 {
			continue
		}
		switch string(msg[0]) {
		case frameResults:
			if len(msg) < 2 {
				continue
			}
			var results []serialize.ResultMsg
			if err := c.resDec.DecodeFrame(msg[1], &results); err != nil {
				// This shard's RESULTS stream is undecodable mid-epoch; NACK
				// so it resyncs on a fresh self-describing epoch. Tasks whose
				// results rode the lost frame stay pending here and recover
				// via the DFK's attempt timeout (see codec.go).
				_ = c.dealer.Send(mq.Message{[]byte(frameNack), nackPayload(msg[1])})
				continue
			}
			for _, r := range results {
				e.complete(r)
			}
		case frameLost:
			if len(msg) < 2 {
				continue
			}
			ids, err := decodeIDs(msg[1])
			if err != nil {
				continue
			}
			detail := "manager lost"
			if len(msg) > 2 {
				detail = string(msg[2])
			}
			mgr := ""
			if len(msg) > 3 {
				mgr = string(msg[3])
			}
			for _, id := range ids {
				e.fail(id, &executor.LostError{TaskID: id, Detail: detail, Manager: mgr})
			}
		case frameCmdRep:
			select {
			case s.cmdReplies <- msg:
			default:
			}
		case frameNack:
			if len(msg) < 2 {
				continue
			}
			e.handleNack(s, c, nackEpoch(msg[1]))
		}
	}
}

// shardDown is the rebalance-on-death path: mark the shard dead, remove it
// from the placement ring (its hash arcs fall to ring successors, everyone
// else's placement is untouched), and fail exactly the tasks that were
// inflight on it. Those failures surface as LostError naming the shard, so
// the DFK's retry plane re-executes only the dead shard's outstanding set —
// the other shards' queues and inflight tasks never notice. Idempotent: the
// receive loop and KillShard may both report the same death.
func (e *Executor) shardDown(s *shardLink) {
	if !s.down.CompareAndSwap(false, true) {
		return
	}
	e.smap.Remove(s.idx)
	e.mu.Lock()
	var lost []int64
	for id, it := range e.inflight {
		if it.shard == s.idx {
			lost = append(lost, id)
		}
	}
	e.mu.Unlock()
	for _, id := range lost {
		e.fail(id, &executor.LostError{TaskID: id, Detail: "interchange shard lost", Manager: s.label})
	}
}

// KillShard abruptly closes shard i's interchange — no goodbye to the client
// or its managers — and runs the death path synchronously. This is the
// failover hook the shard chaos scenario drives; production deaths take the
// same shardDown road via the receive loop's error. Returns false when i is
// out of range or the shard is already down.
func (e *Executor) KillShard(i int) bool {
	if i < 0 || i >= len(e.shards) {
		return false
	}
	s := e.shards[i]
	if s.down.Load() {
		return false
	}
	_ = s.broker().Close()
	e.shardDown(s)
	return true
}

// RestoreShard respawns a dead shard: a fresh interchange, a fresh dealer
// connection with fresh stream codecs, and the shard re-inserted into the
// placement ring (ShardMap.Restore) so the hash arcs that spilled to ring
// successors flow back home. The restored broker starts empty — managers
// reach it through the next ScaleOut, exactly as a respawned broker process
// would in production — and the tasks the death path failed stay with their
// retry plane. No-op when the shard is alive; error when the executor is
// stopped or i is out of range.
func (e *Executor) RestoreShard(i int) error {
	if i < 0 || i >= len(e.shards) {
		return fmt.Errorf("htex: restore shard %d of %d", i, len(e.shards))
	}
	s := e.shards[i]
	// Hold e.mu across the whole respawn so a concurrent Shutdown either
	// observes and closes the new connection or makes this call fail fast —
	// never a fresh receive loop reading a connection nobody will close.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || !e.started {
		return errors.New("htex: restore on stopped executor")
	}
	if !s.down.Load() {
		return nil
	}
	addr := e.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ixCfg := e.cfg.Interchange
	ixCfg.Label = s.label
	if ixCfg.Seed != 0 {
		ixCfg.Seed += int64(i)
	}
	ix, err := StartInterchange(e.cfg.Transport, addr, ixCfg)
	if err != nil {
		return fmt.Errorf("htex: restore %s: %w", s.label, err)
	}
	dealer, err := mq.DialDealer(e.cfg.Transport, ix.Addr(), clientIdentity)
	if err != nil {
		_ = ix.Close()
		return fmt.Errorf("htex: restore %s: client dial: %w", s.label, err)
	}
	old := s.conn.Load()
	s.conn.Store(&shardConn{
		ix:      ix,
		dealer:  dealer,
		taskEnc: serialize.NewStreamEncoder(),
		resDec:  serialize.NewStreamDecoder(),
	})
	// The death path closes only the broker; close the stale dealer too so
	// the old receive loop (which sees the swapped pointer) unblocks.
	_ = old.dealer.Close()
	s.down.Store(false)
	e.smap.Restore(i)
	e.wg.Add(1)
	go e.recvLoop(s)
	return nil
}

// handleNack repairs one shard's task stream after that shard reported it
// undecodable: reset the encoder (fresh self-describing epoch) and
// retransmit every task inflight on that shard. The client cannot know which
// tasks the lost frame carried, so the retransmission is a per-shard
// superset; tasks that were delivered run at most twice, and the pending map
// completes each future exactly once whichever copy's result arrives first.
// Epoch mismatch means the stream was already reset (duplicate NACKs for one
// epoch collapse to one repair).
func (e *Executor) handleNack(s *shardLink, c *shardConn, epoch uint32) {
	if epoch == 0 || c.taskEnc.Epoch() != epoch {
		return
	}
	c.taskEnc.Reset()
	e.mu.Lock()
	msgs := make([]serialize.TaskMsg, 0, len(e.inflight))
	for _, it := range e.inflight {
		if it.shard != s.idx {
			continue
		}
		// Retain each snapshot entry under the lock: the framing below runs
		// unlocked, racing completions that drop the inflight reference, and
		// a recycled payload buffer must not reach the wire.
		if p := it.msg.Payload(); p != nil {
			p.Retain()
		}
		msgs = append(msgs, it.msg)
	}
	e.mu.Unlock()
	if len(msgs) == 0 {
		return
	}
	wires := make([]serialize.WireTask, 0, len(msgs))
	for i := range msgs {
		// Payloads were encoded at first submission; Wire() reuses them, so
		// a retransmission re-encodes nothing.
		if w, err := msgs[i].Wire(); err == nil {
			wires = append(wires, w)
		}
	}
	_ = e.sendTasksOn(s, c, wires)
	for i := range msgs {
		msgs[i].Payload().Release()
	}
}

// sendTasks frames one task batch onto one shard's (chaos-instrumented)
// wire, recording the outcome against that shard's breaker.
func (e *Executor) sendTasks(s *shardLink, wires []serialize.WireTask) error {
	return e.sendTasksOn(s, s.conn.Load(), wires)
}

// sendTasksOn is sendTasks pinned to one connection — the NACK repair path
// must retransmit on exactly the stream whose epoch it just reset, even if a
// restore swaps the connection mid-repair.
func (e *Executor) sendTasksOn(s *shardLink, c *shardConn, wires []serialize.WireTask) error {
	err := c.taskEnc.EncodeFrame(wires, func(frame []byte) error {
		return chaos.Frame(chaos.PointClientSend, s.label, frame, func(fr []byte) error {
			return c.dealer.Send(mq.Message{[]byte(frameTaskSub), fr})
		})
	})
	s.breaker.Record(err == nil)
	return err
}

// placeTask picks the shard for one task: consistent-hash tenant-affine
// placement, vetoing shards that are dead, breaker-blocked, or have no
// registered managers to drain them (those spill to their ring successor —
// see ShardMap.PlaceTaskFunc).
func (e *Executor) placeTask(tenant string, id int64) int {
	return e.smap.PlaceTaskFunc(tenant, id, func(si int) bool {
		s := e.shards[si]
		return !s.down.Load() && s.breaker.Routable() && s.broker().ManagerCount() > 0
	})
}

// dropInflightLocked removes id's inflight entry and releases its payload
// reference. Called with e.mu held at every site that deletes from inflight,
// so the retain taken at registration is paired exactly once.
func (e *Executor) dropInflightLocked(id int64) {
	if it, ok := e.inflight[id]; ok {
		delete(e.inflight, id)
		it.msg.Payload().Release()
	}
}

func (e *Executor) complete(r serialize.ResultMsg) {
	e.mu.Lock()
	fut, ok := e.pending[r.ID]
	delete(e.pending, r.ID)
	e.dropInflightLocked(r.ID)
	e.mu.Unlock()
	if !ok {
		return
	}
	e.outstanding.Add(-1)
	executor.Complete(fut, r)
}

func (e *Executor) fail(id int64, err error) {
	e.mu.Lock()
	fut, ok := e.pending[id]
	delete(e.pending, id)
	e.dropInflightLocked(id)
	e.mu.Unlock()
	if !ok {
		return
	}
	e.outstanding.Add(-1)
	_ = fut.SetError(err)
}

// Submit implements executor.Executor as a single-task batch: the
// registration/framing logic lives once in SubmitBatch, and the
// interchange treats a one-task TASKB like the legacy TASK frame.
func (e *Executor) Submit(msg serialize.TaskMsg) *future.Future {
	return e.SubmitBatch([]serialize.TaskMsg{msg})[0]
}

// SubmitBatch implements executor.BatchSubmitter: the whole batch is
// registered under one lock acquisition, then crosses the wire as one TASKB
// frame per owning shard — the single-shard deployment (the default) sends
// exactly one frame with no placement work at all, and a sharded deployment
// fans the batch out in submission order per shard. From the interchange
// queues on, the existing manager-side batching (§4.3.1) takes over.
func (e *Executor) SubmitBatch(msgs []serialize.TaskMsg) []*future.Future {
	futs := make([]*future.Future, len(msgs))
	for i, m := range msgs {
		futs[i] = future.NewForTask(m.ID)
	}
	e.mu.Lock()
	if e.closed || !e.started {
		closed := e.closed
		e.mu.Unlock()
		for i := range futs {
			if closed {
				_ = futs[i].SetError(executor.ErrShutdown)
			} else {
				_ = futs[i].SetError(errors.New("htex: Submit before Start"))
			}
		}
		return futs
	}
	// Placement happens at registration so the inflight registry knows each
	// task's shard from the first instant — a shard death between this lock
	// and the send below must still fail exactly the right subset. The
	// single-shard path skips it entirely (shard 0, no hashing, no slice).
	single := len(e.shards) == 1
	var shardOf []int
	if !single {
		shardOf = make([]int, len(msgs))
	}
	// Two payload references per task: one for the inflight registry (the
	// NACK retransmission source, released when the entry leaves the map)
	// and one pinning the bytes across the framing below — a Cancel racing
	// this batch can drop the inflight reference before Wire() runs, and
	// the send leg must never frame a recycled buffer.
	held := make([]*serialize.Payload, len(msgs))
	for i, m := range msgs {
		shard := 0
		if !single {
			shard = e.placeTask(m.Tenant, m.ID)
			shardOf[i] = shard
		}
		e.pending[m.ID] = futs[i]
		if p := m.Payload(); p != nil {
			held[i] = p.Retain()
			p.Retain()
		}
		e.inflight[m.ID] = inflightTask{msg: m, shard: shard}
	}
	e.mu.Unlock()
	e.outstanding.Add(int64(len(msgs)))

	// Convert to wire envelopes. Tasks from the dispatch pipeline carry an
	// encode-once payload, so Wire() just wraps cached bytes and cannot
	// fail; a direct submission without a payload encodes here, and an
	// unencodable argument fails only its own task — poison isolation comes
	// free, with no validation double-encode.
	wires := make([]serialize.WireTask, 0, len(msgs))
	var wireShard []int
	if !single {
		wireShard = make([]int, 0, len(msgs))
	}
	for i := range msgs {
		w, err := msgs[i].Wire()
		if err != nil {
			e.fail(msgs[i].ID, err)
			continue
		}
		wires = append(wires, w)
		if !single {
			wireShard = append(wireShard, shardOf[i])
		}
	}
	if len(wires) > 0 {
		if single {
			if err := e.sendTasks(e.shards[0], wires); err != nil {
				for _, w := range wires {
					e.fail(w.ID, fmt.Errorf("htex: submit batch: %w", err))
				}
			}
		} else {
			e.fanOut(wires, wireShard)
		}
	}
	for _, p := range held {
		p.Release()
	}
	return futs
}

// fanOut partitions one wire batch by owning shard (submission order
// preserved within each shard) and sends each partition on its shard's
// stream. A failed send fails only that shard's partition — the other
// shards' tasks are already safely queued or on their way.
func (e *Executor) fanOut(wires []serialize.WireTask, wireShard []int) {
	buckets := make([][]serialize.WireTask, len(e.shards))
	for i, w := range wires {
		si := wireShard[i]
		buckets[si] = append(buckets[si], w)
	}
	for si, batch := range buckets {
		if len(batch) == 0 {
			continue
		}
		if err := e.sendTasks(e.shards[si], batch); err != nil {
			for _, w := range batch {
				e.fail(w.ID, fmt.Errorf("htex: submit batch: %w", err))
			}
		}
	}
}

// Cancel implements executor.Canceler: the task's client-side future is
// settled with future.ErrCanceled and a CANCEL frame is sent to the shard
// holding the task so its interchange drops it from the queue (or forwards
// the drop to the manager holding it). Best effort past the client: a task
// already running on a worker is not preempted — its late result is simply
// ignored, since the pending entry is gone.
func (e *Executor) Cancel(wireID int64) bool {
	e.mu.Lock()
	fut, ok := e.pending[wireID]
	shard := -1
	if it, okIn := e.inflight[wireID]; okIn {
		shard = it.shard
	}
	if ok {
		delete(e.pending, wireID)
		e.dropInflightLocked(wireID)
	}
	e.mu.Unlock()
	if !ok {
		return false
	}
	e.outstanding.Add(-1)
	canceled := fut.Cancel()
	if payload, err := encodeIDs([]int64{wireID}); err == nil {
		if shard >= 0 && !e.shards[shard].down.Load() {
			_ = e.shards[shard].conn.Load().dealer.Send(mq.Message{[]byte(frameCancel), payload})
		} else {
			// Unknown or dead owner: tell every live shard; the ones not
			// holding the task ignore the unknown id.
			for _, s := range e.shards {
				if !s.down.Load() {
					_ = s.conn.Load().dealer.Send(mq.Message{[]byte(frameCancel), payload})
				}
			}
		}
	}
	return canceled
}

// Outstanding implements executor.Executor.
func (e *Executor) Outstanding() int { return int(e.outstanding.Load()) }

// InflightByShard reports how many submitted-but-unresolved tasks each shard
// currently owns (index = shard). The failover scenario snapshots this to
// prove a kill requeues exactly the victim's set.
func (e *Executor) InflightByShard() []int {
	out := make([]int, len(e.shards))
	e.mu.Lock()
	for _, it := range e.inflight {
		if it.shard >= 0 && it.shard < len(out) {
			out[it.shard]++
		}
	}
	e.mu.Unlock()
	return out
}

// QueueDepth reports tasks waiting for manager capacity, merged across
// shards.
func (e *Executor) QueueDepth() int {
	n := 0
	for _, s := range e.shards {
		if !s.down.Load() {
			n += s.broker().QueueDepth()
		}
	}
	return n
}

// QueueDepthByTenant merges the per-shard tenant backlogs into the one view
// sched.Load carries — identical to what a single interchange holding the
// union of the queues would report.
func (e *Executor) QueueDepthByTenant() map[string]int {
	if len(e.shards) == 1 {
		return e.shards[0].broker().QueueDepthByTenant()
	}
	per := make([]map[string]int, 0, len(e.shards))
	for _, s := range e.shards {
		if !s.down.Load() {
			per = append(per, s.broker().QueueDepthByTenant())
		}
	}
	return MergeTenantDepths(per...)
}

// ConnectedWorkers implements executor.Scalable: managers × workers, summed
// over the live shards.
func (e *Executor) ConnectedWorkers() int {
	n := 0
	for _, s := range e.shards {
		if !s.down.Load() {
			n += s.broker().ManagerCount()
		}
	}
	return n * e.cfg.Manager.Workers
}

// HoldsDigest reports whether any live shard has a manager currently
// advertising digest d — the executor-level locality probe internal/sched
// samples into Load.HasDigest. Advertisements ride heartbeats and may be up
// to one heartbeat period stale; a wrong answer costs one cold placement,
// never correctness.
func (e *Executor) HoldsDigest(d string) bool {
	for _, s := range e.shards {
		if !s.down.Load() && s.broker().HasDigest(d) {
			return true
		}
	}
	return false
}

// AdvertisedDigests reports the advertised-digest count summed over live
// shards — a coarse warm-set size signal for monitoring and scheduler
// snapshots.
func (e *Executor) AdvertisedDigests() int {
	n := 0
	for _, s := range e.shards {
		if !s.down.Load() {
			n += s.broker().AdvertisedDigests()
		}
	}
	return n
}

// ActiveBlocks implements executor.Scalable.
func (e *Executor) ActiveBlocks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.blocks)
}

// ScaleOut implements executor.Scalable: one provider block per unit, with a
// manager started on every node of the block.
func (e *Executor) ScaleOut(n int) error {
	if e.cfg.Provider == nil {
		return errors.New("htex: no provider configured")
	}
	for i := 0; i < n; i++ {
		blockID, err := e.cfg.Provider.SubmitBlock(e.managerPayload())
		if err != nil {
			return fmt.Errorf("htex: scale out: %w", err)
		}
		e.mu.Lock()
		e.blocks = append(e.blocks, blockID)
		e.mu.Unlock()
	}
	return nil
}

// shardForManager places one manager identity onto a live shard: consistent
// hash with a bounded-load walk, so every shard keeps managers to drain the
// tasks hashed onto it even at small manager counts (see ShardMap).
func (e *Executor) shardForManager(id string) *shardLink {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	e.mu.Lock()
	counts := make([]int, len(e.shards))
	for _, si := range e.mgrShard {
		if si >= 0 && si < len(counts) {
			counts[si]++
		}
	}
	e.mu.Unlock()
	return e.shards[e.smap.PlaceManagerBounded(id, counts)]
}

// managerPayload builds the per-node payload: start a manager connected to
// its consistent-hash shard; stopping it drains cleanly.
func (e *Executor) managerPayload() provider.Payload {
	if f := e.cfg.PayloadFactory; f != nil {
		return func(node provider.Node) (func(), error) {
			return f(e.shardForManager(node.BlockID).broker().Addr(), node)
		}
	}
	return func(node provider.Node) (func(), error) {
		id := fmt.Sprintf("mgr-%s-%d", node.BlockID, atomic.AddInt64(&e.mgrSeq, 1))
		s := e.shardForManager(id)
		mgr, err := StartManager(e.cfg.Transport, s.broker().Addr(), id, e.cfg.Registry, e.cfg.Manager)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.blockMgrs[node.BlockID] = append(e.blockMgrs[node.BlockID], id)
		e.mgrShard[id] = s.idx
		e.mu.Unlock()
		return mgr.Drain, nil
	}
}

// idleBlocksFirst orders candidate blocks so that blocks whose managers have
// no in-flight tasks are released first, avoiding needless requeues of
// running work during scale-in. Manager identities are globally unique, so
// the per-shard outstanding maps merge without collision.
func (e *Executor) idleBlocksFirst(blocks []string) []string {
	busy := make(map[string]int)
	for _, s := range e.shards {
		if s.down.Load() {
			continue
		}
		for id, n := range s.broker().OutstandingByManager() {
			busy[id] = n
		}
	}
	var idle, active []string
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range blocks {
		blockBusy := 0
		for _, mgr := range e.blockMgrs[b] {
			blockBusy += busy[mgr]
		}
		if blockBusy == 0 {
			idle = append(idle, b)
		} else {
			active = append(active, b)
		}
	}
	return append(idle, active...)
}

// ScaleIn implements executor.Scalable: cancel the most recent n blocks.
func (e *Executor) ScaleIn(n int) error {
	if e.cfg.Provider == nil {
		return errors.New("htex: no provider configured")
	}
	e.mu.Lock()
	candidates := make([]string, len(e.blocks))
	copy(candidates, e.blocks)
	e.mu.Unlock()
	ordered := e.idleBlocksFirst(candidates)
	if n > len(ordered) {
		n = len(ordered)
	}
	victims := ordered[:n]
	e.mu.Lock()
	remaining := e.blocks[:0]
	for _, b := range e.blocks {
		keep := true
		for _, v := range victims {
			if b == v {
				keep = false
				break
			}
		}
		if keep {
			remaining = append(remaining, b)
		}
	}
	e.blocks = remaining
	for _, v := range victims {
		for _, mgr := range e.blockMgrs[v] {
			delete(e.mgrShard, mgr)
		}
		delete(e.blockMgrs, v)
	}
	e.mu.Unlock()
	var first error
	for _, id := range victims {
		if err := e.cfg.Provider.CancelBlock(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Command issues a synchronous command-channel request (§4.3.1). BLACKLIST
// routes to the one shard owning the named manager; every other command is a
// broadcast, with the reply parts concatenated in shard order (so a
// single-shard deployment answers exactly as the single broker did). A shard
// that fails or times out contributes nothing; the first such error is
// returned only when no shard answered at all.
func (e *Executor) Command(name, arg string, timeout time.Duration) ([]string, error) {
	e.cmdMu.Lock()
	defer e.cmdMu.Unlock()
	msg := mq.Message{[]byte(frameCmd), []byte(name)}
	if arg != "" {
		msg = append(msg, []byte(arg))
	}
	targets := e.shards
	if name == "BLACKLIST" && arg != "" {
		e.mu.Lock()
		si, ok := e.mgrShard[arg]
		e.mu.Unlock()
		if ok {
			targets = e.shards[si : si+1]
		}
	}
	var out []string
	answered := false
	var firstErr error
	for _, s := range targets {
		if s.down.Load() {
			continue
		}
		if err := s.conn.Load().dealer.Send(msg); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("htex: command %s on %s: %w", name, s.label, err)
			}
			continue
		}
		select {
		case rep := <-s.cmdReplies:
			answered = true
			for _, p := range rep[2:] {
				out = append(out, string(p))
			}
		case <-time.After(timeout):
			if firstErr == nil {
				firstErr = fmt.Errorf("htex: command %s timed out on %s", name, s.label)
			}
		}
	}
	if !answered {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("htex: command %s: no live shards", name)
	}
	return out, nil
}

// OutstandingRemote asks every live shard for its task count via the command
// channel and sums the answers.
func (e *Executor) OutstandingRemote() (int, error) {
	rep, err := e.Command("OUTSTANDING", "", 5*time.Second)
	if err != nil {
		return 0, err
	}
	if len(rep) == 0 {
		return 0, errors.New("htex: empty OUTSTANDING reply")
	}
	total := 0
	for _, p := range rep {
		n, err := strconv.Atoi(p)
		if err != nil {
			return 0, fmt.Errorf("htex: bad OUTSTANDING reply %q", p)
		}
		total += n
	}
	return total, nil
}

// Shutdown implements executor.Executor.
func (e *Executor) Shutdown() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started
	blocks := e.blocks
	e.blocks = nil
	pending := e.pending
	e.pending = make(map[int64]*future.Future)
	for _, it := range e.inflight {
		it.msg.Payload().Release()
	}
	e.inflight = make(map[int64]inflightTask)
	e.mu.Unlock()

	if !started {
		return nil
	}
	for _, id := range blocks {
		if e.cfg.Provider != nil {
			_ = e.cfg.Provider.CancelBlock(id)
		}
	}
	for id, fut := range pending {
		_ = fut.SetError(executor.ErrShutdown)
		_ = id
	}
	var first error
	for _, s := range e.shards {
		c := s.conn.Load()
		if err := c.dealer.Close(); err != nil && first == nil {
			first = err
		}
		if err := c.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.wg.Wait()
	return first
}
