package htex

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/mq"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// Config assembles a complete HTEX deployment: the interchange settings, the
// per-node manager settings, and the provider that places managers on nodes.
type Config struct {
	Label     string
	Transport simnet.Transport
	// Addr is where the interchange listens ("" lets simnet auto-assign;
	// use "127.0.0.1:0" over TCP).
	Addr        string
	Registry    *serialize.Registry
	Provider    provider.Provider
	InitBlocks  int
	Manager     ManagerConfig
	Interchange InterchangeConfig
	// PayloadFactory overrides what runs on each provisioned node. The
	// default starts a Manager; EXEX injects an MPI worker pool whose rank
	// 0 speaks the same manager protocol (§4.3.2's hierarchical model).
	PayloadFactory func(interchangeAddr string, node provider.Node) (stop func(), err error)
}

// Executor is the HTEX client-side executor: it owns the interchange, tracks
// submitted tasks, and scales blocks of managers through its provider.
type Executor struct {
	cfg Config
	ix  *Interchange

	dealer *mq.Dealer
	// taskEnc streams TASKB frames to the interchange; resDec consumes the
	// interchange's RESULTS stream. One pair per client connection — gob
	// type descriptors cross the wire once per session, not per batch.
	taskEnc *serialize.StreamEncoder
	resDec  *serialize.StreamDecoder

	mu        sync.Mutex
	pending   map[int64]*future.Future
	inflight  map[int64]serialize.TaskMsg // for retransmit on manager loss
	blocks    []string
	blockMgrs map[string][]string // block id -> manager identities
	mgrSeq    int64
	started   bool
	closed    bool

	cmdMu      sync.Mutex
	cmdReplies chan mq.Message

	outstanding atomic.Int64
	wg          sync.WaitGroup
}

// New creates an HTEX executor. Start launches the interchange and the
// initial blocks.
func New(cfg Config) *Executor {
	if cfg.Label == "" {
		cfg.Label = "htex"
	}
	if cfg.Transport == nil {
		cfg.Transport = simnet.NewNetwork(0)
	}
	return &Executor{
		cfg:        cfg,
		taskEnc:    serialize.NewStreamEncoder(),
		resDec:     serialize.NewStreamDecoder(),
		pending:    make(map[int64]*future.Future),
		inflight:   make(map[int64]serialize.TaskMsg),
		blockMgrs:  make(map[string][]string),
		cmdReplies: make(chan mq.Message, 16),
	}
}

// Label implements executor.Executor.
func (e *Executor) Label() string { return e.cfg.Label }

// Interchange exposes the broker (tests and monitoring).
func (e *Executor) Interchange() *Interchange { return e.ix }

// Start implements executor.Executor: bring up the interchange, connect the
// client dealer, and provision InitBlocks.
func (e *Executor) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil
	}
	e.started = true
	e.mu.Unlock()

	if err := e.cfg.Manager.Validate(); err != nil {
		return err
	}
	if err := e.cfg.Interchange.Validate(); err != nil {
		return err
	}
	// Cross-check the two heartbeat clocks after normalization: a manager
	// that pings slower than the interchange's loss threshold would be
	// declared dead while perfectly healthy. Only meaningful for the default
	// payload — a custom PayloadFactory (EXEX pools) has its own clock.
	if e.cfg.PayloadFactory == nil {
		mgrCfg, ixCfg := e.cfg.Manager, e.cfg.Interchange
		mgrCfg.normalize()
		ixCfg.normalize()
		if mgrCfg.HeartbeatPeriod >= ixCfg.HeartbeatThreshold {
			return fmt.Errorf("htex: manager HeartbeatPeriod %v must be below interchange HeartbeatThreshold %v",
				mgrCfg.HeartbeatPeriod, ixCfg.HeartbeatThreshold)
		}
	}

	addr := e.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ix, err := StartInterchange(e.cfg.Transport, addr, e.cfg.Interchange)
	if err != nil {
		return err
	}
	e.ix = ix

	dealer, err := mq.DialDealer(e.cfg.Transport, ix.Addr(), clientIdentity)
	if err != nil {
		_ = ix.Close()
		return fmt.Errorf("htex: client dial: %w", err)
	}
	e.dealer = dealer
	e.wg.Add(1)
	go e.recvLoop()

	for i := 0; i < e.cfg.InitBlocks; i++ {
		if err := e.ScaleOut(1); err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) recvLoop() {
	defer e.wg.Done()
	for {
		msg, err := e.dealer.Recv()
		if err != nil {
			return
		}
		if len(msg) == 0 {
			continue
		}
		switch string(msg[0]) {
		case frameResults:
			if len(msg) < 2 {
				continue
			}
			var results []serialize.ResultMsg
			if err := e.resDec.DecodeFrame(msg[1], &results); err != nil {
				// The interchange's RESULTS stream is undecodable mid-epoch;
				// NACK so it resyncs on a fresh self-describing epoch. Tasks
				// whose results rode the lost frame stay pending here and
				// recover via the DFK's attempt timeout (see codec.go).
				_ = e.dealer.Send(mq.Message{[]byte(frameNack), nackPayload(msg[1])})
				continue
			}
			for _, r := range results {
				e.complete(r)
			}
		case frameLost:
			if len(msg) < 2 {
				continue
			}
			ids, err := decodeIDs(msg[1])
			if err != nil {
				continue
			}
			detail := "manager lost"
			if len(msg) > 2 {
				detail = string(msg[2])
			}
			mgr := ""
			if len(msg) > 3 {
				mgr = string(msg[3])
			}
			for _, id := range ids {
				e.fail(id, &executor.LostError{TaskID: id, Detail: detail, Manager: mgr})
			}
		case frameCmdRep:
			select {
			case e.cmdReplies <- msg:
			default:
			}
		case frameNack:
			if len(msg) < 2 {
				continue
			}
			e.handleNack(nackEpoch(msg[1]))
		}
	}
}

// handleNack repairs the client's task stream after the interchange reported
// it undecodable: reset the encoder (fresh self-describing epoch) and
// retransmit every in-flight task. The client cannot know which tasks the
// lost frame carried, so the retransmission is a superset; tasks that were
// delivered run at most twice, and the pending map completes each future
// exactly once whichever copy's result arrives first. Epoch mismatch means
// the stream was already reset (duplicate NACKs for one epoch collapse to
// one repair).
func (e *Executor) handleNack(epoch uint32) {
	if epoch == 0 || e.taskEnc.Epoch() != epoch {
		return
	}
	e.taskEnc.Reset()
	e.mu.Lock()
	msgs := make([]serialize.TaskMsg, 0, len(e.inflight))
	for _, m := range e.inflight {
		// Retain each snapshot entry under the lock: the framing below runs
		// unlocked, racing completions that drop the inflight reference, and
		// a recycled payload buffer must not reach the wire.
		if p := m.Payload(); p != nil {
			p.Retain()
		}
		msgs = append(msgs, m)
	}
	e.mu.Unlock()
	if len(msgs) == 0 {
		return
	}
	wires := make([]serialize.WireTask, 0, len(msgs))
	for i := range msgs {
		// Payloads were encoded at first submission; Wire() reuses them, so
		// a retransmission re-encodes nothing.
		if w, err := msgs[i].Wire(); err == nil {
			wires = append(wires, w)
		}
	}
	_ = e.sendTasks(wires)
	for i := range msgs {
		msgs[i].Payload().Release()
	}
}

// sendTasks frames one task batch onto the (chaos-instrumented) client wire.
func (e *Executor) sendTasks(wires []serialize.WireTask) error {
	return e.taskEnc.EncodeFrame(wires, func(frame []byte) error {
		return chaos.Frame(chaos.PointClientSend, frame, func(fr []byte) error {
			return e.dealer.Send(mq.Message{[]byte(frameTaskSub), fr})
		})
	})
}

// dropInflightLocked removes id's inflight entry and releases its payload
// reference. Called with e.mu held at every site that deletes from inflight,
// so the retain taken at registration is paired exactly once.
func (e *Executor) dropInflightLocked(id int64) {
	if m, ok := e.inflight[id]; ok {
		delete(e.inflight, id)
		m.Payload().Release()
	}
}

func (e *Executor) complete(r serialize.ResultMsg) {
	e.mu.Lock()
	fut, ok := e.pending[r.ID]
	delete(e.pending, r.ID)
	e.dropInflightLocked(r.ID)
	e.mu.Unlock()
	if !ok {
		return
	}
	e.outstanding.Add(-1)
	executor.Complete(fut, r)
}

func (e *Executor) fail(id int64, err error) {
	e.mu.Lock()
	fut, ok := e.pending[id]
	delete(e.pending, id)
	e.dropInflightLocked(id)
	e.mu.Unlock()
	if !ok {
		return
	}
	e.outstanding.Add(-1)
	_ = fut.SetError(err)
}

// Submit implements executor.Executor as a single-task batch: the
// registration/framing logic lives once in SubmitBatch, and the
// interchange treats a one-task TASKB like the legacy TASK frame.
func (e *Executor) Submit(msg serialize.TaskMsg) *future.Future {
	return e.SubmitBatch([]serialize.TaskMsg{msg})[0]
}

// SubmitBatch implements executor.BatchSubmitter: the whole batch is
// registered under one lock acquisition and crosses the wire as a single
// TASKB frame, which the interchange appends to its queue wholesale — from
// there the existing manager-side batching (§4.3.1) takes over. Compared to
// per-task Submit this collapses n lock round-trips and n frames into one.
func (e *Executor) SubmitBatch(msgs []serialize.TaskMsg) []*future.Future {
	futs := make([]*future.Future, len(msgs))
	for i, m := range msgs {
		futs[i] = future.NewForTask(m.ID)
	}
	e.mu.Lock()
	if e.closed || !e.started {
		closed := e.closed
		e.mu.Unlock()
		for i := range futs {
			if closed {
				_ = futs[i].SetError(executor.ErrShutdown)
			} else {
				_ = futs[i].SetError(errors.New("htex: Submit before Start"))
			}
		}
		return futs
	}
	// Two payload references per task: one for the inflight registry (the
	// NACK retransmission source, released when the entry leaves the map)
	// and one pinning the bytes across the framing below — a Cancel racing
	// this batch can drop the inflight reference before Wire() runs, and
	// the send leg must never frame a recycled buffer.
	held := make([]*serialize.Payload, len(msgs))
	for i, m := range msgs {
		e.pending[m.ID] = futs[i]
		if p := m.Payload(); p != nil {
			held[i] = p.Retain()
			p.Retain()
		}
		e.inflight[m.ID] = m
	}
	e.mu.Unlock()
	e.outstanding.Add(int64(len(msgs)))

	// Convert to wire envelopes. Tasks from the dispatch pipeline carry an
	// encode-once payload, so Wire() just wraps cached bytes and cannot
	// fail; a direct submission without a payload encodes here, and an
	// unencodable argument fails only its own task — poison isolation comes
	// free, with no validation double-encode.
	wires := make([]serialize.WireTask, 0, len(msgs))
	for i := range msgs {
		w, err := msgs[i].Wire()
		if err != nil {
			e.fail(msgs[i].ID, err)
			continue
		}
		wires = append(wires, w)
	}
	if len(wires) > 0 {
		if err := e.sendTasks(wires); err != nil {
			for _, w := range wires {
				e.fail(w.ID, fmt.Errorf("htex: submit batch: %w", err))
			}
		}
	}
	for _, p := range held {
		p.Release()
	}
	return futs
}

// Cancel implements executor.Canceler: the task's client-side future is
// settled with future.ErrCanceled and a CANCEL frame is sent so the
// interchange drops the task from its queue (or forwards the drop to the
// manager holding it). Best effort past the client: a task already running
// on a worker is not preempted — its late result is simply ignored, since
// the pending entry is gone.
func (e *Executor) Cancel(wireID int64) bool {
	e.mu.Lock()
	fut, ok := e.pending[wireID]
	if ok {
		delete(e.pending, wireID)
		e.dropInflightLocked(wireID)
	}
	dealer := e.dealer
	e.mu.Unlock()
	if !ok {
		return false
	}
	e.outstanding.Add(-1)
	canceled := fut.Cancel()
	if dealer != nil {
		if payload, err := encodeIDs([]int64{wireID}); err == nil {
			_ = dealer.Send(mq.Message{[]byte(frameCancel), payload})
		}
	}
	return canceled
}

// Outstanding implements executor.Executor.
func (e *Executor) Outstanding() int { return int(e.outstanding.Load()) }

// ConnectedWorkers implements executor.Scalable: managers × workers.
func (e *Executor) ConnectedWorkers() int {
	if e.ix == nil {
		return 0
	}
	return e.ix.ManagerCount() * e.cfg.Manager.Workers
}

// ActiveBlocks implements executor.Scalable.
func (e *Executor) ActiveBlocks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.blocks)
}

// ScaleOut implements executor.Scalable: one provider block per unit, with a
// manager started on every node of the block.
func (e *Executor) ScaleOut(n int) error {
	if e.cfg.Provider == nil {
		return errors.New("htex: no provider configured")
	}
	for i := 0; i < n; i++ {
		blockID, err := e.cfg.Provider.SubmitBlock(e.managerPayload())
		if err != nil {
			return fmt.Errorf("htex: scale out: %w", err)
		}
		e.mu.Lock()
		e.blocks = append(e.blocks, blockID)
		e.mu.Unlock()
	}
	return nil
}

// managerPayload builds the per-node payload: start a manager connected to
// the interchange; stopping it drains cleanly.
func (e *Executor) managerPayload() provider.Payload {
	if f := e.cfg.PayloadFactory; f != nil {
		return func(node provider.Node) (func(), error) {
			return f(e.ix.Addr(), node)
		}
	}
	return func(node provider.Node) (func(), error) {
		id := fmt.Sprintf("mgr-%s-%d", node.BlockID, atomic.AddInt64(&e.mgrSeq, 1))
		mgr, err := StartManager(e.cfg.Transport, e.ix.Addr(), id, e.cfg.Registry, e.cfg.Manager)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.blockMgrs[node.BlockID] = append(e.blockMgrs[node.BlockID], id)
		e.mu.Unlock()
		return mgr.Drain, nil
	}
}

// idleBlocksFirst orders candidate blocks so that blocks whose managers have
// no in-flight tasks are released first, avoiding needless requeues of
// running work during scale-in.
func (e *Executor) idleBlocksFirst(blocks []string) []string {
	busy := e.ix.OutstandingByManager()
	var idle, active []string
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range blocks {
		blockBusy := 0
		for _, mgr := range e.blockMgrs[b] {
			blockBusy += busy[mgr]
		}
		if blockBusy == 0 {
			idle = append(idle, b)
		} else {
			active = append(active, b)
		}
	}
	return append(idle, active...)
}

// ScaleIn implements executor.Scalable: cancel the most recent n blocks.
func (e *Executor) ScaleIn(n int) error {
	if e.cfg.Provider == nil {
		return errors.New("htex: no provider configured")
	}
	e.mu.Lock()
	candidates := make([]string, len(e.blocks))
	copy(candidates, e.blocks)
	e.mu.Unlock()
	ordered := e.idleBlocksFirst(candidates)
	if n > len(ordered) {
		n = len(ordered)
	}
	victims := ordered[:n]
	e.mu.Lock()
	remaining := e.blocks[:0]
	for _, b := range e.blocks {
		keep := true
		for _, v := range victims {
			if b == v {
				keep = false
				break
			}
		}
		if keep {
			remaining = append(remaining, b)
		}
	}
	e.blocks = remaining
	for _, v := range victims {
		delete(e.blockMgrs, v)
	}
	e.mu.Unlock()
	var first error
	for _, id := range victims {
		if err := e.cfg.Provider.CancelBlock(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Command issues a synchronous command-channel request (§4.3.1) and returns
// the reply parts after the command echo.
func (e *Executor) Command(name, arg string, timeout time.Duration) ([]string, error) {
	e.cmdMu.Lock()
	defer e.cmdMu.Unlock()
	msg := mq.Message{[]byte(frameCmd), []byte(name)}
	if arg != "" {
		msg = append(msg, []byte(arg))
	}
	if err := e.dealer.Send(msg); err != nil {
		return nil, fmt.Errorf("htex: command %s: %w", name, err)
	}
	select {
	case rep := <-e.cmdReplies:
		var out []string
		for _, p := range rep[2:] {
			out = append(out, string(p))
		}
		return out, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("htex: command %s timed out", name)
	}
}

// OutstandingRemote asks the interchange for its task count via the command
// channel.
func (e *Executor) OutstandingRemote() (int, error) {
	rep, err := e.Command("OUTSTANDING", "", 5*time.Second)
	if err != nil {
		return 0, err
	}
	if len(rep) == 0 {
		return 0, errors.New("htex: empty OUTSTANDING reply")
	}
	return strconv.Atoi(rep[0])
}

// Shutdown implements executor.Executor.
func (e *Executor) Shutdown() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started
	blocks := e.blocks
	e.blocks = nil
	pending := e.pending
	e.pending = make(map[int64]*future.Future)
	for _, m := range e.inflight {
		m.Payload().Release()
	}
	e.inflight = make(map[int64]serialize.TaskMsg)
	e.mu.Unlock()

	if !started {
		return nil
	}
	for _, id := range blocks {
		if e.cfg.Provider != nil {
			_ = e.cfg.Provider.CancelBlock(id)
		}
	}
	for id, fut := range pending {
		_ = fut.SetError(executor.ErrShutdown)
		_ = id
	}
	var first error
	if e.dealer != nil {
		if err := e.dealer.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.ix != nil {
		if err := e.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.wg.Wait()
	return first
}
