package htex

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

func testRegistry(t *testing.T) *serialize.Registry {
	t.Helper()
	reg := serialize.NewRegistry()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register("echo", func(args []any, _ map[string]any) (any, error) { return args[0], nil }))
	must(reg.Register("sleep", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Millisecond)
		return "slept", nil
	}))
	must(reg.Register("fail", func([]any, map[string]any) (any, error) { return nil, errors.New("boom") }))
	return reg
}

// newHTEX builds an executor over a zero-latency simnet with a local
// provider of one block × nodes, each with workers worker goroutines.
func newHTEX(t *testing.T, nodes, workers int, tune func(*Config)) *Executor {
	t.Helper()
	reg := testRegistry(t)
	cfg := Config{
		Label:      "htex-test",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: nodes}),
		InitBlocks: 1,
		Manager:    ManagerConfig{Workers: workers, Prefetch: workers},
		Interchange: InterchangeConfig{
			Seed:               1,
			HeartbeatPeriod:    50 * time.Millisecond,
			HeartbeatThreshold: 250 * time.Millisecond,
		},
	}
	if tune != nil {
		tune(&cfg)
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown() })
	waitCond(t, "managers registered", func() bool {
		total := 0
		for i := 0; i < e.ShardCount(); i++ {
			total += e.Shard(i).ManagerCount()
		}
		return total == nodes
	})
	return e
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

func TestSubmitRoundTrip(t *testing.T) {
	e := newHTEX(t, 1, 2, nil)
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"hello"}}).Result()
	if err != nil || v != "hello" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestManyTasksAcrossManagers(t *testing.T) {
	e := newHTEX(t, 4, 2, nil)
	const n = 200
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v, %v", i, v, err)
		}
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
}

func TestAppErrorPropagates(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "fail"}).Result()
	var re *executor.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelismUsesAllWorkers(t *testing.T) {
	e := newHTEX(t, 2, 4, nil) // 8 workers
	start := time.Now()
	var futs []*future.Future
	for i := 0; i < 16; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "sleep", Args: []any{50}}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	// 16×50ms over 8 workers ≈ 100 ms; sequential would be 800 ms.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("insufficient parallelism: %v", elapsed)
	}
}

func TestAbruptManagerKillFailsInFlight(t *testing.T) {
	reg := testRegistry(t)
	tr := simnet.NewNetwork(0)
	prov := provider.NewLocal(provider.Config{NodesPerBlock: 1})

	cfg := Config{
		Label:     "htex-kill",
		Transport: tr,
		Registry:  reg,
		Provider:  prov,
		Manager:   ManagerConfig{Workers: 1, HeartbeatPeriod: 30 * time.Millisecond},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 30 * time.Millisecond, HeartbeatThreshold: 150 * time.Millisecond,
		},
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	// Start one manager by hand so we can kill it without Drain.
	mgr, err := StartManager(tr, e.Interchange().Addr(), "mgr-victim", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "manager registered", func() bool { return e.Interchange().ManagerCount() == 1 })

	fut := e.Submit(serialize.TaskMsg{ID: 42, App: "sleep", Args: []any{5000}})
	waitCond(t, "task in flight on victim", func() bool {
		return e.Interchange().OutstandingByManager()["mgr-victim"] == 1
	})
	mgr.Stop() // abrupt death: no BYE

	_, err = fut.Result()
	var lost *executor.LostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want LostError", err)
	}
	waitCond(t, "manager deregistered", func() bool { return e.Interchange().ManagerCount() == 0 })
}

func TestDrainRequeuesInFlight(t *testing.T) {
	reg := testRegistry(t)
	tr := simnet.NewNetwork(0)
	cfg := Config{
		Label: "htex-drain", Transport: tr, Registry: reg,
		Provider: provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Manager:  ManagerConfig{Workers: 1},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	slow, err := StartManager(tr, e.Interchange().Addr(), "mgr-slow", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "slow manager", func() bool { return e.Interchange().ManagerCount() == 1 })

	// Fill the slow manager with a long task plus a queued one, then drain:
	// the queued task must move to a fresh manager and still complete.
	futLong := e.Submit(serialize.TaskMsg{ID: 1, App: "sleep", Args: []any{300}})
	waitCond(t, "long task in flight", func() bool {
		return e.Interchange().OutstandingByManager()["mgr-slow"] >= 1
	})
	futQueued := e.Submit(serialize.TaskMsg{ID: 2, App: "echo", Args: []any{"requeued"}})
	// Deterministic, not a sleep: the manager's single slot is occupied by
	// the long task, so the queued task is visible in the interchange queue
	// before the drain begins.
	waitCond(t, "queued task parked at interchange", func() bool {
		return e.Interchange().QueueDepth() == 1
	})
	slow.Drain()

	fresh, err := StartManager(tr, e.Interchange().Addr(), "mgr-fresh", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Stop()

	v, err := futQueued.Result()
	if err != nil || v != "requeued" {
		t.Fatalf("requeued task: %v, %v", v, err)
	}
	// The long task was in flight on the drained manager; BYE requeues it
	// too, so it eventually completes on the fresh manager.
	v, err = futLong.Result()
	if err != nil || v != "slept" {
		t.Fatalf("long task: %v, %v", v, err)
	}
}

// TestCancelDropsQueuedTask cancels a task while it waits in the
// interchange queue (no managers registered yet): the client future settles
// with ErrCanceled, the interchange forgets the task, and when capacity
// finally arrives only the surviving task executes.
func TestCancelDropsQueuedTask(t *testing.T) {
	reg := testRegistry(t)
	tr := simnet.NewNetwork(0)
	cfg := Config{
		Label: "htex-cancel", Transport: tr, Registry: reg,
		Provider: provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Manager:  ManagerConfig{Workers: 1},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	}
	e := New(cfg) // InitBlocks 0: tasks queue at the interchange
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	victim := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"victim"}})
	survivor := e.Submit(serialize.TaskMsg{ID: 2, App: "echo", Args: []any{"survivor"}})
	waitCond(t, "tasks queued at interchange", func() bool { return e.Interchange().QueueDepth() == 2 })

	if !e.Cancel(1) {
		t.Fatal("Cancel(1) = false for a pending task")
	}
	if _, err := victim.Result(); !errors.Is(err, future.ErrCanceled) {
		t.Fatalf("victim error = %v, want ErrCanceled", err)
	}
	if e.Outstanding() != 1 {
		t.Fatalf("outstanding = %d after cancel, want 1", e.Outstanding())
	}
	waitCond(t, "interchange dropped the victim", func() bool { return e.Interchange().QueueDepth() == 1 })

	// Capacity arrives: only the survivor runs.
	mgr, err := StartManager(tr, e.Interchange().Addr(), "mgr-late", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	v, err := survivor.Result()
	if err != nil || v != "survivor" {
		t.Fatalf("survivor: %v, %v", v, err)
	}
	waitCond(t, "queue drained", func() bool { return e.Interchange().QueueDepth() == 0 })
	if got := mgr.Executed(); got != 1 {
		t.Fatalf("manager executed %d tasks, want 1", got)
	}
	// Canceling an unknown or already-finished task reports false.
	if e.Cancel(1) || e.Cancel(2) || e.Cancel(99) {
		t.Fatal("Cancel succeeded on settled or unknown ids")
	}
}

// TestInterchangeHonorsPriority queues tasks with mixed priorities while no
// manager is connected, then attaches a single serial worker: dispatch must
// be highest-priority-first, with equal priorities in arrival order.
func TestInterchangeHonorsPriority(t *testing.T) {
	reg := serialize.NewRegistry()
	var mu sync.Mutex
	var order []string
	if err := reg.Register("mark", func(args []any, _ map[string]any) (any, error) {
		mu.Lock()
		order = append(order, args[0].(string))
		mu.Unlock()
		return args[0], nil
	}); err != nil {
		t.Fatal(err)
	}
	tr := simnet.NewNetwork(0)
	cfg := Config{
		Label: "htex-prio", Transport: tr, Registry: reg,
		Provider: provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Manager:  ManagerConfig{Workers: 1},
		Interchange: InterchangeConfig{
			Seed: 1, BatchSize: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	}
	e := New(cfg) // no managers yet: everything queues at the interchange
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	futs := []*future.Future{
		e.Submit(serialize.TaskMsg{ID: 1, App: "mark", Args: []any{"low-first"}, Priority: 1}),
		e.Submit(serialize.TaskMsg{ID: 2, App: "mark", Args: []any{"high"}, Priority: 9}),
		e.Submit(serialize.TaskMsg{ID: 3, App: "mark", Args: []any{"low-second"}, Priority: 1}),
	}
	waitCond(t, "tasks queued", func() bool { return e.Interchange().QueueDepth() == 3 })

	mgr, err := StartManager(tr, e.Interchange().Addr(), "mgr-prio", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	for _, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "low-first", "low-second"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

// TestCancelForwardedToManager cancels a task the interchange has already
// handed to a manager but whose worker has not started it: the manager's
// worker drops it on dequeue.
func TestCancelForwardedToManager(t *testing.T) {
	reg := testRegistry(t)
	// The registry is shared in-process with the manager, so the gate can
	// close over a test-local channel; only task args cross the gob wire.
	release := make(chan struct{})
	if err := reg.Register("gate", func([]any, map[string]any) (any, error) {
		<-release
		return "gated", nil
	}); err != nil {
		t.Fatal(err)
	}
	tr := simnet.NewNetwork(0)
	cfg := Config{
		Label: "htex-cancel-mgr", Transport: tr, Registry: reg,
		Provider: provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Manager:  ManagerConfig{Workers: 1, Prefetch: 2},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 10 * time.Second,
		},
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	mgr, err := StartManager(tr, e.Interchange().Addr(), "mgr-gate", reg, cfg.Manager)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	waitCond(t, "manager registered", func() bool { return e.Interchange().ManagerCount() == 1 })

	blocker := e.Submit(serialize.TaskMsg{ID: 1, App: "gate"})
	waitCond(t, "blocker in flight", func() bool {
		return e.Interchange().OutstandingByManager()["mgr-gate"] >= 1
	})
	victim := e.Submit(serialize.TaskMsg{ID: 2, App: "echo", Args: []any{"victim"}})
	waitCond(t, "victim prefetched by manager", func() bool {
		return e.Interchange().OutstandingByManager()["mgr-gate"] == 2
	})

	if !e.Cancel(2) {
		t.Fatal("Cancel(2) = false")
	}
	if _, err := victim.Result(); !errors.Is(err, future.ErrCanceled) {
		t.Fatalf("victim error = %v, want ErrCanceled", err)
	}
	waitCond(t, "interchange struck the victim", func() bool {
		return e.Interchange().OutstandingByManager()["mgr-gate"] == 1
	})

	close(release)
	if v, err := blocker.Result(); err != nil || v != "gated" {
		t.Fatalf("blocker: %v, %v", v, err)
	}
	waitCond(t, "only the blocker executed", func() bool { return mgr.Executed() == 1 })
}

func TestCommandChannel(t *testing.T) {
	e := newHTEX(t, 2, 1, nil)
	// MANAGERS lists both.
	reps, err := e.Command("MANAGERS", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("managers = %v", reps)
	}
	// OUTSTANDING is zero when idle.
	n, err := e.OutstandingRemote()
	if err != nil || n != 0 {
		t.Fatalf("outstanding = %d, %v", n, err)
	}
	// BLACKLIST removes a manager from dispatch.
	if _, err := e.Command("BLACKLIST", reps[0], 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Unknown command gets a reply, not a hang.
	rep, err := e.Command("FLY", "", 2*time.Second)
	if err != nil || len(rep) == 0 || rep[0] != "unknown-command" {
		t.Fatalf("rep = %v, %v", rep, err)
	}
}

func TestBlacklistedManagerGetsNoTasks(t *testing.T) {
	e := newHTEX(t, 2, 1, nil)
	reps, err := e.Command("MANAGERS", "", 2*time.Second)
	if err != nil || len(reps) != 2 {
		t.Fatalf("managers: %v %v", reps, err)
	}
	if _, err := e.Command("BLACKLIST", reps[0], 2*time.Second); err != nil {
		t.Fatal(err)
	}
	var futs []*future.Future
	for i := 0; i < 20; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	// All tasks completed despite one of two managers being blacklisted.
}

func TestScaleOutAndIn(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)
	if e.ActiveBlocks() != 1 {
		t.Fatalf("blocks = %d", e.ActiveBlocks())
	}
	if err := e.ScaleOut(2); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "3 managers", func() bool { return e.Interchange().ManagerCount() == 3 })
	if e.ActiveBlocks() != 3 {
		t.Fatalf("blocks = %d", e.ActiveBlocks())
	}
	if e.ConnectedWorkers() != 3 {
		t.Fatalf("workers = %d", e.ConnectedWorkers())
	}
	if err := e.ScaleIn(2); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "1 manager", func() bool { return e.Interchange().ManagerCount() == 1 })
	if e.ActiveBlocks() != 1 {
		t.Fatalf("blocks = %d", e.ActiveBlocks())
	}
	// Still works after churn.
	v, err := e.Submit(serialize.TaskMsg{ID: 99, App: "echo", Args: []any{"ok"}}).Result()
	if err != nil || v != "ok" {
		t.Fatalf("post-churn: %v, %v", v, err)
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)
	_ = e.Shutdown()
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{1}}).Result()
	if !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
}

func TestShutdownFailsPending(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)
	fut := e.Submit(serialize.TaskMsg{ID: 1, App: "sleep", Args: []any{10000}})
	// Condition, not a sleep: shut down only once the task is actually held
	// by the manager, so the test always exercises the in-flight path.
	waitCond(t, "task in flight", func() bool {
		for _, n := range e.Interchange().OutstandingByManager() {
			if n > 0 {
				return true
			}
		}
		return false
	})
	_ = e.Shutdown()
	if _, err := fut.Result(); err == nil {
		t.Fatal("pending task succeeded across shutdown")
	}
}

func TestOverTCP(t *testing.T) {
	reg := testRegistry(t)
	cfg := Config{
		Label:      "htex-tcp",
		Transport:  simnet.TCP{},
		Addr:       "127.0.0.1:0",
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		InitBlocks: 1,
		Manager:    ManagerConfig{Workers: 2},
		Interchange: InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 100 * time.Millisecond, HeartbeatThreshold: time.Second,
		},
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer e.Shutdown()
	waitCond(t, "tcp manager", func() bool { return e.Interchange().ManagerCount() == 1 })
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"tcp"}}).Result()
	if err != nil || v != "tcp" {
		t.Fatalf("tcp round trip: %v, %v", v, err)
	}
}

func TestRandomizedDistributionFairness(t *testing.T) {
	e := newHTEX(t, 4, 1, func(c *Config) {
		c.Manager.Prefetch = 4
	})
	const n = 400
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	// Fairness is enforced inside the interchange by random selection; all
	// four managers must have executed something.
	reps, err := e.Command("MANAGERS", "", 2*time.Second)
	if err != nil || len(reps) != 4 {
		t.Fatalf("managers: %v %v", reps, err)
	}
}

func TestSubmitBatchRoundTrip(t *testing.T) {
	e := newHTEX(t, 2, 2, nil)
	const n = 100
	msgs := make([]serialize.TaskMsg, n)
	for i := range msgs {
		msgs[i] = serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}
	}
	futs := e.SubmitBatch(msgs)
	if len(futs) != n {
		t.Fatalf("futs = %d", len(futs))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v, %v", i, v, err)
		}
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
}

func TestSubmitBatchAfterShutdown(t *testing.T) {
	e := newHTEX(t, 1, 1, nil)
	_ = e.Shutdown()
	for _, f := range e.SubmitBatch([]serialize.TaskMsg{{ID: 7, App: "echo"}}) {
		if _, err := f.Result(); !errors.Is(err, executor.ErrShutdown) {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestSubmitBatchIsolatesPoisonTask(t *testing.T) {
	e := newHTEX(t, 1, 2, nil)
	// Task 1's args contain a gob-unencodable func; tasks 0 and 2 are fine
	// and must still complete.
	msgs := []serialize.TaskMsg{
		{ID: 0, App: "echo", Args: []any{"before"}},
		{ID: 1, App: "echo", Args: []any{func() {}}},
		{ID: 2, App: "echo", Args: []any{"after"}},
	}
	futs := e.SubmitBatch(msgs)
	if _, err := futs[1].Result(); err == nil {
		t.Fatal("poison task succeeded")
	}
	if v, err := futs[0].Result(); err != nil || v != "before" {
		t.Fatalf("task 0: %v, %v", v, err)
	}
	if v, err := futs[2].Result(); err != nil || v != "after" {
		t.Fatalf("task 2: %v, %v", v, err)
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
}

// TestInterchangeTenantFairness backlogs the interchange with a heavy
// tenant's burst and a light tenant's handful of tasks: the tenant-fair
// queue must complete the light tenant long before the burst drains, instead
// of FIFO-parking it behind the whole backlog. Fairness established on the
// DFK's client leg holds past the wire because the tenant rides the
// WireTask envelope.
func TestInterchangeTenantFairness(t *testing.T) {
	e := newHTEX(t, 1, 1, func(c *Config) {
		c.Manager = ManagerConfig{Workers: 1, Prefetch: 0}
		c.Interchange.BatchSize = 1
	})

	const heavyN, lightN = 200, 6
	var done sync.Mutex
	heavyDone := 0
	heavyAtLightFinish := -1
	lightLeft := lightN

	heavy := make([]serialize.TaskMsg, heavyN)
	for i := range heavy {
		heavy[i] = serialize.TaskMsg{
			ID: int64(i + 1), App: "sleep", Args: []any{2},
			Tenant: "heavy", Weight: 10,
		}
	}
	heavyFuts := e.SubmitBatch(heavy)
	for _, f := range heavyFuts {
		f.AddDoneCallback(func(df *future.Future) {
			done.Lock()
			heavyDone++
			done.Unlock()
		})
	}
	waitCond(t, "heavy backlog queued", func() bool { return e.Interchange().QueueDepth() > heavyN/2 })

	light := make([]serialize.TaskMsg, lightN)
	for i := range light {
		light[i] = serialize.TaskMsg{
			ID: int64(1000 + i), App: "sleep", Args: []any{2},
			Tenant: "light", Weight: 1,
		}
	}
	lightFuts := e.SubmitBatch(light)
	for _, f := range lightFuts {
		f.AddDoneCallback(func(df *future.Future) {
			done.Lock()
			lightLeft--
			if lightLeft == 0 {
				heavyAtLightFinish = heavyDone
			}
			done.Unlock()
		})
	}

	waitCond(t, "light tenant visible in queue depth", func() bool {
		return e.Interchange().QueueDepthByTenant()["light"] > 0
	})

	for _, f := range lightFuts {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	done.Lock()
	snapshot := heavyAtLightFinish
	done.Unlock()
	// With weights 10:1 the light tenant's 6 tasks finish around heavy's
	// 60th completion — DRR quanta resume across the broker's one-slot
	// dispatches — where FIFO would put them after all 200. Allow wide
	// noise either way.
	if snapshot < 0 || snapshot >= heavyN*3/4 {
		t.Fatalf("light tenant finished after %d/%d heavy tasks — not fair-shared", snapshot, heavyN)
	}
	for _, f := range heavyFuts {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
}
