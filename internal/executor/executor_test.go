package executor

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/future"
	"repro/internal/serialize"
)

func regWith(t *testing.T, name string, fn serialize.Fn) *serialize.Registry {
	t.Helper()
	r := serialize.NewRegistry()
	if err := r.Register(name, fn); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunKernelSuccess(t *testing.T) {
	reg := regWith(t, "double", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	res := RunKernel(reg, serialize.TaskMsg{ID: 1, App: "double", Args: []any{21}}, "w0")
	if res.Err != "" || res.Value != 42 || res.WorkerID != "w0" || res.ID != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunKernelAppError(t *testing.T) {
	reg := regWith(t, "bad", func([]any, map[string]any) (any, error) {
		return nil, errors.New("domain failure")
	})
	res := RunKernel(reg, serialize.TaskMsg{ID: 2, App: "bad"}, "w0")
	if res.Err != "domain failure" {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunKernelUnregisteredApp(t *testing.T) {
	reg := serialize.NewRegistry()
	res := RunKernel(reg, serialize.TaskMsg{ID: 3, App: "ghost"}, "w7")
	if !strings.Contains(res.Err, "not registered") || !strings.Contains(res.Err, "w7") {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunKernelPanicSandbox(t *testing.T) {
	reg := regWith(t, "boom", func([]any, map[string]any) (any, error) {
		var p *int
		return *p, nil // nil deref
	})
	res := RunKernel(reg, serialize.TaskMsg{ID: 4, App: "boom"}, "w0")
	if !strings.Contains(res.Err, "panic in app") {
		t.Fatalf("panic escaped: %+v", res)
	}
	if res.Value != nil {
		t.Fatal("panicking app produced a value")
	}
}

func TestCompleteSuccessAndError(t *testing.T) {
	f := future.New()
	Complete(f, serialize.ResultMsg{ID: 1, Value: "ok"})
	if v, err := f.Result(); err != nil || v != "ok" {
		t.Fatalf("result = %v, %v", v, err)
	}

	g := future.New()
	Complete(g, serialize.ResultMsg{ID: 9, Err: "exploded"})
	_, err := g.Result()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v", err, err)
	}
	if re.TaskID != 9 || !strings.Contains(re.Error(), "exploded") {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestErrorStrings(t *testing.T) {
	re := &RemoteError{TaskID: 5, Msg: "m"}
	if !strings.Contains(re.Error(), "task 5") {
		t.Fatal(re.Error())
	}
	le := &LostError{TaskID: 6, Detail: "manager heartbeat expired"}
	if !strings.Contains(le.Error(), "task 6") || !strings.Contains(le.Error(), "heartbeat") {
		t.Fatal(le.Error())
	}
}
