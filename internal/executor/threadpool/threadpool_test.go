package threadpool

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/serialize"
)

func newPool(t *testing.T, workers int) *Executor {
	t.Helper()
	reg := serialize.NewRegistry()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	}))
	must(reg.Register("sleep", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Millisecond)
		return nil, nil
	}))
	must(reg.Register("fail", func([]any, map[string]any) (any, error) {
		return nil, errors.New("app failed")
	}))
	must(reg.Register("mutate", func(args []any, _ map[string]any) (any, error) {
		s := args[0].([]int)
		s[0] = 999
		return s[0], nil
	}))
	e := New("tp", workers, reg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown() })
	return e
}

func TestSubmitAndResult(t *testing.T) {
	e := newPool(t, 2)
	fut := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"hi"}})
	v, err := fut.Result()
	if err != nil || v != "hi" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestParallelismBoundedByWorkers(t *testing.T) {
	e := newPool(t, 4)
	start := time.Now()
	var futs []*future.Future
	for i := 0; i < 8; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "sleep", Args: []any{50}}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 8 tasks × 50 ms on 4 workers = 2 waves ≈ 100 ms; sequential would be 400.
	if elapsed > 300*time.Millisecond {
		t.Fatalf("no parallelism: %v", elapsed)
	}
	if elapsed < 90*time.Millisecond {
		t.Fatalf("parallelism exceeded worker count: %v", elapsed)
	}
}

func TestAppErrorPropagates(t *testing.T) {
	e := newPool(t, 1)
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "fail"}).Result()
	var re *executor.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownApp(t *testing.T) {
	e := newPool(t, 1)
	if _, err := e.Submit(serialize.TaskMsg{ID: 1, App: "nope"}).Result(); err == nil {
		t.Fatal("unknown app succeeded")
	}
}

func TestArgumentIsolation(t *testing.T) {
	e := newPool(t, 1)
	orig := []int{1, 2, 3}
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "mutate", Args: []any{orig}}).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 999 {
		t.Fatalf("v = %v", v)
	}
	if orig[0] != 1 {
		t.Fatal("app mutated the caller's slice through the executor boundary")
	}
}

// TestArgumentIsolationFromPayload is TestArgumentIsolation on the
// encode-once path the DFK dispatch pipeline uses: the worker's defensive
// copy is decoded from the attached payload bytes (no fresh encode), and
// mutation by the app must still not leak into caller state — even when the
// same payload serves repeated submissions, as it does for retries.
func TestArgumentIsolationFromPayload(t *testing.T) {
	e := newPool(t, 1)
	orig := []int{1, 2, 3}
	kw := map[string]any{"tag": []string{"keep"}}
	p, err := serialize.EncodeArgs([]any{orig}, kw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg := serialize.TaskMsg{ID: int64(i + 1), App: "mutate", Args: []any{orig}, Kwargs: kw}
		msg.AttachPayload(p)
		v, err := e.Submit(msg).Result()
		if err != nil {
			t.Fatal(err)
		}
		if v != 999 {
			t.Fatalf("v = %v", v)
		}
		if orig[0] != 1 {
			t.Fatal("app mutated the caller's slice through the payload deep copy")
		}
		if kw["tag"].([]string)[0] != "keep" {
			t.Fatal("app mutated the caller's kwargs through the payload deep copy")
		}
	}
}

func TestOutstandingCount(t *testing.T) {
	e := newPool(t, 1)
	fut := e.Submit(serialize.TaskMsg{ID: 1, App: "sleep", Args: []any{50}})
	if e.Outstanding() < 1 {
		t.Fatal("outstanding not counted")
	}
	_, _ = fut.Result()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && e.Outstanding() != 0 {
		time.Sleep(time.Millisecond)
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after completion", e.Outstanding())
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	e := New("tp", 1, serialize.NewRegistry())
	if _, err := e.Submit(serialize.TaskMsg{ID: 1, App: "x"}).Result(); err == nil {
		t.Fatal("submit before start succeeded")
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	e := newPool(t, 1)
	_ = e.Shutdown()
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{1}}).Result()
	if !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	e := newPool(t, 2)
	var futs []*future.Future
	for i := 0; i < 20; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}))
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d after shutdown: %v, %v", i, v, err)
		}
	}
}

func TestDoubleStartAndShutdown(t *testing.T) {
	e := newPool(t, 1)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumOneWorker(t *testing.T) {
	e := New("tp", 0, serialize.NewRegistry())
	if e.Workers() != 1 {
		t.Fatalf("workers = %d", e.Workers())
	}
}

func TestHighConcurrencySubmission(t *testing.T) {
	e := newPool(t, 8)
	const n = 500
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}).Result()
			if err != nil || v != i {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSubmitBatch(t *testing.T) {
	e := newPool(t, 4)
	msgs := make([]serialize.TaskMsg, 64)
	for i := range msgs {
		msgs[i] = serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}
	}
	futs := e.SubmitBatch(msgs)
	if len(futs) != len(msgs) {
		t.Fatalf("futs = %d, want %d", len(futs), len(msgs))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v, %v", i, v, err)
		}
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
}

// TestCancelDropsQueuedWork blocks the single worker, queues a second task,
// cancels it, and verifies it never runs: the future settles with
// ErrCanceled and the worker skips the claimed-but-canceled item.
func TestCancelDropsQueuedWork(t *testing.T) {
	reg := serialize.NewRegistry()
	release := make(chan struct{})
	ran := make(chan int64, 16)
	if err := reg.Register("block", func([]any, map[string]any) (any, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("mark", func(args []any, _ map[string]any) (any, error) {
		ran <- int64(args[0].(int))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	e := New("tp", 1, reg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	blocker := e.Submit(serialize.TaskMsg{ID: 1, App: "block"})
	victim := e.Submit(serialize.TaskMsg{ID: 2, App: "mark", Args: []any{2}})
	survivor := e.Submit(serialize.TaskMsg{ID: 3, App: "mark", Args: []any{3}})

	if !e.Cancel(2) {
		t.Fatal("Cancel(2) = false for a queued task")
	}
	if e.Cancel(99) {
		t.Fatal("Cancel of an unknown id reported success")
	}
	if _, err := victim.Result(); !errors.Is(err, future.ErrCanceled) {
		t.Fatalf("victim error = %v, want ErrCanceled", err)
	}

	close(release)
	if _, err := blocker.Result(); err != nil {
		t.Fatal(err)
	}
	if _, err := survivor.Result(); err != nil {
		t.Fatal(err)
	}
	// Canceling a completed task is a no-op.
	if e.Cancel(3) {
		t.Fatal("Cancel succeeded on a completed task")
	}
	close(ran)
	for id := range ran {
		if id == 2 {
			t.Fatal("canceled task ran")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding = %d after drain, want 0", e.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitBatchAfterShutdown(t *testing.T) {
	e := newPool(t, 1)
	_ = e.Shutdown()
	futs := e.SubmitBatch([]serialize.TaskMsg{{ID: 1, App: "echo"}, {ID: 2, App: "echo"}})
	for _, f := range futs {
		if _, err := f.Result(); !errors.Is(err, executor.ErrShutdown) {
			t.Fatalf("err = %v", err)
		}
	}
}
