// Package threadpool implements the in-process executor corresponding to
// Python's ThreadPoolExecutor, which Parsl wraps for single-node use and
// which serves as the latency floor in Fig. 3: no serialization boundary, no
// network hop, just a queue and worker goroutines.
package threadpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/serialize"
)

// Executor is a fixed-size pool of worker goroutines.
type Executor struct {
	label   string
	workers int
	reg     *serialize.Registry

	queue       chan item
	outstanding atomic.Int64
	wg          sync.WaitGroup

	// pending indexes queued-but-not-started futures by wire id for Cancel.
	// Guarded by its own mutex: workers must be able to delete entries while
	// SubmitBatch holds mu across a blocking send into a full queue.
	pendMu  sync.Mutex
	pending map[int64]*future.Future

	mu      sync.Mutex
	started bool
	closed  bool
}

type item struct {
	msg serialize.TaskMsg
	fut *future.Future
}

// New creates a thread-pool executor with the given worker count (minimum 1)
// executing apps from reg, with the default input-queue depth of 4096.
func New(label string, workers int, reg *serialize.Registry) *Executor {
	return NewWithDepth(label, workers, 4096, reg)
}

// NewWithDepth creates a thread-pool executor with an explicit input-queue
// depth (minimum 1). The depth is the executor's backpressure knob: a full
// queue blocks SubmitBatch, backing work up into the DFK's per-executor
// lane, where tenant-fair (and priority) ordering applies. A deep queue
// maximizes burst absorption; a shallow one (a small multiple of workers)
// keeps queueing decisions upstream where fairness holds, at no throughput
// cost as long as depth covers the submit round trip.
func NewWithDepth(label string, workers, depth int, reg *serialize.Registry) *Executor {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &Executor{
		label:   label,
		workers: workers,
		reg:     reg,
		queue:   make(chan item, depth),
		pending: make(map[int64]*future.Future),
	}
}

// Label implements executor.Executor.
func (e *Executor) Label() string { return e.label }

// Start implements executor.Executor.
func (e *Executor) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return nil
	}
	e.started = true
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.worker(fmt.Sprintf("%s/thread-%d", e.label, i))
	}
	return nil
}

func (e *Executor) worker(id string) {
	defer e.wg.Done()
	for it := range e.queue {
		// Claim the task. Presence in the pending index is the claim token:
		// exactly one of worker and Cancel removes the entry, so a task is
		// either run (worker won) or dropped before starting (Cancel won) —
		// never both, even when Cancel settles the future after this check.
		e.pendMu.Lock()
		_, unclaimed := e.pending[it.msg.ID]
		delete(e.pending, it.msg.ID)
		e.pendMu.Unlock()
		if !unclaimed {
			// Claimed by Cancel, which also adjusted the outstanding count;
			// the dead item just falls out of the queue here.
			continue
		}
		// Deep-copy arguments so an impure app cannot mutate caller state:
		// the same isolation the serialization boundary gives remote
		// executors (§3.2). Tasks from the dispatch pipeline carry the
		// encode-once payload, so the copy is a single decode of cached
		// bytes; direct submissions fall back to the encode+decode round
		// trip.
		var args []any
		var kwargs map[string]any
		var err error
		if p := it.msg.Payload(); p != nil {
			args, kwargs, err = p.DecodeArgs()
		} else {
			args, kwargs, err = serialize.DeepCopyArgs(it.msg.Args, it.msg.Kwargs)
		}
		var res serialize.ResultMsg
		if err != nil {
			res = serialize.ResultMsg{ID: it.msg.ID, WorkerID: id, Err: err.Error()}
		} else {
			msg := it.msg
			msg.Args, msg.Kwargs = args, kwargs
			res = executor.RunKernel(e.reg, msg, id)
		}
		e.outstanding.Add(-1)
		executor.Complete(it.fut, res)
	}
}

// Submit implements executor.Executor as a single-task batch, so the
// state-check/enqueue logic lives in exactly one place.
func (e *Executor) Submit(msg serialize.TaskMsg) *future.Future {
	return e.SubmitBatch([]serialize.TaskMsg{msg})[0]
}

// SubmitBatch implements executor.BatchSubmitter: one state check and one
// outstanding-counter bump for the whole batch, then a straight enqueue —
// the in-process analogue of HTEX's manager-side task batching. The sends
// stay under the mutex so a concurrent Shutdown cannot close the queue
// mid-batch (workers never take the mutex, so a full queue still drains
// and the sends cannot deadlock).
func (e *Executor) SubmitBatch(msgs []serialize.TaskMsg) []*future.Future {
	futs := make([]*future.Future, len(msgs))
	for i, m := range msgs {
		futs[i] = future.NewForTask(m.ID)
	}
	e.mu.Lock()
	if e.closed || !e.started {
		closed := e.closed
		e.mu.Unlock()
		for i := range futs {
			if closed {
				_ = futs[i].SetError(executor.ErrShutdown)
			} else {
				_ = futs[i].SetError(fmt.Errorf("threadpool %s: Submit before Start", e.label))
			}
		}
		return futs
	}
	e.outstanding.Add(int64(len(msgs)))
	e.pendMu.Lock()
	for i, m := range msgs {
		e.pending[m.ID] = futs[i]
	}
	e.pendMu.Unlock()
	for i, m := range msgs {
		e.queue <- item{msg: m, fut: futs[i]}
	}
	e.mu.Unlock()
	return futs
}

// Cancel implements executor.Canceler: a task still waiting in the input
// queue has its future settled with future.ErrCanceled and is dropped by
// the worker that eventually dequeues it. Tasks already started (or already
// done, or unknown) are unaffected and report false. Removing the pending
// entry under the lock is the claim; the future is settled outside it so
// its callbacks cannot deadlock against SubmitBatch.
func (e *Executor) Cancel(wireID int64) bool {
	e.pendMu.Lock()
	fut, ok := e.pending[wireID]
	if ok {
		delete(e.pending, wireID)
	}
	e.pendMu.Unlock()
	if !ok {
		return false
	}
	// The claim succeeded, so no worker will run or complete this task:
	// settle its future and drop it from the load signal immediately —
	// schedulers must not see canceled backlog as outstanding work until a
	// worker happens to reach the dead queue item.
	e.outstanding.Add(-1)
	return fut.Cancel()
}

// Outstanding implements executor.Executor.
func (e *Executor) Outstanding() int { return int(e.outstanding.Load()) }

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Shutdown implements executor.Executor: it drains queued tasks and stops.
func (e *Executor) Shutdown() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()
	close(e.queue)
	if started {
		e.wg.Wait()
	}
	return nil
}
