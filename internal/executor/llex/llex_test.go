package llex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/mq"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// mqDialFake connects a black-hole worker: it registers under the worker
// prefix, receives tasks, and never replies.
func mqDialFake(tr simnet.Transport, addr string) (*mq.Dealer, error) {
	d, err := mq.DialDealer(tr, addr, workerPrefix+"blackhole")
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			if _, err := d.Recv(); err != nil {
				return
			}
		}
	}()
	return d, nil
}

func testRegistry(t *testing.T) *serialize.Registry {
	t.Helper()
	reg := serialize.NewRegistry()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register("echo", func(args []any, _ map[string]any) (any, error) { return args[0], nil }))
	must(reg.Register("fail", func([]any, map[string]any) (any, error) { return nil, errors.New("bad") }))
	must(reg.Register("whoami", func(_ []any, _ map[string]any) (any, error) { return nil, nil }))
	return reg
}

func newLLEX(t *testing.T, workers int, tune func(*Config)) *Executor {
	t.Helper()
	cfg := Config{
		Label:     "llex-test",
		Transport: simnet.NewNetwork(0),
		Registry:  testRegistry(t),
		Workers:   workers,
	}
	if tune != nil {
		tune(&cfg)
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown() })
	waitCond(t, "workers connected", func() bool { return e.relay.WorkerCount() == workers })
	return e
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

func TestRoundTrip(t *testing.T) {
	e := newLLEX(t, 1, nil)
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"low-latency"}}).Result()
	if err != nil || v != "low-latency" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestManyTasksRoundRobin(t *testing.T) {
	e := newLLEX(t, 4, nil)
	const n = 200
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}})
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
}

func TestAppError(t *testing.T) {
	e := newLLEX(t, 1, nil)
	_, err := e.Submit(serialize.TaskMsg{ID: 1, App: "fail"}).Result()
	var re *executor.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestTasksBeforeWorkersAreBuffered(t *testing.T) {
	// Start a bare relay + client without workers; tasks queue until a
	// worker joins.
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	e := New(Config{Label: "llex-late", Transport: tr, Registry: reg, Workers: 0})
	// Workers:0 clamps to 1; instead start executor with 1 worker but kill
	// it first to simulate no capacity.
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	waitCond(t, "initial worker", func() bool { return e.relay.WorkerCount() == 1 })
	e.mu.Lock()
	w := e.workers[0]
	e.mu.Unlock()
	w.Stop()
	waitCond(t, "worker gone", func() bool { return e.relay.WorkerCount() == 0 })

	fut := e.Submit(serialize.TaskMsg{ID: 9, App: "echo", Args: []any{"buffered"}})
	time.Sleep(20 * time.Millisecond)
	if fut.Done() {
		t.Fatal("task completed with no workers")
	}
	if _, err := StartWorker(tr, e.relay.Addr(), "llw-late", reg); err != nil {
		t.Fatal(err)
	}
	v, err := fut.Result()
	if err != nil || v != "buffered" {
		t.Fatalf("buffered task: %v, %v", v, err)
	}
}

func TestWorkerLossNotDetectedButRetryRecovers(t *testing.T) {
	// The relay does no fault detection (§4.3.3); a task sent to a dead
	// worker is recovered by client-side timed retries.
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	e := New(Config{
		Label: "llex-retry", Transport: tr, Registry: reg, Workers: 2,
		RetryInterval: 50 * time.Millisecond, MaxRetries: 10,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	waitCond(t, "workers", func() bool { return e.relay.WorkerCount() == 2 })

	// Kill one worker; round-robin will land some sends on the dead slot
	// until the relay notices the disconnect, but retransmits recover.
	e.mu.Lock()
	victim := e.workers[0]
	e.mu.Unlock()
	victim.Stop()

	var futs []*future.Future
	for i := 0; i < 20; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
}

func TestRetriesExhaustedGivesLostError(t *testing.T) {
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	e := New(Config{
		Label: "llex-lost", Transport: tr, Registry: reg, Workers: 1,
		RetryInterval: 20 * time.Millisecond, MaxRetries: 2,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	waitCond(t, "worker", func() bool { return e.relay.WorkerCount() == 1 })
	// Kill the only worker; nothing can ever execute the task.
	e.mu.Lock()
	w := e.workers[0]
	e.mu.Unlock()
	w.Stop()
	waitCond(t, "worker gone", func() bool { return e.relay.WorkerCount() == 0 })

	// Note: with zero workers the relay buffers, so to exercise the lost
	// path we need the task to be swallowed. Connect a fake worker that
	// accepts tasks and never replies.
	d, err := mqDialFake(tr, e.relay.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	waitCond(t, "fake worker", func() bool { return e.relay.WorkerCount() == 1 })

	_, err = e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{1}}).Result()
	var lost *executor.LostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateResultsIgnored(t *testing.T) {
	// With aggressive retransmission a task may execute twice; the client
	// must surface exactly one result and ignore the duplicate.
	tr := simnet.NewNetwork(0)
	reg := testRegistry(t)
	e := New(Config{
		Label: "llex-dup", Transport: tr, Registry: reg, Workers: 2,
		RetryInterval: 5 * time.Millisecond, MaxRetries: 50,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	waitCond(t, "workers", func() bool { return e.relay.WorkerCount() == 2 })
	reg2 := reg
	_ = reg2
	// A slow-ish task: retransmits fire while the original executes.
	if err := reg.Register("slow", func([]any, map[string]any) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return "once", nil
	}); err != nil {
		t.Fatal(err)
	}
	v, err := e.Submit(serialize.TaskMsg{ID: 77, App: "slow"}).Result()
	if err != nil || v != "once" {
		t.Fatalf("result = %v, %v", v, err)
	}
	time.Sleep(50 * time.Millisecond) // late duplicates must not panic
}

func TestSubmitAfterShutdown(t *testing.T) {
	e := newLLEX(t, 1, nil)
	_ = e.Shutdown()
	if _, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{1}}).Result(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutstandingAccounting(t *testing.T) {
	e := newLLEX(t, 2, nil)
	var futs []*future.Future
	for i := 0; i < 50; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "echo", Args: []any{i}}))
	}
	_ = future.Wait(futs...)
	waitCond(t, "outstanding drains", func() bool { return e.Outstanding() == 0 })
}

func TestLatencyLowerThanHTEXShape(t *testing.T) {
	// Architectural property, not a microbenchmark: an LLEX round trip
	// crosses 4 one-way hops (client→relay→worker and back); HTEX crosses
	// 6 (client→interchange→manager→worker queue and back). With a 5 ms
	// one-way simnet delay LLEX must finish well under HTEX's floor.
	tr := simnet.NewNetwork(10 * time.Millisecond) // 5 ms one-way
	reg := testRegistry(t)
	e := New(Config{Label: "llex-lat", Transport: tr, Registry: reg, Workers: 1})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	waitCond(t, "worker", func() bool { return e.relay.WorkerCount() == 1 })
	start := time.Now()
	if _, err := e.Submit(serialize.TaskMsg{ID: 1, App: "whoami"}).Result(); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 20*time.Millisecond {
		t.Fatalf("impossibly fast: %v (latency not applied?)", rtt)
	}
	if rtt > 60*time.Millisecond {
		t.Fatalf("llex rtt = %v, expected ~4 hops × 5 ms", rtt)
	}
}
