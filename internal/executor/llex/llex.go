// Package llex implements Parsl's Low Latency Executor (§4.3.3). LLEX
// minimizes task round-trip time by sacrificing everything else: the
// interchange is a stateless relay that neither tracks tasks nor detects
// worker loss, workers connect directly to the interchange (one fewer
// message hop each way than HTEX), there is no elasticity (LLEX assumes a
// fixed set of resources), and reliability comes from client-side timed
// retries and optional replication.
package llex

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/mq"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

const (
	frameTask   = "TASK"
	frameResult = "RESULT"
	// workerPrefix distinguishes worker peers from the client peer in the
	// relay's identity space.
	workerPrefix = "llw-"
	clientID     = "llex-client"
)

// Relay is the stateless LLEX interchange: it routes TASK frames to workers
// round-robin and RESULT frames back to the client, holding no task state —
// "the routing logic is completely stateless and opaque to the interchange".
type Relay struct {
	router *mq.Router

	mu      sync.Mutex
	workers []string
	next    int
	client  string
	backlog []mq.Message // tasks arriving before any worker connects

	done chan struct{}
	wg   sync.WaitGroup
}

// StartRelay launches a relay at addr.
func StartRelay(tr simnet.Transport, addr string) (*Relay, error) {
	r, err := mq.NewRouter(tr, addr)
	if err != nil {
		return nil, fmt.Errorf("llex: relay: %w", err)
	}
	rl := &Relay{router: r, done: make(chan struct{})}
	rl.wg.Add(1)
	go rl.loop()
	return rl, nil
}

// Addr returns the relay's bound address.
func (rl *Relay) Addr() string { return rl.router.Addr() }

// WorkerCount returns currently connected workers.
func (rl *Relay) WorkerCount() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.workers)
}

func (rl *Relay) loop() {
	defer rl.wg.Done()
	for {
		select {
		case <-rl.done:
			return
		case ev := <-rl.router.Events():
			rl.mu.Lock()
			if strings.HasPrefix(ev.ID, workerPrefix) {
				if ev.Joined {
					rl.workers = append(rl.workers, ev.ID)
					backlog := rl.backlog
					rl.backlog = nil
					rl.mu.Unlock()
					for _, m := range backlog {
						rl.forward(m)
					}
					continue
				}
				for i, w := range rl.workers {
					if w == ev.ID {
						rl.workers = append(rl.workers[:i], rl.workers[i+1:]...)
						break
					}
				}
			}
			rl.mu.Unlock()
		case del, ok := <-rl.router.Incoming():
			if !ok {
				return
			}
			if len(del.Msg) == 0 {
				continue
			}
			switch string(del.Msg[0]) {
			case frameTask:
				rl.mu.Lock()
				rl.client = del.From
				rl.mu.Unlock()
				rl.forward(del.Msg)
			case frameResult:
				rl.mu.Lock()
				client := rl.client
				rl.mu.Unlock()
				if client != "" {
					_ = rl.router.SendTo(client, del.Msg)
				}
			}
		}
	}
}

// forward sends a task to the next worker round-robin; with no workers it is
// buffered (a pragmatic deviation from pure statelessness that avoids
// dropping tasks during startup; the paper's LLEX assumes workers pre-exist).
func (rl *Relay) forward(m mq.Message) {
	for {
		rl.mu.Lock()
		if len(rl.workers) == 0 {
			rl.backlog = append(rl.backlog, m)
			rl.mu.Unlock()
			return
		}
		w := rl.workers[rl.next%len(rl.workers)]
		rl.next++
		rl.mu.Unlock()
		if err := rl.router.SendTo(w, m); err == nil {
			return
		}
		// Send failure: worker vanished; try the next one.
	}
}

// Close stops the relay.
func (rl *Relay) Close() error {
	select {
	case <-rl.done:
		return nil
	default:
	}
	close(rl.done)
	err := rl.router.Close()
	rl.wg.Wait()
	return err
}

// Worker is a single-threaded LLEX worker connected directly to the relay.
// Single-threaded because LLEX targets sub-millisecond tasks where context
// switching would add jitter.
type Worker struct {
	id     string
	dealer *mq.Dealer
	reg    *serialize.Registry
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// StartWorker connects a worker to the relay at addr.
func StartWorker(tr simnet.Transport, addr, id string, reg *serialize.Registry) (*Worker, error) {
	if !strings.HasPrefix(id, workerPrefix) {
		id = workerPrefix + id
	}
	d, err := mq.DialDealer(tr, addr, id)
	if err != nil {
		return nil, fmt.Errorf("llex: worker %s: %w", id, err)
	}
	w := &Worker{id: id, dealer: d, reg: reg, done: make(chan struct{})}
	w.wg.Add(1)
	go w.loop()
	return w, nil
}

func (w *Worker) loop() {
	defer w.wg.Done()
	for {
		msg, err := w.dealer.Recv()
		if err != nil {
			return
		}
		if len(msg) < 2 || string(msg[0]) != frameTask {
			continue
		}
		task, err := serialize.DecodeTask(msg[1])
		if err != nil {
			continue
		}
		res := executor.RunKernel(w.reg, task, w.id)
		payload, err := serialize.EncodeResult(res)
		if err != nil {
			continue
		}
		_ = w.dealer.Send(mq.Message{[]byte(frameResult), payload})
	}
}

// Stop disconnects the worker.
func (w *Worker) Stop() {
	w.once.Do(func() { close(w.done); _ = w.dealer.Close() })
	w.wg.Wait()
}

// Config assembles an LLEX deployment.
type Config struct {
	Label     string
	Transport simnet.Transport
	Addr      string
	Registry  *serialize.Registry
	// Workers is the fixed worker pool size started by the executor.
	Workers int
	// RetryInterval is the client-side timed-retry period for lost tasks;
	// zero disables retransmission.
	RetryInterval time.Duration
	// MaxRetries bounds retransmissions per task (default 3).
	MaxRetries int
}

// Executor is the LLEX client.
type Executor struct {
	cfg   Config
	relay *Relay

	dealer *mq.Dealer

	mu      sync.Mutex
	pending map[int64]*pendingTask
	workers []*Worker
	started bool
	closed  bool

	outstanding atomic.Int64
	wg          sync.WaitGroup
}

type pendingTask struct {
	fut     *future.Future
	payload []byte
	tries   int
	timer   *time.Timer
}

// New creates an LLEX executor.
func New(cfg Config) *Executor {
	if cfg.Label == "" {
		cfg.Label = "llex"
	}
	if cfg.Transport == nil {
		cfg.Transport = simnet.NewNetwork(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	return &Executor{cfg: cfg, pending: make(map[int64]*pendingTask)}
}

// Label implements executor.Executor.
func (e *Executor) Label() string { return e.cfg.Label }

// Relay exposes the relay (tests).
func (e *Executor) Relay() *Relay { return e.relay }

// Start implements executor.Executor.
func (e *Executor) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil
	}
	e.started = true
	e.mu.Unlock()

	addr := e.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	relay, err := StartRelay(e.cfg.Transport, addr)
	if err != nil {
		return err
	}
	e.relay = relay

	dealer, err := mq.DialDealer(e.cfg.Transport, relay.Addr(), clientID)
	if err != nil {
		_ = relay.Close()
		return fmt.Errorf("llex: client dial: %w", err)
	}
	e.dealer = dealer
	e.wg.Add(1)
	go e.recvLoop()

	for i := 0; i < e.cfg.Workers; i++ {
		w, err := StartWorker(e.cfg.Transport, relay.Addr(), fmt.Sprintf("llw-%d", i), e.cfg.Registry)
		if err != nil {
			return err
		}
		e.mu.Lock()
		e.workers = append(e.workers, w)
		e.mu.Unlock()
	}
	return nil
}

func (e *Executor) recvLoop() {
	defer e.wg.Done()
	for {
		msg, err := e.dealer.Recv()
		if err != nil {
			return
		}
		if len(msg) < 2 || string(msg[0]) != frameResult {
			continue
		}
		res, err := serialize.DecodeResult(msg[1])
		if err != nil {
			continue
		}
		e.mu.Lock()
		pt, ok := e.pending[res.ID]
		delete(e.pending, res.ID)
		var timer *time.Timer
		if ok {
			timer = pt.timer
		}
		e.mu.Unlock()
		if !ok {
			continue // duplicate result from a retransmitted task
		}
		if timer != nil {
			timer.Stop()
		}
		e.outstanding.Add(-1)
		executor.Complete(pt.fut, res)
	}
}

// Submit implements executor.Executor: one hop to the relay, one to the
// worker, and the mirror on the way back.
//
// LLEX deliberately does not implement executor.BatchSubmitter: batching
// adds queueing delay, and this executor exists to minimize per-task
// latency (§4.3.3). The DFK's dispatch lanes degrade to per-task Submit
// calls for it.
func (e *Executor) Submit(msg serialize.TaskMsg) *future.Future {
	fut := future.NewForTask(msg.ID)
	e.mu.Lock()
	if e.closed || !e.started {
		closed := e.closed
		e.mu.Unlock()
		if closed {
			_ = fut.SetError(executor.ErrShutdown)
		} else {
			_ = fut.SetError(errors.New("llex: Submit before Start"))
		}
		return fut
	}
	e.mu.Unlock()

	// One-shot framing on purpose: the stateless relay fans a single
	// client's frames out across workers round-robin, so no worker could
	// follow a persistent client stream — every frame must be
	// self-describing. The encode still reuses the submit-time argument
	// payload when the dispatch pipeline attached one, and the encoded
	// bytes are retained for retransmission, so retries cost no re-encode
	// either.
	payload, err := serialize.EncodeTask(msg)
	if err != nil {
		_ = fut.SetError(err)
		return fut
	}
	pt := &pendingTask{fut: fut, payload: payload}
	e.mu.Lock()
	e.pending[msg.ID] = pt
	e.mu.Unlock()
	e.outstanding.Add(1)

	if err := e.dealer.Send(mq.Message{[]byte(frameTask), payload}); err != nil {
		e.abandon(msg.ID, fmt.Errorf("llex: submit: %w", err))
		return fut
	}
	if e.cfg.RetryInterval > 0 {
		e.armRetry(msg.ID, pt)
	}
	return fut
}

// armRetry schedules the timed retransmission that substitutes for fault
// detection ("reliable execution can be guaranteed with minimal cost, even
// on unreliable nodes, by timed-retries and replication"). pt.timer is
// only touched under e.mu: the rearm in the timer callback races with the
// completion path otherwise.
func (e *Executor) armRetry(id int64, pt *pendingTask) {
	timer := time.AfterFunc(e.cfg.RetryInterval, func() {
		e.mu.Lock()
		cur, ok := e.pending[id]
		if !ok || cur != pt || e.closed {
			e.mu.Unlock()
			return
		}
		pt.tries++
		tries := pt.tries
		e.mu.Unlock()
		if tries > e.cfg.MaxRetries {
			e.abandon(id, &executor.LostError{TaskID: id, Detail: fmt.Sprintf("no result after %d retransmits", e.cfg.MaxRetries)})
			return
		}
		_ = e.dealer.Send(mq.Message{[]byte(frameTask), pt.payload})
		e.armRetry(id, pt)
	})
	e.mu.Lock()
	if cur, ok := e.pending[id]; ok && cur == pt {
		pt.timer = timer
	} else {
		timer.Stop() // completed while we were arming
	}
	e.mu.Unlock()
}

func (e *Executor) abandon(id int64, err error) {
	e.mu.Lock()
	pt, ok := e.pending[id]
	delete(e.pending, id)
	var timer *time.Timer
	if ok {
		timer = pt.timer
	}
	e.mu.Unlock()
	if !ok {
		return
	}
	if timer != nil {
		timer.Stop()
	}
	e.outstanding.Add(-1)
	_ = pt.fut.SetError(err)
}

// Outstanding implements executor.Executor.
func (e *Executor) Outstanding() int { return int(e.outstanding.Load()) }

// Shutdown implements executor.Executor.
func (e *Executor) Shutdown() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started
	workers := e.workers
	e.workers = nil
	pending := e.pending
	e.pending = make(map[int64]*pendingTask)
	e.mu.Unlock()

	if !started {
		return nil
	}
	for _, pt := range pending {
		if pt.timer != nil {
			pt.timer.Stop()
		}
		_ = pt.fut.SetError(executor.ErrShutdown)
	}
	var first error
	if e.dealer != nil {
		if err := e.dealer.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, w := range workers {
		w.Stop()
	}
	if e.relay != nil {
		if err := e.relay.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.wg.Wait()
	return first
}
