// Package baselines implements runnable models of the three frameworks the
// paper compares against (§5): IPyParallel, Dask distributed, and FireWorks.
// Each implements the executor.Executor interface so the Fig. 3 latency and
// throughput experiments drive them exactly like Parsl's own executors.
//
// The models are architectural, not cosmetic: each encodes the documented
// bottleneck that produced the paper's numbers —
//
//   - IPyParallel: a centralized hub with a ~3 ms serialized per-task cost
//     (≈330 tasks/s ceiling) and degradation past ~2048 workers.
//   - Dask distributed: a fast centralized scheduler (~0.38 ms per decision,
//     ≈2617 tasks/s) but one connection per worker into one process, so a
//     hard connection cap near 8192 workers.
//   - FireWorks: every task is a sequence of LaunchPad (MongoDB) operations;
//     with ~80 ms per DB op and three ops per task the ceiling is ~4
//     tasks/s, and the DB connection pool caps workers at ~1024.
//
// Default constants come from Table 2 and Fig. 3; tests assert the shape
// (ordering, saturation), not the absolute values.
package baselines

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baselines/docstore"
	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/serialize"
)

// Calibration constants, from the paper's measurements.
const (
	// IPPSchedulerService yields IPP's ~330 tasks/s hub ceiling.
	IPPSchedulerService = 3 * time.Millisecond
	// IPPRoundTrip reproduces the ~11.7 ms single-task latency (Fig. 3).
	IPPRoundTrip = 8 * time.Millisecond
	// IPPMaxWorkers is where IPP stopped scaling on Blue Waters (Table 2).
	IPPMaxWorkers = 2048

	// DaskSchedulerService yields Dask's ~2617 tasks/s (Table 2).
	DaskSchedulerService = 380 * time.Microsecond
	// DaskRoundTrip reproduces the ~16.2 ms single-task latency (Fig. 3).
	DaskRoundTrip = 15 * time.Millisecond
	// DaskMaxWorkers is the centralized scheduler's connection cap.
	DaskMaxWorkers = 8192

	// FireWorksOpLatency is one LaunchPad (MongoDB) operation.
	FireWorksOpLatency = 80 * time.Millisecond
	// FireWorksOpsPerTask: claim, run-state update, completion update.
	FireWorksOpsPerTask = 3
	// FireWorksMaxWorkers is where the paper observed DB timeouts.
	FireWorksMaxWorkers = 1024
)

// ErrWorkerLimit is returned when a framework cannot accept more workers.
var ErrWorkerLimit = errors.New("baselines: worker limit exceeded")

// ---------------------------------------------------------------------------
// Centralized-scheduler frameworks (IPP, Dask)
// ---------------------------------------------------------------------------

// CentralConfig parameterizes a centralized-scheduler framework model.
type CentralConfig struct {
	Name string
	// RoundTrip is fixed client-visible latency per task (submission
	// marshalling + polling), paid in parallel.
	RoundTrip time.Duration
	// SchedulerService is the serialized per-task scheduler cost — the
	// saturation bottleneck.
	SchedulerService time.Duration
	// MaxWorkers caps registered workers.
	MaxWorkers int
	// Workers is how many workers Start connects.
	Workers  int
	Registry *serialize.Registry
}

// Central models IPyParallel's hub and Dask distributed's scheduler: all
// tasks funnel through one service loop before reaching workers.
type Central struct {
	cfg CentralConfig

	queue   chan centralItem
	idle    chan struct{} // tokens: one per idle worker
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	workers atomic.Int64

	outstanding atomic.Int64
	started     atomic.Bool
}

type centralItem struct {
	msg serialize.TaskMsg
	fut *future.Future
}

// NewIPP builds an IPyParallel model with n workers.
func NewIPP(n int, reg *serialize.Registry) *Central {
	return NewCentral(CentralConfig{
		Name: "ipp", RoundTrip: IPPRoundTrip, SchedulerService: IPPSchedulerService,
		MaxWorkers: IPPMaxWorkers, Workers: n, Registry: reg,
	})
}

// NewDask builds a Dask distributed model with n workers.
func NewDask(n int, reg *serialize.Registry) *Central {
	return NewCentral(CentralConfig{
		Name: "dask", RoundTrip: DaskRoundTrip, SchedulerService: DaskSchedulerService,
		MaxWorkers: DaskMaxWorkers, Workers: n, Registry: reg,
	})
}

// NewCentral builds a custom centralized framework model.
func NewCentral(cfg CentralConfig) *Central {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Central{
		cfg:   cfg,
		queue: make(chan centralItem, 65536),
		idle:  make(chan struct{}, cfg.Workers),
		done:  make(chan struct{}),
	}
}

// Label implements executor.Executor.
func (c *Central) Label() string { return c.cfg.Name }

// Start implements executor.Executor: connect workers (respecting the
// framework's connection cap) and run the scheduler loop.
func (c *Central) Start() error {
	if c.started.Swap(true) {
		return nil
	}
	if err := c.AddWorkers(c.cfg.Workers); err != nil {
		return err
	}
	c.wg.Add(1)
	go c.schedulerLoop()
	return nil
}

// AddWorkers connects n more workers, failing at the connection cap — the
// Table 2 "maximum number of workers" probe.
func (c *Central) AddWorkers(n int) error {
	for i := 0; i < n; i++ {
		if c.cfg.MaxWorkers > 0 && c.workers.Load() >= int64(c.cfg.MaxWorkers) {
			return fmt.Errorf("%w: %s at %d", ErrWorkerLimit, c.cfg.Name, c.workers.Load())
		}
		c.workers.Add(1)
		select {
		case c.idle <- struct{}{}:
		default:
			// idle channel sized for initial workers; grow via queue slack.
		}
	}
	return nil
}

// Workers reports connected workers.
func (c *Central) Workers() int { return int(c.workers.Load()) }

// schedulerLoop serializes the per-task scheduling decision.
func (c *Central) schedulerLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case it := <-c.queue:
			// The centralized decision: everything pays this serially.
			if c.cfg.SchedulerService > 0 {
				time.Sleep(c.cfg.SchedulerService)
			}
			select {
			case <-c.idle: // a worker is free
			case <-c.done:
				return
			}
			go func(it centralItem) {
				res := executor.RunKernel(c.cfg.Registry, it.msg, c.cfg.Name+"-worker")
				c.idle <- struct{}{}
				// Return-path latency is paid in parallel.
				half := c.cfg.RoundTrip / 2
				if half > 0 {
					time.AfterFunc(half, func() {
						c.outstanding.Add(-1)
						executor.Complete(it.fut, res)
					})
					return
				}
				c.outstanding.Add(-1)
				executor.Complete(it.fut, res)
			}(it)
		}
	}
}

// Submit implements executor.Executor.
func (c *Central) Submit(msg serialize.TaskMsg) *future.Future {
	fut := future.NewForTask(msg.ID)
	if !c.started.Load() {
		_ = fut.SetError(fmt.Errorf("%s: Submit before Start", c.cfg.Name))
		return fut
	}
	select {
	case <-c.done:
		_ = fut.SetError(executor.ErrShutdown)
		return fut
	default:
	}
	c.outstanding.Add(1)
	half := c.cfg.RoundTrip / 2
	enqueue := func() {
		select {
		case c.queue <- centralItem{msg: msg, fut: fut}:
		case <-c.done:
			c.outstanding.Add(-1)
			_ = fut.SetError(executor.ErrShutdown)
		}
	}
	if half > 0 {
		time.AfterFunc(half, enqueue)
	} else {
		enqueue()
	}
	return fut
}

// Outstanding implements executor.Executor.
func (c *Central) Outstanding() int { return int(c.outstanding.Load()) }

// Shutdown implements executor.Executor.
func (c *Central) Shutdown() error {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// FireWorks
// ---------------------------------------------------------------------------

// FireWorksConfig parameterizes the FireWorks model.
type FireWorksConfig struct {
	Workers int
	// OpLatency overrides the per-DB-op latency (tests shrink it).
	OpLatency time.Duration
	// PollInterval is the FireWorker rocket-launch poll period.
	PollInterval time.Duration
	Registry     *serialize.Registry
}

// FireWorks models the LaunchPad architecture: tasks are documents; workers
// poll the document store, claim with FindOneAndUpdate, execute, and write
// results back. All coordination costs DB operations.
type FireWorks struct {
	cfg   FireWorksConfig
	store *docstore.Store

	mu      sync.Mutex
	pending map[int64]*future.Future

	outstanding atomic.Int64
	done        chan struct{}
	once        sync.Once
	wg          sync.WaitGroup
	started     atomic.Bool
}

// NewFireWorks builds a FireWorks model with n workers.
func NewFireWorks(n int, reg *serialize.Registry) *FireWorks {
	return NewFireWorksConfig(FireWorksConfig{Workers: n, Registry: reg})
}

// NewFireWorksConfig builds a tunable FireWorks model.
func NewFireWorksConfig(cfg FireWorksConfig) *FireWorks {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OpLatency <= 0 {
		cfg.OpLatency = FireWorksOpLatency
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = cfg.OpLatency / 4
	}
	st := docstore.New(cfg.OpLatency)
	st.MaxConnections = FireWorksMaxWorkers
	return &FireWorks{
		cfg:     cfg,
		store:   st,
		pending: make(map[int64]*future.Future),
		done:    make(chan struct{}),
	}
}

// Label implements executor.Executor.
func (f *FireWorks) Label() string { return "fireworks" }

// Store exposes the LaunchPad for assertions.
func (f *FireWorks) Store() *docstore.Store { return f.store }

// Start implements executor.Executor: connect FireWorkers to the LaunchPad.
func (f *FireWorks) Start() error {
	if f.started.Swap(true) {
		return nil
	}
	for i := 0; i < f.cfg.Workers; i++ {
		if err := f.store.Connect(); err != nil {
			return fmt.Errorf("baselines: fireworks worker %d: %w", i, err)
		}
		f.wg.Add(1)
		go f.fireworker()
	}
	return nil
}

// fireworker is the rocket-launch loop: poll, claim, run, report.
func (f *FireWorks) fireworker() {
	defer f.wg.Done()
	defer f.store.Release()
	for {
		select {
		case <-f.done:
			return
		default:
		}
		// DB op 1: claim a waiting firework.
		doc, err := f.store.FindOneAndUpdate("fireworks",
			docstore.Doc{"state": "WAITING"},
			docstore.Doc{"state": "RUNNING"})
		if err != nil {
			select {
			case <-f.done:
				return
			case <-time.After(f.cfg.PollInterval):
			}
			continue
		}
		id := doc["_id"].(int64)
		msg := doc["task"].(serialize.TaskMsg)
		res := executor.RunKernel(f.cfg.Registry, msg, "fireworker")
		// DB op 2: record completion state.
		_ = f.store.UpdateByID("fireworks", id, docstore.Doc{"state": "COMPLETED"})
		// DB op 3: store the result payload.
		_ = f.store.UpdateByID("fireworks", id, docstore.Doc{"result": res})

		f.mu.Lock()
		fut, ok := f.pending[msg.ID]
		delete(f.pending, msg.ID)
		f.mu.Unlock()
		if ok {
			f.outstanding.Add(-1)
			executor.Complete(fut, res)
		}
	}
}

// Submit implements executor.Executor: one DB insert per task.
func (f *FireWorks) Submit(msg serialize.TaskMsg) *future.Future {
	fut := future.NewForTask(msg.ID)
	if !f.started.Load() {
		_ = fut.SetError(errors.New("fireworks: Submit before Start"))
		return fut
	}
	select {
	case <-f.done:
		_ = fut.SetError(executor.ErrShutdown)
		return fut
	default:
	}
	f.mu.Lock()
	f.pending[msg.ID] = fut
	f.mu.Unlock()
	f.outstanding.Add(1)
	f.store.Insert("fireworks", docstore.Doc{"state": "WAITING", "task": msg})
	return fut
}

// Outstanding implements executor.Executor.
func (f *FireWorks) Outstanding() int { return int(f.outstanding.Load()) }

// Shutdown implements executor.Executor.
func (f *FireWorks) Shutdown() error {
	f.once.Do(func() { close(f.done) })
	f.wg.Wait()
	return nil
}
