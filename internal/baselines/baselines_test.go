package baselines

import (
	"errors"
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/serialize"
)

func testRegistry(t *testing.T) *serialize.Registry {
	t.Helper()
	reg := serialize.NewRegistry()
	if err := reg.Register("noop", func([]any, map[string]any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("echo", func(args []any, _ map[string]any) (any, error) { return args[0], nil }); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestIPPRoundTrip(t *testing.T) {
	e := NewIPP(2, testRegistry(t))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	start := time.Now()
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"hub"}}).Result()
	if err != nil || v != "hub" {
		t.Fatalf("result = %v, %v", v, err)
	}
	if rtt := time.Since(start); rtt < IPPRoundTrip {
		t.Fatalf("rtt %v below modeled floor %v", rtt, IPPRoundTrip)
	}
}

func TestDaskFasterSchedulerSlowerClient(t *testing.T) {
	reg := testRegistry(t)
	dask := NewDask(4, reg)
	if err := dask.Start(); err != nil {
		t.Fatal(err)
	}
	defer dask.Shutdown()
	// Sequential latency ≈ RoundTrip (Fig. 3: Dask 16.19 ms > IPP 11.72).
	start := time.Now()
	if _, err := dask.Submit(serialize.TaskMsg{ID: 1, App: "noop"}).Result(); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < DaskRoundTrip {
		t.Fatalf("dask rtt %v below floor", rtt)
	}
}

func TestCentralThroughputBoundedByScheduler(t *testing.T) {
	reg := testRegistry(t)
	// A central scheduler with 5 ms service: 100 concurrent no-ops must
	// take ≥ 500 ms regardless of worker count — the saturation knee.
	e := NewCentral(CentralConfig{
		Name: "central-test", SchedulerService: 5 * time.Millisecond,
		Workers: 64, Registry: reg,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	start := time.Now()
	var futs []*future.Future
	for i := 0; i < 100; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("central bottleneck not modeled: %v", elapsed)
	}
}

func TestIPPWorkerLimit(t *testing.T) {
	reg := testRegistry(t)
	e := NewCentral(CentralConfig{
		Name: "ipp", RoundTrip: 0, SchedulerService: 0,
		MaxWorkers: 4, Workers: 4, Registry: reg,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if err := e.AddWorkers(1); !errors.Is(err, ErrWorkerLimit) {
		t.Fatalf("err = %v", err)
	}
	if e.Workers() != 4 {
		t.Fatalf("workers = %d", e.Workers())
	}
}

func TestDaskConnectionCapAt8192(t *testing.T) {
	reg := testRegistry(t)
	e := NewCentral(CentralConfig{
		Name: "dask", MaxWorkers: DaskMaxWorkers, Workers: 1, Registry: reg,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if err := e.AddWorkers(DaskMaxWorkers - 1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddWorkers(1); !errors.Is(err, ErrWorkerLimit) {
		t.Fatalf("err = %v", err)
	}
}

func TestFireWorksExecutesThroughLaunchPad(t *testing.T) {
	reg := testRegistry(t)
	e := NewFireWorksConfig(FireWorksConfig{
		Workers: 2, OpLatency: time.Millisecond, Registry: reg,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	v, err := e.Submit(serialize.TaskMsg{ID: 1, App: "echo", Args: []any{"rocket"}}).Result()
	if err != nil || v != "rocket" {
		t.Fatalf("result = %v, %v", v, err)
	}
	// The task's lifecycle cost DB operations: insert + claim + 2 updates,
	// plus polling.
	if ops := e.Store().Ops(); ops < 4 {
		t.Fatalf("db ops = %d, want >= 4", ops)
	}
	if n := e.Store().Count("fireworks", map[string]any{"state": "COMPLETED"}); n != 1 {
		t.Fatalf("completed docs = %d", n)
	}
}

func TestFireWorksThroughputDBBound(t *testing.T) {
	reg := testRegistry(t)
	// 10 ms per op × 3 ops/task ⇒ ≤ ~33 tasks/s no matter how many workers.
	e := NewFireWorksConfig(FireWorksConfig{
		Workers: 16, OpLatency: 10 * time.Millisecond, Registry: reg,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	const n = 10
	start := time.Now()
	var futs []*future.Future
	for i := 0; i < n; i++ {
		futs = append(futs, e.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 10 tasks × 3 serialized ops × 10 ms = 300 ms minimum (plus inserts).
	if elapsed < 300*time.Millisecond {
		t.Fatalf("fireworks too fast (%v): DB bottleneck not modeled", elapsed)
	}
}

func TestOrderingMatchesFig3(t *testing.T) {
	// Single-task latency ordering from the paper: IPP < Dask, and both
	// well above a zero-overhead floor.
	reg := testRegistry(t)
	measure := func(e interface {
		Start() error
		Submit(serialize.TaskMsg) *future.Future
		Shutdown() error
	}) time.Duration {
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		defer e.Shutdown()
		// Warm up once, then measure 5 sequential tasks.
		_, _ = e.Submit(serialize.TaskMsg{ID: 0, App: "noop"}).Result()
		start := time.Now()
		for i := 1; i <= 5; i++ {
			if _, err := e.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}).Result(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / 5
	}
	ipp := measure(NewIPP(1, reg))
	dask := measure(NewDask(1, reg))
	if !(ipp < dask) {
		t.Fatalf("latency ordering violated: ipp=%v dask=%v", ipp, dask)
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	reg := testRegistry(t)
	if _, err := NewIPP(1, reg).Submit(serialize.TaskMsg{ID: 1, App: "noop"}).Result(); err == nil {
		t.Fatal("submit before start succeeded")
	}
	if _, err := NewFireWorks(1, reg).Submit(serialize.TaskMsg{ID: 1, App: "noop"}).Result(); err == nil {
		t.Fatal("fireworks submit before start succeeded")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	reg := testRegistry(t)
	e := NewIPP(1, reg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	f := NewFireWorksConfig(FireWorksConfig{Workers: 1, OpLatency: time.Millisecond, Registry: reg})
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
