// Package docstore is a MongoDB-like document store: the substrate behind
// the FireWorks baseline (§5: FireWorks "uses a centralized MongoDB-based
// LaunchPad to store tasks"). It models the two properties that made
// FireWorks the slowest framework in the paper's evaluation: per-operation
// latency (client⇄DB round trip plus server work) and a store-wide lock that
// serializes writers, so throughput collapses as workers contend.
package docstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Doc is one stored document.
type Doc map[string]any

// ErrTooManyConnections mirrors MongoDB's connection exhaustion, which is
// what capped FireWorks at ~1024 workers on Blue Waters.
var ErrTooManyConnections = errors.New("docstore: too many connections")

// ErrNotFound is returned by queries that match nothing.
var ErrNotFound = errors.New("docstore: no matching document")

// Store is the database.
type Store struct {
	// OpLatency is charged, under the store lock, to every operation.
	OpLatency time.Duration
	// MaxConnections caps concurrent clients (0 = unlimited).
	MaxConnections int

	mu     sync.Mutex
	colls  map[string][]Doc
	nextID int64
	conns  atomic.Int64
	ops    atomic.Int64
}

// New creates an empty store with the given per-op latency.
func New(opLatency time.Duration) *Store {
	return &Store{OpLatency: opLatency, colls: make(map[string][]Doc)}
}

// Connect acquires a client connection; Release returns it.
func (s *Store) Connect() error {
	if s.MaxConnections > 0 && s.conns.Add(1) > int64(s.MaxConnections) {
		s.conns.Add(-1)
		return fmt.Errorf("%w (limit %d)", ErrTooManyConnections, s.MaxConnections)
	}
	if s.MaxConnections == 0 {
		s.conns.Add(1)
	}
	return nil
}

// Release returns a connection to the pool.
func (s *Store) Release() { s.conns.Add(-1) }

// Connections reports live connections.
func (s *Store) Connections() int { return int(s.conns.Load()) }

// Ops reports total operations served.
func (s *Store) Ops() int64 { return s.ops.Load() }

// charge simulates the DB round trip while holding the store lock — the
// contention model.
func (s *Store) charge() {
	s.ops.Add(1)
	if s.OpLatency > 0 {
		time.Sleep(s.OpLatency)
	}
}

// Insert adds a document and returns its assigned "_id".
func (s *Store) Insert(coll string, d Doc) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.charge()
	s.nextID++
	cp := Doc{"_id": s.nextID}
	for k, v := range d {
		cp[k] = v
	}
	s.colls[coll] = append(s.colls[coll], cp)
	return s.nextID
}

// match reports whether doc satisfies an equality filter.
func match(d Doc, filter Doc) bool {
	for k, v := range filter {
		if d[k] != v {
			return false
		}
	}
	return true
}

// FindOneAndUpdate atomically finds the first document matching filter and
// applies set — the claim primitive FireWorks workers use to check out a
// firework from the LaunchPad.
func (s *Store) FindOneAndUpdate(coll string, filter, set Doc) (Doc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.charge()
	for _, d := range s.colls[coll] {
		if match(d, filter) {
			for k, v := range set {
				d[k] = v
			}
			out := Doc{}
			for k, v := range d {
				out[k] = v
			}
			return out, nil
		}
	}
	return nil, ErrNotFound
}

// UpdateByID applies set to the document with the given "_id".
func (s *Store) UpdateByID(coll string, id int64, set Doc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.charge()
	for _, d := range s.colls[coll] {
		if d["_id"] == id {
			for k, v := range set {
				d[k] = v
			}
			return nil
		}
	}
	return ErrNotFound
}

// Count returns how many documents match filter.
func (s *Store) Count(coll string, filter Doc) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.charge()
	n := 0
	for _, d := range s.colls[coll] {
		if match(d, filter) {
			n++
		}
	}
	return n
}
