package docstore

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestInsertAndCount(t *testing.T) {
	s := New(0)
	id1 := s.Insert("fw", Doc{"state": "WAITING"})
	id2 := s.Insert("fw", Doc{"state": "WAITING"})
	if id1 == id2 {
		t.Fatal("ids collide")
	}
	if n := s.Count("fw", Doc{"state": "WAITING"}); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if n := s.Count("fw", Doc{"state": "DONE"}); n != 0 {
		t.Fatalf("count = %d", n)
	}
}

func TestFindOneAndUpdateClaims(t *testing.T) {
	s := New(0)
	s.Insert("fw", Doc{"state": "WAITING", "payload": "a"})
	doc, err := s.FindOneAndUpdate("fw", Doc{"state": "WAITING"}, Doc{"state": "RUNNING"})
	if err != nil {
		t.Fatal(err)
	}
	if doc["payload"] != "a" || doc["state"] != "RUNNING" {
		t.Fatalf("doc = %v", doc)
	}
	// Claimed exactly once.
	if _, err := s.FindOneAndUpdate("fw", Doc{"state": "WAITING"}, Doc{"state": "RUNNING"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second claim: %v", err)
	}
}

func TestConcurrentClaimsAreExclusive(t *testing.T) {
	s := New(0)
	const n = 50
	for i := 0; i < n; i++ {
		s.Insert("fw", Doc{"state": "WAITING"})
	}
	var claimed sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				doc, err := s.FindOneAndUpdate("fw", Doc{"state": "WAITING"}, Doc{"state": "RUNNING"})
				if err != nil {
					return
				}
				if _, dup := claimed.LoadOrStore(doc["_id"], true); dup {
					t.Errorf("document %v claimed twice", doc["_id"])
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	claimed.Range(func(any, any) bool { total++; return true })
	if total != n {
		t.Fatalf("claimed %d docs, want %d", total, n)
	}
}

func TestUpdateByID(t *testing.T) {
	s := New(0)
	id := s.Insert("fw", Doc{"state": "WAITING"})
	if err := s.UpdateByID("fw", id, Doc{"state": "COMPLETED"}); err != nil {
		t.Fatal(err)
	}
	if n := s.Count("fw", Doc{"state": "COMPLETED"}); n != 1 {
		t.Fatalf("count = %d", n)
	}
	if err := s.UpdateByID("fw", 999, Doc{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpLatencySerializesUnderLock(t *testing.T) {
	s := New(10 * time.Millisecond)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Insert("fw", Doc{})
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("5 ops in %v: lock contention not modeled", elapsed)
	}
	if s.Ops() != 5 {
		t.Fatalf("ops = %d", s.Ops())
	}
}

func TestConnectionLimit(t *testing.T) {
	s := New(0)
	s.MaxConnections = 2
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(); !errors.Is(err, ErrTooManyConnections) {
		t.Fatalf("err = %v", err)
	}
	s.Release()
	if err := s.Connect(); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if s.Connections() != 2 {
		t.Fatalf("connections = %d", s.Connections())
	}
}
