package ftp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func newServer(t *testing.T) (*Server, string) {
	t.Helper()
	root := t.TempDir()
	s, err := NewServer("127.0.0.1:0", root)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, root
}

func TestRetrRoundTrip(t *testing.T) {
	s, root := newServer(t)
	want := []byte("sequence data: ACGTACGT")
	if err := os.WriteFile(filepath.Join(root, "reads.fq"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	got, err := c.Retr("reads.fq")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestRetrMissingFile(t *testing.T) {
	s, _ := newServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if _, err := c.Retr("absent.bin"); err == nil {
		t.Fatal("missing file retrieved")
	}
	// Connection still usable after a failed RETR.
	if err := os.WriteFile(filepath.Join(t.TempDir(), "x"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStorThenRetr(t *testing.T) {
	s, root := newServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	payload := bytes.Repeat([]byte("output-block "), 1000)
	if err := c.Stor("results/out.dat", payload); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(root, "results", "out.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, payload) {
		t.Fatal("stored bytes differ")
	}
	got, err := c.Retr("results/out.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("retr after stor: %v", err)
	}
}

func TestSize(t *testing.T) {
	s, root := newServer(t)
	if err := os.WriteFile(filepath.Join(root, "f"), make([]byte, 1234), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	n, err := c.Size("f")
	if err != nil || n != 1234 {
		t.Fatalf("size = %d, %v", n, err)
	}
	if _, err := c.Size("ghost"); err == nil {
		t.Fatal("size of missing file succeeded")
	}
}

func TestPathEscapeRejected(t *testing.T) {
	s, root := newServer(t)
	// Plant a file outside the root.
	outside := filepath.Join(filepath.Dir(root), "secret.txt")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	got, err := c.Retr("../secret.txt")
	if err == nil && strings.Contains(string(got), "secret") {
		t.Fatal("path traversal leaked a file outside the root")
	}
}

func TestLargeTransfer(t *testing.T) {
	s, root := newServer(t)
	want := make([]byte, 4<<20) // 4 MiB
	for i := range want {
		want[i] = byte(i * 31)
	}
	if err := os.WriteFile(filepath.Join(root, "big.bin"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	got, err := c.Retr("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("large payload corrupted")
	}
}

func TestMultipleTransfersOneSession(t *testing.T) {
	s, root := newServer(t)
	for i := 0; i < 5; i++ {
		name := filepath.Join(root, "f"+string(rune('0'+i)))
		if err := os.WriteFile(name, []byte{byte(i)}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	for i := 0; i < 5; i++ {
		got, err := c.Retr("f" + string(rune('0'+i)))
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("transfer %d: %v %v", i, got, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, root := newServer(t)
	if err := os.WriteFile(filepath.Join(root, "shared"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Quit()
			got, err := c.Retr("shared")
			if err != nil || string(got) != "data" {
				t.Errorf("retr: %q %v", got, err)
			}
		}()
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := newServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(s.Addr()); err == nil {
		t.Fatal("dial to closed server succeeded")
	}
}
