// Package ftp implements a minimal FTP (RFC 959) server and client — enough
// of the protocol (USER/PASS, TYPE I, PASV, RETR, STOR, SIZE, QUIT) for the
// Parsl data manager's ftp:// staging scheme (§4.5). The paper's deployments
// pull inputs from anonymous FTP mirrors; running the protocol for real over
// loopback keeps the staging code path honest instead of stubbing it.
package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server is an anonymous read/write FTP server rooted at a directory.
type Server struct {
	root string
	l    net.Listener
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer starts an FTP server on addr ("127.0.0.1:0" for an ephemeral
// port) serving files under root.
func NewServer(addr, root string) (*Server, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ftp: listen: %w", err)
	}
	s := &Server{root: abs, l: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the control-connection address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// session holds per-control-connection state.
type session struct {
	srv      *Server
	ctrl     net.Conn
	r        *bufio.Reader
	user     string
	loggedIn bool
	dataL    net.Listener // PASV listener awaiting one data connection
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	sess := &session{srv: s, ctrl: conn, r: bufio.NewReader(conn)}
	sess.reply(220, "parsl-sim FTP ready")
	for {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		line, err := sess.r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			verb, arg = line[:i], line[i+1:]
		}
		if !sess.dispatch(strings.ToUpper(verb), arg) {
			return
		}
	}
}

func (ss *session) reply(code int, msg string) {
	fmt.Fprintf(ss.ctrl, "%d %s\r\n", code, msg)
}

// dispatch handles one command; returning false ends the session.
func (ss *session) dispatch(verb, arg string) bool {
	switch verb {
	case "USER":
		ss.user = arg
		ss.reply(331, "password required")
	case "PASS":
		if ss.user == "" {
			ss.reply(503, "USER first")
			return true
		}
		ss.loggedIn = true
		ss.reply(230, "logged in")
	case "TYPE":
		ss.reply(200, "type set")
	case "SYST":
		ss.reply(215, "UNIX Type: L8")
	case "NOOP":
		ss.reply(200, "ok")
	case "PASV":
		ss.cmdPasv()
	case "RETR":
		ss.cmdRetr(arg)
	case "STOR":
		ss.cmdStor(arg)
	case "SIZE":
		ss.cmdSize(arg)
	case "QUIT":
		ss.reply(221, "bye")
		return false
	default:
		ss.reply(502, "command not implemented")
	}
	return true
}

// resolve maps an FTP path into the server root, refusing escapes.
func (ss *session) resolve(p string) (string, error) {
	clean := path.Clean("/" + p)
	full := filepath.Join(ss.srv.root, filepath.FromSlash(clean))
	if !strings.HasPrefix(full, ss.srv.root) {
		return "", errors.New("path escapes root")
	}
	return full, nil
}

func (ss *session) cmdPasv() {
	if !ss.loggedIn {
		ss.reply(530, "not logged in")
		return
	}
	if ss.dataL != nil {
		_ = ss.dataL.Close()
	}
	host, _, err := net.SplitHostPort(ss.ctrl.LocalAddr().String())
	if err != nil {
		ss.reply(425, "cannot open data port")
		return
	}
	l, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		ss.reply(425, "cannot open data port")
		return
	}
	ss.dataL = l
	_, portStr, _ := net.SplitHostPort(l.Addr().String())
	port, _ := strconv.Atoi(portStr)
	hostParts := strings.ReplaceAll(host, ".", ",")
	ss.reply(227, fmt.Sprintf("Entering Passive Mode (%s,%d,%d)", hostParts, port/256, port%256))
}

func (ss *session) openData() (net.Conn, error) {
	if ss.dataL == nil {
		return nil, errors.New("no PASV listener")
	}
	defer func() { _ = ss.dataL.Close(); ss.dataL = nil }()
	type result struct {
		c   net.Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := ss.dataL.Accept()
		ch <- result{c, err}
	}()
	select {
	case r := <-ch:
		return r.c, r.err
	case <-time.After(10 * time.Second):
		return nil, errors.New("data connection timeout")
	}
}

func (ss *session) cmdRetr(arg string) {
	if !ss.loggedIn {
		ss.reply(530, "not logged in")
		return
	}
	full, err := ss.resolve(arg)
	if err != nil {
		ss.reply(550, err.Error())
		return
	}
	f, err := os.Open(full)
	if err != nil {
		ss.reply(550, "file unavailable")
		return
	}
	defer f.Close()
	ss.reply(150, "opening data connection")
	data, err := ss.openData()
	if err != nil {
		ss.reply(425, "cannot open data connection")
		return
	}
	_, cErr := io.Copy(data, f)
	_ = data.Close()
	if cErr != nil {
		ss.reply(426, "transfer aborted")
		return
	}
	ss.reply(226, "transfer complete")
}

func (ss *session) cmdStor(arg string) {
	if !ss.loggedIn {
		ss.reply(530, "not logged in")
		return
	}
	full, err := ss.resolve(arg)
	if err != nil {
		ss.reply(550, err.Error())
		return
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		ss.reply(550, "cannot create directory")
		return
	}
	f, err := os.Create(full)
	if err != nil {
		ss.reply(550, "cannot create file")
		return
	}
	ss.reply(150, "opening data connection")
	data, err := ss.openData()
	if err != nil {
		_ = f.Close()
		ss.reply(425, "cannot open data connection")
		return
	}
	_, cErr := io.Copy(f, data)
	_ = data.Close()
	if err := f.Close(); err != nil || cErr != nil {
		ss.reply(426, "transfer aborted")
		return
	}
	ss.reply(226, "transfer complete")
}

func (ss *session) cmdSize(arg string) {
	if !ss.loggedIn {
		ss.reply(530, "not logged in")
		return
	}
	full, err := ss.resolve(arg)
	if err != nil {
		ss.reply(550, err.Error())
		return
	}
	fi, err := os.Stat(full)
	if err != nil || fi.IsDir() {
		ss.reply(550, "file unavailable")
		return
	}
	ss.reply(213, strconv.FormatInt(fi.Size(), 10))
}

// Client is a minimal FTP client for the data manager.
type Client struct {
	ctrl net.Conn
	r    *bufio.Reader
}

// Dial connects and logs in anonymously.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ftp: dial: %w", err)
	}
	c := &Client{ctrl: conn, r: bufio.NewReader(conn)}
	if _, _, err := c.readReply(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := c.expect("USER anonymous", 331); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := c.expect("PASS parsl@", 230); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := c.expect("TYPE I", 200); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) readReply() (int, string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, "", fmt.Errorf("ftp: read reply: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 4 {
		return 0, "", fmt.Errorf("ftp: malformed reply %q", line)
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil {
		return 0, "", fmt.Errorf("ftp: malformed code %q", line)
	}
	return code, line[4:], nil
}

func (c *Client) cmd(line string) (int, string, error) {
	if _, err := fmt.Fprintf(c.ctrl, "%s\r\n", line); err != nil {
		return 0, "", err
	}
	return c.readReply()
}

func (c *Client) expect(line string, want int) error {
	code, msg, err := c.cmd(line)
	if err != nil {
		return err
	}
	if code != want {
		return fmt.Errorf("ftp: %s: %d %s", strings.Fields(line)[0], code, msg)
	}
	return nil
}

// pasv negotiates a passive data connection.
func (c *Client) pasv() (net.Conn, error) {
	code, msg, err := c.cmd("PASV")
	if err != nil {
		return nil, err
	}
	if code != 227 {
		return nil, fmt.Errorf("ftp: PASV: %d %s", code, msg)
	}
	open := strings.IndexByte(msg, '(')
	closeP := strings.IndexByte(msg, ')')
	if open < 0 || closeP <= open {
		return nil, fmt.Errorf("ftp: malformed PASV reply %q", msg)
	}
	parts := strings.Split(msg[open+1:closeP], ",")
	if len(parts) != 6 {
		return nil, fmt.Errorf("ftp: malformed PASV host %q", msg)
	}
	host := strings.Join(parts[:4], ".")
	hi, err1 := strconv.Atoi(parts[4])
	lo, err2 := strconv.Atoi(parts[5])
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("ftp: malformed PASV port %q", msg)
	}
	return net.DialTimeout("tcp", net.JoinHostPort(host, strconv.Itoa(hi*256+lo)), 10*time.Second)
}

// Retr downloads a file.
func (c *Client) Retr(remotePath string) ([]byte, error) {
	data, err := c.pasv()
	if err != nil {
		return nil, err
	}
	code, msg, err := c.cmd("RETR " + remotePath)
	if err != nil {
		_ = data.Close()
		return nil, err
	}
	if code != 150 {
		_ = data.Close()
		return nil, fmt.Errorf("ftp: RETR: %d %s", code, msg)
	}
	buf, rErr := io.ReadAll(data)
	_ = data.Close()
	code, msg, err = c.readReply()
	if err != nil {
		return nil, err
	}
	if code != 226 || rErr != nil {
		return nil, fmt.Errorf("ftp: RETR incomplete: %d %s", code, msg)
	}
	return buf, nil
}

// Stor uploads a file.
func (c *Client) Stor(remotePath string, content []byte) error {
	data, err := c.pasv()
	if err != nil {
		return err
	}
	code, msg, err := c.cmd("STOR " + remotePath)
	if err != nil {
		_ = data.Close()
		return err
	}
	if code != 150 {
		_ = data.Close()
		return fmt.Errorf("ftp: STOR: %d %s", code, msg)
	}
	_, wErr := data.Write(content)
	_ = data.Close()
	code, msg, err = c.readReply()
	if err != nil {
		return err
	}
	if code != 226 || wErr != nil {
		return fmt.Errorf("ftp: STOR incomplete: %d %s", code, msg)
	}
	return nil
}

// Size queries a remote file's size.
func (c *Client) Size(remotePath string) (int64, error) {
	code, msg, err := c.cmd("SIZE " + remotePath)
	if err != nil {
		return 0, err
	}
	if code != 213 {
		return 0, fmt.Errorf("ftp: SIZE: %d %s", code, msg)
	}
	return strconv.ParseInt(msg, 10, 64)
}

// Quit logs out and closes the control connection.
func (c *Client) Quit() error {
	_, _, _ = c.cmd("QUIT")
	return c.ctrl.Close()
}
