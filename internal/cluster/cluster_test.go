package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{Name: "test", Nodes: nodes, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d state = %v, want %v", j.ID, j.State(), want)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	c, err := New(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().CoresPerNode != 1 {
		t.Fatal("cores default not applied")
	}
}

func TestSubmitRunsJob(t *testing.T) {
	c := newTestCluster(t, 4)
	started := make(chan *Job, 1)
	j, err := c.Submit(JobSpec{Name: "j", Nodes: 2, OnStart: func(j *Job) { started <- j }})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-started:
		if got.ID != j.ID {
			t.Fatal("wrong job started")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	waitState(t, j, Running)
	if len(j.Nodes()) != 2 {
		t.Fatalf("nodes = %v", j.Nodes())
	}
	st := c.Stats()
	if st.BusyNodes != 2 || st.FreeNodes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	if _, err := c.Submit(JobSpec{Nodes: 0}); err == nil {
		t.Fatal("0-node job accepted")
	}
	if _, err := c.Submit(JobSpec{Nodes: 5}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestPartitionPolicy(t *testing.T) {
	c, err := New(Midway(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(JobSpec{Nodes: 1, Partition: "gpu"}); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Submit(JobSpec{Nodes: 1, Partition: "broadwl"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Nodes: 1}); err != nil {
		t.Fatal("empty partition rejected")
	}
}

func TestMaxNodesPerJobPolicy(t *testing.T) {
	c, err := New(Config{Nodes: 10, MaxNodesPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(JobSpec{Nodes: 5}); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestFIFOQueueing(t *testing.T) {
	c := newTestCluster(t, 2)
	var order []int64
	var mu sync.Mutex
	onStart := func(j *Job) {
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
	}
	j1, _ := c.Submit(JobSpec{Nodes: 2, OnStart: onStart})
	j2, _ := c.Submit(JobSpec{Nodes: 2, OnStart: onStart})
	waitState(t, j1, Running)
	if j2.State() != Queued {
		t.Fatalf("j2 state = %v, want queued behind j1", j2.State())
	}
	if err := c.Complete(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, Running)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != j1.ID || order[1] != j2.ID {
		t.Fatalf("start order = %v", order)
	}
}

func TestWalltimeExpiry(t *testing.T) {
	c := newTestCluster(t, 1)
	stopped := make(chan StopReason, 1)
	j, _ := c.Submit(JobSpec{
		Nodes:    1,
		Walltime: 20 * time.Millisecond,
		OnStop:   func(_ *Job, r StopReason) { stopped <- r },
	})
	waitState(t, j, Running)
	select {
	case r := <-stopped:
		if r != ReasonWalltime {
			t.Fatalf("reason = %v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("walltime never enforced")
	}
	waitState(t, j, Completed)
	if c.Stats().FreeNodes != 1 {
		t.Fatal("nodes not released after walltime")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	c := newTestCluster(t, 1)
	blocker, _ := c.Submit(JobSpec{Nodes: 1})
	waitState(t, blocker, Running)
	stopped := make(chan StopReason, 1)
	j, _ := c.Submit(JobSpec{Nodes: 1, OnStop: func(_ *Job, r StopReason) { stopped <- r }})
	if err := c.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if r := <-stopped; r != ReasonCancelled {
		t.Fatalf("reason = %v", r)
	}
	waitState(t, j, Cancelled)
}

func TestCancelRunningJobReleasesNodes(t *testing.T) {
	c := newTestCluster(t, 2)
	j, _ := c.Submit(JobSpec{Nodes: 2})
	waitState(t, j, Running)
	if err := c.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Cancelled)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && c.Stats().FreeNodes != 2 {
		time.Sleep(time.Millisecond)
	}
	if c.Stats().FreeNodes != 2 {
		t.Fatalf("free = %d", c.Stats().FreeNodes)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Cancel(999); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Status(999); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatusVerb(t *testing.T) {
	c := newTestCluster(t, 1)
	j, _ := c.Submit(JobSpec{Nodes: 1})
	waitState(t, j, Running)
	st, err := c.Status(j.ID)
	if err != nil || st != Running {
		t.Fatalf("status = %v, %v", st, err)
	}
}

func TestQueueDelayEnforced(t *testing.T) {
	c, err := New(Config{Nodes: 1, QueueDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	started := make(chan time.Time, 1)
	submit := time.Now()
	j, _ := c.Submit(JobSpec{Nodes: 1, OnStart: func(*Job) { started <- time.Now() }})
	at := <-started
	if at.Sub(submit) < 30*time.Millisecond {
		t.Fatalf("job started after %v, want >= queue delay", at.Sub(submit))
	}
	if j.QueueTime() < 30*time.Millisecond {
		t.Fatalf("queue time = %v", j.QueueTime())
	}
}

func TestNodeFailureKillsJob(t *testing.T) {
	c := newTestCluster(t, 2)
	stopped := make(chan StopReason, 1)
	j, _ := c.Submit(JobSpec{Nodes: 2, OnStop: func(_ *Job, r StopReason) { stopped <- r }})
	waitState(t, j, Running)
	victim := j.Nodes()[0]
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if r := <-stopped; r != ReasonNodeFailure {
		t.Fatalf("reason = %v", r)
	}
	waitState(t, j, Failed)
	st := c.Stats()
	if st.FailedNodes != 1 || st.FreeNodes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Repair returns the node to service.
	if err := c.RepairNode(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && c.Stats().FreeNodes != 2 {
		time.Sleep(time.Millisecond)
	}
	if c.Stats().FreeNodes != 2 {
		t.Fatalf("after repair: %+v", c.Stats())
	}
}

func TestFailNodeValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.FailNode(5); err == nil {
		t.Fatal("out-of-range node failed")
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal("double fail should be a no-op")
	}
	if err := c.RepairNode(5); err == nil {
		t.Fatal("out-of-range repair accepted")
	}
}

func TestFailedNodeNotAllocated(t *testing.T) {
	c := newTestCluster(t, 2)
	_ = c.FailNode(0)
	j, _ := c.Submit(JobSpec{Nodes: 1})
	waitState(t, j, Running)
	if j.Nodes()[0] == 0 {
		t.Fatal("failed node allocated")
	}
	if _, err := c.Submit(JobSpec{Nodes: 2}); err == nil {
		// 2-node job is still accepted (machine has 2 nodes), it just queues.
		st := c.Stats()
		if st.QueuedJobs != 1 {
			t.Fatalf("stats = %+v", st)
		}
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	c := newTestCluster(t, 1)
	running, _ := c.Submit(JobSpec{Nodes: 1})
	waitState(t, running, Running)
	queued, _ := c.Submit(JobSpec{Nodes: 1})
	c.Close()
	waitState(t, running, Cancelled)
	waitState(t, queued, Cancelled)
	if _, err := c.Submit(JobSpec{Nodes: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v", err)
	}
	c.Close() // double close safe
}

func TestConcurrentSubmitCancelChurn(t *testing.T) {
	c := newTestCluster(t, 8)
	var started atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := c.Submit(JobSpec{
				Nodes:    1 + i%3,
				Walltime: 10 * time.Millisecond,
				OnStart:  func(*Job) { started.Add(1) },
			})
			if err != nil {
				t.Error(err)
				return
			}
			if i%4 == 0 {
				_ = c.Cancel(j.ID)
			}
		}(i)
	}
	wg.Wait()
	// Wait for churn to settle: all nodes eventually free.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := c.Stats()
		if st.FreeNodes == 8 && st.QueuedJobs == 0 && st.RunningJobs == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cluster did not settle: %+v", c.Stats())
}

func TestTestbedShapes(t *testing.T) {
	if cfg := Midway(10); cfg.CoresPerNode != 28 || cfg.Name != "midway" {
		t.Fatalf("midway = %+v", cfg)
	}
	if cfg := BlueWaters(10); cfg.CoresPerNode != 32 {
		t.Fatalf("bluewaters = %+v", cfg)
	}
}
