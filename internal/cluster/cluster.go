// Package cluster simulates a batch-scheduled HPC cluster — the Local
// Resource Manager substrate (Slurm on Midway, ALPS on Blue Waters) that
// Parsl's providers drive (§4.2). It models a node pool, a FIFO job queue
// with configurable scheduler latency, walltime enforcement, per-job node
// limits, cancellation, and node-failure injection.
//
// The providers in internal/provider translate sbatch/squeue/scancel-style
// verbs onto this simulator, which is what lets the elasticity experiment
// (Fig. 6) provision and deprovision blocks exactly as the paper's runs did,
// including queue delays ("in an HPC setting, elasticity may be complicated
// by queue delays", §4.4).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle of a batch job.
type JobState int

const (
	// Queued: accepted, waiting for nodes.
	Queued JobState = iota
	// Running: nodes allocated, user payload started.
	Running
	// Completed: payload finished or walltime expired cleanly.
	Completed
	// Cancelled: removed by scancel.
	Cancelled
	// Failed: lost to a node failure.
	Failed
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Terminal reports whether the job can no longer change state.
func (s JobState) Terminal() bool { return s == Completed || s == Cancelled || s == Failed }

// StopReason explains why a job's payload was stopped.
type StopReason string

// Stop reasons passed to JobSpec.OnStop.
const (
	ReasonWalltime    StopReason = "walltime"
	ReasonCancelled   StopReason = "cancelled"
	ReasonNodeFailure StopReason = "node_failure"
	ReasonCompleted   StopReason = "completed"
)

// JobSpec describes a submission — the analogue of an sbatch script.
type JobSpec struct {
	Name      string
	Nodes     int
	Walltime  time.Duration
	Partition string
	// OnStart runs (on its own goroutine) when nodes are allocated; the
	// provider uses it to launch workers onto the allocation.
	OnStart func(job *Job)
	// OnStop runs when the job stops for any reason.
	OnStop func(job *Job, reason StopReason)
}

// Job is a live or historical batch job.
type Job struct {
	ID    int64
	Spec  JobSpec
	nodes []int

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	ended     time.Time
	stopTimer *time.Timer
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Nodes returns the allocated node ids (empty until Running).
func (j *Job) Nodes() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]int, len(j.nodes))
	copy(out, j.nodes)
	return out
}

// QueueTime returns how long the job waited before starting (or has waited
// so far, if still queued).
func (j *Job) QueueTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return time.Since(j.submitted)
	}
	return j.started.Sub(j.submitted)
}

// Config describes the simulated machine.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// QueueDelay is the minimum scheduler latency between submission and
	// node allocation, modeling LRM scheduling cycles and queue waits.
	QueueDelay time.Duration
	// MaxNodesPerJob enforces the site policy Parsl's block abstraction
	// works around (§4.2.3); 0 means unlimited.
	MaxNodesPerJob int
	// Partitions lists valid partition names; empty accepts anything.
	Partitions []string
}

// Midway returns the Midway campus-cluster shape used in §5 (28-core
// Broadwell nodes, "broadwl" partition).
func Midway(nodes int) Config {
	return Config{Name: "midway", Nodes: nodes, CoresPerNode: 28, Partitions: []string{"broadwl"}}
}

// BlueWaters returns the Blue Waters XE shape used in §5 (32 integer
// scheduling units per node).
func BlueWaters(nodes int) Config {
	return Config{Name: "bluewaters", Nodes: nodes, CoresPerNode: 32, Partitions: []string{"normal"}}
}

// Cluster is the simulated machine plus its batch scheduler.
type Cluster struct {
	cfg Config

	mu         sync.Mutex
	freeNodes  []int
	failed     map[int]bool
	queue      []*Job
	jobs       map[int64]*Job
	nextID     int64
	closed     bool
	jobsOnNode map[int]*Job
}

// Errors returned by Submit and Cancel.
var (
	ErrClosed       = errors.New("cluster: closed")
	ErrBadPartition = errors.New("cluster: unknown partition")
	ErrTooManyNodes = errors.New("cluster: request exceeds per-job node limit")
	ErrNoSuchJob    = errors.New("cluster: no such job")
)

// New creates a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes", cfg.Nodes)
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 1
	}
	c := &Cluster{
		cfg:        cfg,
		failed:     make(map[int]bool),
		jobs:       make(map[int64]*Job),
		jobsOnNode: make(map[int]*Job),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.freeNodes = append(c.freeNodes, i)
	}
	return c, nil
}

// Config returns the machine description.
func (c *Cluster) Config() Config { return c.cfg }

// Submit queues a job, like sbatch. The returned Job is live immediately;
// its payload starts after scheduling latency once nodes are available.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: job requests %d nodes", spec.Nodes)
	}
	if c.cfg.MaxNodesPerJob > 0 && spec.Nodes > c.cfg.MaxNodesPerJob {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyNodes, spec.Nodes, c.cfg.MaxNodesPerJob)
	}
	if spec.Nodes > c.cfg.Nodes {
		return nil, fmt.Errorf("cluster: job requests %d nodes, machine has %d", spec.Nodes, c.cfg.Nodes)
	}
	if len(c.cfg.Partitions) > 0 && spec.Partition != "" {
		ok := false
		for _, p := range c.cfg.Partitions {
			if p == spec.Partition {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrBadPartition, spec.Partition)
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	job := &Job{ID: c.nextID, Spec: spec, state: Queued, submitted: time.Now()}
	c.jobs[job.ID] = job
	c.queue = append(c.queue, job)
	c.mu.Unlock()

	if c.cfg.QueueDelay > 0 {
		time.AfterFunc(c.cfg.QueueDelay, c.trySchedule)
	} else {
		go c.trySchedule()
	}
	return job, nil
}

// trySchedule allocates queued jobs FIFO (no backfill — strict order, which
// is the conservative policy and keeps behaviour deterministic).
func (c *Cluster) trySchedule() {
	for {
		c.mu.Lock()
		if c.closed || len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		job := c.queue[0]
		if job.State() != Queued {
			c.queue = c.queue[1:]
			c.mu.Unlock()
			continue
		}
		if job.Spec.Nodes > len(c.freeNodes) {
			c.mu.Unlock()
			return // head-of-line blocks; a release will retry
		}
		// Enforce minimum queue delay.
		if c.cfg.QueueDelay > 0 && time.Since(job.submitted) < c.cfg.QueueDelay {
			remaining := c.cfg.QueueDelay - time.Since(job.submitted)
			c.mu.Unlock()
			time.AfterFunc(remaining, c.trySchedule)
			return
		}
		c.queue = c.queue[1:]
		alloc := c.freeNodes[:job.Spec.Nodes]
		c.freeNodes = c.freeNodes[job.Spec.Nodes:]

		job.mu.Lock()
		job.state = Running
		job.started = time.Now()
		job.nodes = append([]int(nil), alloc...)
		for _, n := range alloc {
			c.jobsOnNode[n] = job
		}
		if job.Spec.Walltime > 0 {
			job.stopTimer = time.AfterFunc(job.Spec.Walltime, func() {
				c.stopJob(job, ReasonWalltime, Completed)
			})
		}
		job.mu.Unlock()
		c.mu.Unlock()

		if job.Spec.OnStart != nil {
			go job.Spec.OnStart(job)
		}
	}
}

// stopJob transitions a running job to a terminal state and releases nodes.
func (c *Cluster) stopJob(job *Job, reason StopReason, final JobState) {
	job.mu.Lock()
	if job.state != Running {
		job.mu.Unlock()
		return
	}
	job.state = final
	job.ended = time.Now()
	if job.stopTimer != nil {
		job.stopTimer.Stop()
	}
	nodes := job.nodes
	job.mu.Unlock()

	c.mu.Lock()
	for _, n := range nodes {
		delete(c.jobsOnNode, n)
		if !c.failed[n] {
			c.freeNodes = append(c.freeNodes, n)
		}
	}
	c.mu.Unlock()

	if job.Spec.OnStop != nil {
		job.Spec.OnStop(job, reason)
	}
	go c.trySchedule()
}

// Complete marks a running job's payload as finished (the provider calls
// this when its workers exit cleanly before walltime).
func (c *Cluster) Complete(id int64) error {
	job, err := c.lookup(id)
	if err != nil {
		return err
	}
	c.stopJob(job, ReasonCompleted, Completed)
	return nil
}

// Cancel is scancel: dequeues a queued job or stops a running one.
func (c *Cluster) Cancel(id int64) error {
	job, err := c.lookup(id)
	if err != nil {
		return err
	}
	job.mu.Lock()
	if job.state == Queued {
		job.state = Cancelled
		job.ended = time.Now()
		job.mu.Unlock()
		if job.Spec.OnStop != nil {
			job.Spec.OnStop(job, ReasonCancelled)
		}
		return nil
	}
	job.mu.Unlock()
	c.stopJob(job, ReasonCancelled, Cancelled)
	return nil
}

// Status is squeue for one job.
func (c *Cluster) Status(id int64) (JobState, error) {
	job, err := c.lookup(id)
	if err != nil {
		return 0, err
	}
	return job.State(), nil
}

func (c *Cluster) lookup(id int64) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return job, nil
}

// FailNode simulates a node crash: the job running on it fails (losing its
// whole allocation, as on a real machine) and the node stays out of service
// until RepairNode.
func (c *Cluster) FailNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: node %d out of range", node)
	}
	c.mu.Lock()
	if c.failed[node] {
		c.mu.Unlock()
		return nil
	}
	c.failed[node] = true
	// Remove from free list if present.
	for i, n := range c.freeNodes {
		if n == node {
			c.freeNodes = append(c.freeNodes[:i], c.freeNodes[i+1:]...)
			break
		}
	}
	victim := c.jobsOnNode[node]
	c.mu.Unlock()

	if victim != nil {
		c.stopJob(victim, ReasonNodeFailure, Failed)
	}
	return nil
}

// RepairNode returns a failed node to service.
func (c *Cluster) RepairNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: node %d out of range", node)
	}
	c.mu.Lock()
	if c.failed[node] {
		delete(c.failed, node)
		c.freeNodes = append(c.freeNodes, node)
	}
	c.mu.Unlock()
	go c.trySchedule()
	return nil
}

// Stats is a point-in-time squeue/sinfo summary.
type Stats struct {
	FreeNodes   int
	BusyNodes   int
	FailedNodes int
	QueuedJobs  int
	RunningJobs int
}

// Stats returns current utilization numbers.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{FreeNodes: len(c.freeNodes), FailedNodes: len(c.failed)}
	s.BusyNodes = c.cfg.Nodes - s.FreeNodes - s.FailedNodes
	for _, j := range c.queue {
		if j.State() == Queued {
			s.QueuedJobs++
		}
	}
	for _, j := range c.jobs {
		if j.State() == Running {
			s.RunningJobs++
		}
	}
	return s
}

// Close cancels all jobs and rejects future submissions.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var all []*Job
	for _, j := range c.jobs {
		all = append(all, j)
	}
	queued := c.queue
	c.queue = nil
	c.mu.Unlock()

	for _, j := range queued {
		j.mu.Lock()
		if j.state == Queued {
			j.state = Cancelled
			j.ended = time.Now()
		}
		j.mu.Unlock()
	}
	for _, j := range all {
		if j.State() == Running {
			c.stopJob(j, ReasonCancelled, Cancelled)
		}
	}
}
