package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/simnet"
)

// Frontend exposes the cluster through the scheduler's command-line verbs —
// the view a Channel gets when it lands on a login node (§4.2.1). It turns
// "sbatch/squeue/scancel"-style command lines into simulator calls, so a
// remote submission path (SSH channel → login shell → LRM) can be exercised
// end to end.
type Frontend struct {
	cl *Cluster
}

// NewFrontend wraps a cluster in a command-line dialect.
func NewFrontend(cl *Cluster) *Frontend { return &Frontend{cl: cl} }

// Exec interprets one command line. Supported forms:
//
//	sbatch --nodes=N [--partition=P] [--time=DUR] [--name=S]
//	squeue -j JOBID
//	squeue
//	scancel JOBID
//	sinfo
//
// Outputs mimic the real tools closely enough for provider-side parsing.
func (f *Frontend) Exec(cmdline string) (string, error) {
	fields := strings.Fields(cmdline)
	if len(fields) == 0 {
		return "", fmt.Errorf("cluster: empty command")
	}
	switch fields[0] {
	case "sbatch":
		return f.sbatch(fields[1:])
	case "squeue":
		return f.squeue(fields[1:])
	case "scancel":
		return f.scancel(fields[1:])
	case "sinfo":
		return f.sinfo()
	default:
		return "", fmt.Errorf("cluster: %s: command not found", fields[0])
	}
}

func (f *Frontend) sbatch(args []string) (string, error) {
	spec := JobSpec{Nodes: 1}
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "--nodes="):
			n, err := strconv.Atoi(strings.TrimPrefix(a, "--nodes="))
			if err != nil {
				return "", fmt.Errorf("sbatch: bad --nodes: %w", err)
			}
			spec.Nodes = n
		case strings.HasPrefix(a, "--partition="):
			spec.Partition = strings.TrimPrefix(a, "--partition=")
		case strings.HasPrefix(a, "--time="):
			d, err := time.ParseDuration(strings.TrimPrefix(a, "--time="))
			if err != nil {
				return "", fmt.Errorf("sbatch: bad --time: %w", err)
			}
			spec.Walltime = d
		case strings.HasPrefix(a, "--name="):
			spec.Name = strings.TrimPrefix(a, "--name=")
		}
	}
	job, err := f.cl.Submit(spec)
	if err != nil {
		return "", fmt.Errorf("sbatch: %w", err)
	}
	return fmt.Sprintf("Submitted batch job %d\n", job.ID), nil
}

func stateCode(s JobState) string {
	switch s {
	case Queued:
		return "PD"
	case Running:
		return "R"
	case Completed:
		return "CD"
	case Cancelled:
		return "CA"
	case Failed:
		return "F"
	default:
		return "??"
	}
}

func (f *Frontend) squeue(args []string) (string, error) {
	var sb strings.Builder
	sb.WriteString("JOBID  ST  NAME\n")
	if len(args) == 2 && args[0] == "-j" {
		id, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "", fmt.Errorf("squeue: bad job id: %w", err)
		}
		st, err := f.cl.Status(id)
		if err != nil {
			return "", fmt.Errorf("squeue: %w", err)
		}
		fmt.Fprintf(&sb, "%-6d %-3s %s\n", id, stateCode(st), "-")
		return sb.String(), nil
	}
	f.cl.mu.Lock()
	jobs := make([]*Job, 0, len(f.cl.jobs))
	for _, j := range f.cl.jobs {
		jobs = append(jobs, j)
	}
	f.cl.mu.Unlock()
	for _, j := range jobs {
		st := j.State()
		if st == Queued || st == Running {
			fmt.Fprintf(&sb, "%-6d %-3s %s\n", j.ID, stateCode(st), j.Spec.Name)
		}
	}
	return sb.String(), nil
}

func (f *Frontend) scancel(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("scancel: usage: scancel JOBID")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return "", fmt.Errorf("scancel: bad job id: %w", err)
	}
	if err := f.cl.Cancel(id); err != nil {
		return "", fmt.Errorf("scancel: %w", err)
	}
	return "", nil
}

func (f *Frontend) sinfo() (string, error) {
	st := f.cl.Stats()
	return fmt.Sprintf("NODES  FREE  BUSY  DOWN\n%5d %5d %5d %5d\n",
		f.cl.cfg.Nodes, st.FreeNodes, st.BusyNodes, st.FailedNodes), nil
}

// ServeSSH exposes the frontend as a simulated login node: an SSH daemon
// whose shell is the scheduler CLI. Returns the daemon (Close it) and its
// address for channel.DialSSH.
func (f *Frontend) ServeSSH(tr simnet.Transport, addr, key string) (*channel.SSHD, error) {
	return channel.StartSSHD(tr, addr, key, f.Exec)
}
