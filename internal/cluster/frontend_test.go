package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/simnet"
)

func newFrontend(t *testing.T, nodes int) (*Frontend, *Cluster) {
	t.Helper()
	cl, err := New(Config{Name: "login-test", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return NewFrontend(cl), cl
}

func TestSbatchSqueueScancelCycle(t *testing.T) {
	fe, _ := newFrontend(t, 4)
	out, err := fe.Exec("sbatch --nodes=2 --name=parsl.block1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "Submitted batch job ") {
		t.Fatalf("sbatch out = %q", out)
	}
	var id string
	if _, err := parseSubmitted(out, &id); err != nil {
		t.Fatal(err)
	}

	waitState2 := func(code string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			out, err := fe.Exec("squeue -j " + id)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(out, " "+code+" ") {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("job never reached %s", code)
	}
	waitState2("R")

	if _, err := fe.Exec("scancel " + id); err != nil {
		t.Fatal(err)
	}
	waitState2("CA")
}

func TestSqueueListsActiveOnly(t *testing.T) {
	fe, cl := newFrontend(t, 1)
	out1, _ := fe.Exec("sbatch --nodes=1 --name=running-job")
	var id1 string
	_, _ = parseSubmitted(out1, &id1)
	out2, _ := fe.Exec("sbatch --nodes=1 --name=queued-job")
	_ = out2
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && cl.Stats().RunningJobs == 0 {
		time.Sleep(time.Millisecond)
	}
	out, err := fe.Exec("squeue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "running-job") || !strings.Contains(out, "queued-job") {
		t.Fatalf("squeue = %q", out)
	}
}

func TestSinfo(t *testing.T) {
	fe, _ := newFrontend(t, 8)
	out, err := fe.Exec("sinfo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NODES") || !strings.Contains(out, "8") {
		t.Fatalf("sinfo = %q", out)
	}
}

func TestBadCommands(t *testing.T) {
	fe, _ := newFrontend(t, 1)
	for _, bad := range []string{"", "rm -rf /", "sbatch --nodes=zero", "squeue -j abc", "scancel", "scancel xyz", "scancel 999"} {
		if _, err := fe.Exec(bad); err == nil {
			t.Errorf("command %q accepted", bad)
		}
	}
}

func TestWalltimeFlagParsed(t *testing.T) {
	fe, cl := newFrontend(t, 1)
	if _, err := fe.Exec("sbatch --nodes=1 --time=30ms"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := cl.Stats()
		if st.RunningJobs == 0 && st.QueuedJobs == 0 && st.FreeNodes == 1 {
			return // walltime expired and released the node
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("walltime never enforced through frontend")
}

func TestRemoteSubmissionOverSSH(t *testing.T) {
	// The full remote path of §4.2.1: SSH channel → login shell → LRM.
	fe, _ := newFrontend(t, 2)
	n := simnet.NewNetwork(50 * time.Microsecond)
	sshd, err := fe.ServeSSH(n, "login.midway", "hostkey")
	if err != nil {
		t.Fatal(err)
	}
	defer sshd.Close()

	ch, err := channel.DialSSH(n, "login.midway", "hostkey")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	out, err := ch.Execute("sbatch --nodes=1 --name=remote")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "Submitted batch job") {
		t.Fatalf("remote sbatch = %q", out)
	}
	out, err = ch.Execute("sinfo")
	if err != nil || !strings.Contains(out, "NODES") {
		t.Fatalf("remote sinfo = %q, %v", out, err)
	}
	// Wrong key is rejected at handshake.
	if _, err := channel.DialSSH(n, "login.midway", "wrong"); err == nil {
		t.Fatal("bad key accepted")
	}
}

func parseSubmitted(out string, id *string) (int, error) {
	fields := strings.Fields(out)
	*id = fields[len(fields)-1]
	return len(fields), nil
}
