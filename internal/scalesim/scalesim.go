// Package scalesim models the Blue Waters-scale experiments (Fig. 4 strong
// and weak scaling, Table 2 maximum workers and throughput) on the
// discrete-event engine in internal/sim. Executing one million sleep tasks
// across 262 144 workers requires either 8192 Cray nodes or virtual time;
// this package takes the second route, per the substitution policy in
// DESIGN.md.
//
// Each framework is reduced to the queueing structure that determined its
// measured behaviour:
//
//	client submit loop  →  central service stage  →  W parallel workers
//	 (serialized,            (serialized; the           (task duration +
//	  SubmitOverhead)         throughput ceiling)        per-task overhead)
//
// plus a coordination-inflation term for frameworks whose central stage
// degrades as workers grow (IPP beyond ~512, Dask beyond ~1024, FireWorks
// almost immediately), and hard worker caps for Table 2. Service times are
// calibrated from the paper's measured throughputs (1181, 1176, 330, 2617,
// 4 tasks/s); the *shape* of the reproduced curves — who wins, where the
// knees fall — emerges from the queueing structure, not from curve fitting.
package scalesim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Params is a framework's cost model.
type Params struct {
	Name string
	// SubmitOverhead is the serialized client-side cost per task.
	SubmitOverhead time.Duration
	// CentralService is the serialized per-task cost at the central
	// component (interchange / hub / scheduler / LaunchPad DB).
	CentralService time.Duration
	// WorkerOverhead is the per-task cost on the worker beyond the task
	// body (deserialize, sandbox, result packaging).
	WorkerOverhead time.Duration
	// CoordKnee is the worker count beyond which the central stage
	// inflates; 0 disables inflation ("remain nearly constant", §5.2).
	CoordKnee int
	// CoordSlope is fractional central-service inflation per doubling of
	// workers beyond the knee.
	CoordSlope float64
	// MaxWorkers is the architectural cap (0 = bounded only by nodes).
	MaxWorkers int
	// WorkersPerNode for node-count accounting (32 on Blue Waters XE).
	WorkersPerNode int
}

// Calibrated framework models. Sources: Table 2 throughputs and maximum
// worker counts; Fig. 4 knee positions.
func HTEX() Params {
	return Params{
		Name:           "parsl-htex",
		SubmitOverhead: 100 * time.Microsecond,
		CentralService: 847 * time.Microsecond, // ⇒ ~1181 tasks/s
		WorkerOverhead: 2 * time.Millisecond,
		WorkersPerNode: 32,
	}
}

func EXEX() Params {
	return Params{
		Name:           "parsl-exex",
		SubmitOverhead: 100 * time.Microsecond,
		CentralService: 850 * time.Microsecond, // ⇒ ~1176 tasks/s
		WorkerOverhead: 4 * time.Millisecond,   // extra MPI hop
		WorkersPerNode: 32,
	}
}

func IPP() Params {
	return Params{
		Name:           "parsl-ipp",
		SubmitOverhead: 500 * time.Microsecond,
		CentralService: 3030 * time.Microsecond, // ⇒ ~330 tasks/s
		WorkerOverhead: 3 * time.Millisecond,
		CoordKnee:      512,
		CoordSlope:     0.5,
		MaxWorkers:     2048,
		WorkersPerNode: 32,
	}
}

func Dask() Params {
	return Params{
		Name:           "dask",
		SubmitOverhead: 150 * time.Microsecond,
		CentralService: 382 * time.Microsecond, // ⇒ ~2617 tasks/s
		WorkerOverhead: 2 * time.Millisecond,
		CoordKnee:      512,
		CoordSlope:     1.2,
		MaxWorkers:     8192,
		WorkersPerNode: 32,
	}
}

func FireWorks() Params {
	return Params{
		Name:           "fireworks",
		SubmitOverhead: 2 * time.Millisecond,
		CentralService: 250 * time.Millisecond, // ⇒ ~4 tasks/s
		WorkerOverhead: 10 * time.Millisecond,
		CoordKnee:      32,
		CoordSlope:     0.4,
		MaxWorkers:     1024,
		WorkersPerNode: 32,
	}
}

// All returns every modeled framework in presentation order.
func All() []Params {
	return []Params{HTEX(), EXEX(), IPP(), Dask(), FireWorks()}
}

// effCentral applies coordination inflation for the given worker count.
func (p Params) effCentral(workers int) time.Duration {
	if p.CoordKnee <= 0 || workers <= p.CoordKnee || p.CoordSlope <= 0 {
		return p.CentralService
	}
	doublings := math.Log2(float64(workers) / float64(p.CoordKnee))
	return time.Duration(float64(p.CentralService) * (1 + p.CoordSlope*doublings))
}

// Result is one simulated run.
type Result struct {
	Framework string
	Tasks     int
	Workers   int
	TaskDur   time.Duration
	Makespan  time.Duration
	Rate      float64 // tasks per second
	Events    int64   // DES events executed (sanity/telemetry)
}

// Run simulates `tasks` tasks of duration `taskDur` over `workers` workers
// and returns the makespan in virtual time.
func Run(p Params, tasks int, taskDur time.Duration, workers int) Result {
	if workers < 1 {
		workers = 1
	}
	if p.MaxWorkers > 0 && workers > p.MaxWorkers {
		workers = p.MaxWorkers // beyond the cap, extra workers never connect
	}
	eng := sim.NewEngine()
	client := sim.NewServer(eng, p.SubmitOverhead)
	central := sim.NewServer(eng, p.effCentral(workers))
	pool := sim.NewResource(eng, workers)

	remaining := tasks
	perTask := taskDur + p.WorkerOverhead
	var finish time.Duration

	eng.Schedule(0, func() {
		for i := 0; i < tasks; i++ {
			client.Submit(func() {
				central.Submit(func() {
					pool.Acquire(func() {
						eng.Schedule(perTask, func() {
							pool.Release()
							remaining--
							if remaining == 0 {
								finish = eng.Now()
							}
						})
					})
				})
			})
		}
	})
	eng.Run()
	if finish == 0 {
		finish = eng.Now()
	}
	rate := 0.0
	if finish > 0 {
		rate = float64(tasks) / finish.Seconds()
	}
	return Result{
		Framework: p.Name, Tasks: tasks, Workers: workers, TaskDur: taskDur,
		Makespan: finish, Rate: rate, Events: eng.Steps(),
	}
}

// StrongScaling reproduces a Fig. 4 (top row) series: fixed total task count
// over a sweep of worker counts.
func StrongScaling(p Params, totalTasks int, taskDur time.Duration, workerSweep []int) []Result {
	out := make([]Result, 0, len(workerSweep))
	for _, w := range workerSweep {
		if p.MaxWorkers > 0 && w > p.MaxWorkers {
			break // the framework cannot connect this many workers
		}
		out = append(out, Run(p, totalTasks, taskDur, w))
	}
	return out
}

// WeakScaling reproduces a Fig. 4 (bottom row) series: tasksPerWorker tasks
// per worker over a sweep of worker counts.
func WeakScaling(p Params, tasksPerWorker int, taskDur time.Duration, workerSweep []int) []Result {
	out := make([]Result, 0, len(workerSweep))
	for _, w := range workerSweep {
		if p.MaxWorkers > 0 && w > p.MaxWorkers {
			break
		}
		out = append(out, Run(p, tasksPerWorker*w, taskDur, w))
	}
	return out
}

// ProbeResult is one Table 2 max-workers row.
type ProbeResult struct {
	Framework  string
	MaxWorkers int
	MaxNodes   int
	LimitedBy  string // "architecture" or "allocation"
}

// ProbeMaxWorkers reproduces the Table 2 probe: keep adding nodes (doubling,
// as the paper did) until the framework refuses workers or the allocation
// runs out.
func ProbeMaxWorkers(p Params, allocationNodes int) ProbeResult {
	wpn := p.WorkersPerNode
	if wpn <= 0 {
		wpn = 1
	}
	nodes := 1
	connected := 0
	for {
		target := nodes * wpn
		if p.MaxWorkers > 0 && target > p.MaxWorkers {
			// The next doubling exceeds the architectural cap: the cap is
			// the answer (observed as connection errors in the paper).
			return ProbeResult{
				Framework:  p.Name,
				MaxWorkers: p.MaxWorkers,
				MaxNodes:   p.MaxWorkers / wpn,
				LimitedBy:  "architecture",
			}
		}
		connected = target
		if nodes == allocationNodes {
			return ProbeResult{
				Framework: p.Name, MaxWorkers: connected, MaxNodes: nodes,
				LimitedBy: "allocation",
			}
		}
		nodes *= 2
		if nodes > allocationNodes {
			nodes = allocationNodes
		}
	}
}

// Throughput reproduces a Table 2 throughput row: 50 000 no-op tasks on a
// Midway-scale worker pool (the paper measured this column on Midway, well
// below every framework's coordination knee); the central stage is the
// ceiling.
func Throughput(p Params, workers int) Result {
	if p.CoordKnee > 0 && workers > p.CoordKnee {
		workers = p.CoordKnee
	}
	return Run(p, 50000, 0, workers)
}

// FormatRate renders tasks/s the way Table 2 reports it.
func FormatRate(r float64) string { return fmt.Sprintf("%.0f", r) }
