package scalesim

import (
	"testing"
	"time"
)

func TestThroughputMatchesTable2Shape(t *testing.T) {
	// Paper (Table 2): IPP 330, HTEX 1181, EXEX 1176, FireWorks 4, Dask
	// 2617 tasks/s. The model must land within 15% of each and preserve
	// the ordering Dask > HTEX ≈ EXEX > IPP > FireWorks.
	want := map[string]float64{
		"parsl-htex": 1181, "parsl-exex": 1176, "parsl-ipp": 330,
		"dask": 2617, "fireworks": 4,
	}
	got := map[string]float64{}
	for _, p := range All() {
		workers := 256
		if p.MaxWorkers > 0 && workers > p.MaxWorkers {
			workers = p.MaxWorkers
		}
		got[p.Name] = Throughput(p, workers).Rate
	}
	for name, w := range want {
		g := got[name]
		if g < w*0.85 || g > w*1.15 {
			t.Errorf("%s throughput = %.0f tasks/s, paper %.0f", name, g, w)
		}
	}
	if !(got["dask"] > got["parsl-htex"] && got["parsl-htex"] >= got["parsl-exex"] &&
		got["parsl-exex"] > got["parsl-ipp"] && got["parsl-ipp"] > got["fireworks"]) {
		t.Errorf("throughput ordering violated: %v", got)
	}
}

func TestProbeMaxWorkersMatchesTable2(t *testing.T) {
	// Paper (Table 2): IPP 2048 w / 64 n; HTEX 65536 w / 2048 n*; EXEX
	// 262144 w / 8192 n*; FireWorks 1024 w / 32 n; Dask 8192 w / 256 n.
	// (* allocation-limited, not architectural.)
	cases := []struct {
		p         Params
		alloc     int
		workers   int
		nodes     int
		limitedBy string
	}{
		{HTEX(), 2048, 65536, 2048, "allocation"},
		{EXEX(), 8192, 262144, 8192, "allocation"},
		{IPP(), 8192, 2048, 64, "architecture"},
		{Dask(), 8192, 8192, 256, "architecture"},
		{FireWorks(), 8192, 1024, 32, "architecture"},
	}
	for _, c := range cases {
		got := ProbeMaxWorkers(c.p, c.alloc)
		if got.MaxWorkers != c.workers || got.MaxNodes != c.nodes || got.LimitedBy != c.limitedBy {
			t.Errorf("%s probe = %+v, want %d workers / %d nodes (%s)",
				c.p.Name, got, c.workers, c.nodes, c.limitedBy)
		}
	}
}

func TestStrongScalingHTEXNearlyConstant(t *testing.T) {
	// §5.2: "both HTEX and EXEX remain nearly constant" with increasing
	// workers for the no-op strong-scaling workload.
	sweep := []int{256, 1024, 4096, 16384, 65536}
	res := StrongScaling(HTEX(), 50000, 0, sweep)
	base := res[0].Makespan
	for _, r := range res[1:] {
		ratio := float64(r.Makespan) / float64(base)
		if ratio > 1.3 || ratio < 0.5 {
			t.Errorf("HTEX makespan at %d workers = %v (base %v): not near-constant",
				r.Workers, r.Makespan, base)
		}
	}
}

func TestStrongScalingIPPDegradesBeyondKnee(t *testing.T) {
	// IPP and Dask "exhibit a similar trend of increasing overhead as the
	// number of workers increases beyond 512".
	at512 := Run(IPP(), 50000, 0, 512).Makespan
	at2048 := Run(IPP(), 50000, 0, 2048).Makespan
	if at2048 <= at512 {
		t.Errorf("IPP did not degrade past the knee: 512w=%v 2048w=%v", at512, at2048)
	}
}

func TestStrongScalingSpeedupWithLongTasks(t *testing.T) {
	// For 1000 ms tasks, more workers must mean (near-)linear speedup
	// until the central stage dominates.
	p := HTEX()
	r64 := Run(p, 5000, time.Second, 64)
	r512 := Run(p, 5000, time.Second, 512)
	speedup := float64(r64.Makespan) / float64(r512.Makespan)
	if speedup < 6 || speedup > 8.5 { // ideal 8×
		t.Errorf("speedup 64→512 workers = %.2f, want ≈8", speedup)
	}
}

func TestStrongScalingFireWorksOrderOfMagnitudeWorse(t *testing.T) {
	// "FireWorks has the highest overhead even with only 5000 tasks:
	// almost an order of magnitude greater."
	fw := Run(FireWorks(), 5000, 0, 256)
	htex := Run(HTEX(), 50000, 0, 256)
	// Normalize per task: FireWorks per-task cost must be ≳ 100× HTEX's.
	fwPerTask := fw.Makespan.Seconds() / 5000
	htexPerTask := htex.Makespan.Seconds() / 50000
	if fwPerTask < 50*htexPerTask {
		t.Errorf("fireworks per-task %.4fs vs htex %.6fs: gap too small", fwPerTask, htexPerTask)
	}
}

func TestWeakScalingKneeOrdering(t *testing.T) {
	// Fig. 4 bottom: FireWorks goes sublinear ~32 workers, IPP ~256,
	// Dask/HTEX/EXEX ~1024. Measure the knee as the first sweep point
	// where makespan exceeds 1.5× the single-worker makespan.
	sweep := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	knee := func(p Params) int {
		res := WeakScaling(p, 10, time.Second, sweep)
		base := res[0].Makespan
		for _, r := range res[1:] {
			if float64(r.Makespan) > 1.5*float64(base) {
				return r.Workers
			}
		}
		return 1 << 30
	}
	fw, ipp, dask, htex := knee(FireWorks()), knee(IPP()), knee(Dask()), knee(HTEX())
	if !(fw < ipp && ipp < dask && dask <= htex) {
		t.Errorf("knee ordering: fw=%d ipp=%d dask=%d htex=%d", fw, ipp, dask, htex)
	}
	if fw > 64 {
		t.Errorf("fireworks knee = %d, paper ≈32", fw)
	}
	if ipp < 128 || ipp > 1024 {
		t.Errorf("ipp knee = %d, paper ≈256", ipp)
	}
	if htex < 512 {
		t.Errorf("htex knee = %d, paper ≈1024", htex)
	}
}

func TestWeakScalingFlatBeforeKnee(t *testing.T) {
	res := WeakScaling(HTEX(), 10, time.Second, []int{1, 8, 64, 256})
	base := res[0].Makespan
	for _, r := range res {
		if float64(r.Makespan) > 1.3*float64(base) {
			t.Errorf("pre-knee weak scaling not flat: %d workers → %v (base %v)",
				r.Workers, r.Makespan, base)
		}
	}
}

func TestSweepStopsAtArchitecturalCap(t *testing.T) {
	res := StrongScaling(IPP(), 1000, 0, []int{1024, 2048, 4096, 8192})
	if len(res) != 2 {
		t.Fatalf("IPP sweep returned %d points, want 2 (cap 2048)", len(res))
	}
}

func TestMillionTaskRunCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-task DES run")
	}
	// The paper's largest weak-scaling point: 3125 nodes × 32 workers ×
	// 10 tasks = 1M tasks. Virtual time must remain finite and sane.
	p := EXEX()
	r := Run(p, 1_000_000, time.Second, 100_000)
	if r.Makespan <= 0 {
		t.Fatal("million-task run produced no makespan")
	}
	// Central stage: 1M × 0.85 ms = 850 s is the floor.
	if r.Makespan < 800*time.Second || r.Makespan > 2000*time.Second {
		t.Fatalf("makespan = %v, expected ≈850–900 s", r.Makespan)
	}
}

func TestRunClampsWorkersToCap(t *testing.T) {
	r := Run(Dask(), 100, 0, 100000)
	if r.Workers != DaskMax() {
		t.Fatalf("workers = %d", r.Workers)
	}
}

func DaskMax() int { return Dask().MaxWorkers }

func TestEffCentralInflation(t *testing.T) {
	p := IPP()
	base := p.effCentral(100)
	if base != p.CentralService {
		t.Fatal("inflation applied below knee")
	}
	at4096 := p.effCentral(4096) // 3 doublings past 512
	want := time.Duration(float64(p.CentralService) * (1 + 0.5*3))
	if at4096 != want {
		t.Fatalf("effCentral(4096) = %v, want %v", at4096, want)
	}
	flat := HTEX()
	if flat.effCentral(1<<20) != flat.CentralService {
		t.Fatal("HTEX central inflated")
	}
}
