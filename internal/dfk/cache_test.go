package dfk

import (
	"sync/atomic"
	"testing"

	"repro/internal/cache"
)

// TestSharedCacheCrossProcessHit is the tentpole contract at the DFK
// boundary: two DFKs (standing in for two workflow processes) share one
// content-addressed result cache; work computed under the first settles on
// the second without re-execution, exactly like a local memo hit.
func TestSharedCacheCrossProcessHit(t *testing.T) {
	var calls atomic.Int32
	fn := func(args []any, _ map[string]any) (any, error) {
		calls.Add(1)
		return args[0].(int) * args[0].(int), nil
	}
	shared := cache.New(cache.Options{})

	a := newDFK(t, func(c *Config) { c.Memoize = true; c.SharedCache = shared })
	squareA, _ := a.PythonApp("square", fn)
	if v, err := squareA.Call(7).Result(); err != nil || v != 49 {
		t.Fatalf("first run: %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d after first run", calls.Load())
	}
	// completeTask publishes into the shared tier alongside the local memo.
	if st := shared.Stats(); st.Stores != 1 {
		t.Fatalf("shared stores = %d, want 1", st.Stores)
	}

	// A fresh DFK with an empty local memo table: the miss must consult the
	// shared tier, settle as memoized, and never dispatch.
	b := newDFK(t, func(c *Config) { c.Memoize = true; c.SharedCache = shared })
	squareB, _ := b.PythonApp("square", fn)
	if v, err := squareB.Call(7).Result(); err != nil || v != 49 {
		t.Fatalf("cross-process run: %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (shared-cache hit must not re-execute)", calls.Load())
	}
	if st := shared.Stats(); st.Hits != 1 {
		t.Fatalf("shared hits = %d, want 1", st.Hits)
	}

	// The hit was promoted into B's local memo table: the next identical
	// call resolves locally without touching the shared tier again.
	before := shared.Stats()
	if v, err := squareB.Call(7).Result(); err != nil || v != 49 {
		t.Fatalf("promoted run: %v, %v", v, err)
	}
	if hits, _ := b.Memoizer().Stats(); hits != 1 {
		t.Fatalf("local memo hits = %d, want 1 (promotion)", hits)
	}
	if after := shared.Stats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("promoted hit consulted the shared tier: %+v -> %+v", before, after)
	}

	// Different arguments are a different content address: cold everywhere.
	if v, err := squareB.Call(8).Result(); err != nil || v != 64 {
		t.Fatalf("cold args: %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestSharedCacheNilIsOff: the plane off means exactly the pre-existing
// behavior — per-process memoization only, no shared consult.
func TestSharedCacheNilIsOff(t *testing.T) {
	var calls atomic.Int32
	fn := func(args []any, _ map[string]any) (any, error) {
		calls.Add(1)
		return args[0], nil
	}
	a := newDFK(t, func(c *Config) { c.Memoize = true })
	echoA, _ := a.PythonApp("echo", fn)
	if _, err := echoA.Call(1).Result(); err != nil {
		t.Fatal(err)
	}
	b := newDFK(t, func(c *Config) { c.Memoize = true })
	echoB, _ := b.PythonApp("echo", fn)
	if _, err := echoB.Call(1).Result(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (no sharing without a cache)", calls.Load())
	}
	if a.SharedCache() != nil || b.SharedCache() != nil {
		t.Fatal("SharedCache accessor must report nil when the plane is off")
	}
}

// TestSharedCacheRespectsMemoizeOff: apps that opted out of memoization
// never consult or populate the shared tier — the cache key does not exist.
func TestSharedCacheRespectsMemoizeOff(t *testing.T) {
	var calls atomic.Int32
	shared := cache.New(cache.Options{})
	d := newDFK(t, func(c *Config) { c.SharedCache = shared })
	f, _ := d.PythonApp("effectful", func(args []any, _ map[string]any) (any, error) {
		calls.Add(1)
		return args[0], nil
	})
	for i := 0; i < 2; i++ {
		if _, err := f.Call(5).Result(); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
	if st := shared.Stats(); st.Stores != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("unmemoized app touched the shared tier: %+v", st)
	}
}
