package dfk

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/serialize"
)

// payloadSpy is a test executor that records the encode-once payload
// attached to every submitted message and fails the first n attempts, so
// retries are observable.
type payloadSpy struct {
	mu       sync.Mutex
	payloads []*serialize.Payload
	failN    int
}

func (s *payloadSpy) Label() string    { return "spy" }
func (s *payloadSpy) Start() error     { return nil }
func (s *payloadSpy) Shutdown() error  { return nil }
func (s *payloadSpy) Outstanding() int { return 0 }

func (s *payloadSpy) Submit(msg serialize.TaskMsg) *future.Future {
	fut := future.NewForTask(msg.ID)
	s.mu.Lock()
	s.payloads = append(s.payloads, msg.Payload())
	fail := len(s.payloads) <= s.failN
	s.mu.Unlock()
	if fail {
		_ = fut.SetError(errors.New("transient"))
	} else {
		_ = fut.SetResult("ok")
	}
	return fut
}

// TestDispatchAttachesEncodeOncePayload: every attempt of a task — the
// first launch and each retry — must carry the same payload object, i.e.
// the arguments were serialized exactly once for the task's lifetime, and
// the same bytes are recorded on the task record.
func TestDispatchAttachesEncodeOncePayload(t *testing.T) {
	spy := &payloadSpy{failN: 2}
	// RetainRecords: the record's payload pointer is inspected afterwards.
	d, err := New(Config{Executors: []executor.Executor{spy}, Retries: 3, Seed: 1, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("spy-app", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	fut := app.Call([]int{1, 2, 3}, "x")
	if _, err := fut.Result(); err != nil {
		t.Fatal(err)
	}

	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.payloads) != 3 {
		t.Fatalf("attempts = %d, want 3", len(spy.payloads))
	}
	if spy.payloads[0] == nil {
		t.Fatal("dispatch submitted a message without an encode-once payload")
	}
	for i := 1; i < len(spy.payloads); i++ {
		if spy.payloads[i] != spy.payloads[0] {
			t.Fatalf("attempt %d re-encoded the arguments (new payload object)", i)
		}
	}
	rec := d.Graph().Get(fut.TaskID)
	if rec == nil {
		t.Fatal("task record missing")
	}
	if rec.Payload() != spy.payloads[0] {
		t.Fatal("task record does not carry the dispatched payload")
	}
}

// TestMemoKeyOverrideHitSkipsEncoding: an explicit-key cache hit is served
// before arguments are serialized, so even args no executor could accept
// return the cached result — the task never needs to execute.
func TestMemoKeyOverrideHitSkipsEncoding(t *testing.T) {
	spy := &payloadSpy{}
	d, err := New(Config{Executors: []executor.Executor{spy}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("memo-app", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Warm the entry with an ordinary submission.
	if _, err := app.Submit(context.Background(), []any{1}, WithMemoKey("warm")).Result(); err != nil {
		t.Fatal(err)
	}
	// Hit it with an unencodable argument: the cache must answer anyway.
	v, err := app.Submit(context.Background(), []any{make(chan int)}, WithMemoKey("warm")).Result()
	if err != nil {
		t.Fatalf("explicit-key cache hit failed: %v", err)
	}
	if v != "ok" {
		t.Fatalf("cached value = %v, want the stored result", v)
	}
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.payloads) != 1 {
		t.Fatalf("executor ran %d tasks, want only the warm-up", len(spy.payloads))
	}
}

// TestUnserializableArgsFailFast: arguments no executor could accept (the
// immutability copy and the wire both need gob) fail the task at launch
// with the serialization error, before any executor sees it.
func TestUnserializableArgsFailFast(t *testing.T) {
	spy := &payloadSpy{}
	d, err := New(Config{Executors: []executor.Executor{spy}, Retries: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("chan-app", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Call(make(chan int)).Result()
	if err == nil {
		t.Fatal("unencodable argument succeeded")
	}
	if !strings.Contains(err.Error(), "serialize") {
		t.Fatalf("error does not name the serialization failure: %v", err)
	}
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.payloads) != 0 {
		t.Fatalf("executor saw %d submissions for an unencodable task", len(spy.payloads))
	}
}
