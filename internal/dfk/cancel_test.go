package dfk

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/serialize"
	"repro/internal/task"
)

// gateExec is a test executor whose SubmitBatch blocks until the gate opens,
// recording submission order. It makes "a backlogged lane" a deterministic
// condition instead of a timing accident: while one batch is parked on the
// gate, everything routed afterwards piles up in the lane's priority queue.
type gateExec struct {
	label   string
	gate    chan struct{} // close to open
	entered chan struct{} // one token per SubmitBatch call, sent before blocking

	mu   sync.Mutex
	msgs []serialize.TaskMsg
}

func newGateExec(label string) *gateExec {
	return &gateExec{
		label:   label,
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 64),
	}
}

func (g *gateExec) Label() string { return g.label }
func (g *gateExec) Start() error  { return nil }
func (g *gateExec) Submit(msg serialize.TaskMsg) *future.Future {
	return g.SubmitBatch([]serialize.TaskMsg{msg})[0]
}
func (g *gateExec) SubmitBatch(msgs []serialize.TaskMsg) []*future.Future {
	g.entered <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.msgs = append(g.msgs, msgs...)
	g.mu.Unlock()
	futs := make([]*future.Future, len(msgs))
	for i := range msgs {
		futs[i] = future.Completed(msgs[i].App)
	}
	return futs
}
func (g *gateExec) Outstanding() int { return 0 }
func (g *gateExec) Shutdown() error  { return nil }

func (g *gateExec) submitted() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.msgs))
	for i, m := range g.msgs {
		out[i] = m.App
	}
	return out
}

// TestCancelBeforeDispatch cancels a task still waiting on a dependency: the
// future fails with the cancellation error, the descendant fails with a
// DependencyError, and nothing ever reaches the executor — resolving the
// dependency afterwards must not resurrect the launch.
func TestCancelBeforeDispatch(t *testing.T) {
	ge := newGateExec("gate")
	close(ge.gate) // open: this test must see zero submissions regardless
	// RetainRecords: the test reads the canceled record's state afterwards.
	d, err := New(Config{Executors: []executor.Executor{ge}, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("noop", func(args []any, _ map[string]any) (any, error) { return args[0], nil })
	if err != nil {
		t.Fatal(err)
	}

	dep := future.New() // unresolved dependency keeps the task Pending
	ctx, cancel := context.WithCancel(context.Background())
	fut := app.Submit(ctx, []any{dep})
	child := app.Submit(context.Background(), []any{fut})

	cancel()
	if _, err := fut.Result(); err == nil {
		t.Fatal("canceled submission resolved")
	} else {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("error %v does not wrap ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	}
	var depErr *DependencyError
	if _, err := child.Result(); !errors.As(err, &depErr) {
		t.Fatalf("descendant error = %v, want DependencyError", err)
	} else if !errors.Is(err, ErrCanceled) {
		t.Fatalf("descendant error %v does not wrap the cancellation", err)
	}

	// Resolve the dependency late: the canceled task must stay dead.
	_ = dep.SetResult("late")
	d.WaitAll()
	if got := ge.submitted(); len(got) != 0 {
		t.Fatalf("canceled task reached the executor: %v", got)
	}
	if st := d.graph.Get(fut.TaskID).State(); st != task.Failed {
		t.Fatalf("canceled task state = %v, want failed", st)
	}
}

// TestCancelWhileQueuedInLane parks the lane runner on a gated executor,
// queues a second task behind it, cancels that task, and verifies the lane
// drops it on the floor: only the blocker is ever submitted.
func TestCancelWhileQueuedInLane(t *testing.T) {
	ge := newGateExec("gate")
	d, err := New(Config{Executors: []executor.Executor{ge}})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.PythonApp("noop", func(args []any, _ map[string]any) (any, error) { return args[0], nil })
	if err != nil {
		t.Fatal(err)
	}

	blocker := app.Call("blocker")
	<-ge.entered // lane runner is now parked inside SubmitBatch

	ctx, cancel := context.WithCancel(context.Background())
	victim := app.Submit(ctx, []any{"victim"})
	// Wait for the victim to be routed into the lane (queued counts the
	// blocker until its SubmitBatch returns, so the lane shows 2).
	waitFor(t, func() bool { return d.lanes["gate"].queued.Load() == 2 })

	cancel()
	if _, err := victim.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("victim error = %v, want ErrCanceled", err)
	}

	close(ge.gate)
	if _, err := blocker.Result(); err != nil {
		t.Fatal(err)
	}
	d.WaitAll()
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := ge.submitted(); len(got) != 1 || got[0] != "noop" {
		t.Fatalf("submitted = %v, want only the blocker", got)
	}
}

// TestCancelAfterCompletion verifies canceling a finished task is a no-op:
// the resolved value and terminal state are untouched.
func TestCancelAfterCompletion(t *testing.T) {
	// RetainRecords: cancelTask is poked directly at the terminal record.
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	app, err := d.PythonApp("echo", func(args []any, _ map[string]any) (any, error) { return args[0], nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fut := app.Submit(ctx, []any{42})
	v, err := fut.Result()
	if err != nil || v != 42 {
		t.Fatalf("Result = %v, %v", v, err)
	}
	cancel()
	// The AfterFunc watcher is stopped by the future's done callback, but
	// exercise cancelTask directly too: it must refuse terminal tasks.
	d.cancelTask(d.graph.Get(fut.TaskID), ErrCanceled)
	if v, err := fut.Result(); err != nil || v != 42 {
		t.Fatalf("after cancel: Result = %v, %v (must be unchanged)", v, err)
	}
	if st := d.graph.Get(fut.TaskID).State(); st != task.Done {
		t.Fatalf("state = %v, want done", st)
	}
}

// TestCancelAfterLaunchDropsThreadpoolWork cancels a task that already
// crossed the submission boundary into a threadpool input queue: the
// executor-side cancel drops it before a worker picks it up, so the app
// function never runs.
func TestCancelAfterLaunchDropsThreadpoolWork(t *testing.T) {
	reg := serialize.NewRegistry()
	tp := threadpool.New("tp", 1, reg)
	d, err := New(Config{Registry: reg, Executors: []executor.Executor{tp}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	release := make(chan struct{})
	var ran atomic.Int64
	block, err := d.PythonApp("block", func([]any, map[string]any) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count, err := d.PythonApp("count", func([]any, map[string]any) (any, error) {
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	blocker := block.Call()
	ctx, cancel := context.WithCancel(context.Background())
	victim := count.Submit(ctx, nil)
	// Both tasks submitted: the blocker occupies the only worker, the victim
	// sits in the threadpool's input queue.
	waitFor(t, func() bool { return tp.Outstanding() == 2 })
	rec := d.graph.Get(victim.TaskID)
	waitFor(t, func() bool { return rec.State() == task.Launched })

	cancel()
	if _, err := victim.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("victim error = %v, want ErrCanceled", err)
	}
	close(release)
	if _, err := blocker.Result(); err != nil {
		t.Fatal(err)
	}
	d.WaitAll()
	waitFor(t, func() bool { return tp.Outstanding() == 0 })
	if n := ran.Load(); n != 0 {
		t.Fatalf("canceled task ran %d times", n)
	}
}

// TestPriorityDispatchOrder backs up a lane behind a gated executor, submits
// tasks with distinct priorities, and verifies the lane dispatches them
// highest-priority-first (ties in submission order), not FIFO.
func TestPriorityDispatchOrder(t *testing.T) {
	ge := newGateExec("gate")
	d, err := New(Config{Executors: []executor.Executor{ge}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *App {
		app, err := d.PythonApp(name, func([]any, map[string]any) (any, error) { return name, nil })
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	blocker, low, mid, high := mk("blocker"), mk("low"), mk("mid"), mk("high")

	bf := blocker.Call()
	<-ge.entered // lane runner parked; everything below queues in the lane

	ctx := context.Background()
	lf := low.Submit(ctx, nil, WithPriority(1))
	hf := high.Submit(ctx, nil, WithPriority(10))
	mf := mid.Submit(ctx, nil, WithPriority(5))
	waitFor(t, func() bool { return d.lanes["gate"].queued.Load() == 4 })
	if p := d.lanes["gate"].maxQueuedPriority(); p != 10 {
		t.Fatalf("lane maxPriority = %d, want 10", p)
	}
	if loads := d.Loads(); loads[0].MaxQueuedPriority != 10 {
		t.Fatalf("Loads()[0].MaxQueuedPriority = %d, want 10", loads[0].MaxQueuedPriority)
	}

	close(ge.gate)
	for _, f := range []*future.Future{bf, lf, mf, hf} {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	got := ge.submitted()
	want := []string{"blocker", "high", "mid", "low"}
	if len(got) != len(want) {
		t.Fatalf("submitted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submitted = %v, want %v (high priority must dispatch first)", got, want)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
