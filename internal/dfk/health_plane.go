package dfk

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/health"
	"repro/internal/monitor"
	"repro/internal/task"
)

// healthPlane is the DFK-side assembly of the self-healing retry plane
// (internal/health): it classifies every failed attempt, paces retries
// through a delay heap with per-class deterministic backoff, tracks one
// circuit breaker per executor, and quarantines poison tasks. The plane is
// nil unless Config.Health is set; every hot-path touchpoint is a single nil
// check, so the disabled DFK is byte-identical to the pre-health one.
type healthPlane struct {
	d        *DFK
	policies [health.NumClasses]health.Policy
	breakers map[string]*health.Breaker
	seed     int64
	// quarantineAfter is the distinct-manager kill count that quarantines a
	// task; 0 disables quarantine.
	quarantineAfter int
	pinnedFailFast  bool

	mu   sync.Mutex
	heap delayHeap
	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// backoffs counts scheduled backoffs for monitor rate-limiting.
	backoffs atomic.Int64
}

func newHealthPlane(d *DFK, opts *health.Options) *healthPlane {
	hp := &healthPlane{
		d:               d,
		policies:        opts.PolicyTable(),
		breakers:        make(map[string]*health.Breaker, len(d.execList)),
		seed:            opts.Seed,
		quarantineAfter: opts.QuarantineAfter,
		pinnedFailFast:  opts.PinnedFailFast,
		wake:            make(chan struct{}, 1),
		done:            make(chan struct{}),
	}
	if hp.seed == 0 {
		hp.seed = d.cfg.Seed
	}
	switch {
	case hp.quarantineAfter == 0:
		hp.quarantineAfter = 3
	case hp.quarantineAfter < 0:
		hp.quarantineAfter = 0
	}
	for _, ex := range d.execList {
		b := health.NewBreaker(opts.Breaker)
		label := ex.Label()
		b.SetTransitionHook(func(from, to health.BreakerState) {
			hp.emitTransition(label, from, to)
		})
		hp.breakers[label] = b
	}
	hp.wg.Add(1)
	go hp.runner()
	return hp
}

// close stops the delay runner and releases any attempt still parked in the
// heap. Shutdown calls it after wg.Wait(), so the heap is empty in practice
// (a task awaiting backoff is non-terminal and holds the task waitgroup);
// the drain is defensive.
func (hp *healthPlane) close() {
	close(hp.done)
	hp.wg.Wait()
	hp.mu.Lock()
	for _, dl := range hp.heap {
		dl.pl.payload.Release()
	}
	hp.heap = nil
	hp.mu.Unlock()
}

// state reports one executor's breaker position for sched.Load.
func (hp *healthPlane) state(label string) string {
	b := hp.breakers[label]
	if b == nil {
		return ""
	}
	return b.State().String()
}

// routable reports whether an executor's breaker currently admits work.
func (hp *healthPlane) routable(label string) bool {
	b := hp.breakers[label]
	return b != nil && b.Routable()
}

// filterRoutable narrows a candidate set to executors whose breakers admit
// work. The all-healthy case — the steady state — returns the input slice
// untouched, so routing allocates nothing until a breaker actually opens.
// ok is false when no candidate is admissible.
func (hp *healthPlane) filterRoutable(candidates []executor.Executor) (out []executor.Executor, ok bool) {
	for i, c := range candidates {
		if hp.routable(c.Label()) {
			if out != nil {
				out = append(out, c)
			}
			continue
		}
		if out == nil {
			// First rejection: copy the admissible prefix.
			out = make([]executor.Executor, i, len(candidates))
			copy(out, candidates[:i])
		}
	}
	if out == nil {
		return candidates, true
	}
	return out, len(out) > 0
}

// acquire reserves a probe slot on the picked executor (no-op outside
// half-open).
func (hp *healthPlane) acquire(label string) {
	if b := hp.breakers[label]; b != nil {
		b.Acquire()
	}
}

// recordSuccess feeds a completed attempt into its executor's breaker.
func (hp *healthPlane) recordSuccess(label string) {
	if b := hp.breakers[label]; b != nil {
		b.Record(true)
	}
}

// attemptFailed is the health-plane replacement for attemptDone's inline
// retry path: classify the failure, update the executor's breaker, check the
// poison-kill history, charge (or forgive) the retry budget per the class
// policy, and schedule the next attempt after deterministic backoff. Runs
// inside the caller's Enter/Exit window on pl.rec.
func (hp *healthPlane) attemptFailed(pl *pendingLaunch, err error) {
	d := hp.d
	cls := health.Classify(err)
	if errors.Is(err, ErrTimeout) {
		// The timeout sentinel lives in this package; pre-classify before
		// the taxonomy's chain walk (which cannot import it).
		cls = health.ClassTimeout
	}
	label := pl.rec.Executor()
	// Breaker bookkeeping: executor-fault classes count against the breaker;
	// a task fault is a delivered verdict — evidence of executor health, not
	// sickness. Overload never indicts anyone (no executor ran the attempt).
	if label != "" {
		if b := hp.breakers[label]; b != nil {
			if cls.ExecutorFault() {
				b.Record(false)
			} else if cls == health.ClassTaskFault {
				b.Record(true)
			}
		}
	}
	// Poison bookkeeping: a lost manager joins the attempt chain's distinct-
	// kill history, and crossing the quarantine bar fails the task permanently
	// with the full history — before any retry-budget consideration, because
	// re-dispatching a decapitating task is never worth a budget check.
	if cls == health.ClassExecutorLost {
		key := ""
		var le *executor.LostError
		if errors.As(err, &le) {
			key = le.Manager
			if key == "" {
				key = le.Detail
			}
		}
		if key != "" && !containsStr(pl.kills, key) {
			pl.kills = append(pl.kills, key)
		}
		if hp.quarantineAfter > 0 && len(pl.kills) >= hp.quarantineAfter {
			qerr := &health.QuarantineError{TaskID: pl.rec.ID, Kills: pl.kills, Last: err}
			hp.emitQuarantine(pl, qerr)
			d.failTask(pl.rec, qerr)
			return
		}
	}
	pol := hp.policies[cls]
	charge := pol.Charge
	if !charge {
		maxFree := pol.MaxFree
		if maxFree > 255 {
			maxFree = 255 // free counters are uint8; saturate, never wrap
		}
		if int(pl.free[cls]) < maxFree {
			pl.free[cls]++
		} else {
			charge = true // free allowance exhausted; back to the budget
		}
	}
	if charge && pl.rec.IncAttempts() > pl.rec.MaxRetries() {
		d.failTask(pl.rec, err)
		return
	}
	// Same state discipline as the inline path: a queued attempt is still
	// Pending and simply re-enters; a launched one moves to Retrying.
	st := pl.rec.State()
	retryable := false
	if st == task.Pending {
		d.emitState(pl.rec, st.String(), "requeued")
		retryable = true
	} else if pl.rec.SetState(task.Retrying) == nil {
		d.emitState(pl.rec, st.String(), "retrying")
		retryable = true
	}
	if !retryable {
		d.failTask(pl.rec, err)
		return
	}
	next := &pendingLaunch{
		d: d, rec: pl.rec, gen: pl.gen, app: pl.app,
		args: pl.args, kwargs: pl.kwargs,
		payload: pl.payload.Retain(),
		wireID:  d.graph.NextID(), priority: pl.priority,
		tenant: pl.tenant, weight: pl.weight, digest: pl.digest,
		walKey: pl.walKey, walAttempt: pl.walAttempt + 1,
		kills: pl.kills, free: pl.free,
	}
	if !pol.Failover && label != "" {
		// Retry affinity: a non-failover class prefers the executor it failed
		// on, as long as its breaker keeps admitting (router honors stick).
		next.stick = label
	}
	// Free retries log Retry records too: the durable launch count tracks
	// every launch, so recovery's replay stays truthful even though the
	// in-memory budget was not charged.
	if next.walKey != 0 {
		if werr := d.wal.Retry(next.walKey, next.walAttempt); werr != nil {
			d.emitWAL(pl.rec.ID, "retry", werr)
		}
	}
	delay := pol.Delay(hp.seed, pl.rec.ID, next.walAttempt)
	hp.emitBackoff(pl, cls, next.walAttempt, delay)
	if delay <= 0 {
		// Zero-backoff classes (timeout) re-enter dispatch immediately; the
		// attempt clock re-arms in enqueueAttempt either way.
		d.enqueueAttempt(next)
		return
	}
	hp.schedule(next, delay)
}

func containsStr(s []string, v string) bool {
	for _, e := range s {
		if e == v {
			return true
		}
	}
	return false
}

// delayedLaunch is one attempt parked until its backoff expires.
type delayedLaunch struct {
	at time.Time
	pl *pendingLaunch
}

// delayHeap is a min-heap on release time.
type delayHeap []delayedLaunch

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayedLaunch)) }
func (h *delayHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// schedule parks an attempt until its backoff expires, then re-enters it
// through the dispatch queue. The attempt's timeout clock starts at the
// re-launch (enqueueAttempt arms it), not here — backoff time is never
// charged against the attempt.
func (hp *healthPlane) schedule(pl *pendingLaunch, delay time.Duration) {
	hp.mu.Lock()
	heap.Push(&hp.heap, delayedLaunch{at: time.Now().Add(delay), pl: pl})
	hp.mu.Unlock()
	select {
	case hp.wake <- struct{}{}:
	default:
	}
}

// runner releases parked attempts as their backoffs expire.
func (hp *healthPlane) runner() {
	defer hp.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var due []*pendingLaunch
		wait := time.Hour
		now := time.Now()
		hp.mu.Lock()
		for len(hp.heap) > 0 {
			if d := hp.heap[0].at.Sub(now); d > 0 {
				wait = d
				break
			}
			due = append(due, heap.Pop(&hp.heap).(delayedLaunch).pl)
		}
		hp.mu.Unlock()
		for _, pl := range due {
			hp.release(pl)
		}
		// A stale expiry from a previous Reset costs one harmless extra loop
		// iteration; no drain needed.
		timer.Reset(wait)
		select {
		case <-hp.done:
			return
		case <-hp.wake:
		case <-timer.C:
		}
	}
}

// release re-enters one parked attempt, revalidating the record first: the
// task may have concluded while parked (cancellation, a racing terminal
// path), or the record may have been recycled entirely.
func (hp *healthPlane) release(pl *pendingLaunch) {
	if !pl.rec.Enter(pl.gen) {
		pl.payload.Release()
		return
	}
	if pl.rec.State().Terminal() {
		pl.rec.Exit()
		pl.payload.Release()
		return
	}
	hp.d.enqueueAttempt(pl)
	pl.rec.Exit()
}

// emitTransition records a breaker state change. Transitions are rare by
// construction (bounded by OpenFor cycles), so they are never rate-limited.
func (hp *healthPlane) emitTransition(label string, from, to health.BreakerState) {
	hp.d.mon.Emit(monitor.Event{
		Kind:     monitor.KindHealth,
		At:       time.Now(),
		Executor: label,
		From:     from.String(),
		To:       to.String(),
		Detail:   "breaker",
	})
}

// emitBackoff records a scheduled backoff, rate-limited like graph events:
// the first 16 per run and every 256th after, so small runs observe the
// plane working and kill-storms don't pay a monitor event per retry.
func (hp *healthPlane) emitBackoff(pl *pendingLaunch, cls health.Class, attempt int, delay time.Duration) {
	n := hp.backoffs.Add(1)
	if n > 16 && n%256 != 0 {
		return
	}
	hp.d.mon.Emit(monitor.Event{
		Kind:     monitor.KindHealth,
		At:       time.Now(),
		TaskID:   pl.rec.ID,
		App:      pl.app.name,
		Executor: pl.rec.Executor(),
		Detail:   fmt.Sprintf("backoff class=%s attempt=%d", cls, attempt),
		Duration: delay,
	})
}

// emitQuarantine records a poison-task quarantine (never rate-limited; each
// is a permanent task failure).
func (hp *healthPlane) emitQuarantine(pl *pendingLaunch, qerr *health.QuarantineError) {
	hp.d.mon.Emit(monitor.Event{
		Kind:     monitor.KindHealth,
		At:       time.Now(),
		TaskID:   pl.rec.ID,
		App:      pl.app.name,
		Executor: pl.rec.Executor(),
		Detail:   "quarantine: " + qerr.Error(),
	})
}
