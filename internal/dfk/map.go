package dfk

import (
	"repro/internal/future"
)

// This file implements the "constructs for delivering parallelism such as
// maps" the paper lists as future work (§7), built on the unchanged App +
// Future core.

// Map invokes the app once per argument tuple, returning the futures in
// input order. Each element of argsList is one invocation's positional
// argument list; futures inside tuples create dependencies as usual.
func (a *App) Map(argsList [][]any) []*future.Future {
	out := make([]*future.Future, len(argsList))
	for i, args := range argsList {
		out[i] = a.Call(args...)
	}
	return out
}

// Map1 is Map for single-argument apps: one invocation per input value.
func (a *App) Map1(inputs []any) []*future.Future {
	out := make([]*future.Future, len(inputs))
	for i, in := range inputs {
		out[i] = a.Call(in)
	}
	return out
}

// MapReduce fans mapper over inputs and feeds all mapper futures to reducer
// as a single []any argument — the §3.6 map-reduce pattern as one call.
func MapReduce(mapper, reducer *App, inputs []any) *future.Future {
	mapped := mapper.Map1(inputs)
	arg := make([]any, len(mapped))
	for i, f := range mapped {
		arg[i] = f
	}
	return reducer.Call(arg)
}

// Chain threads a value through the app n times, each step depending on the
// previous — the sequential-pipeline shape (Table 1's neuroscience row) as a
// construct.
func Chain(a *App, initial any, n int) *future.Future {
	cur := future.Completed(initial)
	for i := 0; i < n; i++ {
		cur = a.Call(cur)
	}
	return cur
}
