// Package dfk implements the DataFlowKernel (§4.1), Parsl's execution
// management engine. The DFK assembles a dynamic task dependency graph from
// app invocations, encodes edges as callbacks on dependent futures (making
// execution event driven with O(n+e) cost), routes ready tasks through a
// pluggable scheduler (random by default, matching the paper; round-robin
// and capacity-aware policies via internal/sched), dispatches them in
// batches onto configured executors, retries failures, consults the
// memoization/checkpoint table, injects data-staging tasks for remote
// files, and records every state transition with the monitoring subsystem.
package dfk

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/executor"
	"repro/internal/fair"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/memo"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/serialize"
	"repro/internal/task"
	"repro/internal/wal"
)

// Config configures a DataFlowKernel, the programmatic analogue of Parsl's
// Config object (§3.5). Code stays fixed; this changes per resource.
type Config struct {
	// Executors are the started-or-startable executors; at least one.
	Executors []executor.Executor
	// Registry is the shared app registry. In-process executors must be
	// constructed over the same registry so workers can resolve app names
	// (the analogue of workers importing the same Python modules). When
	// nil, the DFK creates a private registry.
	Registry *serialize.Registry
	// Retries is the per-task retry budget (0 = fail on first error).
	Retries int
	// Memoize enables app memoization program-wide (§4.6); individual apps
	// can override via WithMemoize.
	Memoize bool
	// Checkpoint, when non-empty, persists memoized results to this file
	// and preloads it, enabling restart-without-rerun (§3.7).
	Checkpoint string
	// Monitor receives execution events; nil disables monitoring.
	Monitor monitor.Sink
	// SharedCache is a content-addressed result cache shared across DFK
	// instances (and, via cache.Cache.Seed, across process restarts): a memo
	// miss consults it before dispatch, and a hit settles the task as
	// memoized — promoting the entry into the local memo table — without
	// re-execution or bytes moved. Keys are the same app|body|args-digest
	// triple the memo table uses, derived from the encode-once payload. Nil
	// (the default) disables the tier entirely; the launch path then pays
	// exactly one nil check.
	SharedCache *cache.Cache
	// DataManager stages remote files; nil disables data management.
	DataManager *data.Manager
	// TaskTimeout bounds a single execution attempt, measured from when
	// the ready task enters the dispatch queue — queue wait behind a
	// backlogged executor counts (0 = no timeout).
	TaskTimeout time.Duration
	// Seed makes executor selection deterministic in tests (0 = a random
	// seed). It feeds the default random scheduler; explicit Schedulers
	// own their randomness.
	Seed int64
	// Scheduler picks an executor for each ready task. Nil selects the
	// policy named by SchedulerPolicy.
	Scheduler sched.Scheduler
	// SchedulerPolicy names the policy when Scheduler is nil: "random"
	// (paper default, §4.1), "round-robin", or "least-outstanding".
	SchedulerPolicy string
	// DispatchBatch caps ready tasks drained per dispatch cycle and so the
	// largest batch handed to an executor's SubmitBatch (default 256).
	DispatchBatch int
	// MaxTasksPerTenant caps each tenant's live tasks — submitted but not
	// yet terminal — bounding memory under overload. 0 (the default) keeps
	// the pre-tenant behavior: unbounded admission for everyone. A task
	// counts against its tenant from App.Submit until its future settles.
	MaxTasksPerTenant int
	// TenantQuotas overrides MaxTasksPerTenant for specific tenant ids
	// (<= 0 entries mean unlimited for that tenant).
	TenantQuotas map[string]int
	// OverloadPolicy selects what a submission over quota does:
	// OverloadBlock (default) parks the submitter until completions free
	// quota or its context is canceled; OverloadShed fails fast with
	// ErrOverloaded.
	OverloadPolicy string
	// WAL enables the durable dataflow log: every task's state transitions
	// (submit with its encode-once payload, launch, retry, terminal) are
	// appended to a crash-safe write-ahead log under WALDir, and a restarted
	// process can call Recover to resolve terminal tasks from durable state
	// and re-admit in-flight ones exactly once. Off by default: with WAL
	// unset, no log exists and the dispatch path is byte-identical to the
	// pre-WAL behavior.
	WAL bool
	// WALDir is the log's segment directory; required when WAL is set.
	WALDir string
	// WALSegmentBytes caps a log segment before rotation (0 = 1 MiB).
	WALSegmentBytes int64
	// WALSyncInterval is the group-commit fsync cadence (0 = 2ms).
	WALSyncInterval time.Duration
	// WALCompactEvery folds terminal history into a snapshot after this many
	// terminal records (0 = 4096; negative disables auto-compaction).
	WALCompactEvery int
	// Health enables the self-healing retry plane (internal/health): typed
	// failure classification with per-class retry policies, deterministic
	// jittered backoff between attempts, per-executor circuit breakers, and
	// poison-task quarantine. Nil (the default) disables the plane entirely —
	// retries re-enter dispatch inline and the hot path is byte-identical to
	// the pre-health behavior. The zero &health.Options{} enables it with
	// defaults.
	Health *health.Options
	// RetainRecords keeps terminal task records resident in the graph
	// instead of pruning and recycling them, restoring the pre-reclamation
	// behavior where Graph().Get/Tasks can inspect concluded tasks post
	// hoc. Steady-state memory becomes O(total tasks) again — intended for
	// tests and debugging, not million-task runs.
	RetainRecords bool
}

// Overload policies for Config.OverloadPolicy.
const (
	// OverloadBlock propagates backpressure to the submitting goroutine.
	OverloadBlock = "block"
	// OverloadShed rejects over-quota submissions with ErrOverloaded.
	OverloadShed = "shed"
)

// DependencyError is set on a task's future when one of its dependencies
// failed; the task itself is never launched (§4.1).
type DependencyError struct {
	TaskID int64
	DepID  int64
	Err    error
}

// Error implements error.
func (e *DependencyError) Error() string {
	return fmt.Sprintf("task %d: dependency task %d failed: %v", e.TaskID, e.DepID, e.Err)
}

// Unwrap exposes the underlying dependency failure.
func (e *DependencyError) Unwrap() error { return e.Err }

// ErrTimeout is wrapped into task failures caused by TaskTimeout (or the
// per-call WithTimeout/WithDeadline overrides).
var ErrTimeout = errors.New("dfk: task attempt timed out")

// ErrCanceled is wrapped into task failures caused by cancellation of the
// submission context. The context's own error is wrapped alongside it, so
// errors.Is(err, context.Canceled) holds too.
var ErrCanceled = errors.New("dfk: submission canceled")

// ErrOverloaded is set on the returned future when a submission exceeds its
// tenant's quota under the shed policy. No task record is created: a shed
// submission never existed as far as the graph, the memo table, or the
// monitor's task log are concerned (a KindTenant event records the shed).
var ErrOverloaded = fair.ErrOverloaded

// DFK is the DataFlowKernel.
type DFK struct {
	cfg       Config
	registry  *serialize.Registry
	graph     *task.Graph
	memoizer  *memo.Memoizer
	cache     *cache.Cache // nil unless Config.SharedCache
	wal       *wal.Log     // nil unless Config.WAL
	mon       monitor.Sink
	executors map[string]executor.Executor
	execList  []executor.Executor // config order, for the scheduler

	schedr        sched.Scheduler
	schedUsesLoad bool
	// schedUsesDigest gates the per-attempt input-digest computation: only a
	// sched.DigestPicker policy consumes it, and ArgsHash allocates a string,
	// so load-blind and digest-blind configs must never pay for it.
	schedUsesDigest bool
	queue           *fair.MPSC[*pendingLaunch]
	lanes           map[string]*lane
	batchMax        int
	// hp is the self-healing retry plane; nil unless Config.Health is set.
	hp *healthPlane
	// adm bounds live tasks per tenant at the submission boundary; nil when
	// no quota is configured (the default, behavior-identical path).
	adm        *fair.Admission
	dispatchWG sync.WaitGroup
	laneWG     sync.WaitGroup

	wg sync.WaitGroup
	// mu orders submissions against Shutdown: submitters hold it shared (a
	// per-submit exclusive lock would serialize the hot path), Shutdown
	// exclusively, so every wg.Add happens-before Shutdown's wg.Wait.
	mu       sync.RWMutex
	shutdown bool
}

// New constructs and starts a DataFlowKernel: all executors are started and
// the checkpoint (if any) is loaded.
func New(cfg Config) (*DFK, error) {
	if len(cfg.Executors) == 0 {
		return nil, errors.New("dfk: config needs at least one executor")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = serialize.NewRegistry()
	}
	d := &DFK{
		cfg:       cfg,
		registry:  reg,
		graph:     task.NewGraph(),
		executors: make(map[string]executor.Executor, len(cfg.Executors)),
		queue:     fair.NewMPSC(func(pl *pendingLaunch) string { return pl.tenant }),
		batchMax:  cfg.DispatchBatch,
	}
	if d.batchMax <= 0 {
		d.batchMax = 256
	}
	// Validate the policy string even in quota-less configs, so a typo is
	// rejected where it was written, not when quotas are enabled later.
	var policy fair.Policy
	switch cfg.OverloadPolicy {
	case "", OverloadBlock:
		policy = fair.Block
	case OverloadShed:
		policy = fair.Shed
	default:
		return nil, fmt.Errorf("dfk: unknown overload policy %q", cfg.OverloadPolicy)
	}
	if cfg.MaxTasksPerTenant > 0 || len(cfg.TenantQuotas) > 0 {
		d.adm = fair.NewAdmission(cfg.MaxTasksPerTenant, cfg.TenantQuotas, policy)
	}
	d.schedr = cfg.Scheduler
	if d.schedr == nil {
		// sched.ByName derives its own random seed for Seed == 0.
		var err error
		d.schedr, err = sched.ByName(cfg.SchedulerPolicy, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("dfk: %w", err)
		}
	}
	if la, ok := d.schedr.(sched.LoadAware); ok && la.UsesLoad() {
		d.schedUsesLoad = true
	}
	if _, ok := d.schedr.(sched.DigestPicker); ok {
		d.schedUsesDigest = true
	}
	d.cache = cfg.SharedCache

	if cfg.Monitor != nil {
		d.mon = cfg.Monitor
	} else {
		d.mon = monitor.Nop{}
	}

	var err error
	if cfg.Checkpoint != "" {
		d.memoizer, err = memo.NewWithCheckpoint(cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
	} else {
		d.memoizer = memo.New()
	}

	// On any startup failure, stop what was already started — the caller
	// gets a nil DFK and would otherwise have no handle to the leaked
	// executor goroutines (or the checkpoint file).
	abort := func(err error) (*DFK, error) {
		for _, ex := range d.execList {
			_ = ex.Shutdown()
		}
		_ = d.memoizer.Close()
		if d.wal != nil {
			_ = d.wal.Close()
		}
		return nil, err
	}
	if cfg.WAL {
		if cfg.WALDir == "" {
			return abort(errors.New("dfk: Config.WAL requires WALDir"))
		}
		// OnCrash freezes the memoizer at the same injected record boundary
		// the log freezes at, so a simulated crash leaves both durable
		// layers consistent (see the contract in internal/memo).
		w, err := wal.Open(cfg.WALDir, wal.Options{
			SegmentBytes: cfg.WALSegmentBytes,
			SyncInterval: cfg.WALSyncInterval,
			CompactEvery: cfg.WALCompactEvery,
			OnCrash:      d.memoizer.Freeze,
		})
		if err != nil {
			return abort(fmt.Errorf("dfk: open wal: %w", err))
		}
		d.wal = w
	}
	for _, ex := range cfg.Executors {
		if _, dup := d.executors[ex.Label()]; dup {
			return abort(fmt.Errorf("dfk: duplicate executor label %q", ex.Label()))
		}
		if err := ex.Start(); err != nil {
			return abort(fmt.Errorf("dfk: start executor %s: %w", ex.Label(), err))
		}
		d.executors[ex.Label()] = ex
		d.execList = append(d.execList, ex)
	}
	d.lanes = make(map[string]*lane, len(d.execList))
	for _, ex := range d.execList {
		l := &lane{ex: ex, queue: fair.NewQueue(laneLess)}
		d.lanes[ex.Label()] = l
		d.laneWG.Add(1)
		go d.laneRunner(l)
	}
	if cfg.Health != nil {
		d.hp = newHealthPlane(d, cfg.Health)
	}
	d.dispatchWG.Add(1)
	go d.dispatcher()
	return d, nil
}

// Registry exposes the app registry (workers share it in-process).
func (d *DFK) Registry() *serialize.Registry { return d.registry }

// Graph exposes the task graph for monitoring and strategies.
func (d *DFK) Graph() *task.Graph { return d.graph }

// Memoizer exposes memo statistics for tests and benchmarks.
func (d *DFK) Memoizer() *memo.Memoizer { return d.memoizer }

// SharedCache exposes the shared content-addressed result tier; nil unless
// Config.SharedCache was set.
func (d *DFK) SharedCache() *cache.Cache { return d.cache }

// WAL exposes the durable dataflow log; nil unless Config.WAL is set.
func (d *DFK) WAL() *wal.Log { return d.wal }

// Executor returns the executor registered under label.
func (d *DFK) Executor(label string) (executor.Executor, bool) {
	ex, ok := d.executors[label]
	return ex, ok
}

// Scheduler exposes the active executor-selection policy.
func (d *DFK) Scheduler() sched.Scheduler { return d.schedr }

// Loads samples live load signals from every configured executor, in config
// order — the same view the capacity-aware scheduler decides from. Each
// Load carries the highest dispatch priority still queued in the executor's
// lane and the lane backlog's per-tenant composition, so strategies can see
// urgent backlog — and whose it is — not just its size.
func (d *DFK) Loads() []sched.Load {
	out := sched.Loads(d.execList)
	for i, ex := range d.execList {
		l := d.lanes[ex.Label()]
		out[i].MaxQueuedPriority = l.maxQueuedPriority()
		// The lane backlog merges with (rather than replaces) whatever
		// broker-side backlog LoadOf sampled from the executor itself — a
		// sharded HTEX reports its queue depth by tenant merged across
		// shards, and the full picture is lane + broker.
		if lb := l.queue.PerTenant(); lb != nil {
			if out[i].TenantBacklog == nil {
				out[i].TenantBacklog = lb
			} else {
				for t, n := range lb {
					out[i].TenantBacklog[t] += n
				}
			}
		}
		if d.hp != nil {
			out[i].Health = d.hp.state(ex.Label())
		}
	}
	return out
}

// TenantBacklog reports queued-but-unrouted tasks per tenant in the routing
// queue — the client-side admission backlog, before executor lanes.
func (d *DFK) TenantBacklog() map[string]int { return d.queue.PerTenant() }

// TenantLive reports a tenant's live (admitted, not yet terminal) task
// count; always 0 when no quota is configured, since nothing is counted.
func (d *DFK) TenantLive(tenant string) int {
	if d.adm == nil {
		return 0
	}
	return d.adm.Live(tenant)
}

// App is an invocable Parsl app — what the @python_app/@bash_app decorators
// produce. Calling it registers a task and returns its future immediately.
type App struct {
	dfk      *DFK
	name     string
	memoize  bool
	hints    []string
	bodyHash string
}

// AppOption customizes app registration.
type AppOption func(*appOpts)

type appOpts struct {
	memoize   *bool
	hints     []string
	version   string
	bashOpts  app.Options
	isBashSet bool
}

// WithMemoize overrides the program-level memoization default for this app
// ("memoization can be defined at both the program and individual App
// levels", §4.6).
func WithMemoize(on bool) AppOption {
	return func(o *appOpts) { o.memoize = &on }
}

// WithExecutors pins the app to specific executor labels (execution hints).
func WithExecutors(labels ...string) AppOption {
	return func(o *appOpts) { o.hints = labels }
}

// WithVersion sets the app body version used in memo keys; bump it to model
// editing the function body.
func WithVersion(v string) AppOption {
	return func(o *appOpts) { o.version = v }
}

// WithBashOptions sets sandbox/timeout options for Bash apps.
func WithBashOptions(opts app.Options) AppOption {
	return func(o *appOpts) { o.bashOpts = opts; o.isBashSet = true }
}

// PythonApp registers a pure function as an app (the @python_app analogue).
func (d *DFK) PythonApp(name string, fn serialize.Fn, opts ...AppOption) (*App, error) {
	return d.registerApp(name, fn, opts)
}

// BashApp registers a command-line-rendering app (the @bash_app analogue).
// Its future resolves to an app.BashResult.
func (d *DFK) BashApp(name string, tmpl app.BashTemplate, opts ...AppOption) (*App, error) {
	var o appOpts
	for _, opt := range opts {
		opt(&o)
	}
	fn := app.WrapBash(tmpl, o.bashOpts)
	return d.registerApp(name, fn, opts)
}

func (d *DFK) registerApp(name string, fn serialize.Fn, opts []AppOption) (*App, error) {
	o := appOpts{version: "v1"}
	for _, opt := range opts {
		opt(&o)
	}
	if err := d.registry.RegisterVersion(name, o.version, fn); err != nil {
		return nil, err
	}
	entry, _ := d.registry.Lookup(name)
	for _, h := range o.hints {
		if _, ok := d.executors[h]; !ok {
			return nil, fmt.Errorf("dfk: app %q hints unknown executor %q", name, h)
		}
	}
	memoize := d.cfg.Memoize
	if o.memoize != nil {
		memoize = *o.memoize
	}
	return &App{dfk: d, name: name, memoize: memoize, hints: o.hints, bodyHash: entry.BodyHash()}, nil
}

// Submit invokes the app asynchronously with positional args under ctx,
// returning the AppFuture. Futures among the args become dependencies.
// Canceling ctx before the task completes cancels it: the future fails with
// an error wrapping ErrCanceled (and the context's error), dependents fail
// with a DependencyError, and work not yet started is dropped from the
// dispatch pipeline and, where the executor supports it, from the executor
// itself. CallOptions override registration-time and DFK-wide defaults for
// this invocation only.
func (a *App) Submit(ctx context.Context, args []any, opts ...CallOption) *future.Future {
	return a.SubmitKw(ctx, nil, args, opts...)
}

// SubmitKw is Submit with keyword arguments.
func (a *App) SubmitKw(ctx context.Context, kwargs map[string]any, args []any, opts ...CallOption) *future.Future {
	if len(opts) == 0 {
		// Option-free fast path: &o below escapes into the opaque option
		// funcs, heap-allocating on every call; plain submissions skip it.
		return a.dfk.submit(ctx, a, args, kwargs, callOpts{})
	}
	var o callOpts
	for _, opt := range opts {
		opt(&o)
	}
	return a.dfk.submit(ctx, a, args, kwargs, o)
}

// Call invokes the app asynchronously with positional args, returning the
// AppFuture. It is Submit under a background context, kept as the
// compatibility surface for programs that predate the context-aware API.
func (a *App) Call(args ...any) *future.Future {
	return a.Submit(context.Background(), args)
}

// CallKw invokes the app with keyword and positional arguments.
func (a *App) CallKw(kwargs map[string]any, args ...any) *future.Future {
	return a.SubmitKw(context.Background(), kwargs, args)
}

// submit is the core of App invocation: admit the submission against its
// tenant's quota, build the task record, apply the per-call options, wire
// dependency callbacks and the cancellation watcher, and launch when ready.
//
// The returned future is captured before anything that could conclude the
// task: a synchronous terminal path (memo hit, dependency already failed)
// retires the record, and a retired record may be recycled — its Future
// field cleared — before submit returns.
func (d *DFK) submit(ctx context.Context, a *App, args []any, kwargs map[string]any, o callOpts) *future.Future {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return future.FromError(fmt.Errorf("%w: %w", ErrCanceled, err))
	}
	// Admission runs before anything is allocated or registered: a shed (or
	// canceled-while-blocked) submission leaves no trace in the graph. It
	// must stay on the submitting goroutine — blocking here is safe because
	// quota is released by task-retirement bookkeeping that never passes
	// through admission (see the invariant note in dispatch.go).
	admitted := false
	if d.adm != nil && !o.noAdmission {
		waited, err := d.adm.Admit(ctx, o.tenant)
		if err != nil {
			if errors.Is(err, fair.ErrOverloaded) {
				d.emitTenant(o.tenant, "shed", 0)
				return future.FromError(fmt.Errorf(
					"dfk: tenant %q over quota %d: %w", o.tenant, d.adm.QuotaFor(o.tenant), err))
			}
			// Context canceled (or deadline exceeded) while parked.
			return future.FromError(fmt.Errorf("%w: %w", ErrCanceled, err))
		}
		if waited > 0 {
			d.emitTenant(o.tenant, "admitted", waited)
		}
		admitted = true
	}
	d.mu.RLock()
	if d.shutdown {
		d.mu.RUnlock()
		if admitted {
			d.adm.Release(o.tenant)
		}
		return future.FromError(executor.ErrShutdown)
	}
	d.wg.Add(1)
	d.mu.RUnlock()

	id := d.graph.NextID()
	rec := task.NewRecord(id, a.name, args, kwargs)
	fut := rec.Future
	// The retire path releases the quota slot whichever way the task
	// concluded — done, failed, memoized, or canceled — so admission
	// accounting cannot leak.
	if admitted {
		rec.SetAdmitted()
	}
	rec.SetTenant(o.tenant, o.weight)
	rec.SetMaxRetries(d.cfg.Retries)
	if o.retries != nil {
		rec.SetMaxRetries(*o.retries)
	}
	rec.Hints = a.hints
	if o.executor != "" {
		rec.Hints = []string{o.executor}
	}
	rec.SetPriority(o.priority)
	if o.timeout > 0 {
		rec.SetTimeout(o.timeout)
	}
	if !o.deadline.IsZero() {
		rec.SetDeadline(o.deadline)
	}
	if o.memoKey != "" {
		rec.SetMemoKeyOverride(o.memoKey)
	}
	d.graph.Add(rec)
	gen := rec.Gen()
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			if !rec.Enter(gen) {
				return
			}
			d.cancelTask(rec, fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx)))
			rec.Exit()
		})
		// Retirement detaches the watcher (TakeCancelStop), replacing the
		// seed's per-task done callback.
		rec.SetCancelStop(stop)
	}

	// Collect dependencies: futures anywhere in args/kwargs, plus staging
	// tasks for unstaged remote files (§4.5).
	deps := collectFutures(args, kwargs)
	if d.cfg.DataManager != nil {
		for _, f := range collectFiles(args, kwargs) {
			if f.Remote() && !f.Staged() {
				deps = append(deps, d.stageInTask(f))
			}
		}
		// Pre-assign local homes for declared remote outputs so the app
		// body knows where to write (§4.5: path translation).
		if outs, ok := kwargs[app.KwOutputs].([]*data.File); ok {
			for _, f := range outs {
				if f.Remote() && !f.Staged() {
					f.SetLocalPath(filepath.Join(
						d.cfg.DataManager.WorkDir(),
						fmt.Sprintf("out_task%06d_%s", id, f.Filename())))
				}
			}
		}
	}

	d.emitState(rec, "", "pending")
	if err := rec.SetState(task.Pending); err != nil {
		d.failTask(rec, err)
		return fut
	}

	if len(deps) == 0 {
		d.launch(rec, a)
		return fut
	}

	rec.SetPendingDeps(len(deps))
	for _, dep := range deps {
		if dep.TaskID >= 0 {
			_ = d.graph.AddEdge(dep.TaskID, id)
		}
		dep := dep
		dep.AddDoneCallback(func(df *future.Future) {
			// Edge callbacks can fire long after the task concluded on
			// another path (dependency failure, cancellation); the
			// generation check drops them once the record has moved on.
			if !rec.Enter(gen) {
				return
			}
			defer rec.Exit()
			if err := df.Err(); err != nil {
				d.failTask(rec, &DependencyError{TaskID: id, DepID: dep.TaskID, Err: err})
				return
			}
			if rec.DepResolved() == 0 && rec.State() == task.Pending {
				d.launch(rec, a)
			}
		})
	}
	return fut
}

// stageInTask creates the hidden data-transfer task for a remote file. HTTP
// and FTP transfers run as ordinary tasks on an executor; Globus transfers
// are third-party and run directly under the data manager (§4.5).
func (d *DFK) stageInTask(f *data.File) *future.Future {
	dm := d.cfg.DataManager
	if data.ThirdParty(f.Scheme) {
		fut := future.New()
		go func() {
			if _, err := dm.StageIn(f); err != nil {
				_ = fut.SetError(err)
				return
			}
			_ = fut.SetResult(f.LocalPath())
		}()
		return fut
	}
	// RegisterIfAbsent keeps concurrent first submissions from racing a
	// Lookup-then-Register pair on the shared registry.
	name := "_parsl_stage_in"
	_ = d.registry.RegisterIfAbsent(name, func(args []any, _ map[string]any) (any, error) {
		url, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("dfk: stage-in got %T", args[0])
		}
		file, err := data.NewFile(url)
		if err != nil {
			return nil, err
		}
		return dm.StageIn(file)
	})
	stageApp := &App{dfk: d, name: name, bodyHash: "stage"}
	// The transfer task returns the staged path; record the translation on
	// the original *File here on the submit side, so it survives the
	// executor serialization boundary.
	inner := d.submit(context.Background(), stageApp, []any{f.URL}, nil, callOpts{noAdmission: true})
	return future.Then(inner, func(v any) (any, error) {
		p, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("dfk: stage-in returned %T", v)
		}
		f.SetLocalPath(p)
		return p, nil
	})
}

// launch resolves dependencies into concrete values, serializes them exactly
// once, consults memoization, and hands the ready task to the dispatch
// pipeline, which schedules it onto an executor and submits it batched with
// other ready tasks. The encode-once payload built here is the only
// serialization of the arguments for the task's whole lifetime: the memo
// hash reads it, in-process executors decode their defensive copy from it,
// remote executors ship it verbatim, and retries reuse it.
func (d *DFK) launch(rec *task.Record, a *App) {
	args, kwargs := resolveArgs(rec.Args, rec.Kwargs)

	// An explicit per-call memo key turns memoization on for the invocation
	// regardless of how the app was registered; otherwise the key is the
	// hash of app identity and the encode-once arguments (§4.6) — the same
	// payload the executors will consume, so memoization costs no extra
	// encoding.
	var payload *serialize.Payload
	var encErr error
	memoKey := rec.MemoKeyOverride()
	if memoKey == "" && a.memoize {
		if payload, encErr = serialize.EncodeArgs(args, kwargs); encErr == nil {
			memoKey = memo.KeyFromPayload(a.name, a.bodyHash, payload)
		}
	}
	if memoKey != "" {
		rec.SetMemoKey(memoKey)
		if v, hit := d.memoizer.Lookup(memoKey); hit {
			// The payload built for the key was never installed on the
			// record; drop its reference here (a memoized task ships no
			// bytes anywhere).
			payload.Release()
			from := rec.State().String()
			if rec.SetState(task.Memoized) == nil {
				d.emitState(rec, from, "memoized")
				_ = rec.Future.SetResult(v)
				d.retire(rec)
			}
			return
		}
		// Local miss: consult the shared content-addressed tier, where
		// another DFK (or an earlier incarnation of this one) may already
		// have keyed the result under the same app|body|args digest. A hit
		// settles exactly like a memo hit — and promotes the entry into the
		// local table (and its checkpoint), so the next lookup never leaves
		// the process.
		if d.cache != nil {
			if v, hit := d.cache.Get(memoKey); hit {
				_ = d.memoizer.Store(memoKey, v)
				payload.Release()
				from := rec.State().String()
				if rec.SetState(task.Memoized) == nil {
					d.emitState(rec, from, "memoized")
					_ = rec.Future.SetResult(v)
					d.retire(rec)
				}
				return
			}
		}
	}
	// Only a task that actually has to execute needs encodable arguments —
	// an explicit-key cache hit above is served even for args no executor
	// could accept. Past this point every executor needs the payload
	// (in-process ones for the immutability copy, remote ones for the
	// wire), so fail fast here with the serialization error instead of
	// letting each attempt rediscover it downstream.
	if payload == nil && encErr == nil {
		payload, encErr = serialize.EncodeArgs(args, kwargs)
	}
	if encErr != nil {
		d.failTask(rec, encErr)
		return
	}
	// The record owns the EncodeArgs reference (released at retirement);
	// the attempt takes its own, released when the attempt settles.
	rec.SetPayload(payload)
	// Durably record the submission — payload, memo key, tenant, priority,
	// and retry budget, everything recovery needs to re-admit the task
	// through this same boundary. A memo hit above never reaches the log:
	// it launches nothing, so there is nothing to recover. The hot-path cost
	// with WAL unset is one nil check.
	var walKey int64
	if d.wal != nil {
		k, err := d.wal.Submit(a.name, memoKey, rec.Tenant(), rec.Priority(),
			rec.TenantWeight(), rec.MaxRetries(), payload.Bytes())
		if err != nil {
			d.emitWAL(rec.ID, "submit", err)
		} else {
			walKey = k
			rec.SetWALKey(k)
		}
	}
	pl := &pendingLaunch{
		d: d, rec: rec, gen: rec.Gen(), app: a, args: args, kwargs: kwargs,
		payload: payload.Retain(),
		wireID:  rec.ID, priority: rec.Priority(),
		tenant: rec.Tenant(), weight: rec.TenantWeight(),
		walKey: walKey, walAttempt: 1,
	}
	if d.schedUsesDigest {
		pl.digest = payload.ArgsHash()
	}
	d.enqueueAttempt(pl)
}

// cancelTask concludes a task whose submission context was canceled. The
// task future fails with cause (dependents observe a DependencyError as for
// any failure), the in-flight attempt — if one exists — is concluded so its
// lane entry becomes a recognizable no-op, and the executor is asked to drop
// the attempt when it already crossed the submission boundary and the
// executor supports cancellation. Idempotent and a no-op on terminal tasks,
// so canceling after completion changes nothing.
func (d *DFK) cancelTask(rec *task.Record, cause error) {
	if rec.State().Terminal() {
		return
	}
	d.failTask(rec, cause)
	if af, wire := rec.Attempt(); af != nil {
		// Conclude the attempt after failTask: attemptDone's terminal guard
		// then sees a settled task and neither retries nor double-fails.
		_ = af.SetError(cause)
		if label := rec.Executor(); label != "" {
			if c, ok := d.executors[label].(executor.Canceler); ok {
				c.Cancel(wire)
			}
		}
	}
}

func (d *DFK) completeTask(rec *task.Record, a *App, v any) {
	if key := rec.MemoKey(); key != "" {
		_ = d.memoizer.Store(key, v)
		// Publish to the shared tier too, so sibling DFKs (and post-restart
		// incarnations seeded from it) serve this result without moving bytes.
		if d.cache != nil {
			d.cache.Put(key, v)
		}
	}
	// Stage out declared outputs before resolving the future, so a
	// consumer that waits on the future sees outputs at their final homes.
	if d.cfg.DataManager != nil {
		if outs, ok := rec.Kwargs[app.KwOutputs].([]*data.File); ok {
			for _, f := range outs {
				if f.Remote() && f.Staged() {
					if err := d.cfg.DataManager.StageOut(f, f.LocalPath()); err != nil {
						d.failTask(rec, err)
						return
					}
				}
			}
		}
	}
	from := rec.State().String()
	if rec.SetState(task.Done) != nil {
		// Lost the race to another terminal path (cancellation); that path
		// settled the future and retires the record.
		return
	}
	d.emitState(rec, from, "done")
	// The memo Store above ran first, so by the time this terminal record is
	// durable the checkpoint entry it points at is too (the checkpoint/WAL
	// consistency contract in internal/memo). The digest is the memo key;
	// recovery resolves the value through the checkpoint, never from the log.
	d.logTerminal(rec, wal.OutcomeDone, rec.MemoKey())
	_ = rec.Future.SetResult(v)
	d.retire(rec)
}

// failTask wraps the exception and associates it with the future (§4.1).
// Idempotent on terminal tasks — SetState decides the exactly-once winner —
// so a stale attempt racing its own retry (or timeout) cannot emit duplicate
// failure events for, or double-retire, a concluded task.
func (d *DFK) failTask(rec *task.Record, err error) {
	if rec.State().Terminal() {
		return
	}
	from := rec.State().String()
	if rec.SetState(task.Failed) != nil {
		return
	}
	d.emitState(rec, from, "failed")
	d.logTerminal(rec, wal.OutcomeFailed, "")
	_ = rec.Future.SetError(fmt.Errorf("dfk: task %d (%s): %w", rec.ID, rec.AppName, err))
	d.retire(rec)
}

// logTerminal appends the task's terminal record to the durable log. Must run
// before retire — retirement may recycle the record and clear its WAL key. A
// task that never logged a submission (WAL off, memo hit, pre-payload
// failure) has key 0 and logs nothing.
func (d *DFK) logTerminal(rec *task.Record, outcome wal.Outcome, digest string) {
	key := rec.WALKey()
	if key == 0 {
		return
	}
	if err := d.wal.Terminal(key, outcome, digest); err != nil {
		d.emitWAL(rec.ID, "terminal", err)
	}
}

// emitWAL records a durable-log append error. Post-crash appends (the log
// froze at an injected boundary) are expected, not noteworthy — the frozen
// log rejects everything by design, so they are skipped rather than flooding
// the monitor.
func (d *DFK) emitWAL(taskID int64, op string, err error) {
	if errors.Is(err, wal.ErrCrashed) {
		return
	}
	d.mon.Emit(monitor.Event{
		Kind:   monitor.KindWAL,
		At:     time.Now(),
		TaskID: taskID,
		Detail: op + ": " + err.Error(),
	})
}

// retire concludes a task's bookkeeping after its future settled: detach the
// cancellation watcher, release the admission slot and the record's payload
// reference, prune the record from the graph (unless Config.RetainRecords),
// and count the task done for WaitAll. Exactly one terminal path reaches
// here per task — the one whose SetState to a terminal state succeeded.
// Dependents observed the future inside SetResult/SetError (done callbacks
// run synchronously there), so pruning afterwards never hides a value a
// dependent still needs: results live on futures, not records.
func (d *DFK) retire(rec *task.Record) {
	if stop := rec.TakeCancelStop(); stop != nil {
		stop()
	}
	if rec.TakeAdmitted() {
		d.adm.Release(rec.Tenant())
	}
	if d.cfg.RetainRecords {
		d.wg.Done()
		return
	}
	if p := rec.Payload(); p != nil {
		rec.SetPayload(nil)
		p.Release()
	}
	id := rec.ID
	// After Graph.Retire the record may be recycled at any moment (as soon
	// as outstanding holds drain); it must not be touched again.
	pruned := d.graph.Retire(rec)
	if pruned == 1 || pruned%1024 == 0 {
		d.emitPrune(id, pruned)
	}
	d.wg.Done()
}

// emitPrune records a graph-reclamation event: emitted on a shard's first
// prune and every 1024th after, so small runs still observe reclamation and
// million-task runs don't pay a monitor event per task.
func (d *DFK) emitPrune(id int64, pruned int64) {
	d.mon.Emit(monitor.Event{
		Kind:   monitor.KindGraph,
		At:     time.Now(),
		TaskID: id,
		Detail: fmt.Sprintf("shard %d pruned %d records, %d live graph-wide",
			task.Shard(id), pruned, d.graph.LiveNodes()),
	})
}

// router picks executors for the tasks of one dispatch cycle. For
// load-aware schedulers it samples every executor's load once per cycle
// (seeded with the lane backlogs) and overlays its own routing decisions
// via Frozen.Bump, so a 256-task batch costs one probe sweep rather than
// 256 — load-blind policies skip the snapshot entirely.
type router struct {
	d      *DFK
	base   []executor.Executor      // full candidate set, frozen or raw
	frozen map[string]*sched.Frozen // nil for load-blind schedulers
}

func (d *DFK) newRouter() *router {
	r := &router{d: d, base: d.execList}
	if d.schedUsesLoad {
		r.frozen = make(map[string]*sched.Frozen, len(d.execList))
		r.base = make([]executor.Executor, len(d.execList))
		for i, ex := range d.execList {
			l := d.lanes[ex.Label()]
			f := sched.FreezeLane(ex, int(l.queued.Load()), l.maxQueuedPriority())
			r.frozen[ex.Label()] = f
			r.base[i] = f
		}
	}
	return r
}

// pick applies hints to narrow the eligible set and delegates the choice
// to the configured scheduler (the paper's "picked at random" policy is
// the default). Priority-aware schedulers additionally see the task's
// dispatch priority. With the health plane on, candidates whose circuit
// breakers reject work are filtered out first: an all-open set yields
// ErrNoHealthyExecutor (which the dispatcher converts into an overload
// park, not a task failure) unless the task is pinned and PinnedFailFast
// demands an immediate permanent failure; a retry with stick affinity
// prefers the executor its last attempt failed on while the breaker admits
// it. The returned executor is always one of the DFK's real executors,
// never a snapshot view.
func (r *router) pick(pl *pendingLaunch) (executor.Executor, error) {
	hints := pl.rec.Hints
	candidates := r.base
	if len(hints) > 0 {
		candidates = make([]executor.Executor, 0, len(hints))
		for _, h := range hints {
			if _, ok := r.d.executors[h]; !ok {
				return nil, fmt.Errorf("dfk: hinted executor %q not configured", h)
			}
			if r.frozen != nil {
				candidates = append(candidates, r.frozen[h])
			} else {
				candidates = append(candidates, r.d.executors[h])
			}
		}
	} else if pl.stick != "" && r.d.hp != nil && r.d.hp.routable(pl.stick) {
		if r.frozen != nil {
			candidates = []executor.Executor{r.frozen[pl.stick]}
		} else {
			candidates = []executor.Executor{r.d.executors[pl.stick]}
		}
	}
	if r.d.hp != nil {
		filtered, ok := r.d.hp.filterRoutable(candidates)
		if !ok {
			if len(hints) > 0 && r.d.hp.pinnedFailFast {
				// Deliberately does not wrap ErrNoHealthyExecutor: this is a
				// permanent failure, not a parkable overload.
				return nil, fmt.Errorf("dfk: pinned executor %q circuit open (fail-fast)", hints[0])
			}
			return nil, health.ErrNoHealthyExecutor
		}
		candidates = filtered
	}
	var ex executor.Executor
	var err error
	if dp, ok := r.d.schedr.(sched.DigestPicker); ok {
		ex, err = dp.PickDigest(candidates, pl.priority, pl.digest)
	} else if pp, ok := r.d.schedr.(sched.PriorityPicker); ok {
		ex, err = pp.PickPriority(candidates, pl.priority)
	} else {
		ex, err = r.d.schedr.Pick(candidates)
	}
	if err != nil {
		return nil, fmt.Errorf("dfk: %w", err)
	}
	// Guard user-supplied schedulers: a Pick that fabricates an executor
	// outside the configured set must fail the task, not nil-deref the
	// dispatcher goroutine.
	real, ok := r.d.executors[ex.Label()]
	if !ok {
		return nil, fmt.Errorf("dfk: scheduler %q picked unknown executor %q", r.d.schedr.Name(), ex.Label())
	}
	if r.frozen != nil {
		r.frozen[real.Label()].Bump()
	}
	if r.d.hp != nil {
		r.d.hp.acquire(real.Label())
	}
	return real, nil
}

func (d *DFK) emitState(rec *task.Record, from, to string) {
	d.mon.Emit(monitor.Event{
		Kind:     monitor.KindTaskState,
		At:       time.Now(),
		TaskID:   rec.ID,
		App:      rec.AppName,
		From:     from,
		To:       to,
		Executor: rec.Executor(),
		Tenant:   rec.Tenant(),
	})
}

// emitTenant records an admission outcome ("shed", or "admitted" with the
// time the submitter spent parked) for the monitoring subsystem.
func (d *DFK) emitTenant(tenant, detail string, waited time.Duration) {
	d.mon.Emit(monitor.Event{
		Kind:     monitor.KindTenant,
		At:       time.Now(),
		Tenant:   tenant,
		Detail:   detail,
		Duration: waited,
	})
}

// WaitAll blocks until every submitted task reaches a terminal state.
func (d *DFK) WaitAll() { d.wg.Wait() }

// Outstanding returns the number of non-terminal tasks.
func (d *DFK) Outstanding() int { return d.graph.Outstanding() }

// Summary tallies tasks by state, for program-end reporting.
func (d *DFK) Summary() map[string]int {
	counts := d.graph.CountByState()
	out := make(map[string]int, len(counts))
	for s, n := range counts {
		out[s.String()] = n
	}
	return out
}

// Shutdown waits for outstanding tasks, then stops executors and closes the
// checkpoint and monitor.
func (d *DFK) Shutdown() error {
	d.mu.Lock()
	if d.shutdown {
		d.mu.Unlock()
		return nil
	}
	d.shutdown = true
	d.mu.Unlock()

	// Every task's future completes only after its final launch attempt, so
	// once wg drains nothing can push to the dispatch queue again; closing
	// it then lets the dispatcher drain and exit, after which the lanes can
	// no longer receive work and are drained the same way.
	d.wg.Wait()
	if d.hp != nil {
		// No task is terminal while parked for backoff, so the delay heap is
		// empty once wg drains; stopping the plane here cannot strand work.
		d.hp.close()
	}
	d.queue.Close()
	d.dispatchWG.Wait()
	for _, l := range d.lanes {
		l.queue.Close()
	}
	d.laneWG.Wait()
	var first error
	for _, ex := range d.executors {
		if err := ex.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	if err := d.memoizer.Close(); err != nil && first == nil {
		first = err
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := d.mon.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// collectFutures finds futures anywhere in the argument lists, including
// inside []any slices (one level, matching Parsl's treatment of list args).
func collectFutures(args []any, kwargs map[string]any) []*future.Future {
	var out []*future.Future
	add := func(v any) {
		switch t := v.(type) {
		case *future.Future:
			out = append(out, t)
		case []any:
			for _, e := range t {
				if f, ok := e.(*future.Future); ok {
					out = append(out, f)
				}
			}
		}
	}
	for _, a := range args {
		add(a)
	}
	for _, v := range kwargs {
		add(v)
	}
	return out
}

// collectFiles finds data files in args/kwargs including the inputs/outputs
// keyword lists.
func collectFiles(args []any, kwargs map[string]any) []*data.File {
	var out []*data.File
	add := func(v any) {
		switch t := v.(type) {
		case *data.File:
			out = append(out, t)
		case []*data.File:
			out = append(out, t...)
		case []any:
			for _, e := range t {
				if f, ok := e.(*data.File); ok {
					out = append(out, f)
				}
			}
		}
	}
	for _, a := range args {
		add(a)
	}
	for k, v := range kwargs {
		if k == app.KwOutputs {
			continue // outputs are produced, not consumed
		}
		add(v)
	}
	return out
}

// resolveArgs replaces futures with their resolved values (deps are done by
// the time this runs), recursing one level into []any. Argument lists with
// no futures anywhere — the common case, and the whole hot path of a
// dependency-free workload — are returned as-is without copying: the
// encode-once payload, not the arg slice, is what isolates executors from
// the submitting program.
func resolveArgs(args []any, kwargs map[string]any) ([]any, map[string]any) {
	hasFuture := func(v any) bool {
		switch t := v.(type) {
		case *future.Future:
			return true
		case []any:
			for _, e := range t {
				if _, ok := e.(*future.Future); ok {
					return true
				}
			}
		}
		return false
	}
	dirty := false
	for _, a := range args {
		if hasFuture(a) {
			dirty = true
			break
		}
	}
	if !dirty {
		for _, v := range kwargs {
			if hasFuture(v) {
				dirty = true
				break
			}
		}
	}
	if !dirty {
		return args, kwargs
	}
	res := func(v any) any {
		switch t := v.(type) {
		case *future.Future:
			return t.Value()
		case []any:
			cp := make([]any, len(t))
			for i, e := range t {
				if f, ok := e.(*future.Future); ok {
					cp[i] = f.Value()
				} else {
					cp[i] = e
				}
			}
			return cp
		default:
			return v
		}
	}
	outArgs := make([]any, len(args))
	for i, a := range args {
		outArgs[i] = res(a)
	}
	var outKw map[string]any
	if kwargs != nil {
		outKw = make(map[string]any, len(kwargs))
		for k, v := range kwargs {
			outKw[k] = res(v)
		}
	}
	return outArgs, outKw
}
