package dfk

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/globus"
	"repro/internal/serialize"
	"repro/internal/task"
)

func newDataDFK(t *testing.T, opts ...data.ManagerOption) *DFK {
	t.Helper()
	dm, err := data.NewManager(filepath.Join(t.TempDir(), "work"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Seed:        1,
		Registry:    reg,
		Executors:   []executor.Executor{threadpool.New("tp", 4, reg)},
		DataManager: dm,
		// Data tests look for hidden staging tasks in the graph afterwards.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown() })
	return d
}

// readFileApp returns an app that reads a *data.File's staged content.
func readFileApp(t *testing.T, d *DFK) *App {
	t.Helper()
	a, err := d.PythonApp("readfile", func(args []any, _ map[string]any) (any, error) {
		f := args[0].(*data.File)
		b, err := os.ReadFile(f.LocalPath())
		if err != nil {
			return nil, err
		}
		return string(b), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestImplicitHTTPStagingTask(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("remote-payload"))
	}))
	defer srv.Close()

	d := newDataDFK(t)
	read := readFileApp(t, d)
	f := data.MustFile(srv.URL + "/input.dat")
	v, err := read.Call(f).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != "remote-payload" {
		t.Fatalf("v = %v", v)
	}
	// A hidden staging task must exist in the graph.
	stagingTasks := 0
	for _, rec := range d.Graph().Tasks() {
		if rec.AppName == "_parsl_stage_in" {
			stagingTasks++
			if rec.State() != task.Done {
				t.Fatalf("staging task state = %v", rec.State())
			}
		}
	}
	if stagingTasks != 1 {
		t.Fatalf("staging tasks = %d", stagingTasks)
	}
}

func TestStagingSharedAcrossTasks(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		_, _ = w.Write([]byte("shared"))
	}))
	defer srv.Close()

	d := newDataDFK(t)
	read := readFileApp(t, d)
	f := data.MustFile(srv.URL + "/shared.dat")
	// First consumer stages; later consumers reuse the translation.
	if _, err := read.Call(f).Result(); err != nil {
		t.Fatal(err)
	}
	var futs []*future.Future
	for i := 0; i < 5; i++ {
		futs = append(futs, read.Call(f))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("server hit %d times, want 1 (staged once)", hits)
	}
}

func TestStagingFailureFailsDependentTask(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	d := newDataDFK(t)
	read := readFileApp(t, d)
	_, err := read.Call(data.MustFile(srv.URL + "/missing")).Result()
	if err == nil {
		t.Fatal("task with failed staging succeeded")
	}
}

func TestGlobusThirdPartyStagingBypassesExecutors(t *testing.T) {
	svc := globus.NewService()
	remote := svc.AddEndpoint("mdf")
	svc.AddEndpoint("compute")
	remote.Put("/dft/data.csv", []byte("dft"))
	tok := svc.Login(time.Hour)

	d := newDataDFK(t, data.WithGlobus(svc, tok, "compute"))
	read := readFileApp(t, d)
	v, err := read.Call(data.MustFile("globus://mdf/dft/data.csv")).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != "dft" {
		t.Fatalf("v = %v", v)
	}
	// Globus transfers run under the data manager, not as graph tasks.
	for _, rec := range d.Graph().Tasks() {
		if rec.AppName == "_parsl_stage_in" {
			t.Fatal("third-party transfer appeared as an executor task")
		}
	}
}

func TestOutputStagingToFTP(t *testing.T) {
	d := newDataDFK(t)
	write, err := d.PythonApp("writeout", func(args []any, kwargs map[string]any) (any, error) {
		outs := kwargs["outputs"].([]*data.File)
		return nil, os.WriteFile(outs[0].LocalPath(), []byte("result-bytes"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Local outputs translate to themselves: the app writes directly to
	// the final home, no stage-out task needed.
	final := filepath.Join(t.TempDir(), "out.txt")
	o := data.MustFile(final)
	if _, err := write.CallKw(map[string]any{"outputs": []*data.File{o}}).Result(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(final)
	if err != nil || string(b) != "result-bytes" {
		t.Fatalf("output = %q, %v", b, err)
	}
}

func TestRemoteOutputPreassignedLocalHome(t *testing.T) {
	svc := globus.NewService()
	archive := svc.AddEndpoint("archive")
	svc.AddEndpoint("compute")
	tok := svc.Login(time.Hour)
	d := newDataDFK(t, data.WithGlobus(svc, tok, "compute"))

	write, err := d.PythonApp("writeremote", func(args []any, kwargs map[string]any) (any, error) {
		outs := kwargs["outputs"].([]*data.File)
		if outs[0].LocalPath() == "" {
			return nil, os.ErrNotExist
		}
		return nil, os.WriteFile(outs[0].LocalPath(), []byte("pixels"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := data.MustFile("globus://archive/lsst/img1.fits")
	if _, err := write.CallKw(map[string]any{"outputs": []*data.File{out}}).Result(); err != nil {
		t.Fatal(err)
	}
	got, err := archive.Get("/lsst/img1.fits")
	if err != nil || string(got) != "pixels" {
		t.Fatalf("archive content = %q, %v", got, err)
	}
}
