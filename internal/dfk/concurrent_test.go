package dfk

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/serialize"
	"repro/internal/task"
)

// TestConcurrentSubmissionMixedDeps hammers App.Call from many goroutines
// with a mix of no-dep tasks, future dependencies, file-staging dependencies
// (which lazily register the hidden stage-in app — the Lookup/Register race
// fixed by RegisterIfAbsent), and failing dependency chains. Run under
// -race in CI. Afterwards every task must be terminal and the sharded
// graph's per-shard counts must sum to the task total.
func TestConcurrentSubmissionMixedDeps(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("payload:" + r.URL.Path))
	}))
	defer srv.Close()

	dm, err := data.NewManager(filepath.Join(t.TempDir(), "work"))
	if err != nil {
		t.Fatal(err)
	}
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Seed:     1,
		Registry: reg,
		Executors: []executor.Executor{
			threadpool.New("tp-a", 4, reg),
			threadpool.New("tp-b", 4, reg),
		},
		DataManager: dm,
		// This test audits every record after the drain, so keep them.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	mustApp := func(name string, fn serialize.Fn) *App {
		a, err := d.PythonApp(name, fn)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	echo := mustApp("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	sum := mustApp("sum", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, a := range args {
			total += a.(int)
		}
		return total, nil
	})
	readFile := mustApp("readfile", func(args []any, _ map[string]any) (any, error) {
		f := args[0].(*data.File)
		b, err := os.ReadFile(f.LocalPath())
		if err != nil {
			return nil, err
		}
		return string(b), nil
	})
	boom := mustApp("boom", func([]any, map[string]any) (any, error) {
		return nil, errors.New("boom")
	})

	const goroutines = 16
	const perG = 20
	var wg sync.WaitGroup
	futs := make([][]*future.Future, goroutines)
	wantErr := make([][]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev *future.Future
			for i := 0; i < perG; i++ {
				var f *future.Future
				expectErr := false
				switch i % 5 {
				case 0: // no dependencies
					f = echo.Call(i)
				case 1: // future dependency on the previous task
					if prev == nil {
						prev = future.Completed(1)
					}
					f = sum.Call(prev, 10)
				case 2: // file-staging dependency, unique file per task
					url := fmt.Sprintf("%s/g%d/i%d.dat", srv.URL, g, i)
					f = readFile.Call(data.MustFile(url))
				case 3: // chain of two futures
					a := echo.Call(g)
					f = sum.Call(a, echo.Call(i))
				default: // failing task plus a dependent that must see the failure
					bad := boom.Call()
					f = sum.Call(bad, 1)
					expectErr = true
				}
				futs[g] = append(futs[g], f)
				wantErr[g] = append(wantErr[g], expectErr)
				if !expectErr {
					prev = f
				}
			}
		}(g)
	}
	wg.Wait()
	d.WaitAll()

	for g := range futs {
		for i, f := range futs[g] {
			_, err := f.Result()
			if wantErr[g][i] {
				var de *DependencyError
				if err == nil {
					t.Fatalf("g%d/i%d: dependent of failing task succeeded", g, i)
				}
				if !errors.As(err, &de) {
					t.Fatalf("g%d/i%d: err = %v, want DependencyError", g, i, err)
				}
			} else if err != nil {
				t.Fatalf("g%d/i%d: %v", g, i, err)
			}
		}
	}

	graph := d.Graph()
	for _, rec := range graph.Tasks() {
		if !rec.State().Terminal() {
			t.Fatalf("task %d (%s) not terminal: %v", rec.ID, rec.AppName, rec.State())
		}
	}
	counts := graph.ShardCounts()
	sumCounts := 0
	for _, c := range counts {
		sumCounts += c
	}
	if sumCounts != graph.Len() {
		t.Fatalf("shard counts sum %d != Len %d", sumCounts, graph.Len())
	}
	if graph.Len() < goroutines*perG {
		t.Fatalf("graph has %d tasks, want >= %d", graph.Len(), goroutines*perG)
	}
	if d.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", d.Outstanding())
	}
}

// TestLeastOutstandingPolicyRoutesAroundBusyExecutor proves the
// capacity-aware policy is selectable from config and actually avoids a
// loaded executor: pool A is plugged with blocked tasks, so every unhinted
// task must land on pool B.
func TestLeastOutstandingPolicyRoutesAroundBusyExecutor(t *testing.T) {
	reg := serialize.NewRegistry()
	a := threadpool.New("pool-a", 1, reg)
	b := threadpool.New("pool-b", 1, reg)
	d, err := New(Config{
		Registry:        reg,
		Executors:       []executor.Executor{a, b},
		SchedulerPolicy: "least-outstanding",
		RetainRecords:   true, // test reads Executor() off terminal records
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if d.Scheduler().Name() != "least-outstanding" {
		t.Fatalf("scheduler = %s", d.Scheduler().Name())
	}

	release := make(chan struct{})
	quick, err := d.PythonApp("quick", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Plug pool A: 6 blocked tasks pinned there (1 running, 5 queued).
	const plugged = 6
	var blocked []*future.Future
	blockA, err := d.PythonApp("block-a", func([]any, map[string]any) (any, error) {
		<-release
		return nil, nil
	}, WithExecutors("pool-a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plugged; i++ {
		blocked = append(blocked, blockA.Call())
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Outstanding() < plugged {
		if time.Now().After(deadline) {
			t.Fatalf("pool-a outstanding = %d, want %d", a.Outstanding(), plugged)
		}
		time.Sleep(time.Millisecond)
	}

	// Loads exposes the same signals the scheduler routes by, in config
	// order.
	loads := d.Loads()
	if len(loads) != 2 || loads[0].Label != "pool-a" || loads[1].Label != "pool-b" {
		t.Fatalf("Loads = %+v", loads)
	}
	if loads[0].Outstanding < plugged || loads[0].Workers != 1 {
		t.Fatalf("pool-a load = %+v", loads[0])
	}

	var probes []*future.Future
	for i := 0; i < 4; i++ {
		probes = append(probes, quick.Call(i))
	}
	if err := future.Wait(probes...); err != nil {
		t.Fatal(err)
	}
	for _, f := range probes {
		rec := d.Graph().Get(f.TaskID)
		if rec.Executor() != "pool-b" {
			t.Fatalf("task %d ran on %q, want the idle pool-b", rec.ID, rec.Executor())
		}
	}
	close(release)
	if err := future.Wait(blocked...); err != nil {
		t.Fatal(err)
	}
}

// TestRoundRobinPolicyAlternates checks the deterministic policy end to end.
func TestRoundRobinPolicyAlternates(t *testing.T) {
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Registry: reg,
		Executors: []executor.Executor{
			threadpool.New("x", 1, reg),
			threadpool.New("y", 1, reg),
		},
		SchedulerPolicy: "round-robin",
		RetainRecords:   true, // test reads Executor() off terminal records
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	echo, err := d.PythonApp("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 8; i++ {
		f := echo.Call(i)
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
		seen[d.Graph().Get(f.TaskID).Executor()]++
	}
	if seen["x"] != 4 || seen["y"] != 4 {
		t.Fatalf("round-robin distribution = %v", seen)
	}
}

// TestUnknownSchedulerPolicyRejected: config typos fail fast at New.
func TestUnknownSchedulerPolicyRejected(t *testing.T) {
	reg := serialize.NewRegistry()
	_, err := New(Config{
		Registry:        reg,
		Executors:       []executor.Executor{threadpool.New("tp", 1, reg)},
		SchedulerPolicy: "fastest-first",
	})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestDispatchBatchesReachBatchSubmitter: with many ready tasks at once, the
// dispatcher must group them so the graph still completes and the tasks
// spread across executors (sanity of the grouping path, not a perf test).
func TestDispatchBatchesAcrossExecutors(t *testing.T) {
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Seed:     7,
		Registry: reg,
		Executors: []executor.Executor{
			threadpool.New("e1", 2, reg),
			threadpool.New("e2", 2, reg),
		},
		DispatchBatch: 8,
		RetainRecords: true, // test reads Executor() off terminal records
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	echo, err := d.PythonApp("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*future.Future
	for i := 0; i < 200; i++ {
		futs = append(futs, echo.Call(i))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, f := range futs {
		seen[d.Graph().Get(f.TaskID).Executor()]++
	}
	if seen["e1"] == 0 || seen["e2"] == 0 {
		t.Fatalf("batched dispatch starved an executor: %v", seen)
	}
	if rec := d.Graph().Get(futs[0].TaskID); rec.State() != task.Done {
		t.Fatalf("state = %v", rec.State())
	}
}

// TestTimeoutRetryDoesNotCorruptExecutorAccounting: a timed-out attempt may
// still be running remotely when its retry is submitted. Each attempt gets
// a distinct wire id, so the stale attempt's late result reconciles its own
// pending entry instead of completing (or leaking the outstanding counter
// of) the retry. Regression test for the load signal the capacity-aware
// scheduler depends on.
func TestTimeoutRetryDoesNotCorruptExecutorAccounting(t *testing.T) {
	reg := serialize.NewRegistry()
	tp := threadpool.New("tp", 4, reg)
	d, err := New(Config{
		Registry:    reg,
		Executors:   []executor.Executor{tp},
		TaskTimeout: 40 * time.Millisecond,
		Retries:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := d.PythonApp("slow", func([]any, map[string]any) (any, error) {
		time.Sleep(150 * time.Millisecond)
		return "late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f := slow.Call()
	if _, err := f.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Let both stale attempts finish on the workers, then the executor's
	// outstanding counter must return to zero.
	deadline := time.Now().Add(3 * time.Second)
	for tp.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding leaked: %d", tp.Outstanding())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueuedTimeoutStillRetries: an attempt that times out while waiting in
// the dispatch pipeline (never launched, so the record is still Pending)
// must consume a retry and re-enter the queue, not fail permanently with
// budget remaining.
func TestQueuedTimeoutStillRetries(t *testing.T) {
	reg := serialize.NewRegistry()
	tp := threadpool.New("tp", 1, reg)
	d, err := New(Config{
		Registry:    reg,
		Executors:   []executor.Executor{tp},
		TaskTimeout: 60 * time.Millisecond,
		Retries:     3,
		// Attempts() is read off the terminal record below.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	release := make(chan struct{})
	blocker, err := d.PythonApp("blocker", func([]any, map[string]any) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := d.PythonApp("quick", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only worker past the victim's first-attempt budget, then
	// release; a retry attempt must succeed.
	blockerFut := blocker.Call()
	time.Sleep(10 * time.Millisecond)
	victim := quick.Call("survived")
	time.AfterFunc(100*time.Millisecond, func() { close(release) })
	v, verr := victim.Result()
	if verr != nil {
		t.Fatalf("victim failed despite retry budget: %v", verr)
	}
	if v != "survived" {
		t.Fatalf("v = %v", v)
	}
	rec := d.Graph().Get(victim.TaskID)
	if rec.Attempts() == 0 {
		t.Fatal("queued timeout did not consume a retry attempt")
	}
	if _, err := blockerFut.Result(); err != nil && !errors.Is(err, ErrTimeout) {
		t.Fatalf("blocker: %v", err)
	}
}

// rogueSched fabricates an executor outside the DFK's configured set; the
// dispatcher must fail such tasks cleanly and silence their timeout timers.
type rogueSched struct{}

func (rogueSched) Name() string { return "rogue" }
func (rogueSched) Pick([]executor.Executor) (executor.Executor, error) {
	return threadpool.New("phantom", 1, serialize.NewRegistry()), nil
}

func TestPickErrorCompletesAttemptWithoutRetryEcho(t *testing.T) {
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Registry:    reg,
		Executors:   []executor.Executor{threadpool.New("real", 1, reg)},
		Scheduler:   rogueSched{},
		TaskTimeout: 30 * time.Millisecond,
		Retries:     2,
		// Attempts()/State() are read off the terminal record below.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	noop, err := d.PythonApp("noop", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	f := noop.Call()
	if _, err := f.Result(); err == nil {
		t.Fatal("task with unresolvable executor succeeded")
	}
	rec := d.Graph().Get(f.TaskID)
	// Let the (now-stopped) timeout window pass; the terminal task must not
	// be re-processed into bogus retry attempts by a stray timer.
	time.Sleep(80 * time.Millisecond)
	if got := rec.Attempts(); got != 0 {
		t.Fatalf("attempts = %d after pick failure; timer re-processed a terminal task", got)
	}
	if rec.State() != task.Failed {
		t.Fatalf("state = %v", rec.State())
	}
}

// failingStart is an executor whose Start always fails.
type failingStart struct{}

func (failingStart) Label() string                           { return "bad" }
func (failingStart) Start() error                            { return errors.New("bind failed") }
func (failingStart) Submit(serialize.TaskMsg) *future.Future { return future.Completed(nil) }
func (failingStart) Outstanding() int                        { return 0 }
func (failingStart) Shutdown() error                         { return nil }

// TestNewShutsDownStartedExecutorsOnFailure: a mid-loop Start failure must
// not leak the executors already started.
func TestNewShutsDownStartedExecutorsOnFailure(t *testing.T) {
	reg := serialize.NewRegistry()
	tp := threadpool.New("tp", 2, reg)
	if _, err := New(Config{Registry: reg, Executors: []executor.Executor{tp, failingStart{}}}); err == nil {
		t.Fatal("New succeeded with a failing executor")
	}
	// The already-started pool must have been shut down on the error path.
	fut := tp.Submit(serialize.TaskMsg{ID: 1, App: "x"})
	if _, err := fut.Result(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("started executor leaked: Submit err = %v", err)
	}
}
