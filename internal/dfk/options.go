package dfk

import "time"

// CallOption customizes one submission (App.Submit/SubmitKw). Registration
// options (AppOption) set per-app defaults; CallOptions override them per
// invocation and ride on the task record through the dispatch pipeline.
type CallOption func(*callOpts)

type callOpts struct {
	priority int
	executor string
	deadline time.Time
	timeout  time.Duration
	retries  *int
	memoKey  string
	tenant   string
	weight   int
	// noAdmission marks DFK-internal submissions (hidden stage-in tasks)
	// that must bypass tenant admission: the user task that spawned them
	// already holds a quota slot and cannot release it until they finish,
	// so admitting them against the same tenant could self-deadlock under
	// the block policy (or spuriously shed them under shed).
	noAdmission bool
}

// WithPriority sets the task's dispatch priority. Higher values dispatch
// first from a backlogged executor lane; the default is 0, and equal
// priorities dispatch in submission order.
func WithPriority(p int) CallOption {
	return func(o *callOpts) { o.priority = p }
}

// WithExecutor pins this invocation to one executor label, overriding the
// app's registration-time WithExecutors hints.
func WithExecutor(label string) CallOption {
	return func(o *callOpts) { o.executor = label }
}

// WithDeadline bounds every execution attempt by an absolute deadline,
// overriding Config.TaskTimeout. A deadline already passed when the task
// becomes ready fails it without dispatch.
func WithDeadline(t time.Time) CallOption {
	return func(o *callOpts) { o.deadline = t }
}

// WithTimeout bounds each execution attempt by d (measured, like
// Config.TaskTimeout, from when the ready task enters the dispatch queue),
// overriding the DFK-wide default for this call only.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOpts) { o.timeout = d }
}

// WithRetries overrides the DFK-wide retry budget for this call (0 = fail on
// first error).
func WithRetries(n int) CallOption {
	return func(o *callOpts) { o.retries = &n }
}

// WithMemoKey memoizes this invocation under an explicit key instead of the
// hash of app body and arguments, and enables memoization for the call even
// if the app was registered without it. Distinct invocations submitted with
// the same key share one result.
func WithMemoKey(key string) CallOption {
	return func(o *callOpts) { o.memoKey = key }
}

// WithTenant attributes this submission to a fair-queuing tenant. Every
// queue the task waits in — the DFK routing queue, the per-executor lanes,
// and the HTEX interchange — serves tenants by deficit round robin in
// proportion to weight, so a backlogged tenant cannot head-of-line-block the
// others; and when the DFK configures admission quotas
// (Config.MaxTasksPerTenant / TenantQuotas), the tenant's live tasks are
// bounded, blocking or shedding the submitter per Config.OverloadPolicy.
//
// weight sets the tenant's share relative to other tenants (latest
// submission wins; <= 0 leaves the current weight, which defaults to 1).
// Submissions without WithTenant belong to the default tenant ("", weight
// 1) and behave exactly as before multi-tenancy existed.
func WithTenant(id string, weight int) CallOption {
	return func(o *callOpts) { o.tenant = id; o.weight = weight }
}
