package dfk

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/monitor"
	"repro/internal/serialize"
)

// faultExec is a scriptable executor: fail decides, per submission ordinal,
// whether the attempt fails (returning the error to inject) or succeeds.
type faultExec struct {
	label string
	mu    sync.Mutex
	n     int
	fail  func(n int) error
}

func (f *faultExec) Label() string    { return f.label }
func (f *faultExec) Start() error     { return nil }
func (f *faultExec) Outstanding() int { return 0 }
func (f *faultExec) Shutdown() error  { return nil }

func (f *faultExec) submissions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *faultExec) Submit(msg serialize.TaskMsg) *future.Future {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	if err := f.fail(n); err != nil {
		return future.FromError(err)
	}
	fut := future.NewForTask(msg.ID)
	_ = fut.SetResult("ok")
	return fut
}

func executorHealth(t *testing.T, d *DFK, label string) string {
	t.Helper()
	for _, l := range d.Loads() {
		if l.Label == label {
			return l.Health
		}
	}
	t.Fatalf("no load entry for executor %q", label)
	return ""
}

func healthEvents(store *monitor.Store, detail string) []monitor.Event {
	var out []monitor.Event
	for _, e := range store.Events(monitor.KindHealth) {
		if strings.Contains(e.Detail, detail) {
			out = append(out, e)
		}
	}
	return out
}

// TestHealthFreeRetriesForgiveTransientFaults: with the plane on, a
// transient-wire injection does not consume the retry budget — a task with
// Retries=0 still completes once the fault stops firing.
func TestHealthFreeRetriesForgiveTransientFaults(t *testing.T) {
	restore := chaos.Enable(chaos.New(5, chaos.Plan{
		{Point: chaos.PointSubmitFail, Act: chaos.ActFailClass, Class: "transient-wire", Prob: 1, Max: 2},
	}))
	defer restore()
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) {
		c.Retries = 0
		c.Monitor = store
		c.Health = &health.Options{Seed: 5}
	})
	app, err := d.PythonApp("t", func(args []any, _ map[string]any) (any, error) { return "done", nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := app.Call().Result()
	if err != nil {
		t.Fatalf("task failed despite free transient retries: %v", err)
	}
	if v != "done" {
		t.Fatalf("v = %v", v)
	}
	if ev := healthEvents(store, "backoff class=transient-wire"); len(ev) != 2 {
		t.Fatalf("backoff events = %d, want 2: %+v", len(ev), ev)
	}
}

// TestHealthQuarantineAfterDistinctKills: an attempt chain that loses a
// distinct manager on every launch is quarantined at the configured bar with
// the full kill history, regardless of remaining retry budget.
func TestHealthQuarantineAfterDistinctKills(t *testing.T) {
	sick := &faultExec{label: "sick", fail: func(n int) error {
		return &executor.LostError{TaskID: int64(n), Detail: "killed mid-task", Manager: fmt.Sprintf("m%d", n)}
	}}
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) {
		c.Executors = []executor.Executor{sick}
		c.Retries = 100
		c.Monitor = store
		c.Health = &health.Options{Seed: 2} // QuarantineAfter defaults to 3
	})
	app, err := d.PythonApp("poison", func(args []any, _ map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Call().Result()
	if err == nil {
		t.Fatal("poison task succeeded")
	}
	var qe *health.QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("error is not a QuarantineError: %v", err)
	}
	if len(qe.Kills) != 3 {
		t.Fatalf("kill history = %v, want 3 distinct managers", qe.Kills)
	}
	var le *executor.LostError
	if !errors.As(err, &le) {
		t.Fatalf("quarantine does not unwrap to the last LostError: %v", err)
	}
	if n := sick.submissions(); n != 3 {
		t.Fatalf("launches = %d, want exactly 3 (quarantine on the third kill)", n)
	}
	if ev := healthEvents(store, "quarantine"); len(ev) != 1 {
		t.Fatalf("quarantine events = %d: %+v", len(ev), ev)
	}
}

// TestHealthBreakerOpensAndFailsOver: a persistently failing executor trips
// its breaker; class-eligible retries fail over to the healthy executor and
// every task completes.
func TestHealthBreakerOpensAndFailsOver(t *testing.T) {
	// One manager identity for every loss so the kill history never reaches
	// the quarantine bar — distinctness is what quarantine keys on.
	sick := &faultExec{label: "sick", fail: func(n int) error {
		return &executor.LostError{TaskID: int64(n), Detail: "gone", Manager: "m0"}
	}}
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) {
		reg := serialize.NewRegistry()
		c.Registry = reg
		c.Executors = []executor.Executor{sick, threadpool.New("tp", 4, reg)}
		c.SchedulerPolicy = "round-robin"
		c.Retries = 3
		c.Monitor = store
		c.Health = &health.Options{
			Seed:    7,
			Breaker: health.BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Minute},
		}
	})
	app, err := d.PythonApp("w", func(args []any, _ map[string]any) (any, error) { return args[0], nil })
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*future.Future, 8)
	for i := range futs {
		futs[i] = app.Call(i)
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatalf("task %d failed instead of failing over: %v", i, err)
		}
		if v != i {
			t.Fatalf("task %d result = %v", i, v)
		}
	}
	if got := executorHealth(t, d, "sick"); got != "open" {
		t.Fatalf("sick breaker = %q, want open", got)
	}
	if got := executorHealth(t, d, "tp"); got != "closed" {
		t.Fatalf("tp breaker = %q, want closed", got)
	}
	opened := false
	for _, e := range healthEvents(store, "breaker") {
		if e.Executor == "sick" && e.From == "closed" && e.To == "open" {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("no closed->open transition event for sick: %+v", store.Events(monitor.KindHealth))
	}
}

// TestHealthPinnedParkAndRecover: a task pinned to an executor whose breaker
// opens parks under overload backoff instead of failing, then completes
// through the half-open probe once the executor recovers.
func TestHealthPinnedParkAndRecover(t *testing.T) {
	sick := &faultExec{label: "sick", fail: func(n int) error {
		if n <= 2 {
			return &executor.LostError{TaskID: int64(n), Detail: "gone", Manager: "m0"}
		}
		return nil
	}}
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) {
		reg := serialize.NewRegistry()
		c.Registry = reg
		c.Executors = []executor.Executor{sick, threadpool.New("tp", 2, reg)}
		c.Monitor = store
		c.Health = &health.Options{
			Seed:    11,
			Breaker: health.BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: 50 * time.Millisecond, HalfOpenProbes: 1},
		}
	})
	app, err := d.PythonApp("pinned", func(args []any, _ map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Submit(context.Background(), nil, WithExecutor("sick")).Result(); err != nil {
		t.Fatalf("pinned task failed instead of parking through the open window: %v", err)
	}
	if got := executorHealth(t, d, "sick"); got != "closed" {
		t.Fatalf("sick breaker = %q after probe success, want closed", got)
	}
	if ev := healthEvents(store, "backoff class=overload"); len(ev) == 0 {
		t.Fatal("no overload backoff events: the pinned task never parked")
	}
	var seq []string
	for _, e := range healthEvents(store, "breaker") {
		if e.Executor == "sick" {
			seq = append(seq, e.From+"->"+e.To)
		}
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(seq) != len(want) {
		t.Fatalf("transition sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q", i, seq[i], want[i])
		}
	}
}

// TestHealthPinnedFailFast: with PinnedFailFast set, a task pinned to an
// open-circuit executor fails immediately instead of parking.
func TestHealthPinnedFailFast(t *testing.T) {
	sick := &faultExec{label: "sick", fail: func(n int) error {
		return &executor.LostError{TaskID: int64(n), Detail: "gone", Manager: "m0"}
	}}
	d := newDFK(t, func(c *Config) {
		reg := serialize.NewRegistry()
		c.Registry = reg
		c.Executors = []executor.Executor{sick, threadpool.New("tp", 2, reg)}
		c.SchedulerPolicy = "round-robin"
		c.Retries = 3
		c.Health = &health.Options{
			Seed:           13,
			PinnedFailFast: true,
			Breaker:        health.BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Minute},
		}
	})
	app, err := d.PythonApp("ff", func(args []any, _ map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Trip sick's breaker with unpinned tasks (they fail over and complete).
	futs := make([]*future.Future, 6)
	for i := range futs {
		futs[i] = app.Call()
	}
	for i, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatalf("opener task %d failed: %v", i, err)
		}
	}
	if got := executorHealth(t, d, "sick"); got != "open" {
		t.Fatalf("sick breaker = %q, want open", got)
	}
	_, err = app.Submit(context.Background(), nil, WithExecutor("sick")).Result()
	if err == nil {
		t.Fatal("pinned task succeeded against an open breaker under fail-fast")
	}
	if !strings.Contains(err.Error(), "fail-fast") {
		t.Fatalf("error does not name the fail-fast policy: %v", err)
	}
}

// TestHealthBackoffScheduleDeterministic: two runs with identical seeds see
// byte-identical backoff schedules in the monitor stream.
func TestHealthBackoffScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		restore := chaos.Enable(chaos.New(21, chaos.Plan{
			{Point: chaos.PointSubmitFail, Act: chaos.ActFailClass, Class: "transient-wire", Prob: 1, Max: 3},
		}))
		defer restore()
		store := monitor.NewStore()
		d := newDFK(t, func(c *Config) {
			c.Monitor = store
			c.Health = &health.Options{Seed: 9}
		})
		app, err := d.PythonApp("det", func(args []any, _ map[string]any) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Call().Result(); err != nil {
			t.Fatal(err)
		}
		if err := d.Shutdown(); err != nil {
			t.Fatal(err)
		}
		var delays []time.Duration
		for _, e := range healthEvents(store, "backoff") {
			delays = append(delays, e.Duration)
		}
		return delays
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedule lengths = %d, %d, want 3 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay[%d]: %v != %v across identically-seeded runs", i, a[i], b[i])
		}
	}
}
