package dfk

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/wal"
)

// TestRecycleReclaimsTerminalRecords drains a batch and asserts the graph
// kept nothing: every record pruned and recycled, futures still readable
// (they are deliberately not pooled), and the monitor saw reclamation.
func TestRecycleReclaimsTerminalRecords(t *testing.T) {
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) { c.Monitor = store })
	dbl, err := d.PythonApp("dbl-recycle", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = dbl.Call(i)
	}
	d.WaitAll()
	if live := d.Graph().LiveNodes(); live != 0 {
		t.Fatalf("LiveNodes = %d after drain, want 0", live)
	}
	if rec := d.Graph().RecycledNodes(); rec != n {
		t.Fatalf("RecycledNodes = %d, want %d", rec, n)
	}
	// The AppFuture outlives its record: results readable post-recycle.
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i*2 {
			t.Fatalf("task %d after recycle: %v, %v", i, v, err)
		}
	}
	if events := store.Events(monitor.KindGraph); len(events) == 0 {
		t.Fatal("no graph-reclamation events emitted")
	}
}

// TestRecycledRecordsCarryNoGhostState reuses pooled records across waves:
// a second wave must see fresh state, not residue from the first, and the
// recycled tally accumulates.
func TestRecycledRecordsCarryNoGhostState(t *testing.T) {
	d := newDFK(t, nil)
	inc, err := d.PythonApp("inc-recycle", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const wave = 100
	for w := 0; w < 2; w++ {
		for i := 0; i < wave; i++ {
			if v, err := inc.Call(w*1000 + i).Result(); err != nil || v != w*1000+i+1 {
				t.Fatalf("wave %d task %d: %v, %v", w, i, v, err)
			}
		}
		d.WaitAll()
	}
	if rec := d.Graph().RecycledNodes(); rec != 2*wave {
		t.Fatalf("RecycledNodes = %d, want %d", rec, 2*wave)
	}
}

// TestRecycleAcrossDependencyChain recycles upstream records while their
// futures still feed dependents: the chain must resolve correctly because
// dependency edges hold futures, never record pointers.
func TestRecycleAcrossDependencyChain(t *testing.T) {
	d := newDFK(t, nil)
	inc, err := d.PythonApp("inc-chain", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f := inc.Call(0)
	for i := 0; i < 50; i++ {
		f = inc.Call(f)
	}
	if v, err := f.Result(); err != nil || v != 51 {
		t.Fatalf("chain tail = %v, %v (want 51)", v, err)
	}
	d.WaitAll()
	if live := d.Graph().LiveNodes(); live != 0 {
		t.Fatalf("LiveNodes = %d after chain drain, want 0", live)
	}
}

// TestRetainRecordsKeepsGraph: the introspection escape hatch disables
// pruning so terminal records stay queryable.
func TestRetainRecordsKeepsGraph(t *testing.T) {
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	noop, err := d.PythonApp("noop-retain", func([]any, map[string]any) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := noop.Call(i).Result(); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitAll()
	if live := d.Graph().LiveNodes(); live != n {
		t.Fatalf("LiveNodes = %d with RetainRecords, want %d", live, n)
	}
	if rec := d.Graph().RecycledNodes(); rec != 0 {
		t.Fatalf("RecycledNodes = %d with RetainRecords, want 0", rec)
	}
	if got := len(d.Graph().Tasks()); got != n {
		t.Fatalf("Tasks() = %d records, want %d", got, n)
	}
}

// TestLateAttemptSettleAfterRecycleIsNoOp times an attempt out (failing and
// recycling the task) while the executor is still running it; the executor's
// eventual result relays into an already-settled attempt future against a
// recycled record. That late settle must be a clean no-op: no panic from the
// use-after-recycle guard, no resurrected state, graph fully reclaimed.
func TestLateAttemptSettleAfterRecycleIsNoOp(t *testing.T) {
	d := newDFK(t, nil)
	release := make(chan struct{})
	slow, err := d.PythonApp("slow-recycle", func([]any, map[string]any) (any, error) {
		<-release
		return "too late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fut := slow.Submit(context.Background(), nil, WithTimeout(20*time.Millisecond))
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	d.WaitAll() // task concluded and retired; worker still parked
	if live := d.Graph().LiveNodes(); live != 0 {
		t.Fatalf("LiveNodes = %d after timeout conclusion, want 0", live)
	}
	// Unpark the worker: its success now chases a recycled record.
	close(release)
	// Shutdown (via cleanup) joins the worker; give the relay a moment first
	// so the late settle actually runs under this test.
	time.Sleep(50 * time.Millisecond)
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("late executor success resurrected the task: %v", err)
	}
	if rec := d.Graph().RecycledNodes(); rec != 1 {
		t.Fatalf("RecycledNodes = %d, want 1", rec)
	}
}

// TestLateSettleAfterWALTerminalIsNoOp is the durable twin of the test above:
// once the timeout's failed terminal record is in the WAL, a late executor
// success chasing the recycled record must not append anything — the log
// already proved the task concluded, and a second terminal (or a resurrected
// result) would break exactly-once replay after a crash.
func TestLateSettleAfterWALTerminalIsNoOp(t *testing.T) {
	dir := t.TempDir()
	d := walDFK(t, dir, nil)
	release := make(chan struct{})
	slow, err := d.PythonApp("slow-wal-recycle", func([]any, map[string]any) (any, error) {
		<-release
		return "too late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fut := slow.Submit(context.Background(), nil, WithTimeout(20*time.Millisecond))
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	d.WaitAll() // task concluded and retired; worker still parked
	if err := d.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	fr1, err := wal.Replay(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fr1.Live) != 0 || fr1.TerminalTotal() != 1 {
		t.Fatalf("pre-release frontier: live=%d terminals=%d", len(fr1.Live), fr1.TerminalTotal())
	}
	for k, term := range fr1.Terminals {
		if term.Outcome != wal.OutcomeFailed {
			t.Fatalf("task %d outcome=%v; want failed (timeout)", k, term.Outcome)
		}
	}
	// Unpark the worker: its success now chases a recycled record whose
	// terminal is already durable.
	close(release)
	time.Sleep(50 * time.Millisecond)
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("late executor success resurrected the task: %v", err)
	}
	if err := d.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	fr2, err := wal.Replay(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Records != fr1.Records {
		t.Fatalf("late settle appended to the log: %d records, had %d", fr2.Records, fr1.Records)
	}
	if len(fr2.Live) != 0 || fr2.TerminalTotal() != 1 {
		t.Fatalf("post-release frontier: live=%d terminals=%d", len(fr2.Live), fr2.TerminalTotal())
	}
}
