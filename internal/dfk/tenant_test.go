package dfk

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/serialize"
)

// TestTenantConcurrentSubmission floods a DFK from many goroutines across
// several tenants under -race: every task completes, per-tenant counts add
// up, and the task records carry their tenants end to end.
func TestTenantConcurrentSubmission(t *testing.T) {
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Registry:  reg,
		Executors: []executor.Executor{threadpool.New("tp", 4, reg)},
		// Per-tenant counts are tallied off the terminal records below.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	echo, err := d.PythonApp("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, perG, tenants = 8, 100, 3
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", g%tenants)
			for i := 0; i < perG; i++ {
				f := echo.Submit(context.Background(), []any{i}, WithTenant(tenant, g%tenants+1))
				if _, err := f.Result(); err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d submissions failed", n)
	}
	// Tenants rode the records: count terminal tasks per tenant.
	counts := map[string]int{}
	for _, rec := range d.Graph().Tasks() {
		counts[rec.Tenant()]++
	}
	for g := 0; g < tenants; g++ {
		tenant := fmt.Sprintf("tenant-%d", g)
		want := goroutines / tenants * perG
		if g < goroutines%tenants {
			want += perG
		}
		if counts[tenant] != want {
			t.Fatalf("tenant %s: %d recorded tasks, want %d (all: %v)", tenant, counts[tenant], want, counts)
		}
	}
}

// TestTenantQuotaShed: over-quota submissions under the shed policy fail
// fast with ErrOverloaded, create no task record, emit a KindTenant event,
// and the tenant recovers once its live tasks finish.
func TestTenantQuotaShed(t *testing.T) {
	reg := serialize.NewRegistry()
	store := monitor.NewStore()
	gate := make(chan struct{})
	d, err := New(Config{
		Registry:          reg,
		Executors:         []executor.Executor{threadpool.New("tp", 2, reg)},
		Monitor:           store,
		MaxTasksPerTenant: 2,
		OverloadPolicy:    OverloadShed,
		// Graph().Len() before/after comparisons need stable residency.
		RetainRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	wait, err := d.PythonApp("wait", func([]any, map[string]any) (any, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	f1 := wait.Submit(ctx, nil, WithTenant("t", 1))
	f2 := wait.Submit(ctx, nil, WithTenant("t", 1))
	shed := wait.Submit(ctx, nil, WithTenant("t", 1))
	if err := shed.Err(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submission = %v, want ErrOverloaded", err)
	}
	// Another tenant is unaffected by t's quota exhaustion.
	other := wait.Submit(ctx, nil, WithTenant("other", 1))

	tasksBefore := d.Graph().Len()
	close(gate)
	for _, f := range []*future.Future{f1, f2, other} {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Graph().Len(); got != tasksBefore {
		t.Fatalf("shed submission grew the graph: %d -> %d", tasksBefore, got)
	}
	if got := wait.Submit(ctx, nil, WithTenant("t", 1)); got.Err() != nil {
		if _, err := got.Result(); err != nil {
			t.Fatalf("tenant did not recover after completions: %v", err)
		}
	} else if _, err := got.Result(); err != nil {
		t.Fatal(err)
	}
	events := store.Events(monitor.KindTenant)
	found := false
	for _, e := range events {
		if e.Tenant == "t" && e.Detail == "shed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shed tenant event recorded; got %v", events)
	}
}

// TestTenantWeightShares backlogs two tenants with 3:1 weights on a
// single-worker pool and checks completion throughput tracks the weights:
// when the light tenant finishes its backlog, the heavy tenant must have
// completed roughly three times as much.
func TestTenantWeightShares(t *testing.T) {
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Registry: reg,
		// One worker and a depth-1 input queue: the only place tasks can
		// wait is the tenant-fair lane, so shares are DRR-governed.
		Executors:     []executor.Executor{threadpool.NewWithDepth("tp", 1, 1, reg)},
		DispatchBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	var heavyDone atomic.Int64
	work, err := d.PythonApp("work", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Millisecond)
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const lightN = 40
	heavyFuts := make([]*future.Future, 0, 3*lightN+200)
	for i := 0; i < cap(heavyFuts); i++ {
		f := work.Submit(ctx, []any{i}, WithTenant("heavy", 3))
		f.AddDoneCallback(func(df *future.Future) {
			if df.Err() == nil {
				heavyDone.Add(1)
			}
		})
		heavyFuts = append(heavyFuts, f)
	}
	lightFuts := make([]*future.Future, lightN)
	for i := range lightFuts {
		lightFuts[i] = work.Submit(ctx, []any{i}, WithTenant("light", 1))
	}
	for _, f := range lightFuts {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	h := heavyDone.Load()
	ratio := float64(h) / float64(lightN)
	// Weights say 3:1; accept [1.5, 6] — scheduling noise, the head start
	// from submission order, and batch quantization all blur the edges.
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("heavy:light completion ratio %.2f (heavy %d, light %d), want ~3", ratio, h, lightN)
	}
	for _, f := range heavyFuts {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantBlockedAdmissionCtxCancel parks a submitter on a full quota
// under the block policy, cancels its context, and verifies it unblocks
// with a cancellation error, leaks no quota, and the tenant keeps working.
func TestTenantBlockedAdmissionCtxCancel(t *testing.T) {
	reg := serialize.NewRegistry()
	gate := make(chan struct{})
	d, err := New(Config{
		Registry:          reg,
		Executors:         []executor.Executor{threadpool.New("tp", 2, reg)},
		MaxTasksPerTenant: 1,
		OverloadPolicy:    OverloadBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	wait, err := d.PythonApp("wait", func([]any, map[string]any) (any, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	f1 := wait.Submit(context.Background(), nil, WithTenant("t", 1))
	if live := d.TenantLive("t"); live != 1 {
		t.Fatalf("TenantLive = %d, want 1", live)
	}

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan *future.Future, 1)
	go func() {
		blocked <- wait.Submit(ctx, nil, WithTenant("t", 1))
	}()
	select {
	case f := <-blocked:
		t.Fatalf("second submission did not block: %v", f.Err())
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	var f2 *future.Future
	select {
	case f2 = <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled submitter never unblocked")
	}
	err = f2.Err()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked-then-canceled submission = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	// The canceled wait consumed no quota: finishing f1 frees the only
	// slot, and a fresh submission admits immediately.
	close(gate)
	if _, err := f1.Result(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := wait.Submit(context.Background(), nil, WithTenant("t", 1)).Result()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-cancel submission blocked: quota leaked")
	}
}

// TestTenantBlockedAdmissionBackpressure: the block policy parks the
// submitter until completions free quota — throughput continues, bounded,
// and every task runs exactly once.
func TestTenantBlockedAdmissionBackpressure(t *testing.T) {
	reg := serialize.NewRegistry()
	var maxLive, live, ran atomic.Int64
	d, err := New(Config{
		Registry:          reg,
		Executors:         []executor.Executor{threadpool.New("tp", 4, reg)},
		MaxTasksPerTenant: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	workApp, err := d.PythonApp("work", func([]any, map[string]any) (any, error) {
		n := live.Add(1)
		for {
			m := maxLive.Load()
			if n <= m || maxLive.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		live.Add(-1)
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 50
	futs := make([]*future.Future, n)
	for i := range futs {
		futs[i] = workApp.Submit(context.Background(), nil, WithTenant("t", 1))
	}
	for _, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
	if got := maxLive.Load(); got > 3 {
		t.Fatalf("observed %d concurrently-running tasks, quota 3", got)
	}
	if got := d.TenantLive("t"); got != 0 {
		t.Fatalf("TenantLive after drain = %d, want 0", got)
	}
}

// TestTenantStageInBypassesAdmission regresses a submission deadlock: a
// quota-1 tenant submits a task with a remote unstaged file, which spawns a
// hidden stage-in task on the same goroutine. The internal task must bypass
// admission — the user task already holds the tenant's only slot and cannot
// release it until staging finishes, so admitting the stage-in against the
// same quota would park the submitter forever under the block policy.
func TestTenantStageInBypassesAdmission(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("tenant-payload"))
	}))
	defer srv.Close()

	dm, err := data.NewManager(filepath.Join(t.TempDir(), "work"))
	if err != nil {
		t.Fatal(err)
	}
	reg := serialize.NewRegistry()
	d, err := New(Config{
		Registry:          reg,
		Executors:         []executor.Executor{threadpool.New("tp", 2, reg)},
		DataManager:       dm,
		MaxTasksPerTenant: 1,
		OverloadPolicy:    OverloadBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	read, err := d.PythonApp("readfile", func(args []any, _ map[string]any) (any, error) {
		b, err := os.ReadFile(args[0].(*data.File).LocalPath())
		if err != nil {
			return nil, err
		}
		return string(b), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		v, err := read.Submit(context.Background(), []any{data.MustFile(srv.URL + "/in.dat")},
			WithTenant("t", 1)).Result()
		if err == nil && v != "tenant-payload" {
			err = fmt.Errorf("v = %v", v)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("staged submission deadlocked against its own tenant quota")
	}
}
