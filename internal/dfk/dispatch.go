package dfk

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/fair"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/serialize"
	"repro/internal/task"
)

// pendingLaunch is one execution attempt waiting in the dispatch pipeline:
// the task record (with the generation stamp that validates it), the app that
// produced it, and its fully resolved arguments. Retries create a fresh
// pendingLaunch (sharing rec/app/args/payload), so a stale queue entry whose
// attempt already timed out can be recognized and skipped.
//
// The struct is the hot path's one unavoidable allocation, so everything an
// attempt needs lives inside it: the attempt future is embedded by value, the
// executor-relay is an embedded struct registered as a DoneHook, and the
// pendingLaunch itself is the DoneHook of its own attempt — no per-attempt
// closures.
type pendingLaunch struct {
	d   *DFK
	rec *task.Record
	// gen is rec's generation stamp captured at creation. Every pipeline
	// stage revalidates with rec.Enter(gen) before touching the record, so
	// an entry left in a queue after its task concluded (and its record was
	// recycled for a new task) is recognized and dropped instead of
	// corrupting the record's new occupant.
	gen    uint32
	app    *App
	args   []any
	kwargs map[string]any
	// payload is the encode-once serialization of args/kwargs, built in
	// launch and shared by every attempt: executors reuse the bytes for
	// wire frames and defensive copies instead of re-encoding per attempt.
	// Each pendingLaunch holds its own payload reference from creation
	// until its attempt settles, so queued bytes can never be recycled
	// under a pending attempt; the lane runner takes one more reference per
	// executor submission, released when the executor future settles.
	payload *serialize.Payload
	// attempt is this attempt's outcome future, embedded by value (the
	// zero Future is pending). The TaskTimeout timer is armed against it
	// when the attempt enters the dispatch queue — so a task stuck behind a
	// backlogged lane times out on schedule — and the executor's result is
	// forwarded into it after submission. Completing it (either way) fires
	// the pendingLaunch's own FutureDone exactly once.
	attempt future.Future
	// relay forwards the executor future's outcome into attempt; registered
	// as the executor future's DoneHook at submission.
	relay execRelay
	// timer is the attempt timeout, stopped when the attempt settles.
	timer *time.Timer
	// wireID identifies this attempt on the executor wire. The first
	// attempt uses the task id; retries of a timed-out attempt draw a
	// fresh id, because the abandoned attempt may still be in flight and
	// executors key their pending/outstanding state by wire id — reusing
	// the task id would let the stale attempt's late result complete (or
	// corrupt the accounting of) the new one.
	wireID int64
	// priority caches rec.Priority(), which is immutable once the task is
	// ready: queue comparisons and routing run on the dispatch hot path and
	// must not take the record mutex per element.
	priority int
	// tenant/weight cache rec.Tenant()/rec.TenantWeight() for the same
	// reason: every fair queue the attempt crosses keys on them.
	tenant string
	weight int
	// digest is the task's input-content digest (payload.ArgsHash), computed
	// at launch only when the scheduler is a sched.DigestPicker ("" blank
	// otherwise — the hash allocates) and carried across retries so every
	// attempt routes with the same locality key.
	digest string
	// walKey is the task's durable-log key (0 when the WAL is off) and
	// walAttempt this attempt's 1-based launch number across process
	// lifetimes — a resumed task starts past its pre-crash launches. The
	// lane runner logs the Launch record for attempt 1; retries and resumes
	// log Retry records at creation, so the log's launch count never trails
	// the attempts the retry budget has charged.
	walKey     int64
	walAttempt int
	// Health-plane state, threaded attempt to attempt (zero-valued and
	// untouched when Config.Health is nil — value fields only, so the
	// disabled plane adds no allocation to the hot path). kills is the
	// distinct managers this task's attempts have killed (poison quarantine
	// counts them); free counts uncharged retries consumed per failure
	// class; stick is the retry-affinity executor for non-failover classes
	// ("" = none).
	kills []string
	free  [health.NumClasses]uint8
	stick string
}

// FutureDone makes the pendingLaunch the DoneHook of its own attempt future:
// stop the timeout clock, run retry-or-finish handling if the record is still
// this attempt's generation, and drop the attempt's payload reference.
func (pl *pendingLaunch) FutureDone(af *future.Future) {
	if pl.timer != nil {
		pl.timer.Stop()
		pl.timer = nil
	}
	if pl.rec.Enter(pl.gen) {
		pl.d.attemptDone(pl, af)
		pl.rec.Exit()
	}
	pl.payload.Release()
}

// execRelay forwards an executor future's outcome into the attempt future as
// the executor future's DoneHook. The relay loses the race against the
// attempt's timeout timer harmlessly: a completed attempt future rejects
// further writes. It also releases the per-submission payload reference the
// lane runner took, which is what keeps the payload bytes alive for ghost
// submissions (attempt timed out, executor still holds the frame).
type execRelay struct {
	pl *pendingLaunch
}

// FutureDone implements future.DoneHook.
func (r *execRelay) FutureDone(ef *future.Future) {
	pl := r.pl
	if v, err := ef.Result(); err != nil {
		_ = pl.attempt.SetError(err)
	} else {
		_ = pl.attempt.SetResult(v)
	}
	pl.payload.Release()
}

// laneLess orders one tenant's routed-but-unsubmitted attempts by dispatch
// priority (higher first), breaking ties by wire id (lower first), so equal-
// priority work keeps submission order and WithPriority is observable the
// moment a lane backs up. Priority is scoped to the submitting tenant: an
// urgent task jumps its own tenant's sub-queue, never another tenant's fair
// share — otherwise priority would be a cross-tenant starvation primitive.
func laneLess(a, b *pendingLaunch) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.wireID < b.wireID
}

// The dispatch pipeline's queues come in two shapes. The routing queue
// feeding the dispatcher is a sharded MPSC queue (fair.MPSC) keyed by wire
// id: submitters touch only their shard's mutex, so parallel submission
// stops contending on a single queue head, and the single router drains the
// shards round-robin. Routing is a fast hop with no waiting, so it carries
// no fairness machinery of its own — the per-executor lanes feeding the lane
// runners, where tasks actually wait, remain deficit-round-robin weighted
// fair queues (fair.Queue) keyed by the submitting tenant. A single-tenant
// program (the default) sees exactly the old behavior: FIFO routing,
// priority-ordered lanes. With multiple tenants, each lane drains tenants in
// proportion to their WithTenant weights, so one hot submitter cannot
// head-of-line-block the others anywhere tasks wait on the client side (the
// HTEX interchange applies the same discipline past the wire).
//
// Boundedness invariant: these queues are deliberately UNBOUNDED, and per-
// tenant volume is bounded elsewhere — by admission control at the App.Submit
// boundary (Config.MaxTasksPerTenant / TenantQuotas, enforced before a task
// record exists). The split is what keeps the pipeline deadlock-free:
// pushes into these queues come from executor completion callbacks
// (dependency edges fire there, and retries re-enter the routing queue from
// attempt callbacks), and a bounded queue could deadlock the pipeline when
// both it and an executor's input queue fill — a worker blocked pushing a
// dependent launch is a worker that never drains the executor queue the
// dispatcher is blocked on. Admission, in contrast, blocks only the
// submitting goroutine, which holds no pipeline resources; its quota is
// released by task-retirement bookkeeping that never passes through it. So
// the lanes cannot deadlock regardless of quota, policy, or executor
// backpressure (an executor's blocking SubmitBatch stalls only its own lane
// runner), and memory under overload is O(sum of tenant quotas), not
// O(submissions).

// lane is the per-executor leg of the dispatch pipeline: a tenant-fair,
// priority-ordered queue of routed tasks plus a runner goroutine that
// submits them in batches. Per-executor lanes keep one backlogged executor
// (a blocking Submit/SubmitBatch into a full input queue) from
// head-of-line-blocking dispatch to every other executor.
type lane struct {
	ex    executor.Executor
	queue *fair.Queue[*pendingLaunch]
	// queued counts tasks routed to this lane but not yet submitted — load
	// the executor's own Outstanding cannot see yet. Capacity-aware
	// scheduling seeds each cycle's sched.Frozen snapshot with it.
	queued atomic.Int64
}

// maxQueuedPriority peeks the highest priority currently queued (0 when
// empty) — the lane-backlog urgency signal surfaced through sched.Load.
func (l *lane) maxQueuedPriority() int {
	return l.queue.PeekMax(func(pl *pendingLaunch) int { return pl.priority })
}

// dispatcher is the DFK's routing pump: it drains ready tasks from the
// sharded routing queue and asks the scheduler for a target executor per
// task; the target's lane runner does the actual submission. Replaces the
// seed's inline launch-on-the-callback-goroutine path.
func (d *DFK) dispatcher() {
	defer d.dispatchWG.Done()
	for {
		batch, ok := d.queue.Take(d.batchMax)
		if !ok {
			return
		}
		route := d.newRouter()
		for _, pl := range batch {
			if pl.attempt.Done() {
				continue
			}
			if !pl.rec.Enter(pl.gen) {
				// The task concluded and its record was recycled while this
				// entry sat in the routing queue; nothing left to route.
				continue
			}
			ex, err := route.pick(pl)
			if err != nil {
				if errors.Is(err, health.ErrNoHealthyExecutor) {
					// Every admissible breaker is open: park, don't fail. The
					// attempt concludes with the overload error; attemptDone
					// classifies it and re-enters dispatch after backoff with
					// a fresh timeout clock.
					pl.rec.Exit()
					_ = pl.attempt.SetError(err)
					continue
				}
				// Fail the task first, then complete the attempt: the done
				// hook stops the timeout timer, and attemptDone's terminal
				// guard keeps it from re-processing the failure.
				d.failTask(pl.rec, err)
				pl.rec.Exit()
				_ = pl.attempt.SetError(err)
				continue
			}
			pl.rec.SetExecutor(ex.Label())
			pl.rec.Exit()
			l := d.lanes[ex.Label()]
			l.queued.Add(1)
			l.queue.Push(pl.tenant, pl.weight, pl)
		}
		d.queue.PutBatch(batch)
	}
}

// laneRunner drains one executor's lane, submitting each drained batch via
// the executor's native BatchSubmitter when it has one.
func (d *DFK) laneRunner(l *lane) {
	defer d.laneWG.Done()
	// Per-runner scratch, reused across batches. Safe because both
	// BatchSubmitter implementations consume msgs synchronously (htex copies
	// each TaskMsg into its inflight map, threadpool into channel items) and
	// the per-task Submit fallback passes TaskMsg by value.
	var msgs []serialize.TaskMsg
	var live []*pendingLaunch
	var launchKeys []int64
	for {
		batch, ok := l.queue.Take(d.batchMax)
		if !ok {
			return
		}
		// Chaos: a delayed drain models a stalled lane runner — queued tasks
		// keep aging against their attempt timers, which is the contract
		// enqueueAttempt promises (the clock runs while they queue).
		chaos.Sleep(chaos.PointLaneDelay, l.ex.Label())
		msgs = msgs[:0]
		live = live[:0]
		launchKeys = launchKeys[:0]
		for _, pl := range batch {
			if pl.attempt.Done() {
				// The attempt timed out while queued; its retry (if any)
				// is a separate queue entry. Best-effort skip — if the
				// timer wins the race after this check, the stale attempt
				// is still submitted as a ghost: its remote result
				// reconciles by wire id, the relay below is a no-op on
				// the already-failed attempt future, and its SetState
				// interleaves harmlessly with the retry's (same-state
				// transitions no-op; failTask skips terminal tasks).
				continue
			}
			// Chaos: an injected submission failure concludes this attempt
			// before it crosses the executor boundary; attemptDone retries it
			// through the scheduler exactly as a real submit error would.
			if err := chaos.Fail(chaos.PointSubmitFail, l.ex.Label()); err != nil {
				_ = pl.attempt.SetError(err)
				continue
			}
			if !pl.rec.Enter(pl.gen) {
				// Record already recycled (task concluded elsewhere with the
				// attempt settled); drop the stale entry.
				continue
			}
			d.emitState(pl.rec, pl.rec.State().String(), "launched")
			if err := pl.rec.SetState(task.Launched); err != nil {
				d.failTask(pl.rec, err)
				pl.rec.Exit()
				_ = pl.attempt.SetError(err) // stop the timer, see dispatcher
				continue
			}
			// First launch crossing the executor boundary: charge the durable
			// attempt budget (batched below, one log acquisition per drain).
			// Later attempts were already charged by their Retry records, and
			// a ghost resubmission of a dead attempt is skipped by the Done
			// check above.
			if pl.walKey != 0 && pl.walAttempt == 1 {
				launchKeys = append(launchKeys, pl.walKey)
			}
			pl.rec.Exit()
			m := serialize.TaskMsg{
				ID: pl.wireID, App: pl.app.name, Args: pl.args, Kwargs: pl.kwargs,
				Priority: pl.priority, Tenant: pl.tenant, Weight: pl.weight,
			}
			// Ride the encode-once payload onto the wire message — remote
			// executors frame its bytes verbatim, in-process ones decode
			// their defensive copy from it — holding one reference for the
			// executor leg, released by the relay when the executor future
			// settles. The attempt's own reference (still held here) makes
			// the Retain safe: the payload cannot have been recycled.
			m.AttachPayload(pl.payload.Retain())
			msgs = append(msgs, m)
			live = append(live, pl)
		}
		if len(launchKeys) > 0 {
			if err := d.wal.LaunchBatch(launchKeys); err != nil {
				d.emitWAL(0, "launch", err)
			}
		}
		if len(msgs) > 0 {
			if bs, ok := l.ex.(executor.BatchSubmitter); ok {
				futs := bs.SubmitBatch(msgs)
				for i, pl := range live {
					futs[i].SetDoneHook(&pl.relay)
				}
			} else {
				for i, m := range msgs {
					l.ex.Submit(m).SetDoneHook(&live[i].relay)
				}
			}
		}
		// Submitted work is visible in the executor's Outstanding now;
		// dropping the lane counter after submission means the worst case
		// is a brief double count, never a blind spot.
		l.queued.Add(-int64(len(batch)))
		l.queue.PutBatch(batch)
	}
}

// enqueueAttempt arms one execution attempt — its outcome future, the
// timeout timer against it, and the retry-or-finish hook — and hands it to
// the routing queue. Arming the timer here, not after submission, is what
// makes the timeout contract hold for tasks stuck behind a backlogged lane:
// the clock runs while they queue. The per-call WithTimeout/WithDeadline
// options override Config.TaskTimeout; a deadline bounds each attempt by the
// wall-clock time remaining.
func (d *DFK) enqueueAttempt(pl *pendingLaunch) {
	pl.relay.pl = pl
	pl.rec.SetAttempt(&pl.attempt, pl.wireID)
	dur := d.cfg.TaskTimeout
	if t := pl.rec.Timeout(); t > 0 {
		dur = t
	}
	if dl := pl.rec.Deadline(); !dl.IsZero() {
		rem := time.Until(dl)
		if rem <= 0 {
			// The deadline has already passed — first attempts and retries
			// alike fail here, synchronously, rather than racing a zero
			// timer against dispatch (a fast executor could otherwise
			// complete work past its deadline). failTask before settling
			// the attempt keeps attemptDone's terminal guard from retrying.
			err := fmt.Errorf("%w: deadline %v already passed", ErrTimeout, dl.Format(time.RFC3339Nano))
			d.failTask(pl.rec, err)
			pl.attempt.SetDoneHook(pl)
			_ = pl.attempt.SetError(err)
			return
		}
		if dur <= 0 || rem < dur {
			dur = rem
		}
	}
	if dur > 0 {
		pl.timer = time.AfterFunc(dur, func() {
			_ = pl.attempt.SetError(fmt.Errorf("%w after %v", ErrTimeout, dur))
		})
	}
	pl.attempt.SetDoneHook(pl)
	d.queue.Push(pl.wireID, pl)
}

// attemptDone handles one attempt's outcome: completion, or retry through
// the scheduler while budget remains (§4.1: "Parsl is able to retry the
// task by resubmitting it to an executor"). A retry re-enters the dispatch
// queue as a fresh attempt, so the scheduler re-picks an executor from
// current load — a task lost with a dying executor naturally drains toward
// a healthier one. Runs inside the caller's Enter/Exit window, so the record
// is valid throughout even if this call retires it.
func (d *DFK) attemptDone(pl *pendingLaunch, af *future.Future) {
	if pl.rec.State().Terminal() {
		// The task already failed on a dispatch-side path (which completes
		// the attempt after failTask); nothing left to do.
		return
	}
	v, err := af.Result()
	if err == nil {
		if d.hp != nil {
			if label := pl.rec.Executor(); label != "" {
				d.hp.recordSuccess(label)
			}
		}
		d.completeTask(pl.rec, pl.app, v)
		return
	}
	// The attempt is abandoned; tell its executor to drop whatever it still
	// holds under this wire id. For errors the executor itself reported this
	// is a no-op (its bookkeeping is already clean), but a timeout leaves
	// the attempt live executor-side — and if its frame was lost on the wire
	// (drop, corruption) the executor would otherwise carry the ghost
	// entry, and its inflated Outstanding() load signal, forever.
	if label := pl.rec.Executor(); label != "" {
		if c, ok := d.executors[label].(executor.Canceler); ok {
			c.Cancel(pl.wireID)
		}
	}
	if d.hp != nil {
		// The health plane owns failure handling end to end: classification,
		// breaker/quarantine bookkeeping, budget charging, and backoff-paced
		// re-dispatch. The inline path below stays byte-identical when off.
		d.hp.attemptFailed(pl, err)
		return
	}
	if pl.rec.IncAttempts() <= pl.rec.MaxRetries() {
		// A launched attempt moves to Retrying; an attempt that timed out
		// while still queued is still Pending — no legal (or needed) state
		// change, it simply re-enters the queue, and the monitor event says
		// so rather than claiming a Retrying transition that never happens.
		st := pl.rec.State()
		retryable := false
		if st == task.Pending {
			d.emitState(pl.rec, st.String(), "requeued")
			retryable = true
		} else if pl.rec.SetState(task.Retrying) == nil {
			d.emitState(pl.rec, st.String(), "retrying")
			retryable = true
		}
		if retryable {
			// Fresh attempt object (the old one may still sit in a lane
			// queue and must stay recognizable as dead) and fresh wire id
			// (the timed-out attempt may still be running remotely under
			// the old one; ids are drawn from the task id sequence, so
			// they never collide with any task's first-attempt id).
			// The retry reuses the encode-once payload — resubmission costs
			// zero re-serialization no matter how many attempts it takes —
			// taking its own reference before the old attempt's drops.
			next := &pendingLaunch{
				d: d, rec: pl.rec, gen: pl.gen, app: pl.app,
				args: pl.args, kwargs: pl.kwargs,
				payload: pl.payload.Retain(),
				wireID:  d.graph.NextID(), priority: pl.priority,
				tenant: pl.tenant, weight: pl.weight, digest: pl.digest,
				walKey: pl.walKey, walAttempt: pl.walAttempt + 1,
			}
			// Log the retry before it can run: a crash after the new attempt
			// launches but before its record lands must still replay with the
			// budget charged.
			if next.walKey != 0 {
				if err := d.wal.Retry(next.walKey, next.walAttempt); err != nil {
					d.emitWAL(pl.rec.ID, "retry", err)
				}
			}
			d.enqueueAttempt(next)
			return
		}
	}
	d.failTask(pl.rec, err)
}
