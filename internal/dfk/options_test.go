package dfk

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/serialize"
)

// TestWithExecutorOverridesHints pins one invocation to a different executor
// than the app's registration hints name.
func TestWithExecutorOverridesHints(t *testing.T) {
	reg := serialize.NewRegistry()
	a := threadpool.New("pool-a", 1, reg)
	b := threadpool.New("pool-b", 1, reg)
	d, err := New(Config{Registry: reg, Executors: []executor.Executor{a, b}, Seed: 3, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	app, err := d.PythonApp("where", func([]any, map[string]any) (any, error) {
		return nil, nil
	}, WithExecutors("pool-a"))
	if err != nil {
		t.Fatal(err)
	}

	fut := app.Submit(context.Background(), nil, WithExecutor("pool-b"))
	if _, err := fut.Result(); err != nil {
		t.Fatal(err)
	}
	if got := d.graph.Get(fut.TaskID).Executor(); got != "pool-b" {
		t.Fatalf("ran on %q, want pool-b (per-call override)", got)
	}
	// Without the option the registration hint still governs.
	fut2 := app.Call()
	if _, err := fut2.Result(); err != nil {
		t.Fatal(err)
	}
	if got := d.graph.Get(fut2.TaskID).Executor(); got != "pool-a" {
		t.Fatalf("ran on %q, want pool-a (registration hint)", got)
	}

	// An unknown label fails the task, not the engine.
	bad := app.Submit(context.Background(), nil, WithExecutor("nope"))
	if _, err := bad.Result(); err == nil {
		t.Fatal("unknown per-call executor succeeded")
	}
}

// TestWithRetriesOverridesBudget gives one call a larger retry budget than
// the DFK default of zero.
func TestWithRetriesOverridesBudget(t *testing.T) {
	d := newDFK(t, nil) // Config.Retries == 0
	var calls atomic.Int64
	app, err := d.PythonApp("flaky", func([]any, map[string]any) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := app.Submit(context.Background(), nil, WithRetries(2)).Result()
	if err != nil || v != "ok" {
		t.Fatalf("Result = %v, %v (want ok after 2 retries)", v, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("app ran %d times, want 3", n)
	}
	// The next plain call is back to the DFK-wide budget: fail-fast.
	calls.Store(0)
	if _, err := app.Call().Result(); err == nil {
		t.Fatal("expected failure with zero retries")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("app ran %d times, want 1", n)
	}
}

// TestWithTimeoutBoundsOneAttempt overrides the DFK-wide TaskTimeout for a
// single invocation.
func TestWithTimeoutBoundsOneAttempt(t *testing.T) {
	d := newDFK(t, nil) // no DFK-wide timeout
	release := make(chan struct{})
	defer close(release)
	app, err := d.PythonApp("slow", func([]any, map[string]any) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fut := app.Submit(context.Background(), nil, WithTimeout(20*time.Millisecond))
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
}

// TestWithDeadlineAlreadyPassed fails the task without dispatch.
func TestWithDeadlineAlreadyPassed(t *testing.T) {
	d := newDFK(t, nil)
	var ran atomic.Int64
	app, err := d.PythonApp("never", func([]any, map[string]any) (any, error) {
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fut := app.Submit(context.Background(), nil, WithDeadline(time.Now().Add(-time.Second)))
	if _, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	d.WaitAll()
	if n := ran.Load(); n != 0 {
		t.Fatalf("expired task ran %d times", n)
	}
}

// TestRetryRespectsExpiredDeadline: a retry whose per-call deadline has
// meanwhile passed must fail with ErrTimeout instead of dispatching again —
// the task must not complete successfully after its deadline.
func TestRetryRespectsExpiredDeadline(t *testing.T) {
	d := newDFK(t, nil)
	var calls atomic.Int64
	app, err := d.PythonApp("flaky-deadline", func([]any, map[string]any) (any, error) {
		if calls.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond) // outlive the deadline
			return nil, errors.New("transient")
		}
		return "too late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fut := app.Submit(context.Background(), nil,
		parslDeadline(40*time.Millisecond), WithRetries(5))
	if v, err := fut.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Result = %v, %v; want ErrTimeout (no post-deadline success)", v, err)
	}
	d.WaitAll()
	if n := calls.Load(); n > 1 {
		t.Fatalf("app ran %d times; retries must not dispatch past the deadline", n)
	}
}

// parslDeadline is WithDeadline relative to now, for test readability.
func parslDeadline(in time.Duration) CallOption {
	return WithDeadline(time.Now().Add(in))
}

// TestWithMemoKeySharesResults memoizes two differently-argumented calls
// under one explicit key, on an app registered without memoization.
func TestWithMemoKeySharesResults(t *testing.T) {
	d := newDFK(t, nil)
	var calls atomic.Int64
	app, err := d.PythonApp("expensive", func(args []any, _ map[string]any) (any, error) {
		calls.Add(1)
		return fmt.Sprintf("computed-%v", args[0]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	v1, err := app.Submit(ctx, []any{"a"}, WithMemoKey("shared")).Result()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := app.Submit(ctx, []any{"b"}, WithMemoKey("shared")).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("values differ: %v vs %v (same memo key must share)", v1, v2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("app ran %d times, want 1", n)
	}
	// A different key computes fresh.
	if _, err := app.Submit(ctx, []any{"a"}, WithMemoKey("other")).Result(); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("app ran %d times, want 2", n)
	}
}

// TestSubmitOnCanceledContext fails fast without creating a task.
func TestSubmitOnCanceledContext(t *testing.T) {
	d := newDFK(t, nil)
	app, err := d.PythonApp("noop", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	before := d.graph.Len()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fut := app.Submit(ctx, nil)
	if _, err := fut.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
	if d.graph.Len() != before {
		t.Fatal("submission on a dead context created a task")
	}
}
