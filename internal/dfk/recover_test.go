package dfk

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/serialize"
	"repro/internal/wal"
)

// walDFK builds a WAL-enabled DFK over dir's wal subdirectory.
func walDFK(t *testing.T, dir string, mutate func(*Config)) *DFK {
	t.Helper()
	return newDFK(t, func(c *Config) {
		c.WAL = true
		c.WALDir = filepath.Join(dir, "wal")
		c.WALCompactEvery = -1 // tests inspect the raw record stream
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestWALRecordsFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	d := walDFK(t, dir, nil)
	double, err := d.PythonApp("double", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if v, err := double.Call(i).Result(); err != nil || v != i*2 {
			t.Fatalf("task %d: v=%v err=%v", i, v, err)
		}
	}
	d.WaitAll()
	if err := d.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	fr, err := wal.Replay(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Each task logs exactly submit, launch, terminal — no more, no less.
	if fr.Records != 3*n {
		t.Fatalf("records=%d; want %d", fr.Records, 3*n)
	}
	if len(fr.Live) != 0 || fr.TerminalTotal() != n {
		t.Fatalf("live=%d terminals=%d; want 0, %d", len(fr.Live), fr.TerminalTotal(), n)
	}
	for k, term := range fr.Terminals {
		if term.Outcome != wal.OutcomeDone {
			t.Fatalf("task %d outcome=%v; want done", k, term.Outcome)
		}
	}
}

func TestRecoverResumesLiveTasks(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")

	// Lifetime 1, hand-simulated: two tasks submitted (one already launched
	// once), neither terminal — the classic in-flight-at-crash frontier.
	w, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	encode := func(v int) []byte {
		p, err := serialize.EncodeArgs([]any{v}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Release()
		return append([]byte(nil), p.Bytes()...)
	}
	k1, _ := w.Submit("double", "", "tenant-a", 2, 1, 1, encode(7))
	k2, _ := w.Submit("double", "", "", 0, 0, 1, encode(9))
	if err := w.Launch(k1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Lifetime 2: fresh process, same log.
	var execs atomic.Int64
	d := walDFK(t, dir, nil)
	if _, err := d.PythonApp("double", func(args []any, _ map[string]any) (any, error) {
		execs.Add(1)
		return args[0].(int) * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	rcv, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.LiveAtCrash != 2 || len(rcv.Resumed) != 2 || rcv.TerminalAtCrash != 0 {
		t.Fatalf("recovery summary: %+v", rcv)
	}
	if v, err := rcv.Resumed[k1].Result(); err != nil || v != 14 {
		t.Fatalf("task %d: v=%v err=%v", k1, v, err)
	}
	if v, err := rcv.Resumed[k2].Result(); err != nil || v != 18 {
		t.Fatalf("task %d: v=%v err=%v", k2, v, err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("re-admitted tasks executed %d times; want exactly 2", got)
	}
	d.WaitAll()
	if err := d.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	fr, err := wal.Replay(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Live) != 0 || fr.TerminalTotal() != 2 {
		t.Fatalf("post-recovery frontier: live=%d terminals=%d", len(fr.Live), fr.TerminalTotal())
	}
}

func TestRecoverResolvesTerminalsFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "checkpoint.jsonl")

	// Lifetime 1: run to completion with memoization + checkpoint, clean
	// shutdown. The log ends holding terminal records whose digests point
	// into the checkpoint.
	d1 := walDFK(t, dir, func(c *Config) { c.Memoize = true; c.Checkpoint = cp })
	sq, err := d1.PythonApp("square", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * args[0].(int), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sq.Call(6).Result(); err != nil || v != 36 {
		t.Fatalf("lifetime 1: v=%v err=%v", v, err)
	}
	d1.WaitAll()
	if err := d1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Lifetime 2: the terminal task must resolve from durable state — the
	// app is registered but must NOT run again.
	var execs atomic.Int64
	d2 := walDFK(t, dir, func(c *Config) { c.Memoize = true; c.Checkpoint = cp })
	if _, err := d2.PythonApp("square", func(args []any, _ map[string]any) (any, error) {
		execs.Add(1)
		return -1, nil
	}); err != nil {
		t.Fatal(err)
	}
	rcv, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.TerminalAtCrash != 1 || rcv.LiveAtCrash != 0 {
		t.Fatalf("recovery summary: %+v", rcv)
	}
	for k, fut := range rcv.Resolved {
		if v, err := fut.Result(); err != nil || v != float64(36) && v != 36 {
			t.Fatalf("task %d resolved to v=%v err=%v", k, v, err)
		}
	}
	if execs.Load() != 0 {
		t.Fatalf("pre-crash-terminal task re-executed %d times; want 0", execs.Load())
	}
}

func TestRecoverRespectsExhaustedBudget(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := serialize.EncodeArgs([]any{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// maxRetries=1 allows 2 launches; both were consumed before the crash.
	k, _ := w.Submit("double", "", "", 0, 0, 1, p.Bytes())
	p.Release()
	_ = w.Launch(k, 1)
	_ = w.Retry(k, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var execs atomic.Int64
	d := walDFK(t, dir, nil)
	if _, err := d.PythonApp("double", func(args []any, _ map[string]any) (any, error) {
		execs.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	rcv, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := rcv.Resumed[k].Result()
	if rerr == nil || !strings.Contains(rerr.Error(), "retry budget exhausted") {
		t.Fatalf("want budget-exhausted failure, got %v", rerr)
	}
	if execs.Load() != 0 {
		t.Fatalf("budget-exhausted task still executed %d times", execs.Load())
	}
}

func TestRecoverUnregisteredAppFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := serialize.EncodeArgs([]any{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := w.Submit("ghost", "", "", 0, 0, 0, p.Bytes())
	p.Release()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	d := walDFK(t, dir, nil)
	rcv, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Unrecoverable != 1 {
		t.Fatalf("Unrecoverable=%d; want 1", rcv.Unrecoverable)
	}
	if _, rerr := rcv.Resumed[k].Result(); rerr == nil || !strings.Contains(rerr.Error(), "not registered") {
		t.Fatalf("want not-registered failure, got %v", rerr)
	}
}

func TestRecoverRequiresWAL(t *testing.T) {
	d := newDFK(t, nil)
	if _, err := d.Recover(); err == nil {
		t.Fatal("Recover without Config.WAL should error")
	}
}

func TestWALConfigRequiresDir(t *testing.T) {
	reg := serialize.NewRegistry()
	_, err := New(Config{
		WAL:       true,
		Executors: []executor.Executor{threadpool.New("tp", 1, reg)},
	})
	if err == nil || !strings.Contains(err.Error(), "WALDir") {
		t.Fatalf("want WALDir config error, got %v", err)
	}
}
