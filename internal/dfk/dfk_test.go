package dfk

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/serialize"
	"repro/internal/task"
)

// newDFK builds a DFK over a threadpool executor; the registry is shared so
// apps registered via the DFK run in-process.
func newDFK(t *testing.T, mutate func(*Config)) *DFK {
	t.Helper()
	reg := serialize.NewRegistry()
	cfg := Config{
		Seed:      1,
		Registry:  reg,
		Executors: []executor.Executor{threadpool.New("tp", 4, reg)},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dd.Shutdown() })
	return dd
}

func TestSimpleAppInvocation(t *testing.T) {
	d := newDFK(t, nil)
	hello, err := d.PythonApp("hello", func(args []any, _ map[string]any) (any, error) {
		return "Hello " + args[0].(string), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := hello.Call("World").Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != "Hello World" {
		t.Fatalf("v = %v", v)
	}
}

func TestFuturePassingCreatesDependency(t *testing.T) {
	// RetainRecords keeps the edges visible after the chain drains.
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	inc, err := d.PythonApp("inc", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return args[0].(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f1 := inc.Call(0)
	f2 := inc.Call(f1)
	f3 := inc.Call(f2)
	v, err := f3.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("chain result = %v", v)
	}
	if d.Graph().EdgeCount() != 2 {
		t.Fatalf("edges = %d", d.Graph().EdgeCount())
	}
}

func TestDiamondDAG(t *testing.T) {
	d := newDFK(t, nil)
	add, err := d.PythonApp("add", func(args []any, _ map[string]any) (any, error) {
		sum := 0
		for _, a := range args {
			sum += a.(int)
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := add.Call(1)
	left := add.Call(root, 10)
	right := add.Call(root, 100)
	join := add.Call(left, right)
	v, err := join.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 112 { // (1+10) + (1+100)
		t.Fatalf("diamond = %v", v)
	}
}

func TestFuturesInsideSliceArgs(t *testing.T) {
	d := newDFK(t, nil)
	one, _ := d.PythonApp("one", func([]any, map[string]any) (any, error) { return 1, nil })
	sum, _ := d.PythonApp("sumlist", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, v := range args[0].([]any) {
			total += v.(int)
		}
		return total, nil
	})
	futs := []any{one.Call(), one.Call(), one.Call()}
	v, err := sum.Call(futs).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("sum = %v", v)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	// RetainRecords: Attempts() is read off the failed record afterwards.
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	bad, _ := d.PythonApp("bad", func([]any, map[string]any) (any, error) {
		return nil, errors.New("upstream broke")
	})
	use, _ := d.PythonApp("use", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	_, err := use.Call(bad.Call()).Result()
	var de *DependencyError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DependencyError", err)
	}
	// The dependent task itself must never have launched.
	rec := d.Graph().Get(de.TaskID)
	if rec.Attempts() != 0 {
		t.Fatal("dependent task was launched despite failed dependency")
	}
}

func TestRetriesRecoverFlakyApp(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, func(c *Config) { c.Retries = 3 })
	flaky, _ := d.PythonApp("flaky", func([]any, map[string]any) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "recovered", nil
	})
	v, err := flaky.Call().Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != "recovered" || calls.Load() != 3 {
		t.Fatalf("v=%v calls=%d", v, calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, func(c *Config) { c.Retries = 2 })
	alwaysBad, _ := d.PythonApp("alwaysbad", func([]any, map[string]any) (any, error) {
		calls.Add(1)
		return nil, errors.New("permanent")
	})
	_, err := alwaysBad.Call().Result()
	if err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, nil)
	bad, _ := d.PythonApp("bad1", func([]any, map[string]any) (any, error) {
		calls.Add(1)
		return nil, errors.New("x")
	})
	_, _ = bad.Call().Result()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestMemoizationAvoidsReexecution(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, func(c *Config) { c.Memoize = true })
	square, _ := d.PythonApp("square", func(args []any, _ map[string]any) (any, error) {
		calls.Add(1)
		return args[0].(int) * args[0].(int), nil
	})
	v1, _ := square.Call(7).Result()
	v2, _ := square.Call(7).Result()
	v3, _ := square.Call(8).Result()
	if v1 != 49 || v2 != 49 || v3 != 64 {
		t.Fatalf("results: %v %v %v", v1, v2, v3)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one memo hit)", calls.Load())
	}
	hits, _ := d.Memoizer().Stats()
	if hits != 1 {
		t.Fatalf("memo hits = %d", hits)
	}
}

func TestPerAppMemoizeOverride(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, func(c *Config) { c.Memoize = true })
	noMemo, _ := d.PythonApp("rng", func([]any, map[string]any) (any, error) {
		return int(calls.Add(1)), nil
	}, WithMemoize(false))
	v1, _ := noMemo.Call().Result()
	v2, _ := noMemo.Call().Result()
	if v1 == v2 {
		t.Fatal("non-deterministic app was memoized")
	}
}

func TestAppVersionInvalidatesMemo(t *testing.T) {
	var calls atomic.Int32
	d := newDFK(t, func(c *Config) { c.Memoize = true })
	fn := func([]any, map[string]any) (any, error) {
		calls.Add(1)
		return "r", nil
	}
	v1app, _ := d.PythonApp("versioned", fn, WithVersion("v1"))
	v2app, _ := d.PythonApp("versioned2", fn, WithVersion("v2"))
	_, _ = v1app.Call().Result()
	_, _ = v2app.Call().Result()
	if calls.Load() != 2 {
		t.Fatalf("different bodies shared a memo entry: calls=%d", calls.Load())
	}
}

func TestExecutorHints(t *testing.T) {
	regA := serialize.NewRegistry()
	regB := serialize.NewRegistry()
	tpA := threadpool.New("cpu", 1, regA)
	tpB := threadpool.New("gpu", 1, regB)
	d, err := New(Config{Executors: []executor.Executor{tpA, tpB}, Seed: 42, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	fn := func([]any, map[string]any) (any, error) { return "done", nil }
	appHinted, err := d.PythonApp("hinted", fn, WithExecutors("gpu"))
	if err != nil {
		t.Fatal(err)
	}
	// Register the app where workers look it up.
	_ = regA.Register("hinted", fn)
	_ = regB.Register("hinted", fn)

	for i := 0; i < 10; i++ {
		if _, err := appHinted.Call().Result(); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range d.Graph().Tasks() {
		if rec.Executor() != "gpu" {
			t.Fatalf("task %d ran on %q despite hint", rec.ID, rec.Executor())
		}
	}
}

func TestHintUnknownExecutorRejected(t *testing.T) {
	d := newDFK(t, nil)
	if _, err := d.PythonApp("x", func([]any, map[string]any) (any, error) { return nil, nil },
		WithExecutors("warp")); err == nil {
		t.Fatal("unknown hint accepted")
	}
}

func TestRandomExecutorSelectionCoversAll(t *testing.T) {
	regA, regB := serialize.NewRegistry(), serialize.NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	_ = regA.Register("spread", fn)
	_ = regB.Register("spread", fn)
	tpA := threadpool.New("ex-a", 2, regA)
	tpB := threadpool.New("ex-b", 2, regB)
	d, err := New(Config{Executors: []executor.Executor{tpA, tpB}, Seed: 7, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	spread, _ := d.PythonApp("spread", fn)
	var futs []*future.Future
	for i := 0; i < 40; i++ {
		futs = append(futs, spread.Call())
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	used := map[string]int{}
	for _, rec := range d.Graph().Tasks() {
		used[rec.Executor()]++
	}
	if used["ex-a"] == 0 || used["ex-b"] == 0 {
		t.Fatalf("random selection unbalanced: %v", used)
	}
}

func TestTaskTimeout(t *testing.T) {
	d := newDFK(t, func(c *Config) { c.TaskTimeout = 30 * time.Millisecond })
	slow, _ := d.PythonApp("slow", func([]any, map[string]any) (any, error) {
		time.Sleep(2 * time.Second)
		return nil, nil
	})
	_, err := slow.Call().Result()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestMonitoringRecordsTransitions(t *testing.T) {
	store := monitor.NewStore()
	d := newDFK(t, func(c *Config) { c.Monitor = store })
	ok, _ := d.PythonApp("ok", func([]any, map[string]any) (any, error) { return nil, nil })
	if _, err := ok.Call().Result(); err != nil {
		t.Fatal(err)
	}
	d.WaitAll()
	hist := store.TaskHistory(0)
	if len(hist) < 3 {
		t.Fatalf("history = %+v", hist)
	}
	last := hist[len(hist)-1]
	if last.To != "done" {
		t.Fatalf("final transition = %+v", last)
	}
}

func TestSummaryAndWaitAll(t *testing.T) {
	d := newDFK(t, nil)
	ok, _ := d.PythonApp("okk", func([]any, map[string]any) (any, error) { return nil, nil })
	bad, _ := d.PythonApp("badd", func([]any, map[string]any) (any, error) { return nil, errors.New("x") })
	for i := 0; i < 5; i++ {
		ok.Call()
	}
	bad.Call()
	d.WaitAll()
	s := d.Summary()
	if s["done"] != 5 || s["failed"] != 1 {
		t.Fatalf("summary = %v", s)
	}
	if d.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", d.Outstanding())
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	d := newDFK(t, nil)
	ok, _ := d.PythonApp("okkk", func([]any, map[string]any) (any, error) { return nil, nil })
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Call().Result(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateAppNameRejected(t *testing.T) {
	d := newDFK(t, nil)
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	if _, err := d.PythonApp("dup", fn); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PythonApp("dup", fn); err == nil {
		t.Fatal("duplicate app accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty executor list accepted")
	}
	reg := serialize.NewRegistry()
	a := threadpool.New("same", 1, reg)
	b := threadpool.New("same", 1, reg)
	if _, err := New(Config{Executors: []executor.Executor{a, b}}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
}

func TestManyConcurrentTasks(t *testing.T) {
	d := newDFK(t, nil)
	work, _ := d.PythonApp("work", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	const n = 1000
	futs := make([]*future.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = work.Call(i)
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i*2 {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
	counts := d.Graph().CountByState()
	if counts[task.Done] != n {
		t.Fatalf("done = %d", counts[task.Done])
	}
}

func TestMapReducePattern(t *testing.T) {
	d := newDFK(t, nil)
	mapApp, _ := d.PythonApp("mapsq", func(args []any, _ map[string]any) (any, error) {
		x := args[0].(int)
		return x * x, nil
	})
	reduceApp, _ := d.PythonApp("reducesum", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, v := range args[0].([]any) {
			total += v.(int)
		}
		return total, nil
	})
	var mapped []any
	for i := 1; i <= 10; i++ {
		mapped = append(mapped, mapApp.Call(i))
	}
	v, err := reduceApp.Call(mapped).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 385 { // sum of squares 1..10
		t.Fatalf("reduce = %v", v)
	}
}

func TestDynamicTaskGeneration(t *testing.T) {
	// Tasks generating new tasks during execution (§3.4): each level
	// submits the next from the program after observing a result.
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	step, _ := d.PythonApp("step", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	v := 0
	for i := 0; i < 5; i++ {
		r, err := step.Call(v).Result()
		if err != nil {
			t.Fatal(err)
		}
		v = r.(int)
	}
	if v != 5 {
		t.Fatalf("v = %d", v)
	}
	if d.Graph().Len() != 5 {
		t.Fatalf("tasks = %d", d.Graph().Len())
	}
}

func ExampleApp_Call() {
	reg := serialize.NewRegistry()
	tp := threadpool.New("local", 2, reg)
	d, err := New(Config{Registry: reg, Executors: []executor.Executor{tp}})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Shutdown()
	hello, _ := d.PythonApp("hello-ex", func(args []any, _ map[string]any) (any, error) {
		return "Hello " + args[0].(string), nil
	})
	v, _ := hello.Call("World").Result()
	fmt.Println(v)
	// Output: Hello World
}
