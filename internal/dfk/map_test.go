package dfk

import (
	"errors"
	"testing"

	"repro/internal/future"
)

func TestMapInvokesPerTuple(t *testing.T) {
	d := newDFK(t, nil)
	mul, _ := d.PythonApp("mul", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * args[1].(int), nil
	})
	futs := mul.Map([][]any{{2, 3}, {4, 5}, {6, 7}})
	want := []int{6, 20, 42}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != want[i] {
			t.Fatalf("map[%d] = %v, %v", i, v, err)
		}
	}
}

func TestMap1(t *testing.T) {
	d := newDFK(t, nil)
	sq, _ := d.PythonApp("sq", func(args []any, _ map[string]any) (any, error) {
		x := args[0].(int)
		return x * x, nil
	})
	futs := sq.Map1([]any{1, 2, 3, 4})
	total := 0
	for _, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatal(err)
		}
		total += v.(int)
	}
	if total != 30 {
		t.Fatalf("total = %d", total)
	}
}

func TestMapEmpty(t *testing.T) {
	d := newDFK(t, nil)
	a, _ := d.PythonApp("noopm", func([]any, map[string]any) (any, error) { return nil, nil })
	if futs := a.Map(nil); len(futs) != 0 {
		t.Fatalf("futs = %v", futs)
	}
}

func TestMapReduceConstruct(t *testing.T) {
	d := newDFK(t, nil)
	double, _ := d.PythonApp("dbl", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	sum, _ := d.PythonApp("sum", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, v := range args[0].([]any) {
			total += v.(int)
		}
		return total, nil
	})
	v, err := MapReduce(double, sum, []any{1, 2, 3, 4, 5}).Result()
	if err != nil || v != 30 {
		t.Fatalf("mapreduce = %v, %v", v, err)
	}
}

func TestMapReducePropagatesMapperFailure(t *testing.T) {
	d := newDFK(t, nil)
	flaky, _ := d.PythonApp("flakym", func(args []any, _ map[string]any) (any, error) {
		if args[0].(int) == 2 {
			return nil, errors.New("bad element")
		}
		return args[0], nil
	})
	id, _ := d.PythonApp("idm", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if _, err := MapReduce(flaky, id, []any{1, 2, 3}).Result(); err == nil {
		t.Fatal("mapper failure swallowed")
	}
}

func TestChain(t *testing.T) {
	d := newDFK(t, nil)
	inc, _ := d.PythonApp("incc", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	v, err := Chain(inc, 10, 5).Result()
	if err != nil || v != 15 {
		t.Fatalf("chain = %v, %v", v, err)
	}
	// Chain of zero applications yields the initial value.
	v, err = Chain(inc, 7, 0).Result()
	if err != nil || v != 7 {
		t.Fatalf("chain0 = %v, %v", v, err)
	}
}

func TestMapWithFutureInputsBuildsDAG(t *testing.T) {
	// RetainRecords keeps the DAG edges countable after the drain.
	d := newDFK(t, func(c *Config) { c.RetainRecords = true })
	inc, _ := d.PythonApp("incmap", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	roots := inc.Map1([]any{0, 10, 20})
	// Second map layer consumes the first layer's futures.
	second := inc.Map([][]any{{roots[0]}, {roots[1]}, {roots[2]}})
	want := []int{2, 12, 22}
	for i, f := range second {
		v, err := f.Result()
		if err != nil || v != want[i] {
			t.Fatalf("layer2[%d] = %v, %v", i, v, err)
		}
	}
	if d.Graph().EdgeCount() != 3 {
		t.Fatalf("edges = %d", d.Graph().EdgeCount())
	}
	_ = future.Wait(second...)
}
