package dfk

// End-to-end integration: the DataFlowKernel driving each real executor
// architecture (HTEX, EXEX, LLEX) and combinations, including fault
// recovery across the full stack and checkpoint restart across DFK
// instances — the program-level fault tolerance story of §3.7.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/executor/exex"
	"repro/internal/executor/htex"
	"repro/internal/executor/llex"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

func newHTEXDFK(t *testing.T, nodes, workers int, mutate func(*Config)) *DFK {
	t.Helper()
	reg := serialize.NewRegistry()
	ex := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: nodes}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: workers, Prefetch: workers},
		Interchange: htex.InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 250 * time.Millisecond,
		},
	})
	cfg := Config{Seed: 1, Registry: reg, Executors: []executor.Executor{ex}}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown() })
	return d
}

func TestDFKOverHTEXPipeline(t *testing.T) {
	d := newHTEXDFK(t, 2, 2, nil)
	inc, err := d.PythonApp("inc", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Chain(inc, 0, 10).Result()
	if err != nil || v != 10 {
		t.Fatalf("chain over htex = %v, %v", v, err)
	}
}

func TestDFKOverEXEX(t *testing.T) {
	reg := serialize.NewRegistry()
	ex := exex.New(exex.Config{
		Label:      "exex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 2}),
		InitBlocks: 1,
		Pool:       exex.PoolConfig{Ranks: 3},
		Interchange: htex.InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 50 * time.Millisecond, HeartbeatThreshold: 250 * time.Millisecond,
		},
	})
	d, err := New(Config{Seed: 1, Registry: reg, Executors: []executor.Executor{ex}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	mul, err := d.PythonApp("mulex", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * args[1].(int), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	futs := mul.Map([][]any{{3, 4}, {5, 6}, {7, 8}})
	want := []int{12, 30, 56}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != want[i] {
			t.Fatalf("exex map[%d] = %v, %v", i, v, err)
		}
	}
}

func TestDFKOverLLEX(t *testing.T) {
	reg := serialize.NewRegistry()
	ex := llex.New(llex.Config{Label: "llex", Transport: simnet.NewNetwork(0), Registry: reg, Workers: 2})
	d, err := New(Config{Seed: 1, Registry: reg, Executors: []executor.Executor{ex}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	ping, err := d.PythonApp("pingll", func([]any, map[string]any) (any, error) { return "pong", nil })
	if err != nil {
		t.Fatal(err)
	}
	var futs []*future.Future
	for i := 0; i < 50; i++ {
		futs = append(futs, ping.Call())
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSiteExecution(t *testing.T) {
	// §3.5: "multi-site" execution — two executors in one config, apps
	// pinned per executor with hints, plus an unpinned app spread randomly.
	reg := serialize.NewRegistry()
	hx := htex.New(htex.Config{
		Label:      "cluster",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: 2},
	})
	lx := llex.New(llex.Config{Label: "interactive", Transport: simnet.NewNetwork(0), Registry: reg, Workers: 1})
	d, err := New(Config{Seed: 3, Registry: reg, Executors: []executor.Executor{hx, lx}, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	heavy, err := d.PythonApp("heavy", func([]any, map[string]any) (any, error) {
		return "batch", nil
	}, WithExecutors("cluster"))
	if err != nil {
		t.Fatal(err)
	}
	quick, err := d.PythonApp("quick", func([]any, map[string]any) (any, error) {
		return "fast", nil
	}, WithExecutors("interactive"))
	if err != nil {
		t.Fatal(err)
	}
	anyApp, err := d.PythonApp("anywhere", func([]any, map[string]any) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var futs []*future.Future
	for i := 0; i < 10; i++ {
		futs = append(futs, heavy.Call(), quick.Call(), anyApp.Call())
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	placed := map[string]map[string]int{}
	for _, rec := range d.Graph().Tasks() {
		if placed[rec.AppName] == nil {
			placed[rec.AppName] = map[string]int{}
		}
		placed[rec.AppName][rec.Executor()]++
	}
	if placed["heavy"]["interactive"] > 0 {
		t.Fatalf("hinted app leaked: %v", placed["heavy"])
	}
	if placed["quick"]["cluster"] > 0 {
		t.Fatalf("hinted app leaked: %v", placed["quick"])
	}
	if len(placed["anywhere"]) != 2 {
		t.Fatalf("unhinted app not spread: %v", placed["anywhere"])
	}
}

func TestRetryRecoversFromManagerLoss(t *testing.T) {
	// Full-stack fault tolerance: a manager dies mid-task; the interchange
	// reports LOST; the DFK retries on surviving capacity.
	reg := serialize.NewRegistry()
	tr := simnet.NewNetwork(0)
	ex := htex.New(htex.Config{
		Label:     "htex",
		Transport: tr,
		Registry:  reg,
		Provider:  provider.NewLocal(provider.Config{NodesPerBlock: 1}),
		Manager:   htex.ManagerConfig{Workers: 1, HeartbeatPeriod: 30 * time.Millisecond},
		Interchange: htex.InterchangeConfig{
			Seed: 1, HeartbeatPeriod: 30 * time.Millisecond, HeartbeatThreshold: 150 * time.Millisecond,
		},
	})
	d, err := New(Config{Seed: 1, Registry: reg, Executors: []executor.Executor{ex}, Retries: 2, RetainRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	var calls atomic.Int32
	slowOnce, err := d.PythonApp("slowonce", func([]any, map[string]any) (any, error) {
		if calls.Add(1) == 1 {
			time.Sleep(10 * time.Second) // first attempt parks on the doomed manager
		}
		return "recovered", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ix := ex.Interchange()
	victim, err := htex.StartManager(tr, ix.Addr(), "mgr-doomed", reg, htex.ManagerConfig{
		Workers: 1, HeartbeatPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitIntegration(t, func() bool { return ix.ManagerCount() == 1 })

	fut := slowOnce.Call()
	waitIntegration(t, func() bool { return calls.Load() >= 1 })
	// Bring up a healthy manager, then kill the one running the task.
	healthy, err := htex.StartManager(tr, ix.Addr(), "mgr-healthy", reg, htex.ManagerConfig{
		Workers: 1, HeartbeatPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Stop()
	waitIntegration(t, func() bool { return ix.ManagerCount() == 2 })
	victim.Stop()

	v, err := fut.Result()
	if err != nil || v != "recovered" {
		t.Fatalf("retry after manager loss = %v, %v", v, err)
	}
	// Task record shows the retry.
	var lostSeen bool
	for _, rec := range d.Graph().Tasks() {
		if rec.Attempts() > 0 {
			lostSeen = true
		}
	}
	if !lostSeen {
		t.Fatal("no task recorded a retry attempt")
	}
}

func TestCheckpointRestartAcrossDFKs(t *testing.T) {
	// §3.7: re-executing a program must not re-run apps already completed
	// with the same arguments — even across process restarts.
	cpPath := filepath.Join(t.TempDir(), "run", "checkpoint.jsonl")
	var executions atomic.Int32
	appFn := func(args []any, _ map[string]any) (any, error) {
		executions.Add(1)
		return fmt.Sprintf("result-%v", args[0]), nil
	}

	run := func() {
		d := newHTEXDFK(t, 1, 2, func(c *Config) {
			c.Memoize = true
			c.Checkpoint = cpPath
		})
		workApp, err := d.PythonApp("cpwork", appFn, WithVersion("v1"))
		if err != nil {
			t.Fatal(err)
		}
		var futs []*future.Future
		for i := 0; i < 5; i++ {
			futs = append(futs, workApp.Call(i))
		}
		if err := future.Wait(futs...); err != nil {
			t.Fatal(err)
		}
		if err := d.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if executions.Load() != 5 {
		t.Fatalf("first run executed %d tasks", executions.Load())
	}
	run() // the "restarted program"
	if executions.Load() != 5 {
		t.Fatalf("restart re-executed: %d total executions, want 5", executions.Load())
	}
}

func TestMonitoringAcrossFullStack(t *testing.T) {
	store := monitor.NewStore()
	d := newHTEXDFK(t, 1, 2, func(c *Config) { c.Monitor = store })
	work, err := d.PythonApp("monwork", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	var futs []*future.Future
	for i := 0; i < 10; i++ {
		futs = append(futs, work.Call(i))
	}
	if err := future.Wait(futs...); err != nil {
		t.Fatal(err)
	}
	counts := store.StateCounts()
	if counts["done"] != 10 {
		t.Fatalf("monitored done = %v", counts)
	}
}

func TestHTEXCommandChannelThroughDFK(t *testing.T) {
	d := newHTEXDFK(t, 2, 1, nil)
	exAny, _ := d.Executor("htex")
	hx := exAny.(*htex.Executor)
	waitIntegration(t, func() bool { return hx.Interchange().ManagerCount() == 2 })
	reps, err := hx.Command("MANAGERS", "", 2*time.Second)
	if err != nil || len(reps) != 2 {
		t.Fatalf("managers via command channel: %v, %v", reps, err)
	}
}

func TestLargeFanOutOverHTEX(t *testing.T) {
	d := newHTEXDFK(t, 4, 4, nil)
	work, err := d.PythonApp("fan", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	futs := work.Map1(rangeAny(n))
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
	if got := d.Summary()["done"]; got != n {
		t.Fatalf("done = %d", got)
	}
}

func rangeAny(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func waitIntegration(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("integration wait timed out")
}
