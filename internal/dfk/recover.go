package dfk

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/executor"
	"repro/internal/future"
	"repro/internal/monitor"
	"repro/internal/serialize"
	"repro/internal/task"
	"repro/internal/wal"
)

// Recovery summarizes one crash-recovery pass: which tasks the durable log
// proved terminal before the crash (resolved here from the checkpoint, never
// re-executed), and which were live (re-admitted through the normal submit
// boundary, exactly once each). Futures are keyed by the WAL task key — the
// identity that survives the crash; task ids are per-process.
type Recovery struct {
	// Resolved holds tasks terminal at the crash, settled from durable
	// state: done tasks resolve through the memo checkpoint, failed tasks
	// fail again. Terminal history already folded into a compaction
	// snapshot is counted, not resolved — its futures settled in a previous
	// lifetime.
	Resolved map[int64]*future.Future
	// Resumed holds tasks live at the crash, re-admitted as new tasks: they
	// run through dispatch, retries, memoization, and the monitor exactly
	// like first submissions, with their remaining retry budget.
	Resumed map[int64]*future.Future
	// LiveAtCrash and TerminalAtCrash count the replayed frontier.
	LiveAtCrash     int
	TerminalAtCrash int
	// MemoHits counts resumed tasks settled from the checkpoint without
	// launching — the crash lost their terminal record but not their result.
	MemoHits int
	// Unrecoverable counts resumed tasks whose app is not registered in this
	// process; they fail rather than silently vanish.
	Unrecoverable int
	// Elapsed is the wall-clock recovery time (replay happened at Open; this
	// covers resolution, re-admission, and the post-recovery compaction).
	Elapsed time.Duration
}

// Recover consumes the frontier replayed from the durable log when this DFK
// opened it: construct the DFK with Config.WAL over the crashed process's
// WALDir (and the same Checkpoint), re-register the apps, then call Recover
// before submitting new work. Idempotent in effect — the replayed frontier is
// consumed by the first call, and recovery itself is logged, so a crash
// during recovery replays the same (or a smaller) frontier next time.
func (d *DFK) Recover() (*Recovery, error) {
	start := time.Now()
	rcv := &Recovery{
		Resolved: make(map[int64]*future.Future),
		Resumed:  make(map[int64]*future.Future),
	}
	if d.wal == nil {
		return nil, errors.New("dfk: Recover requires Config.WAL")
	}
	fr := d.wal.Recovered()
	if fr == nil {
		return rcv, nil
	}
	rcv.LiveAtCrash = len(fr.Live)
	rcv.TerminalAtCrash = len(fr.Terminals)
	for key, t := range fr.Terminals {
		fut := future.New()
		switch {
		case t.Outcome == wal.OutcomeFailed:
			_ = fut.SetError(fmt.Errorf("dfk: task (wal key %d) failed before the crash", key))
		case t.Digest != "":
			if v, hit := d.memoizer.Lookup(t.Digest); hit {
				_ = fut.SetResult(v)
			} else {
				// The write-ordering contract (memo Store before WAL
				// terminal) makes this unreachable under the process-crash
				// model; surface it loudly rather than re-executing a task
				// the log proved already ran.
				_ = fut.SetError(fmt.Errorf(
					"dfk: task (wal key %d) concluded before the crash but its result is not in the checkpoint (key %q)", key, t.Digest))
			}
		default:
			// Done without memoization: the value was never durable anywhere.
			// Exactly-once forbids re-running it, so the future reports the
			// gap instead.
			_ = fut.SetError(fmt.Errorf(
				"dfk: task (wal key %d) concluded before the crash without a durable result (not memoized)", key))
		}
		rcv.Resolved[key] = fut
	}
	// Re-admit live tasks in WAL-key order — submission order — so recovery
	// is deterministic and dispatch sees the pre-crash arrival sequence.
	keys := make([]int64, 0, len(fr.Live))
	for k := range fr.Live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		d.resume(k, fr.Live[k], rcv)
	}
	// Fold the recovered history into a snapshot: the next crash replays the
	// live frontier, not the whole pre-crash record stream.
	if err := d.wal.Compact(); err != nil {
		d.emitWAL(0, "compact", err)
	}
	rcv.Elapsed = time.Since(start)
	d.mon.Emit(monitor.Event{
		Kind: monitor.KindWAL,
		At:   time.Now(),
		Detail: fmt.Sprintf(
			"recovered %d records: %d live re-admitted (%d memo hits, %d unrecoverable), %d terminal resolved, %d folded",
			fr.Records, rcv.LiveAtCrash, rcv.MemoHits, rcv.Unrecoverable, rcv.TerminalAtCrash, fr.Folded),
		Duration: rcv.Elapsed,
	})
	return rcv, nil
}

// resume re-admits one live-at-crash task through the same machinery a fresh
// submission uses: a new record and task id, the normal pending state, memo
// consultation, and the dispatch pipeline. What differs is durable identity —
// the record keeps the crashed task's WAL key, so its terminal record settles
// the same logged task, and its attempt counter starts at the pre-crash
// launch count, so the retry budget spans both lifetimes.
func (d *DFK) resume(key int64, info *wal.TaskInfo, rcv *Recovery) {
	d.mu.RLock()
	if d.shutdown {
		d.mu.RUnlock()
		rcv.Resumed[key] = future.FromError(executor.ErrShutdown)
		return
	}
	d.wg.Add(1)
	d.mu.RUnlock()

	args, kwargs, decErr := serialize.DecodeArgsBytes(info.Payload)
	id := d.graph.NextID()
	rec := task.NewRecord(id, info.App, args, kwargs)
	rcv.Resumed[key] = rec.Future
	rec.SetTenant(info.Tenant, info.Weight)
	rec.SetMaxRetries(info.MaxRetries)
	rec.SetPriority(info.Priority)
	rec.SetWALKey(key)
	d.graph.Add(rec)
	d.emitState(rec, "", "pending")
	if err := rec.SetState(task.Pending); err != nil {
		d.failTask(rec, err)
		return
	}
	if decErr != nil {
		d.failTask(rec, fmt.Errorf("dfk: recover: decode logged payload: %w", decErr))
		return
	}
	// The self-healing half of the checkpoint/WAL contract: the crash lost
	// the terminal record but the memo Store that preceded it survived, so
	// the lookup settles the task without re-execution — and this lifetime
	// logs the terminal record the last one couldn't.
	if info.MemoKey != "" {
		rec.SetMemoKey(info.MemoKey)
		if v, hit := d.memoizer.Lookup(info.MemoKey); hit {
			from := rec.State().String()
			if rec.SetState(task.Memoized) == nil {
				rcv.MemoHits++
				d.emitState(rec, from, "memoized")
				d.logTerminal(rec, wal.OutcomeMemoized, info.MemoKey)
				_ = rec.Future.SetResult(v)
				d.retire(rec)
			}
			return
		}
	}
	entry, ok := d.registry.Lookup(info.App)
	if !ok {
		rcv.Unrecoverable++
		d.failTask(rec, fmt.Errorf("dfk: recover: app %q not registered in this process", info.App))
		return
	}
	if info.Launches > info.MaxRetries {
		d.failTask(rec, fmt.Errorf(
			"dfk: recover: retry budget exhausted before the crash (%d launches, %d retries allowed)",
			info.Launches, info.MaxRetries))
		return
	}
	rec.SetAttempts(info.Launches)
	// The frontier's payload slice aliases the log's live mirror; the record
	// needs its own copy with its own refcount lifecycle.
	payload := serialize.PayloadFromBytes(append([]byte(nil), info.Payload...))
	rec.SetPayload(payload)
	attempt := info.Launches + 1
	if info.Launches > 0 {
		// Charge the resumed attempt durably before it can run, exactly as
		// an in-process retry would (the lane runner only logs Launch for
		// attempt 1).
		if err := d.wal.Retry(key, attempt); err != nil {
			d.emitWAL(rec.ID, "retry", err)
		}
	}
	a := &App{dfk: d, name: info.App, memoize: info.MemoKey != "", bodyHash: entry.BodyHash()}
	pl := &pendingLaunch{
		d: d, rec: rec, gen: rec.Gen(), app: a, args: args, kwargs: kwargs,
		payload: payload.Retain(),
		wireID:  id, priority: info.Priority,
		tenant: info.Tenant, weight: info.Weight,
		walKey: key, walAttempt: attempt,
	}
	if d.schedUsesDigest {
		pl.digest = payload.ArgsHash()
	}
	d.enqueueAttempt(pl)
}
