package dfk

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/future"
)

// TestQuickRandomDAGCorrectness builds random layered DAGs of integer-sum
// tasks and checks that distributed execution matches a local topological
// evaluation — the determinism guarantee of §1 ("safe and deterministic
// parallel programs") as a property test.
func TestQuickRandomDAGCorrectness(t *testing.T) {
	d := newDFK(t, nil)
	sum, err := d.PythonApp("qsum", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, a := range args {
			total += a.(int)
		}
		return total, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 2 + rng.Intn(3)
		width := 1 + rng.Intn(4)

		// Local model: values per node; distributed: futures per node.
		var prevVals []int
		var prevFuts []*future.Future
		for l := 0; l < layers; l++ {
			var vals []int
			var futs []*future.Future
			for w := 0; w < width; w++ {
				base := rng.Intn(100)
				args := []any{base}
				localSum := base
				// Depend on a random subset of the previous layer.
				for i, pf := range prevFuts {
					if rng.Intn(2) == 0 {
						args = append(args, pf)
						localSum += prevVals[i]
					}
				}
				futs = append(futs, sum.Call(args...))
				vals = append(vals, localSum)
			}
			prevVals, prevFuts = vals, futs
		}
		for i, f := range prevFuts {
			v, err := f.Result()
			if err != nil || v != prevVals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInputsKwargStaging(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("kwarg-staged"))
	}))
	defer srv.Close()

	d := newDataDFK(t)
	read, err := d.PythonApp("readinputs", func(_ []any, kwargs map[string]any) (any, error) {
		files := kwargs["inputs"].([]*data.File)
		b, err := os.ReadFile(files[0].LocalPath())
		if err != nil {
			return nil, err
		}
		return string(b), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f := data.MustFile(srv.URL + "/in.dat")
	v, err := read.CallKw(map[string]any{"inputs": []*data.File{f}}).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != "kwarg-staged" {
		t.Fatalf("v = %v", v)
	}
	if !f.Staged() {
		t.Fatal("input file not marked staged")
	}
}

// TestQuickMemoKeyedOnArguments: for any pair of argument values, memoized
// calls collide exactly when the arguments are equal.
func TestQuickMemoKeyedOnArguments(t *testing.T) {
	d := newDFK(t, func(c *Config) { c.Memoize = true })
	calls := map[int]int{}
	record, err := d.PythonApp("qmemo", func(args []any, _ map[string]any) (any, error) {
		calls[args[0].(int)]++
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint8) bool {
		x, y := int(a%16), int(b%16)
		v1, e1 := record.Call(x).Result()
		v2, e2 := record.Call(y).Result()
		if e1 != nil || e2 != nil {
			return false
		}
		return v1 == x && v2 == y
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	// Despite ~120 calls, each distinct argument executed exactly once.
	for arg, n := range calls {
		if n != 1 {
			t.Fatalf("argument %d executed %d times despite memoization", arg, n)
		}
	}
}
