package mq

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

func newNet() *simnet.Network { return simnet.NewNetwork(0) }

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{[]byte("a"), []byte(""), []byte("longer part here")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || string(out[0]) != "a" || len(out[1]) != 0 || string(out[2]) != "longer part here" {
		t.Fatalf("out = %v", out)
	}
}

func TestFrameEmptyMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, Message{}); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestFrameRejectsOversizedClaims(t *testing.T) {
	// A frame header claiming 2^31 parts must be rejected, not allocated.
	buf := bytes.NewReader([]byte{0x80, 0, 0, 0})
	if _, err := readFrame(buf); err == nil {
		t.Fatal("oversized part count accepted")
	}
}

func TestDealerRequiresIdentity(t *testing.T) {
	n := newNet()
	r, err := NewRouter(n, "hub")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := DialDealer(n, "hub", ""); err == nil {
		t.Fatal("empty identity accepted")
	}
}

func TestRouterDealerExchange(t *testing.T) {
	n := newNet()
	r, err := NewRouter(n, "hub")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	d, err := DialDealer(n, "hub", "mgr-1")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Send(Message{[]byte("task"), []byte("42")}); err != nil {
		t.Fatal(err)
	}
	del := <-r.Incoming()
	if del.From != "mgr-1" || string(del.Msg[0]) != "task" {
		t.Fatalf("delivery = %+v", del)
	}
	if err := r.SendTo("mgr-1", Message{[]byte("result")}); err != nil {
		t.Fatal(err)
	}
	m, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m[0]) != "result" {
		t.Fatalf("m = %v", m)
	}
}

func TestRouterPeerEvents(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	d, err := DialDealer(n, "hub", "w1")
	if err != nil {
		t.Fatal(err)
	}
	ev := <-r.Events()
	if !ev.Joined || ev.ID != "w1" {
		t.Fatalf("join event = %+v", ev)
	}
	if !r.HasPeer("w1") {
		t.Fatal("peer not registered")
	}
	_ = d.Close()
	ev = <-r.Events()
	if ev.Joined || ev.ID != "w1" {
		t.Fatalf("leave event = %+v", ev)
	}
	waitFor(t, func() bool { return !r.HasPeer("w1") })
}

func TestRouterSendToUnknownPeer(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	if err := r.SendTo("ghost", Message{[]byte("x")}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestRouterManyDealersFanIn(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	const peers = 32
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := DialDealer(n, "hub", fmt.Sprintf("w%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			defer d.Close()
			if err := d.Send(Message{[]byte(fmt.Sprintf("hello-%d", i))}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	seen := map[string]bool{}
	for i := 0; i < peers; i++ {
		del := <-r.Incoming()
		seen[del.From] = true
	}
	wg.Wait()
	if len(seen) != peers {
		t.Fatalf("saw %d distinct peers, want %d", len(seen), peers)
	}
}

func TestRouterIdentityReuseLastWins(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	d1, err := DialDealer(n, "hub", "dup")
	if err != nil {
		t.Fatal(err)
	}
	<-r.Events() // join d1
	d2, err := DialDealer(n, "hub", "dup")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	<-r.Events() // join d2 (replacing d1)
	// The message routed to "dup" must arrive at d2.
	waitFor(t, func() bool { return r.HasPeer("dup") })
	if err := r.SendTo("dup", Message{[]byte("ping")}); err != nil {
		t.Fatal(err)
	}
	m, err := d2.Recv()
	if err != nil {
		t.Fatalf("second dealer recv: %v", err)
	}
	if string(m[0]) != "ping" {
		t.Fatalf("m = %v", m)
	}
	_ = d1.Close()
}

func TestRouterDisconnectPeer(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	d, err := DialDealer(n, "hub", "bad")
	if err != nil {
		t.Fatal(err)
	}
	<-r.Events()
	r.Disconnect("bad")
	if _, err := d.Recv(); err == nil {
		t.Fatal("recv on disconnected dealer succeeded")
	}
	waitFor(t, func() bool { return !r.HasPeer("bad") })
}

func TestRouterClose(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	d, err := DialDealer(n, "hub", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.SendTo("w", Message{[]byte("x")}); err != ErrClosed {
		t.Fatalf("SendTo after close = %v", err)
	}
	if _, err := d.Recv(); err == nil {
		t.Fatal("dealer recv after router close succeeded")
	}
	// Double close is safe.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSendsOnOneDealer(t *testing.T) {
	n := newNet()
	r, _ := NewRouter(n, "hub")
	defer r.Close()
	d, err := DialDealer(n, "hub", "w")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const msgs = 200
	var wg sync.WaitGroup
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = d.Send(Message{[]byte(fmt.Sprintf("%d", i))})
		}(i)
	}
	got := 0
	for got < msgs {
		<-r.Incoming()
		got++
	}
	wg.Wait() // frames must never interleave/corrupt
}

func TestOverTCPTransport(t *testing.T) {
	var tr simnet.TCP
	r, err := NewRouter(tr, "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer r.Close()
	d, err := DialDealer(tr, r.Addr(), "tcp-worker")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Send(Message{[]byte("over-tcp")}); err != nil {
		t.Fatal(err)
	}
	del := <-r.Incoming()
	if del.From != "tcp-worker" || string(del.Msg[0]) != "over-tcp" {
		t.Fatalf("delivery = %+v", del)
	}
}

// Property: any multipart payload survives the frame codec byte-for-byte.
func TestQuickFrameRoundTrip(t *testing.T) {
	prop := func(parts [][]byte) bool {
		if len(parts) > 64 {
			parts = parts[:64]
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, Message(parts)); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		if len(out) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(out[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}
