// Package mq is the message-fabric substrate standing in for ZeroMQ (§4.3:
// "the interchange is a hub to which the executor client and registered
// managers connect using ZeroMQ queues"). It provides multipart framed
// messages over any net.Conn, a Dealer (identified client) and a Router
// (identity-routing hub) — the two socket patterns Parsl's executors use.
package mq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/simnet"
)

// MaxPartSize bounds a single frame part; larger parts indicate corruption
// or a protocol error rather than a legitimate task payload.
const MaxPartSize = 64 << 20

// MaxParts bounds the number of parts in one message.
const MaxParts = 1 << 16

// ErrClosed is returned by operations on a closed socket.
var ErrClosed = errors.New("mq: socket closed")

// Message is a multipart message, mirroring ZeroMQ frames.
type Message [][]byte

// writeFrame writes one multipart message: u32 part count, then u32
// length-prefixed parts.
func writeFrame(w io.Writer, m Message) error {
	if len(m) > MaxParts {
		return fmt.Errorf("mq: %d parts exceeds limit", len(m))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(m)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, part := range m {
		if len(part) > MaxPartSize {
			return fmt.Errorf("mq: part of %d bytes exceeds limit", len(part))
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(len(part)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(part); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one multipart message.
func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	nparts := binary.BigEndian.Uint32(hdr[:])
	if nparts > MaxParts {
		return nil, fmt.Errorf("mq: frame claims %d parts", nparts)
	}
	m := make(Message, 0, nparts)
	for i := uint32(0); i < nparts; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxPartSize {
			return nil, fmt.Errorf("mq: part claims %d bytes", n)
		}
		part := make([]byte, n)
		if _, err := io.ReadFull(r, part); err != nil {
			return nil, err
		}
		m = append(m, part)
	}
	return m, nil
}

// Conn is a framed connection with a serialized writer, safe for concurrent
// Send from multiple goroutines. Recv must be called from one goroutine.
type Conn struct {
	raw net.Conn
	wmu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps a raw connection.
func NewConn(raw net.Conn) *Conn { return &Conn{raw: raw} }

// Send writes one multipart message.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.raw, m)
}

// Recv reads one multipart message.
func (c *Conn) Recv() (Message, error) { return readFrame(c.raw) }

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}

// Dealer is an identified client socket: it dials a Router, announces its
// identity, and then exchanges messages. Parsl's managers and executor
// clients are dealers.
type Dealer struct {
	id   string
	conn *Conn
}

// DialDealer connects to a router at addr over tr and performs the identity
// handshake.
func DialDealer(tr simnet.Transport, addr, identity string) (*Dealer, error) {
	if identity == "" {
		return nil, errors.New("mq: dealer requires a non-empty identity")
	}
	raw, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("mq: dial %s: %w", addr, err)
	}
	c := NewConn(raw)
	if err := c.Send(Message{[]byte("HELLO"), []byte(identity)}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("mq: handshake: %w", err)
	}
	return &Dealer{id: identity, conn: c}, nil
}

// Identity returns the dealer's identity string.
func (d *Dealer) Identity() string { return d.id }

// Send transmits a message to the router.
func (d *Dealer) Send(m Message) error { return d.conn.Send(m) }

// Recv blocks for the next message from the router.
func (d *Dealer) Recv() (Message, error) { return d.conn.Recv() }

// Close tears down the connection.
func (d *Dealer) Close() error { return d.conn.Close() }

// Delivery is a message received by a Router, tagged with the sender.
type Delivery struct {
	From string
	Msg  Message
}

// PeerEvent notifies router users of peer arrival/departure, which the HTEX
// interchange turns into manager registration and loss detection.
type PeerEvent struct {
	ID     string
	Joined bool // false = disconnected
}

// Router is the hub socket: it accepts dealer connections, learns their
// identities from the handshake, and routes outbound messages by identity.
type Router struct {
	l          net.Listener
	incoming   chan Delivery
	events     chan PeerEvent
	mu         sync.Mutex
	peers      map[string]*Conn
	closed     bool
	acceptDone sync.WaitGroup
}

// NewRouter starts a router listening on addr over tr.
func NewRouter(tr simnet.Transport, addr string) (*Router, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("mq: listen %s: %w", addr, err)
	}
	r := &Router{
		l:        l,
		incoming: make(chan Delivery, 4096),
		events:   make(chan PeerEvent, 1024),
		peers:    make(map[string]*Conn),
	}
	r.acceptDone.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the bound address (useful with ":0" TCP listeners).
func (r *Router) Addr() string { return r.l.Addr().String() }

func (r *Router) acceptLoop() {
	defer r.acceptDone.Done()
	for {
		raw, err := r.l.Accept()
		if err != nil {
			return
		}
		go r.serveConn(NewConn(raw))
	}
}

func (r *Router) serveConn(c *Conn) {
	hello, err := c.Recv()
	if err != nil || len(hello) != 2 || string(hello[0]) != "HELLO" {
		_ = c.Close()
		return
	}
	id := string(hello[1])

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = c.Close()
		return
	}
	if old, dup := r.peers[id]; dup {
		// Last writer wins, as with ZeroMQ identity reuse; drop the old conn.
		_ = old.Close()
	}
	r.peers[id] = c
	r.mu.Unlock()
	r.notify(PeerEvent{ID: id, Joined: true})

	for {
		m, err := c.Recv()
		if err != nil {
			break
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			break
		}
		r.incoming <- Delivery{From: id, Msg: m}
	}

	r.mu.Lock()
	// Only deregister if we are still the registered conn for this id.
	if cur, ok := r.peers[id]; ok && cur == c {
		delete(r.peers, id)
		r.mu.Unlock()
		r.notify(PeerEvent{ID: id, Joined: false})
	} else {
		r.mu.Unlock()
	}
	_ = c.Close()
}

func (r *Router) notify(ev PeerEvent) {
	select {
	case r.events <- ev:
	default: // event buffer full: drop rather than deadlock the read loop
	}
}

// Incoming returns the delivery channel. It is closed by Close.
func (r *Router) Incoming() <-chan Delivery { return r.incoming }

// Events returns peer join/leave notifications.
func (r *Router) Events() <-chan PeerEvent { return r.events }

// SendTo routes a message to the peer with the given identity.
func (r *Router) SendTo(id string, m Message) error {
	r.mu.Lock()
	c, ok := r.peers[id]
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("mq: no peer %q", id)
	}
	return c.Send(m)
}

// Peers returns the identities currently connected.
func (r *Router) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.peers))
	for id := range r.peers {
		out = append(out, id)
	}
	return out
}

// HasPeer reports whether id is connected.
func (r *Router) HasPeer(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.peers[id]
	return ok
}

// Disconnect drops a peer (used by the HTEX command channel's blacklist).
func (r *Router) Disconnect(id string) {
	r.mu.Lock()
	c, ok := r.peers[id]
	r.mu.Unlock()
	if ok {
		_ = c.Close()
	}
}

// Close shuts the router down, closing all peer connections.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	peers := make([]*Conn, 0, len(r.peers))
	for _, c := range r.peers {
		peers = append(peers, c)
	}
	r.peers = map[string]*Conn{}
	r.mu.Unlock()

	err := r.l.Close()
	for _, c := range peers {
		_ = c.Close()
	}
	r.acceptDone.Wait()
	return err
}
