package app

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func shAvailable(t *testing.T) {
	t.Helper()
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("/bin/sh unavailable")
	}
}

func TestRunBashSuccess(t *testing.T) {
	shAvailable(t)
	res, err := RunBash("true", nil, Options{SandboxRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestRunBashNonZeroExit(t *testing.T) {
	shAvailable(t)
	res, err := RunBash("exit 7", nil, Options{SandboxRoot: t.TempDir()})
	if !errors.Is(err, ErrNonZeroExit) {
		t.Fatalf("err = %v", err)
	}
	if res.ExitCode != 7 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestRunBashStdoutRedirect(t *testing.T) {
	shAvailable(t)
	out := filepath.Join(t.TempDir(), "logs", "hello.out")
	res, err := RunBash("echo hello-parsl", map[string]any{KwStdout: out}, Options{SandboxRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != out {
		t.Fatalf("res.Stdout = %q", res.Stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "hello-parsl" {
		t.Fatalf("captured %q", b)
	}
}

func TestRunBashStderrRedirect(t *testing.T) {
	shAvailable(t)
	errPath := filepath.Join(t.TempDir(), "e.err")
	_, err := RunBash("echo oops 1>&2", map[string]any{KwStderr: errPath}, Options{SandboxRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(errPath)
	if strings.TrimSpace(string(b)) != "oops" {
		t.Fatalf("captured %q", b)
	}
}

func TestRunBashSandboxIsolation(t *testing.T) {
	shAvailable(t)
	root := t.TempDir()
	// The app writes to its cwd; the sandbox must be cleaned afterwards.
	if _, err := RunBash("echo data > scratch.txt", nil, Options{SandboxRoot: root}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("sandbox leaked: %v", entries)
	}
}

func TestRunBashTimeout(t *testing.T) {
	shAvailable(t)
	start := time.Now()
	_, err := RunBash("sleep 10", nil, Options{SandboxRoot: t.TempDir(), Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("timeout not enforced")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout too slow")
	}
}

func TestRunBashFailureIncludesStderr(t *testing.T) {
	shAvailable(t)
	_, err := RunBash("echo diagnosis 1>&2; exit 1", nil, Options{SandboxRoot: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "diagnosis") {
		t.Fatalf("err = %v", err)
	}
}

func TestWrapBashRendersArguments(t *testing.T) {
	shAvailable(t)
	tmpl := func(args []any, _ map[string]any) (string, error) {
		return "echo 'Hello " + args[0].(string) + "'", nil
	}
	fn := WrapBash(tmpl, Options{SandboxRoot: t.TempDir()})
	out := filepath.Join(t.TempDir(), "o")
	v, err := fn([]any{"World"}, map[string]any{KwStdout: out})
	if err != nil {
		t.Fatal(err)
	}
	res := v.(BashResult)
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	b, _ := os.ReadFile(out)
	if strings.TrimSpace(string(b)) != "Hello World" {
		t.Fatalf("out = %q", b)
	}
}

func TestWrapBashTemplateError(t *testing.T) {
	fn := WrapBash(func([]any, map[string]any) (string, error) {
		return "", errors.New("bad template")
	}, Options{})
	if _, err := fn(nil, nil); err == nil || !strings.Contains(err.Error(), "bad template") {
		t.Fatalf("err = %v", err)
	}
}

func TestStringKwarg(t *testing.T) {
	if _, ok := stringKwarg(nil, KwStdout); ok {
		t.Fatal("nil kwargs")
	}
	if _, ok := stringKwarg(map[string]any{KwStdout: 3}, KwStdout); ok {
		t.Fatal("non-string accepted")
	}
	if _, ok := stringKwarg(map[string]any{KwStdout: ""}, KwStdout); ok {
		t.Fatal("empty string accepted")
	}
	if v, ok := stringKwarg(map[string]any{KwStdout: "x"}, KwStdout); !ok || v != "x" {
		t.Fatal("valid kwarg rejected")
	}
}

func TestFirstLine(t *testing.T) {
	if firstLine("a\nb") != "a" || firstLine("solo") != "solo" {
		t.Fatal("firstLine")
	}
}
