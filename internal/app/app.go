// Package app implements the App constructs of §3.1: the Go equivalents of
// Parsl's @python_app and @bash_app decorators. A Python-style app is any
// registered Go function; a Bash app is a function that renders a shell
// command line, which the execution kernel then runs in a sandbox directory
// with optional stdout/stderr redirection, returning the UNIX exit code.
//
// Reserved keyword arguments follow Parsl's conventions:
//
//	stdout  — file path to capture standard output
//	stderr  — file path to capture standard error
//	inputs  — []*data.File staged in before execution
//	outputs — []*data.File staged out after execution
package app

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/serialize"
)

// Reserved kwarg names (§3.1.1).
const (
	KwStdout  = "stdout"
	KwStderr  = "stderr"
	KwInputs  = "inputs"
	KwOutputs = "outputs"
)

// BashTemplate renders a shell command line from app arguments, mirroring
// how a @bash_app's Python body returns a bash fragment.
type BashTemplate func(args []any, kwargs map[string]any) (string, error)

// BashResult is the value a Bash app resolves to: the exit code plus where
// the streams went. Exit code 0 means success; Parsl's bash apps "return
// UNIX return codes that indicate only whether the code succeeded".
type BashResult struct {
	ExitCode int
	Stdout   string // redirect path, "" if not captured
	Stderr   string
}

// ErrNonZeroExit is wrapped into failures of Bash apps.
var ErrNonZeroExit = errors.New("app: bash app exited non-zero")

var sandboxSeq atomic.Int64

// Options configures bash execution.
type Options struct {
	// SandboxRoot is where per-invocation working directories are created.
	// Empty uses the OS temp dir.
	SandboxRoot string
	// Timeout bounds one invocation; zero means 10 minutes.
	Timeout time.Duration
}

// RunBash executes a rendered command line in a fresh sandbox directory.
// stdout/stderr kwargs redirect streams to files (created relative to the
// caller's cwd when relative). The BashResult is returned for exit code 0;
// non-zero exit codes are errors, matching Parsl's semantics where a failed
// bash app fails the task.
func RunBash(cmdline string, kwargs map[string]any, opts Options) (BashResult, error) {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Minute
	}
	root := opts.SandboxRoot
	if root == "" {
		root = os.TempDir()
	}
	sandbox := filepath.Join(root, fmt.Sprintf("parsl-sandbox-%d", sandboxSeq.Add(1)))
	if err := os.MkdirAll(sandbox, 0o755); err != nil {
		return BashResult{}, fmt.Errorf("app: sandbox: %w", err)
	}
	defer os.RemoveAll(sandbox)

	res := BashResult{}
	cmd := exec.Command("/bin/sh", "-c", cmdline)
	cmd.Dir = sandbox
	cmd.WaitDelay = 200 * time.Millisecond

	var stdoutBuf, stderrBuf bytes.Buffer
	cmd.Stdout = &stdoutBuf
	cmd.Stderr = &stderrBuf

	var stdoutFile, stderrFile *os.File
	if p, ok := stringKwarg(kwargs, KwStdout); ok {
		f, err := createRedirect(p)
		if err != nil {
			return res, err
		}
		stdoutFile = f
		cmd.Stdout = f
		res.Stdout = p
	}
	if p, ok := stringKwarg(kwargs, KwStderr); ok {
		f, err := createRedirect(p)
		if err != nil {
			if stdoutFile != nil {
				_ = stdoutFile.Close()
			}
			return res, err
		}
		stderrFile = f
		cmd.Stderr = f
		res.Stderr = p
	}
	closeRedirects := func() {
		if stdoutFile != nil {
			_ = stdoutFile.Close()
		}
		if stderrFile != nil {
			_ = stderrFile.Close()
		}
	}

	if err := cmd.Start(); err != nil {
		closeRedirects()
		return res, fmt.Errorf("app: start bash app: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var waitErr error
	select {
	case waitErr = <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		closeRedirects()
		return res, fmt.Errorf("app: bash app timed out after %v", timeout)
	}
	closeRedirects()

	if waitErr != nil {
		var ee *exec.ExitError
		if errors.As(waitErr, &ee) {
			res.ExitCode = ee.ExitCode()
			return res, fmt.Errorf("%w: code %d (stderr: %s)",
				ErrNonZeroExit, res.ExitCode, firstLine(stderrBuf.String()))
		}
		return res, fmt.Errorf("app: bash app: %w", waitErr)
	}
	res.ExitCode = 0
	return res, nil
}

func createRedirect(p string) (*os.File, error) {
	if dir := filepath.Dir(p); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("app: redirect dir: %w", err)
		}
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("app: redirect: %w", err)
	}
	return f, nil
}

func stringKwarg(kwargs map[string]any, key string) (string, bool) {
	v, ok := kwargs[key]
	if !ok || v == nil {
		return "", false
	}
	s, ok := v.(string)
	return s, ok && s != ""
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// WrapBash turns a BashTemplate into the serialize.Fn the execution kernel
// runs: render, execute, and return the BashResult. This is the worker-side
// half of @bash_app.
func WrapBash(tmpl BashTemplate, opts Options) serialize.Fn {
	return func(args []any, kwargs map[string]any) (any, error) {
		cmdline, err := tmpl(args, kwargs)
		if err != nil {
			return nil, fmt.Errorf("app: bash template: %w", err)
		}
		res, err := RunBash(cmdline, kwargs, opts)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

func init() {
	serialize.RegisterType(BashResult{})
}
