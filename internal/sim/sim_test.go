package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5*time.Second, func() {
		e.Schedule(-time.Hour, func() {
			fired = true
			if e.Now() != 5*time.Second {
				t.Errorf("clock moved backwards: %v", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("clamped event never fired")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(10*time.Second, func() { fired = append(fired, 10) })
	e.RunUntil(5 * time.Second)
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired after Run = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.Schedule(time.Second, func() { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	h.Cancel() // double cancel safe
}

func TestAtAbsolute(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(2*time.Second, func() {
		e.At(7*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("at = %v", at)
	}
}

func TestStepsCounted(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

func TestResourceImmediateAndQueued(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var running, maxRunning int
	task := func(d time.Duration) func() {
		return func() {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			e.Schedule(d, func() {
				running--
				r.Release()
			})
		}
	}
	e.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			r.Acquire(task(time.Second))
		}
	})
	e.Run()
	if maxRunning != 2 {
		t.Fatalf("maxRunning = %d, want capacity 2", maxRunning)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", r.QueueLen())
	}
}

func TestResourceAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	if r.Capacity() != 3 || r.InUse() != 0 {
		t.Fatal("fresh resource accounting wrong")
	}
	e.Schedule(0, func() {
		r.Acquire(func() {})
		r.Acquire(func() {})
	})
	e.Run()
	if r.InUse() != 2 {
		t.Fatalf("inUse = %d", r.InUse())
	}
	r.Release()
	if r.InUse() != 1 {
		t.Fatalf("after release inUse = %d", r.InUse())
	}
}

func TestServerSerializesJobs(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 10*time.Millisecond)
	var completions []time.Duration
	e.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			s.Submit(func() { completions = append(completions, e.Now()) })
		}
	})
	e.Run()
	if len(completions) != 5 {
		t.Fatalf("completions = %v", completions)
	}
	for i, c := range completions {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if c != want {
			t.Fatalf("completion %d at %v, want %v", i, c, want)
		}
	}
	if s.Served() != 5 {
		t.Fatalf("served = %d", s.Served())
	}
}

func TestServerBacklog(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, time.Second)
	e.Schedule(0, func() {
		s.Submit(func() {})
		s.Submit(func() {})
		if s.Backlog() != 2*time.Second {
			t.Errorf("backlog = %v", s.Backlog())
		}
	})
	e.Run()
	if s.Backlog() != 0 {
		t.Fatalf("final backlog = %v", s.Backlog())
	}
}

func TestServerIdleGapRestartsClock(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, time.Second)
	var second time.Duration
	e.Schedule(0, func() { s.Submit(func() {}) })
	e.Schedule(10*time.Second, func() {
		s.Submit(func() { second = e.Now() })
	})
	e.Run()
	if second != 11*time.Second {
		t.Fatalf("second completion at %v, want 11s", second)
	}
}

// Property: N events with arbitrary non-negative delays always execute in
// nondecreasing virtual-time order and the engine terminates.
func TestQuickEventOrdering(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var seen []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, e.Now())
			})
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Server with service time s completes n jobs submitted together
// at exactly n*s.
func TestQuickServerThroughput(t *testing.T) {
	prop := func(n uint8) bool {
		jobs := int(n%50) + 1
		e := NewEngine()
		s := NewServer(e, 3*time.Millisecond)
		done := 0
		e.Schedule(0, func() {
			for i := 0; i < jobs; i++ {
				s.Submit(func() { done++ })
			}
		})
		end := e.Run()
		return done == jobs && end == time.Duration(jobs)*3*time.Millisecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
