// Package sim is a discrete-event simulation engine with a virtual clock.
// It is the substrate for the Blue Waters-scale experiments (Fig. 4 and
// Table 2): executing 1M sleep tasks across 262 144 workers needs either a
// Cray or virtual time, so internal/scalesim builds framework models on this
// engine and advances simulated seconds in microseconds of wall time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq int64 // tie-breaker preserving schedule order at equal times
	fn  func()
	idx int
	off bool // canceled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine runs events in virtual-time order. It is single-goroutine: models
// call Schedule from inside event callbacks and the engine never blocks.
type Engine struct {
	now   time.Duration
	seq   int64
	queue eventQueue
	steps int64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Handle identifies a scheduled event for cancellation.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Canceling a fired or already
// canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.off = true
	}
}

// Schedule runs fn at now+delay. Negative delays are clamped to zero.
func (e *Engine) Schedule(delay time.Duration, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// At runs fn at the absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) Handle {
	return e.Schedule(t-e.now, fn)
}

// Run executes events until the queue empties. It returns the final virtual
// time.
func (e *Engine) Run() time.Duration { return e.RunUntil(time.Duration(math.MaxInt64)) }

// RunUntil executes events with at <= limit; later events stay queued. The
// clock never exceeds limit.
func (e *Engine) RunUntil(limit time.Duration) time.Duration {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > limit {
			break
		}
		heap.Pop(&e.queue)
		if next.off {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		e.steps++
		next.fn()
	}
	if e.now < limit && limit != time.Duration(math.MaxInt64) {
		e.now = limit
	}
	return e.now
}

// Pending returns the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d steps=%d}", e.now, len(e.queue), e.steps)
}

// Resource models a counted resource with FIFO waiters (e.g., worker slots
// in a framework model). Acquire/Release run inside engine callbacks.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()
}

// NewResource creates a resource with the given capacity on eng.
func NewResource(eng *Engine, capacity int) *Resource {
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire grabs one unit, invoking fn immediately if capacity is available
// or queueing it FIFO otherwise.
func (r *Resource) Acquire(fn func()) {
	if r.inUse < r.capacity {
		r.inUse++
		fn()
		return
	}
	r.waiters = append(r.waiters, fn)
}

// Release returns one unit, waking the longest-waiting acquirer.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit directly to the waiter.
		r.eng.Schedule(0, next)
		return
	}
	if r.inUse > 0 {
		r.inUse--
	}
}

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Server models a single-queue service center with deterministic service
// time — the building block for centralized schedulers (Dask's scheduler,
// IPP's hub, FireWorks' database). Jobs arriving while busy queue FIFO, so
// the server naturally produces the saturation knees in Fig. 4.
type Server struct {
	eng     *Engine
	service time.Duration
	busyAt  time.Duration // virtual time the server frees up
	served  int64
}

// NewServer creates a service center with the given per-job service time.
func NewServer(eng *Engine, service time.Duration) *Server {
	return &Server{eng: eng, service: service}
}

// Submit enqueues a job; done runs when service completes.
func (s *Server) Submit(done func()) {
	start := s.eng.Now()
	if s.busyAt > start {
		start = s.busyAt
	}
	finish := start + s.service
	s.busyAt = finish
	s.served++
	s.eng.At(finish, done)
}

// Served returns the number of jobs accepted so far.
func (s *Server) Served() int64 { return s.served }

// Backlog returns how far the server is behind the current clock.
func (s *Server) Backlog() time.Duration {
	if s.busyAt <= s.eng.Now() {
		return 0
	}
	return s.busyAt - s.eng.Now()
}
