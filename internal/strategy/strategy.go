// Package strategy implements Parsl's elasticity layer (§3.6, §4.4): an
// extensible strategy interface that watches outstanding tasks and available
// capacity and converts workload pressure into block-level scaling actions
// on a Scalable executor. The default Simple strategy exposes the
// `parallelism` knob the paper describes — how aggressively resources grow
// and shrink in response to waiting tasks.
package strategy

import (
	"math"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/sched"
)

// Snapshot is the workload/capacity state a strategy decides from.
type Snapshot struct {
	// Outstanding is the number of submitted-but-incomplete tasks.
	Outstanding int
	// ConnectedWorkers is live worker count.
	ConnectedWorkers int
	// ActiveBlocks is currently provisioned blocks.
	ActiveBlocks int
	// WorkersPerBlock is the capacity of one block.
	WorkersPerBlock int
	// MinBlocks/MaxBlocks bound the decision.
	MinBlocks, MaxBlocks int
}

// LoadPerWorker is outstanding work normalized by live capacity — the same
// signal the DFK's capacity-aware scheduler ranks executors by, so strategy
// decisions and task routing agree on what "loaded" means.
func (s Snapshot) LoadPerWorker() float64 {
	return sched.Load{Outstanding: s.Outstanding, Workers: s.ConnectedWorkers}.PerWorker()
}

// Strategy converts a snapshot into a scaling delta: positive = blocks to
// add, negative = blocks to release, zero = hold.
type Strategy interface {
	Name() string
	Decide(s Snapshot) int
}

// Simple is the default strategy: target enough blocks to run
// Outstanding×Parallelism tasks at once, within [MinBlocks, MaxBlocks].
// Parallelism 1.0 chases maximum concurrency; 0 disables scale-out.
type Simple struct {
	// Parallelism ∈ [0,1] scales how much of the outstanding work we try
	// to run concurrently.
	Parallelism float64
}

// Name implements Strategy.
func (s Simple) Name() string { return "simple" }

// Decide implements Strategy.
func (s Simple) Decide(snap Snapshot) int {
	if snap.WorkersPerBlock <= 0 {
		return 0
	}
	p := s.Parallelism
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	desiredWorkers := int(math.Ceil(float64(snap.Outstanding) * p))
	desiredBlocks := (desiredWorkers + snap.WorkersPerBlock - 1) / snap.WorkersPerBlock
	if desiredBlocks < snap.MinBlocks {
		desiredBlocks = snap.MinBlocks
	}
	if snap.MaxBlocks > 0 && desiredBlocks > snap.MaxBlocks {
		desiredBlocks = snap.MaxBlocks
	}
	return desiredBlocks - snap.ActiveBlocks
}

// Fixed never scales; it is the "elasticity disabled" control arm of the
// Fig. 6 experiment.
type Fixed struct{}

// Name implements Strategy.
func (Fixed) Name() string { return "fixed" }

// Decide implements Strategy.
func (Fixed) Decide(Snapshot) int { return 0 }

// Event records one controller decision, for tests and the utilization plot.
type Event struct {
	At       time.Time
	Snapshot Snapshot
	Delta    int
	Err      error
}

// ControllerConfig tunes the polling controller.
type ControllerConfig struct {
	// Interval is the poll period (default 100 ms; the paper's strategy
	// polls every few seconds — tests scale time down).
	Interval time.Duration
	// WorkersPerBlock describes block capacity for snapshots.
	WorkersPerBlock int
	// MinBlocks/MaxBlocks bound scaling.
	MinBlocks, MaxBlocks int
	// ScaleInHoldoff suppresses scale-in until the executor has been idle
	// this long, avoiding thrash between workflow stages.
	ScaleInHoldoff time.Duration
}

// Controller polls a Scalable executor and applies a Strategy — Parsl's
// "strategy module [that] tracks outstanding tasks and available capacity
// ... and communicates with the connected providers".
type Controller struct {
	ex  executor.Scalable
	st  Strategy
	cfg ControllerConfig

	mu        sync.Mutex
	events    []Event
	idleSince time.Time

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewController creates a controller; call Start to begin polling.
func NewController(ex executor.Scalable, st Strategy, cfg ControllerConfig) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.WorkersPerBlock <= 0 {
		cfg.WorkersPerBlock = 1
	}
	return &Controller{ex: ex, st: st, cfg: cfg, done: make(chan struct{})}
}

// Start launches the polling loop.
func (c *Controller) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-ticker.C:
				c.Step()
			}
		}
	}()
}

// Step performs one poll/decide/apply cycle (exported so tests and the DES
// can drive it without wall-clock waits).
func (c *Controller) Step() {
	// Sample workload pressure through the scheduler's load probe so the
	// controller sees exactly the signals task routing uses.
	load := sched.LoadOf(c.ex)
	snap := Snapshot{
		Outstanding:      load.Outstanding,
		ConnectedWorkers: load.Workers,
		ActiveBlocks:     c.ex.ActiveBlocks(),
		WorkersPerBlock:  c.cfg.WorkersPerBlock,
		MinBlocks:        c.cfg.MinBlocks,
		MaxBlocks:        c.cfg.MaxBlocks,
	}
	delta := c.st.Decide(snap)

	if delta < 0 && c.cfg.ScaleInHoldoff > 0 {
		c.mu.Lock()
		// Loaded at-or-above capacity, or blocks provisioned whose workers
		// have not registered yet (booting): either way, not idle — don't
		// start the scale-in clock under a block that is still coming up.
		if snap.LoadPerWorker() >= 1 ||
			(snap.ConnectedWorkers == 0 && snap.ActiveBlocks > 0) {
			// Still busy; reset the idle clock.
			c.idleSince = time.Time{}
			c.mu.Unlock()
			return
		}
		if c.idleSince.IsZero() {
			c.idleSince = time.Now()
			c.mu.Unlock()
			return
		}
		if time.Since(c.idleSince) < c.cfg.ScaleInHoldoff {
			c.mu.Unlock()
			return
		}
		c.idleSince = time.Time{}
		c.mu.Unlock()
	}

	var err error
	switch {
	case delta > 0:
		err = c.ex.ScaleOut(delta)
	case delta < 0:
		err = c.ex.ScaleIn(-delta)
	default:
		return
	}
	c.mu.Lock()
	c.events = append(c.events, Event{At: time.Now(), Snapshot: snap, Delta: delta, Err: err})
	c.mu.Unlock()
}

// Events returns a copy of the decision log.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Stop halts polling.
func (c *Controller) Stop() {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
}
