package strategy

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/future"
	"repro/internal/serialize"
)

func TestSimpleScaleOutUnderPressure(t *testing.T) {
	s := Simple{Parallelism: 1}
	delta := s.Decide(Snapshot{Outstanding: 40, ActiveBlocks: 1, WorkersPerBlock: 5, MaxBlocks: 10})
	if delta != 7 { // need ceil(40/5)=8 blocks, have 1
		t.Fatalf("delta = %d", delta)
	}
}

func TestSimpleRespectsMaxBlocks(t *testing.T) {
	s := Simple{Parallelism: 1}
	delta := s.Decide(Snapshot{Outstanding: 1000, ActiveBlocks: 2, WorkersPerBlock: 5, MaxBlocks: 4})
	if delta != 2 {
		t.Fatalf("delta = %d", delta)
	}
}

func TestSimpleScaleInWhenIdle(t *testing.T) {
	s := Simple{Parallelism: 1}
	delta := s.Decide(Snapshot{Outstanding: 0, ActiveBlocks: 4, WorkersPerBlock: 5, MinBlocks: 1})
	if delta != -3 {
		t.Fatalf("delta = %d", delta)
	}
}

func TestSimpleRespectsMinBlocks(t *testing.T) {
	s := Simple{Parallelism: 1}
	delta := s.Decide(Snapshot{Outstanding: 0, ActiveBlocks: 2, WorkersPerBlock: 5, MinBlocks: 2})
	if delta != 0 {
		t.Fatalf("delta = %d", delta)
	}
}

func TestParallelismModeratesAggression(t *testing.T) {
	full := Simple{Parallelism: 1}.Decide(Snapshot{Outstanding: 100, WorkersPerBlock: 10, MaxBlocks: 100})
	half := Simple{Parallelism: 0.5}.Decide(Snapshot{Outstanding: 100, WorkersPerBlock: 10, MaxBlocks: 100})
	zero := Simple{Parallelism: 0}.Decide(Snapshot{Outstanding: 100, WorkersPerBlock: 10, MaxBlocks: 100})
	if full != 10 || half != 5 || zero != 0 {
		t.Fatalf("full=%d half=%d zero=%d", full, half, zero)
	}
}

func TestParallelismClamped(t *testing.T) {
	over := Simple{Parallelism: 5}.Decide(Snapshot{Outstanding: 10, WorkersPerBlock: 10, MaxBlocks: 100})
	under := Simple{Parallelism: -1}.Decide(Snapshot{Outstanding: 10, WorkersPerBlock: 10, MaxBlocks: 100})
	if over != 1 || under != 0 {
		t.Fatalf("over=%d under=%d", over, under)
	}
}

func TestFixedNeverScales(t *testing.T) {
	if (Fixed{}).Decide(Snapshot{Outstanding: 1 << 20, WorkersPerBlock: 1}) != 0 {
		t.Fatal("fixed strategy scaled")
	}
	if (Fixed{}).Name() != "fixed" || (Simple{}).Name() != "simple" {
		t.Fatal("names")
	}
}

func TestZeroWorkersPerBlockIsNoop(t *testing.T) {
	if (Simple{Parallelism: 1}).Decide(Snapshot{Outstanding: 10}) != 0 {
		t.Fatal("decision with zero block capacity")
	}
}

// fakeScalable records scaling calls.
type fakeScalable struct {
	mu          sync.Mutex
	outstanding int
	blocks      int
	outs, ins   int
}

func (f *fakeScalable) Label() string { return "fake" }
func (f *fakeScalable) Start() error  { return nil }
func (f *fakeScalable) Submit(serialize.TaskMsg) *future.Future {
	panic("controller never submits")
}
func (f *fakeScalable) Outstanding() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.outstanding
}
func (f *fakeScalable) Shutdown() error { return nil }
func (f *fakeScalable) ScaleOut(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocks += n
	f.outs += n
	return nil
}
func (f *fakeScalable) ScaleIn(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocks -= n
	f.ins += n
	return nil
}
func (f *fakeScalable) ActiveBlocks() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blocks
}
func (f *fakeScalable) ConnectedWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blocks * 5
}

func (f *fakeScalable) setOutstanding(n int) {
	f.mu.Lock()
	f.outstanding = n
	f.mu.Unlock()
}

func TestControllerStepScalesOutAndIn(t *testing.T) {
	f := &fakeScalable{}
	c := NewController(f, Simple{Parallelism: 1}, ControllerConfig{
		WorkersPerBlock: 5, MinBlocks: 0, MaxBlocks: 10,
	})
	f.setOutstanding(23)
	c.Step()
	if f.blocks != 5 { // ceil(23/5)
		t.Fatalf("blocks = %d", f.blocks)
	}
	f.setOutstanding(0)
	c.Step()
	if f.blocks != 0 {
		t.Fatalf("blocks after drain = %d", f.blocks)
	}
	evs := c.Events()
	if len(evs) != 2 || evs[0].Delta != 5 || evs[1].Delta != -5 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestControllerHoldoffDelaysScaleIn(t *testing.T) {
	f := &fakeScalable{}
	c := NewController(f, Simple{Parallelism: 1}, ControllerConfig{
		WorkersPerBlock: 5, MaxBlocks: 10, ScaleInHoldoff: 80 * time.Millisecond,
	})
	f.setOutstanding(10)
	c.Step()
	if f.blocks != 2 {
		t.Fatalf("blocks = %d", f.blocks)
	}
	f.setOutstanding(0)
	c.Step() // starts idle clock
	if f.blocks != 2 {
		t.Fatal("scaled in immediately despite holdoff")
	}
	time.Sleep(100 * time.Millisecond)
	c.Step()
	if f.blocks != 0 {
		t.Fatalf("blocks after holdoff = %d", f.blocks)
	}
}

func TestControllerPollingLoop(t *testing.T) {
	f := &fakeScalable{}
	c := NewController(f, Simple{Parallelism: 1}, ControllerConfig{
		Interval: 10 * time.Millisecond, WorkersPerBlock: 5, MaxBlocks: 4,
	})
	f.setOutstanding(100)
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && f.ActiveBlocks() != 4 {
		time.Sleep(time.Millisecond)
	}
	if f.ActiveBlocks() != 4 {
		t.Fatalf("blocks = %d", f.ActiveBlocks())
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	f := &fakeScalable{}
	c := NewController(f, Fixed{}, ControllerConfig{Interval: time.Millisecond})
	c.Start()
	c.Stop()
	c.Stop()
}

// Property: Simple never proposes a block count outside [MinBlocks,
// MaxBlocks] and the delta is always consistent with ActiveBlocks.
func TestQuickSimpleBounds(t *testing.T) {
	prop := func(outstanding uint16, active, wpb, min, max uint8) bool {
		if wpb == 0 {
			wpb = 1
		}
		lo, hi := int(min%8), int(min%8)+int(max%8)+1
		snap := Snapshot{
			Outstanding:     int(outstanding),
			ActiveBlocks:    int(active),
			WorkersPerBlock: int(wpb),
			MinBlocks:       lo,
			MaxBlocks:       hi,
		}
		target := int(active) + Simple{Parallelism: 1}.Decide(snap)
		return target >= lo && target <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
