// Package health is the DFK's self-healing retry plane: a typed failure
// taxonomy with per-class retry policies, deterministic jittered backoff,
// per-executor circuit breakers, and poison-task quarantine.
//
// The paper's fault story (§4.1, §4.3.1) is "retry by resubmitting to an
// executor" — a flat budget that re-enters dispatch immediately and treats a
// bit-flipped frame, a lost manager, a task panic, and a timeout identically.
// This package classifies the failure instead: each class carries its own
// policy (does the retry charge the budget, how does it back off, may it
// fail over to another executor), breakers route work away from executors
// whose recent failure rate trips a rolling window, and a task whose attempts
// keep killing managers is quarantined rather than allowed to decapitate the
// fleet.
//
// Everything here is deterministic under a seed: backoff jitter is a pure
// function of (seed, task id, attempt), so a failing chaos seed replays the
// identical retry schedule.
package health

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
)

// Class is one failure category, derived at attemptDone from the error chain.
type Class uint8

// The failure classes. ClassUnknown is the fallback for errors the taxonomy
// does not recognize; its policy mirrors the pre-health retry behavior
// (charge the budget, no affinity).
const (
	// ClassUnknown is any error the taxonomy cannot place.
	ClassUnknown Class = iota
	// ClassTransientWire is a frame-level fault (drop, corruption, NACK
	// resync, injected submit failure): the executor is fine, the attempt
	// just never made it. Retries are cheap, uncharged, and sticky.
	ClassTransientWire
	// ClassExecutorLost is lost execution infrastructure (manager death,
	// worker-pool loss): retriable by the paper's contract (§4.3.1), charged
	// against the executor's breaker, and counted toward quarantine.
	ClassExecutorLost
	// ClassTaskFault is the task's own failure — an app error or panic. The
	// executor did its job; retrying elsewhere may help, hammering the same
	// budget-free path never does, so these charge the retry budget.
	ClassTaskFault
	// ClassTimeout is an attempt that exceeded its clock (dfk.ErrTimeout);
	// the DFK classifies it before consulting this package (the sentinel
	// lives in dfk, which this package cannot import).
	ClassTimeout
	// ClassOverload is backpressure: no healthy executor was admissible for
	// the attempt (every breaker open). Uncharged with a generous free cap,
	// so parked tasks survive an open window without burning budget.
	ClassOverload
	// NumClasses sizes per-class arrays.
	NumClasses
)

var classNames = [NumClasses]string{
	ClassUnknown:       "unknown",
	ClassTransientWire: "transient-wire",
	ClassExecutorLost:  "executor-lost",
	ClassTaskFault:     "task-fault",
	ClassTimeout:       "timeout",
	ClassOverload:      "overload",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ParseClass resolves a class name (as used by chaos.Rule.Class and carried
// inside flattened remote errors) back to its Class.
func ParseClass(name string) (Class, bool) {
	for c, n := range classNames {
		if n == name {
			return Class(c), true
		}
	}
	return ClassUnknown, false
}

// ExecutorFault reports whether a failure of this class indicts the executor
// it ran on — the classes a circuit breaker counts as failures. Task faults
// are explicitly the opposite: the executor delivered a verdict, which is
// evidence of health, not sickness.
func (c Class) ExecutorFault() bool {
	switch c {
	case ClassTransientWire, ClassExecutorLost, ClassTimeout:
		return true
	}
	return false
}

// ErrNoHealthyExecutor is returned by routing when every admissible
// executor's breaker is open. The DFK converts it into an attempt-level park:
// the attempt concludes, classifies as ClassOverload, and re-enters dispatch
// after backoff with a fresh timeout clock.
var ErrNoHealthyExecutor = errors.New("health: no healthy executor admissible")

// Policy is one class's retry policy.
type Policy struct {
	// Charge makes retries of this class consume the task's retry budget
	// (Config.Retries / WithRetries), exactly as the pre-health path did.
	Charge bool
	// MaxFree bounds uncharged retries per task for this class when Charge
	// is false; once exhausted, further failures of the class charge the
	// budget — infrastructure flakiness is forgiven, but not forever.
	MaxFree int
	// Base is the backoff before the first retry; each further retry of any
	// class doubles it (the exponent is the task's launch count, so mixed-
	// class failure sequences still grow monotonically). Zero means re-enter
	// dispatch immediately.
	Base time.Duration
	// Max caps the backoff curve (0 = uncapped).
	Max time.Duration
	// Failover marks retries of this class eligible to re-route to a
	// different executor. When false the retry prefers the executor the
	// attempt failed on (retry affinity) as long as its breaker admits it —
	// right for wire glitches, wrong for lost managers.
	Failover bool
}

// DefaultPolicies is the per-class policy table; Options.Policies overrides
// individual entries.
func DefaultPolicies() [NumClasses]Policy {
	var p [NumClasses]Policy
	p[ClassUnknown] = Policy{Charge: true, Base: 5 * time.Millisecond, Max: 200 * time.Millisecond, Failover: true}
	p[ClassTransientWire] = Policy{MaxFree: 8, Base: 2 * time.Millisecond, Max: 100 * time.Millisecond, Failover: false}
	p[ClassExecutorLost] = Policy{MaxFree: 6, Base: 10 * time.Millisecond, Max: 500 * time.Millisecond, Failover: true}
	p[ClassTaskFault] = Policy{Charge: true, Base: 5 * time.Millisecond, Max: 200 * time.Millisecond, Failover: true}
	p[ClassTimeout] = Policy{Charge: true, Failover: true} // the attempt already spent its clock; relaunch now
	p[ClassOverload] = Policy{MaxFree: 64, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond, Failover: true}
	return p
}

// splitmix64 is the SplitMix64 finalizer (same mixer the chaos plane rolls
// with): full-avalanche, so sequential task ids and attempt counters still
// jitter uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Delay computes the backoff before launching `attempt` (the 1-based launch
// number; the first retry is attempt 2). The curve is Base doubled per prior
// retry, capped at Max, with deterministic jitter in [d/2, d): a pure
// function of (seed, taskID, attempt), so one seed always yields one
// schedule — reproducible under the chaos seed, yet decorrelated across
// tasks so a burst of same-instant failures does not retry in lockstep.
func (p Policy) Delay(seed, taskID int64, attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if h := d / 2; h > 0 {
		x := splitmix64(uint64(seed) ^ splitmix64(uint64(taskID)) ^ splitmix64(uint64(attempt))<<1)
		frac := float64(x>>11) / (1 << 53)
		d = h + time.Duration(frac*float64(h))
	}
	return d
}

// classMarker is how an injected class fault survives the wire: remote
// executors flatten errors to strings, so ClassError embeds this marker in
// its message and Classify parses it back out of RemoteError.
const classMarkerPrefix = "[class="

// classFromMsg extracts a class marker from a flattened error message.
func classFromMsg(msg string) (Class, bool) {
	i := strings.Index(msg, classMarkerPrefix)
	if i < 0 {
		return ClassUnknown, false
	}
	rest := msg[i+len(classMarkerPrefix):]
	j := strings.IndexByte(rest, ']')
	if j < 0 {
		return ClassUnknown, false
	}
	return ParseClass(rest[:j])
}

// Classify places an attempt error in the taxonomy. Timeouts are the one
// class the caller must pre-classify (dfk.ErrTimeout lives upstream of this
// package); everything else derives from the error chain here.
func Classify(err error) Class {
	if err == nil {
		return ClassUnknown
	}
	var ce *chaos.ClassError
	if errors.As(err, &ce) {
		if c, ok := ParseClass(ce.Class); ok {
			return c
		}
		return ClassUnknown
	}
	var le *executor.LostError
	if errors.As(err, &le) {
		return ClassExecutorLost
	}
	var re *executor.RemoteError
	if errors.As(err, &re) {
		// A chaos class fault injected inside a remote worker crossed the
		// wire flattened to a string; recover the class from its marker.
		if c, ok := classFromMsg(re.Msg); ok {
			return c
		}
		return ClassTaskFault
	}
	if errors.Is(err, ErrNoHealthyExecutor) {
		return ClassOverload
	}
	if errors.Is(err, chaos.ErrInjected) {
		// A plain ActFail injection models a submit-boundary wire fault.
		return ClassTransientWire
	}
	return ClassUnknown
}

// QuarantineError fails a poison task permanently: its attempts killed
// Options.QuarantineAfter distinct managers, and re-dispatching it would keep
// eating the fleet. Kills is the distinct-manager kill history, in order.
type QuarantineError struct {
	TaskID int64
	Kills  []string
	Last   error
}

// Error implements error.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("health: task %d quarantined after killing %d managers (%s): last failure: %v",
		e.TaskID, len(e.Kills), strings.Join(e.Kills, ", "), e.Last)
}

// Unwrap exposes the final attempt's failure.
func (e *QuarantineError) Unwrap() error { return e.Last }

// Options configures the plane (dfk.Config.Health). A nil *Options disables
// it entirely; the zero value enables it with defaults.
type Options struct {
	// Seed drives backoff jitter (0 = the DFK's Config.Seed).
	Seed int64
	// Policies overrides DefaultPolicies per class.
	Policies map[Class]Policy
	// Breaker tunes the per-executor circuit breakers.
	Breaker BreakerConfig
	// QuarantineAfter is how many distinct managers a task's attempts may
	// kill before it is quarantined (0 = 3; negative disables quarantine).
	QuarantineAfter int
	// PinnedFailFast makes a pinned (WithExecutor) task fail immediately
	// when its executor's breaker rejects it. The default parks the attempt:
	// it backs off under the overload policy and re-probes until the breaker
	// half-opens or the free overload budget runs out.
	PinnedFailFast bool
}

// PolicyTable resolves the effective per-class policy table.
func (o *Options) PolicyTable() [NumClasses]Policy {
	t := DefaultPolicies()
	for c, p := range o.Policies {
		if int(c) < len(t) {
			t[c] = p
		}
	}
	return t
}
