package health

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(t *testing.T, cfg BreakerConfig) (*Breaker, *fakeClock, *[]string) {
	t.Helper()
	b := NewBreaker(cfg)
	clk := newFakeClock()
	b.SetClock(clk.Now)
	var transitions []string
	b.SetTransitionHook(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	return b, clk, &transitions
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, trans := newTestBreaker(t, BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.5, OpenFor: 100 * time.Millisecond})
	// Three failures: below MinSamples, must stay closed.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("opened below MinSamples: %v", b.State())
	}
	// Fourth failure reaches MinSamples at 100% failure rate: open.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 4 consecutive failures", b.State())
	}
	if !b.Routable() {
		// Routable must reject while the open window runs (fake clock frozen).
	} else {
		t.Fatal("open breaker admitted work")
	}
	if len(*trans) != 1 || (*trans)[0] != "closed->open" {
		t.Fatalf("transitions = %v", *trans)
	}
	// Late results from before the trip carry no information.
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatal("stale success closed an open breaker")
	}
}

func TestBreakerStaysClosedUnderMixedOutcomes(t *testing.T) {
	b, _, _ := newTestBreaker(t, BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.5})
	// Alternate success/failure: 50% threshold is reached exactly — the
	// breaker opens at >= threshold. Use a 0.75 threshold variant to verify
	// sub-threshold mixes stay closed.
	b2, _, _ := newTestBreaker(t, BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.75})
	for i := 0; i < 16; i++ {
		b2.Record(i%2 == 0) // 50% failures < 75% threshold
	}
	if b2.State() != BreakerClosed {
		t.Fatalf("b2 state = %v under sub-threshold failure rate", b2.State())
	}
	for i := 0; i < 16; i++ {
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("b state = %v under pure success", b.State())
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	cfg := BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: 50 * time.Millisecond, HalfOpenProbes: 2}
	b, clk, trans := newTestBreaker(t, cfg)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	// Open window not yet expired: not routable.
	clk.Advance(20 * time.Millisecond)
	if b.Routable() {
		t.Fatal("admitted before OpenFor expired")
	}
	// Expiry: Routable flips the breaker half-open and admits probes.
	clk.Advance(40 * time.Millisecond)
	if !b.Routable() {
		t.Fatal("rejected after OpenFor expired")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after expiry", b.State())
	}
	// Probe slots bound concurrent admissions.
	b.Acquire()
	if !b.Routable() {
		t.Fatal("second probe slot not admitted")
	}
	b.Acquire()
	if b.Routable() {
		t.Fatal("admitted past HalfOpenProbes")
	}
	// A probe failure reopens; the next expiry re-probes; a success closes.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after probe failure", b.State())
	}
	clk.Advance(60 * time.Millisecond)
	if !b.Routable() {
		t.Fatal("not routable after second expiry")
	}
	b.Acquire()
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success", b.State())
	}
	// Closing resets the window: one new failure must not instantly reopen.
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("reopened on first post-close failure (window not reset)")
	}
	want := []string{"closed->open", "open->half-open", "half-open->open", "open->half-open", "half-open->closed"}
	if len(*trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", *trans, want)
	}
	for i, w := range want {
		if (*trans)[i] != w {
			t.Fatalf("transition[%d] = %q, want %q", i, (*trans)[i], w)
		}
	}
}

// TestBreakerPropertyRandomWalk drives a breaker through a long pseudo-random
// outcome sequence and checks the state-machine invariants at every step:
// closed never holds more than Window outcomes, open always follows a
// threshold crossing or probe failure, half-open only follows an expired open
// window, and probes never exceed the configured bound.
func TestBreakerPropertyRandomWalk(t *testing.T) {
	cfg := BreakerConfig{Window: 6, MinSamples: 3, FailureThreshold: 0.5, OpenFor: 10 * time.Millisecond, HalfOpenProbes: 1}
	b, clk, _ := newTestBreaker(t, cfg)
	rng := uint64(42)
	next := func() uint64 {
		rng = splitmix64(rng)
		return rng
	}
	for step := 0; step < 5000; step++ {
		switch next() % 4 {
		case 0:
			clk.Advance(time.Duration(next()%20) * time.Millisecond)
		case 1:
			if b.Routable() {
				b.Acquire()
			}
		default:
			before := b.State()
			ok := next()%3 == 0
			b.Record(ok)
			after := b.State()
			// Legal transitions only.
			switch {
			case before == after:
			case before == BreakerClosed && after == BreakerOpen:
			case before == BreakerHalfOpen && after == BreakerOpen && !ok:
			case before == BreakerHalfOpen && after == BreakerClosed && ok:
			default:
				t.Fatalf("step %d: illegal transition %v -> %v (ok=%v)", step, before, after, ok)
			}
		}
		if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
			t.Fatalf("step %d: impossible state %v", step, s)
		}
	}
}

func TestBreakerNormalizeDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.Window != 16 || b.cfg.MinSamples != 8 || b.cfg.FailureThreshold != 0.5 ||
		b.cfg.OpenFor != 250*time.Millisecond || b.cfg.HalfOpenProbes != 2 {
		t.Fatalf("defaults = %+v", b.cfg)
	}
	b2 := NewBreaker(BreakerConfig{Window: 4, MinSamples: 100})
	if b2.cfg.MinSamples != 4 {
		t.Fatalf("MinSamples not clamped to Window: %d", b2.cfg.MinSamples)
	}
}
