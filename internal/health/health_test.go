package health

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
)

func TestClassNamesRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("no-such-class"); ok {
		t.Fatal("ParseClass accepted an unknown name")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassUnknown},
		{"plain", errors.New("boom"), ClassUnknown},
		{"lost", &executor.LostError{TaskID: 1, Detail: "heartbeat expired"}, ClassExecutorLost},
		{"lost-wrapped", fmt.Errorf("outer: %w", &executor.LostError{TaskID: 1}), ClassExecutorLost},
		{"remote-app", &executor.RemoteError{TaskID: 2, Msg: "app blew up"}, ClassTaskFault},
		{"remote-panic", &executor.RemoteError{TaskID: 2, Msg: "panic in app \"x\": boom"}, ClassTaskFault},
		// An ActFailClass injection flattened to a string by a remote worker
		// recovers its class from the embedded marker.
		{"remote-class-marker",
			&executor.RemoteError{TaskID: 3, Msg: (&chaos.ClassError{Class: "executor-lost", Point: chaos.PointExecRun, Hit: 1}).Error()},
			ClassExecutorLost},
		{"class-error-typed", &chaos.ClassError{Class: "overload", Point: chaos.PointSubmitFail, Hit: 2}, ClassOverload},
		{"class-error-bad-name", &chaos.ClassError{Class: "bogus", Point: chaos.PointSubmitFail, Hit: 2}, ClassUnknown},
		{"injected", fmt.Errorf("wrapped: %w", chaos.ErrInjected), ClassTransientWire},
		{"no-healthy", fmt.Errorf("dfk: %w", ErrNoHealthyExecutor), ClassOverload},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestExecutorFault(t *testing.T) {
	want := map[Class]bool{
		ClassUnknown: false, ClassTransientWire: true, ClassExecutorLost: true,
		ClassTaskFault: false, ClassTimeout: true, ClassOverload: false,
	}
	for c, w := range want {
		if c.ExecutorFault() != w {
			t.Errorf("%v.ExecutorFault() = %v, want %v", c, !w, w)
		}
	}
}

// TestDelayDeterminism is the seeded-jitter contract: one (seed, task,
// attempt) triple always yields one delay, different seeds or tasks yield
// decorrelated ones, and every delay stays inside [base/2 · 2^k, base · 2^k)
// capped at Max.
func TestDelayDeterminism(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 500 * time.Millisecond}
	for seed := int64(1); seed <= 3; seed++ {
		for task := int64(0); task < 50; task++ {
			for attempt := 2; attempt < 10; attempt++ {
				d1 := p.Delay(seed, task, attempt)
				d2 := p.Delay(seed, task, attempt)
				if d1 != d2 {
					t.Fatalf("seed=%d task=%d attempt=%d: %v != %v", seed, task, attempt, d1, d2)
				}
			}
		}
	}
	// Bounds: attempt 2 is the first retry (no doubling yet).
	for task := int64(0); task < 200; task++ {
		d := p.Delay(7, task, 2)
		if d < p.Base/2 || d >= p.Base {
			t.Fatalf("task %d: first-retry delay %v outside [%v, %v)", task, d, p.Base/2, p.Base)
		}
	}
	// The curve doubles then caps at Max.
	if d := p.Delay(7, 1, 30); d < p.Max/2 || d > p.Max {
		t.Fatalf("late-attempt delay %v escaped the cap %v", d, p.Max)
	}
	// Different seeds decorrelate (identical schedules would be astonishing).
	same := 0
	for task := int64(0); task < 100; task++ {
		if p.Delay(1, task, 2) == p.Delay(2, task, 2) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/100 delays identical across seeds", same)
	}
	// Zero base means immediate re-dispatch.
	if d := (Policy{}).Delay(1, 1, 2); d != 0 {
		t.Fatalf("zero-base delay = %v", d)
	}
}

func TestPolicyTableOverride(t *testing.T) {
	o := &Options{Policies: map[Class]Policy{
		ClassTaskFault: {Charge: true, Base: time.Second, Failover: false},
	}}
	tbl := o.PolicyTable()
	if tbl[ClassTaskFault].Base != time.Second || tbl[ClassTaskFault].Failover {
		t.Fatalf("override not applied: %+v", tbl[ClassTaskFault])
	}
	def := DefaultPolicies()
	if tbl[ClassExecutorLost] != def[ClassExecutorLost] {
		t.Fatalf("non-overridden entry changed: %+v", tbl[ClassExecutorLost])
	}
}

func TestQuarantineErrorUnwrap(t *testing.T) {
	last := &executor.LostError{TaskID: 9, Detail: "heartbeat expired", Manager: "m2"}
	qe := &QuarantineError{TaskID: 9, Kills: []string{"m0", "m1", "m2"}, Last: last}
	var le *executor.LostError
	if !errors.As(qe, &le) || le.Manager != "m2" {
		t.Fatalf("QuarantineError does not unwrap to the last failure: %v", qe)
	}
	msg := qe.Error()
	for _, want := range []string{"task 9", "3 managers", "m0, m1, m2"} {
		if !contains(msg, want) {
			t.Fatalf("quarantine message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
