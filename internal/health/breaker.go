package health

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is one circuit breaker's position.
type BreakerState uint8

// Breaker states: closed admits everything, open admits nothing, half-open
// admits a bounded number of probe tasks whose outcomes decide the verdict.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	if int(s) < len(breakerStateNames) {
		return breakerStateNames[s]
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// BreakerConfig tunes one per-executor circuit breaker.
type BreakerConfig struct {
	// Window is the rolling outcome window (default 16).
	Window int
	// FailureThreshold opens the breaker when the window's failure fraction
	// reaches it (default 0.5).
	FailureThreshold float64
	// MinSamples is how many outcomes the window needs before the breaker
	// may open (default 8) — a single early failure is not a verdict.
	MinSamples int
	// OpenFor is how long the breaker stays open before admitting probes
	// (default 250ms).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrently admitted probe tasks while
	// half-open (default 2).
	HalfOpenProbes int
}

func (c *BreakerConfig) normalize() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 250 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
}

// Breaker is a rolling-failure-rate circuit breaker for one executor.
// Routing consults Routable (non-mutating except for open→half-open expiry),
// reserves a probe slot with Acquire on the executor it actually picked, and
// reports each attempt outcome with Record. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig
	// now is the clock, injectable so state-machine tests need no sleeping.
	now func() time.Time
	// onTransition observes state changes (monitor events); called outside
	// the breaker lock, so late reorderings between two racing transitions
	// are possible and harmless — the State accessor is authoritative.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	ring     []bool // true = failure; rolling window of recent outcomes
	ringLen  int    // outcomes currently held (≤ cap)
	ringPos  int    // next write position
	fails    int    // failures currently in the window
	openedAt time.Time
	probes   int // probe slots currently reserved while half-open
	// pending holds a transition awaiting out-of-lock hook delivery; each
	// public method performs at most one transition per call.
	pending pendingTransition
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.normalize()
	return &Breaker{cfg: cfg, now: time.Now, ring: make([]bool, cfg.Window)}
}

// SetTransitionHook installs the state-change observer (before first use).
func (b *Breaker) SetTransitionHook(fn func(from, to BreakerState)) { b.onTransition = fn }

// SetClock injects a test clock (before first use).
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// State reports the current position without evaluating open-window expiry.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Routable reports whether routing may consider this executor right now.
// An expired open window transitions to half-open here — routing is the
// natural evaluation point — and half-open admits only while probe slots
// remain unreserved.
func (b *Breaker) Routable() bool {
	b.mu.Lock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.toHalfOpenLocked()
	}
	var ok bool
	switch b.state {
	case BreakerClosed:
		ok = true
	case BreakerHalfOpen:
		ok = b.probes < b.cfg.HalfOpenProbes
	}
	hook, from, to := b.takeTransitionLocked()
	b.mu.Unlock()
	if hook != nil {
		hook(from, to)
	}
	return ok
}

// Acquire reserves a probe slot after routing picked this executor. A no-op
// outside half-open; the slot is released by the probe's Record.
func (b *Breaker) Acquire() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen && b.probes < b.cfg.HalfOpenProbes {
		b.probes++
	}
	b.mu.Unlock()
}

// Record reports one attempt outcome against this executor. Closed: the
// outcome enters the rolling window, and the breaker opens when the window
// holds MinSamples outcomes at FailureThreshold failure rate. Half-open: a
// probe success closes the breaker (fresh window), a probe failure reopens
// it for another OpenFor. Open: late results from before the trip carry no
// new information and are dropped.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.pushLocked(!ok)
		if b.ringLen >= b.cfg.MinSamples &&
			float64(b.fails) >= b.cfg.FailureThreshold*float64(b.ringLen) {
			b.openLocked()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.closeLocked()
		} else {
			b.openLocked()
		}
	case BreakerOpen:
		// Stale outcome from before the trip; ignore.
	}
	hook, from, to := b.takeTransitionLocked()
	b.mu.Unlock()
	if hook != nil {
		hook(from, to)
	}
}

// pushLocked rolls one outcome into the window.
func (b *Breaker) pushLocked(failed bool) {
	if b.ringLen == len(b.ring) {
		if b.ring[b.ringPos] {
			b.fails--
		}
	} else {
		b.ringLen++
	}
	b.ring[b.ringPos] = failed
	if failed {
		b.fails++
	}
	b.ringPos = (b.ringPos + 1) % len(b.ring)
}

// Pending transition captured for out-of-lock hook delivery.
type pendingTransition struct {
	fired    bool
	from, to BreakerState
}

func (b *Breaker) takeTransitionLocked() (func(from, to BreakerState), BreakerState, BreakerState) {
	if !b.pending.fired || b.onTransition == nil {
		b.pending = pendingTransition{}
		return nil, 0, 0
	}
	t := b.pending
	b.pending = pendingTransition{}
	return b.onTransition, t.from, t.to
}

func (b *Breaker) openLocked() {
	b.pending = pendingTransition{fired: true, from: b.state, to: BreakerOpen}
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probes = 0
}

func (b *Breaker) toHalfOpenLocked() {
	b.pending = pendingTransition{fired: true, from: b.state, to: BreakerHalfOpen}
	b.state = BreakerHalfOpen
	b.probes = 0
}

func (b *Breaker) closeLocked() {
	b.pending = pendingTransition{fired: true, from: b.state, to: BreakerClosed}
	b.state = BreakerClosed
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringLen, b.ringPos, b.fails = 0, 0, 0
}
