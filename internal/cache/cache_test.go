package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutStats(t *testing.T) {
	c := New(Options{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k", 42)
	v, ok := c.Get("k")
	if !ok || v.(int) != 42 {
		t.Fatalf("got %v, %v", v, ok)
	}
	c.Put("nil", nil)
	if v, ok := c.Get("nil"); !ok || v != nil {
		t.Fatal("cached nil result must hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestPutEmptyKeyIgnored(t *testing.T) {
	c := New(Options{})
	c.Put("", 1)
	if c.Len() != 0 {
		t.Fatal("empty key stored")
	}
}

func TestContainsDoesNotCount(t *testing.T) {
	c := New(Options{})
	c.Put("k", 1)
	if !c.Contains("k") || c.Contains("x") {
		t.Fatal("Contains wrong")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains perturbed counters: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the bound")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted instead of LRU", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: no eviction
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("refresh lost: %v", v)
	}
}

func TestDelete(t *testing.T) {
	c := New(Options{})
	c.Put("a", 1)
	c.Delete("a")
	c.Delete("missing") // no-op
	if c.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestSeed(t *testing.T) {
	c := New(Options{})
	c.Seed(func(fn func(string, any) bool) {
		for i := 0; i < 3; i++ {
			if !fn(fmt.Sprintf("k%d", i), i) {
				return
			}
		}
	})
	if c.Len() != 3 {
		t.Fatalf("seeded %d entries", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Options{MaxEntries: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.Put(k, i)
				c.Get(k)
				c.Contains(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("bound exceeded: %d", c.Len())
	}
}
