// Package cache implements the shared content-addressed result cache that
// sits behind each DFK's per-process memo table. Keys are the same digests
// the memoizer already produces (memo.KeyFromPayload — app name, body hash,
// and the canonical Payload.ArgsHash of the arguments), so a result computed
// once is addressable by content from any process that can derive the same
// key. One Cache instance is safe for concurrent use and is intended to be
// shared across many DFKs: a memo miss in one tenant's table consults the
// shared tier before dispatching, turning another tenant's identical call
// into a warm hit instead of a re-execution.
//
// The cache is bounded (LRU over entry count) and entirely optional — a DFK
// configured without one pays a single nil check on the memo-miss path.
package cache

import (
	"container/list"
	"sync"
)

// DefaultMaxEntries bounds the cache when Options.MaxEntries is zero.
const DefaultMaxEntries = 1 << 16

// Options shapes a shared cache. The zero value is usable: a bounded LRU at
// DefaultMaxEntries.
type Options struct {
	// MaxEntries caps the resident entry count; the least recently used
	// entry is evicted past it. <= 0 means DefaultMaxEntries.
	MaxEntries int
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 // Get found the key
	Misses    int64 // Get did not
	Stores    int64 // Put calls that inserted or refreshed an entry
	Evictions int64 // entries dropped by the LRU bound
	Entries   int   // resident entries now
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key   string
	value any
}

// Cache is the shared tier. All methods are safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	max       int
	entries   map[string]*list.Element // key -> element whose Value is *entry
	order     *list.List               // front = most recently used
	hits      int64
	misses    int64
	stores    int64
	evictions int64
}

// New builds a shared cache from opts.
func New(opts Options) *Cache {
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the cached result for a content key, marking it most recently
// used. The second return distinguishes a cached nil result from a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Contains reports whether key is resident without perturbing LRU order or
// the hit/miss counters (used by locality probes, not by the lookup path).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put inserts (or refreshes) a result under its content key, evicting the
// least recently used entry past the bound. Results must be treated as
// immutable by every sharer — the same value is handed to all hitters, the
// same contract the per-process memo table already imposes.
func (c *Cache) Put(key string, value any) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value})
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Delete drops a key if resident (result invalidation).
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Evictions: c.evictions,
		Entries:   len(c.entries),
	}
}

// Seed bulk-loads entries from an iterator (e.g. a memo table's Range) so a
// freshly constructed shared tier starts warm from a checkpoint.
func (c *Cache) Seed(iter func(fn func(key string, value any) bool)) {
	iter(func(key string, value any) bool {
		c.Put(key, value)
		return true
	})
}
