package task

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGraphAddAndGet(t *testing.T) {
	g := NewGraph()
	id := g.NextID()
	r := NewRecord(id, "a", nil, nil)
	g.Add(r)
	if got := g.Get(id); got != r {
		t.Fatal("Get returned wrong record")
	}
	if g.Get(999) != nil {
		t.Fatal("Get(unknown) != nil")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGraphNextIDUnique(t *testing.T) {
	g := NewGraph()
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := g.NextID()
			mu.Lock()
			if seen[id] {
				t.Errorf("duplicate id %d", id)
			}
			seen[id] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestGraphDuplicateAddPanics(t *testing.T) {
	g := NewGraph()
	r := NewRecord(1, "a", nil, nil)
	g.Add(r)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	g.Add(NewRecord(1, "b", nil, nil))
}

func TestGraphEdges(t *testing.T) {
	g := NewGraph()
	a, b, c := NewRecord(1, "a", nil, nil), NewRecord(2, "b", nil, nil), NewRecord(3, "c", nil, nil)
	g.Add(a)
	g.Add(b)
	g.Add(c)
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	deps := g.Deps(3)
	if len(deps) != 2 {
		t.Fatalf("deps = %v", deps)
	}
	if got := g.Dependents(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("dependents(1) = %v", got)
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("edges = %d", g.EdgeCount())
	}
}

func TestGraphEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.Add(NewRecord(1, "a", nil, nil))
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self edge allowed")
	}
	if err := g.AddEdge(1, 99); err == nil {
		t.Fatal("edge to unknown allowed")
	}
	if err := g.AddEdge(99, 1); err == nil {
		t.Fatal("edge from unknown allowed")
	}
}

func TestGraphCountByStateAndOutstanding(t *testing.T) {
	g := NewGraph()
	for i := int64(0); i < 4; i++ {
		g.Add(NewRecord(i, "a", nil, nil))
	}
	_ = g.Get(0).SetState(Pending)
	_ = g.Get(1).SetState(Pending)
	_ = g.Get(1).SetState(Launched)
	_ = g.Get(1).SetState(Done)
	_ = g.Get(2).SetState(Memoized)
	counts := g.CountByState()
	if counts[Pending] != 1 || counts[Done] != 1 || counts[Memoized] != 1 || counts[Unsched] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if g.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", g.Outstanding())
	}
}

func TestGraphTasksSnapshot(t *testing.T) {
	g := NewGraph()
	for i := int64(0); i < 10; i++ {
		g.Add(NewRecord(i, "a", nil, nil))
	}
	if len(g.Tasks()) != 10 {
		t.Fatalf("snapshot size %d", len(g.Tasks()))
	}
}

func TestGraphShardCountsSumToLen(t *testing.T) {
	g := NewGraph()
	const n = 500
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				g.Add(NewRecord(g.NextID(), "a", nil, nil))
			}
		}()
	}
	wg.Wait()
	counts := g.ShardCounts()
	if len(counts) != NumShards {
		t.Fatalf("ShardCounts len = %d, want %d", len(counts), NumShards)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != g.Len() || sum != (n/8)*8 {
		t.Fatalf("shard counts sum %d, Len %d", sum, g.Len())
	}
	// Dense ids over a power-of-two mask: shards must be near-uniform.
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d empty after %d dense inserts", i, sum)
		}
	}
}

func TestGraphCrossShardEdges(t *testing.T) {
	g := NewGraph()
	// Ids 0 and 1 land in different shards; 0 and NumShards in the same one.
	for _, id := range []int64{0, 1, NumShards} {
		g.Add(NewRecord(id, "a", nil, nil))
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(NumShards, 0); err != nil {
		t.Fatal(err)
	}
	if got := g.Deps(0); len(got) != 2 {
		t.Fatalf("Deps(0) = %v", got)
	}
	if got := g.Dependents(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Dependents(0) = %v", got)
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("edges = %d", g.EdgeCount())
	}
}

// Property: the deps/dependents views are always mirror images, and edge
// count equals the number of successful AddEdge calls.
func TestQuickGraphMirrorInvariant(t *testing.T) {
	prop := func(pairs []struct{ A, B uint8 }) bool {
		g := NewGraph()
		const n = 16
		for i := int64(0); i < n; i++ {
			g.Add(NewRecord(i, "a", nil, nil))
		}
		added := 0
		for _, p := range pairs {
			from, to := int64(p.A%n), int64(p.B%n)
			if err := g.AddEdge(from, to); err == nil {
				added++
			}
		}
		if g.EdgeCount() != added {
			return false
		}
		// Mirror check.
		for i := int64(0); i < n; i++ {
			for _, d := range g.Deps(i) {
				found := false
				for _, dd := range g.Dependents(d) {
					if dd == i {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
