package task

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRecordInitialState(t *testing.T) {
	r := NewRecord(1, "app", []any{1, 2}, nil)
	if r.State() != Unsched {
		t.Fatalf("state = %v", r.State())
	}
	if r.Future == nil || r.Future.TaskID != 1 {
		t.Fatal("future not bound to task id")
	}
	if r.SubmitTime.IsZero() {
		t.Fatal("submit time unset")
	}
}

func TestLegalTransitionChain(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	for _, s := range []State{Pending, Launched, Running, Done} {
		if err := r.SetState(s); err != nil {
			t.Fatalf("SetState(%v): %v", s, err)
		}
	}
	if r.State() != Done {
		t.Fatalf("final state = %v", r.State())
	}
}

func TestIllegalTransitionRejected(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	if err := r.SetState(Running); err == nil {
		t.Fatal("Unsched -> Running allowed")
	}
	if err := r.SetState(Done); err == nil {
		t.Fatal("Unsched -> Done allowed")
	}
}

func TestTerminalStatesSticky(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	_ = r.SetState(Pending)
	_ = r.SetState(Launched)
	_ = r.SetState(Done)
	if err := r.SetState(Running); err == nil {
		t.Fatal("transition out of Done allowed")
	}
	if err := r.SetState(Done); err != nil {
		t.Fatalf("idempotent set to same state should be nil: %v", err)
	}
}

func TestRetryLoopTransitions(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	_ = r.SetState(Pending)
	_ = r.SetState(Launched)
	if err := r.SetState(Retrying); err != nil {
		t.Fatalf("Launched -> Retrying: %v", err)
	}
	if err := r.SetState(Launched); err != nil {
		t.Fatalf("Retrying -> Launched: %v", err)
	}
	_ = r.SetState(Running)
	if err := r.SetState(Retrying); err != nil {
		t.Fatalf("Running -> Retrying: %v", err)
	}
	if err := r.SetState(Failed); err != nil {
		t.Fatalf("Retrying -> Failed: %v", err)
	}
}

func TestMemoizedPath(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	if err := r.SetState(Memoized); err != nil {
		t.Fatalf("Unsched -> Memoized: %v", err)
	}
	if !r.State().Terminal() {
		t.Fatal("Memoized should be terminal")
	}
}

func TestTransitionsRecorded(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	_ = r.SetState(Pending)
	_ = r.SetState(Launched)
	_ = r.SetState(Done)
	tr := r.Transitions()
	if len(tr) != 3 {
		t.Fatalf("got %d transitions, want 3", len(tr))
	}
	if tr[0].From != Unsched || tr[0].To != Pending {
		t.Fatalf("first transition %v", tr[0])
	}
	if tr[2].To != Done {
		t.Fatalf("last transition %v", tr[2])
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At.Before(tr[i-1].At) {
			t.Fatal("transition timestamps not monotonic")
		}
	}
}

func TestTimingsSetOnTransitions(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	_ = r.SetState(Pending)
	_ = r.SetState(Launched)
	_ = r.SetState(Running)
	_ = r.SetState(Done)
	launch, start, end := r.Timings()
	if launch.IsZero() || start.IsZero() || end.IsZero() {
		t.Fatalf("timings unset: %v %v %v", launch, start, end)
	}
	if end.Before(launch) {
		t.Fatal("end before launch")
	}
}

func TestAttemptsCounter(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	if r.Attempts() != 0 {
		t.Fatal("fresh record has attempts")
	}
	if n := r.IncAttempts(); n != 1 {
		t.Fatalf("IncAttempts = %d", n)
	}
	r.SetMaxRetries(3)
	if r.MaxRetries() != 3 {
		t.Fatal("retry budget lost")
	}
}

func TestDepCounter(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	r.SetPendingDeps(2)
	if n := r.DepResolved(); n != 1 {
		t.Fatalf("after first resolve: %d", n)
	}
	if n := r.DepResolved(); n != 0 {
		t.Fatalf("after second resolve: %d", n)
	}
	// Underflow guard.
	if n := r.DepResolved(); n != 0 {
		t.Fatalf("underflow: %d", n)
	}
}

func TestAccessors(t *testing.T) {
	r := NewRecord(5, "app", nil, nil)
	r.SetExecutor("htex")
	if r.Executor() != "htex" {
		t.Fatal("executor lost")
	}
	r.SetMemoKey("k")
	if r.MemoKey() != "k" {
		t.Fatal("memo key lost")
	}
	if !strings.Contains(r.String(), "app") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestStateStringAndTerminal(t *testing.T) {
	if Done.String() != "done" || Pending.String() != "pending" {
		t.Fatal("state names wrong")
	}
	if State(99).String() != "State(99)" {
		t.Fatal("unknown state name")
	}
	for _, s := range []State{Done, Failed, Memoized} {
		if !s.Terminal() {
			t.Errorf("%v not terminal", s)
		}
	}
	for _, s := range []State{Unsched, Pending, Launched, Running, Retrying, DataStaging} {
		if s.Terminal() {
			t.Errorf("%v terminal", s)
		}
	}
}

func TestConcurrentStateAndCounters(t *testing.T) {
	r := NewRecord(1, "a", nil, nil)
	r.SetPendingDeps(100)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); r.DepResolved() }()
	}
	wg.Wait()
	if r.PendingDeps() != 0 {
		t.Fatalf("pending deps = %d", r.PendingDeps())
	}
}

// Property: any random walk through SetState never lands in a state that the
// machine forbids, and once terminal the state never changes.
func TestQuickStateMachineSafety(t *testing.T) {
	prop := func(steps []uint8) bool {
		r := NewRecord(1, "a", nil, nil)
		for _, b := range steps {
			target := State(b % 9)
			prev := r.State()
			err := r.SetState(target)
			if prev.Terminal() && err == nil && target != prev {
				return false // escaped a terminal state
			}
			if err == nil && target != prev {
				// must be in validNext
				ok := false
				for _, n := range validNext[prev] {
					if n == target {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
